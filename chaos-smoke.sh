#!/bin/sh
# chaos-smoke: end-to-end check of the fault-injection path. Builds
# consumelocald, lets `consumelocal loadtest -chaos` spawn it durably,
# SIGKILL it twice during the run and restart it on the same data dir
# each time, then asserts the report shows a clean recovery: the
# restarts happened (chaos section present, no restart error), finished
# jobs were restored, live ingest jobs were resumed across the crashes,
# the session ledger reconciles (ledger_ok), and — same headline as
# loadtest-smoke — zero 5xx. Run via `make chaos-smoke`.
set -eu

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT INT TERM

go build -o "$workdir/consumelocald" ./cmd/consumelocald
go run ./cmd/consumelocal loadtest \
    -daemon "$workdir/consumelocald" -chaos -chaos-kills 2 \
    -data-dir "$workdir/data" \
    -clients 24 -duration 10s -rate 120 -burst 32 \
    -scale 0.001 -o "$workdir/BENCH_chaos.json"

report="$workdir/BENCH_chaos.json"
test -s "$report"

# jq-free JSON assertions, as in loadtest-smoke.sh: the keys are the
# loadgen.Report schema, indented one per line.
fail() {
    echo "chaos-smoke: $1" >&2
    cat "$report" >&2
    exit 1
}

grep -q '"chaos": {' "$report" || fail "no chaos section — the kill/restart never ran"
grep -q '"restart_error"' "$report" && fail "daemon restart failed"
grep -q '"http_5xx": 0,' "$report" || fail "daemon returned 5xx across the restart"
grep -q '"ledger_ok": true' "$report" || fail "session ledger does not reconcile across the crash"
grep -q '"restored_jobs": [0-9]' "$report" || fail "no recovery report from the restarted daemon"
grep -q '"kills": 2' "$report" || fail "expected two kill/restart cycles"
grep -q '"resumed_jobs": [1-9]' "$report" || fail "no live ingest jobs resumed across the crashes"
grep -q '"resume_failed_jobs": 0' "$report" || fail "some ingest jobs failed to resume"
grep -q '"sessions_accepted": [1-9]' "$report" || fail "no sessions ingested"

recovery="$(sed -n 's/.*"recovery_ms": \([0-9.]*\).*/\1/p' "$report" | head -n 1)"
diff="$(sed -n 's/.*"ledger_diff": \([0-9-]*\).*/\1/p' "$report" | head -n 1)"
resumed="$(sed -n 's/.*"resumed_jobs": \([0-9]*\).*/\1/p' "$report" | head -n 1)"
echo "chaos-smoke OK: 2 kills, $resumed jobs resumed, recovered in ${recovery}ms, ledger diff $diff, zero 5xx"

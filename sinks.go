package consumelocal

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"consumelocal/internal/obs"
)

// Sink observes a replay job from the side: every windowed snapshot, and
// then the final outcome exactly once. Sinks run on the job's pump
// goroutine — a slow sink slows the replay (that is the point: sinks are
// part of the pipeline, not a lossy tap), and a sink error aborts it.
type Sink interface {
	// Snapshot consumes one windowed progress report.
	Snapshot(StreamSnapshot) error
	// Finish is called once, after the last snapshot, with the final
	// outcome: (result, nil) on success, (nil, err) on failure or
	// cancellation.
	Finish(*SimResult, error) error
}

// NDJSONSink streams every snapshot as one JSON line to w — the format
// consumelocald serves — and, on success, a closing summary line:
//
//	{"summary":{"swarms":…,"total":{…},"offload":…}}
func NDJSONSink(w io.Writer) Sink { return &ndjsonSink{enc: json.NewEncoder(w)} }

type ndjsonSink struct{ enc *json.Encoder }

func (s *ndjsonSink) Snapshot(snap StreamSnapshot) error { return s.enc.Encode(snap) }

func (s *ndjsonSink) Finish(res *SimResult, err error) error {
	if err != nil || res == nil {
		return nil
	}
	type summary struct {
		Swarms  int     `json:"swarms"`
		Total   Tally   `json:"total"`
		Offload float64 `json:"offload"`
	}
	return s.enc.Encode(struct {
		Summary summary `json:"summary"`
	}{summary{Swarms: len(res.Swarms), Total: res.Total, Offload: res.Total.Offload()}})
}

// TSVSink writes one gnuplot-ready tab-separated row per snapshot:
// window bounds, sessions seen, active members, swarm count, cumulative
// traffic split and offload. The header row is written lazily before the
// first snapshot.
func TSVSink(w io.Writer) Sink { return &tsvSink{w: w} }

type tsvSink struct {
	w      io.Writer
	header bool
}

func (s *tsvSink) Snapshot(snap StreamSnapshot) error {
	if !s.header {
		s.header = true
		if _, err := fmt.Fprintln(s.w, "window\tfrom_sec\tto_sec\tsessions\tactive\tswarms\ttotal_bits\tserver_bits\tpeer_bits\toffload"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.6f\n",
		snap.Index, snap.FromSec, snap.ToSec, snap.SessionsSeen, snap.ActiveMembers,
		snap.Swarms, snap.Cumulative.TotalBits, snap.Cumulative.ServerBits,
		snap.Cumulative.PeerBits(), snap.Cumulative.Offload())
	return err
}

func (s *tsvSink) Finish(*SimResult, error) error { return nil }

// MetricsSink exposes the latest replay state as Prometheus-style
// gauges. It is safe for concurrent use: the job's pump goroutine writes
// while any number of scrapers read, so one sink can back a live
// /metrics endpoint for a running replay (it implements http.Handler).
type MetricsSink struct {
	mu      sync.Mutex
	snap    StreamSnapshot
	windows int
	done    bool
	fail    string
	// vals and buf are scrape scratch, reused across WritePrometheus
	// calls so steady-state scrapes do not allocate.
	vals []float64
	buf  []byte
}

// NewMetricsSink returns an empty metrics sink.
func NewMetricsSink() *MetricsSink { return &MetricsSink{} }

// Snapshot implements Sink.
func (m *MetricsSink) Snapshot(snap StreamSnapshot) error {
	m.mu.Lock()
	m.snap = snap
	m.windows++
	m.mu.Unlock()
	return nil
}

// Finish implements Sink.
func (m *MetricsSink) Finish(res *SimResult, err error) error {
	m.mu.Lock()
	m.done = true
	if err != nil {
		m.fail = err.Error()
	}
	m.mu.Unlock()
	return nil
}

// metricsSchema is the single definition of the sink's series: name,
// help and exposition order, shared by Gauges and WritePrometheus so
// the two can never drift apart.
var metricsSchema = []struct{ name, help string }{
	{"consumelocal_replay_windows_total", "Windowed snapshots observed by this sink."},
	{"consumelocal_replay_sessions_seen", "Sessions admitted by the replay so far."},
	{"consumelocal_replay_active_members", "Swarm members active at the latest window boundary."},
	{"consumelocal_replay_swarms", "Distinct swarms seen so far."},
	{"consumelocal_replay_total_bits", "Cumulative bits demanded."},
	{"consumelocal_replay_server_bits", "Cumulative bits served by the CDN/server."},
	{"consumelocal_replay_peer_bits", "Cumulative bits served peer-to-peer."},
	{"consumelocal_replay_offload", "Cumulative offload fraction (peer bits / total bits)."},
	{"consumelocal_replay_done", "1 once the replay has finished."},
	{"consumelocal_replay_failed", "1 if the replay finished with an error."},
}

// collectLocked appends the gauge values in schema order. Callers hold
// m.mu.
func (m *MetricsSink) collectLocked(vals []float64) []float64 {
	done, failed := 0.0, 0.0
	if m.done {
		done = 1
	}
	if m.fail != "" {
		failed = 1
	}
	return append(vals,
		float64(m.windows),
		float64(m.snap.SessionsSeen),
		float64(m.snap.ActiveMembers),
		float64(m.snap.Swarms),
		m.snap.Cumulative.TotalBits,
		m.snap.Cumulative.ServerBits,
		m.snap.Cumulative.PeerBits(),
		m.snap.Cumulative.Offload(),
		done,
		failed,
	)
}

// Gauges returns the current gauge values by metric name. The map is
// built per call — scrape paths use WritePrometheus, which reuses the
// sink's internal buffer instead.
func (m *MetricsSink) Gauges() map[string]float64 {
	m.mu.Lock()
	vals := m.collectLocked(make([]float64, 0, len(metricsSchema)))
	m.mu.Unlock()
	g := make(map[string]float64, len(metricsSchema))
	for i, s := range metricsSchema {
		g[s.name] = vals[i]
	}
	return g
}

// WritePrometheus renders the gauges in Prometheus text exposition
// format. The rendering reuses the sink's scratch buffer, so
// steady-state scrapes are allocation-free; the sink's lock is held
// across the write to keep the buffer stable, so concurrent scrapers
// serialise against each other and against snapshot delivery.
func (m *MetricsSink) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vals = m.collectLocked(m.vals[:0])
	buf := m.buf[:0]
	for i, s := range metricsSchema {
		buf = obs.AppendHelp(buf, s.name, s.help)
		buf = obs.AppendType(buf, s.name, obs.TypeGauge)
		buf = obs.AppendSample(buf, s.name, "", m.vals[i])
	}
	m.buf = buf
	//consumelocal:ignore lockscope lock intentionally held across the write so the scratch buffer stays stable; scrapers serialise by design
	_, err := w.Write(buf)
	return err
}

// ServeHTTP makes the sink a drop-in /metrics handler.
func (m *MetricsSink) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = m.WritePrometheus(w)
}

package consumelocal

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Sink observes a replay job from the side: every windowed snapshot, and
// then the final outcome exactly once. Sinks run on the job's pump
// goroutine — a slow sink slows the replay (that is the point: sinks are
// part of the pipeline, not a lossy tap), and a sink error aborts it.
type Sink interface {
	// Snapshot consumes one windowed progress report.
	Snapshot(StreamSnapshot) error
	// Finish is called once, after the last snapshot, with the final
	// outcome: (result, nil) on success, (nil, err) on failure or
	// cancellation.
	Finish(*SimResult, error) error
}

// NDJSONSink streams every snapshot as one JSON line to w — the format
// consumelocald serves — and, on success, a closing summary line:
//
//	{"summary":{"swarms":…,"total":{…},"offload":…}}
func NDJSONSink(w io.Writer) Sink { return &ndjsonSink{enc: json.NewEncoder(w)} }

type ndjsonSink struct{ enc *json.Encoder }

func (s *ndjsonSink) Snapshot(snap StreamSnapshot) error { return s.enc.Encode(snap) }

func (s *ndjsonSink) Finish(res *SimResult, err error) error {
	if err != nil || res == nil {
		return nil
	}
	type summary struct {
		Swarms  int     `json:"swarms"`
		Total   Tally   `json:"total"`
		Offload float64 `json:"offload"`
	}
	return s.enc.Encode(struct {
		Summary summary `json:"summary"`
	}{summary{Swarms: len(res.Swarms), Total: res.Total, Offload: res.Total.Offload()}})
}

// TSVSink writes one gnuplot-ready tab-separated row per snapshot:
// window bounds, sessions seen, active members, swarm count, cumulative
// traffic split and offload. The header row is written lazily before the
// first snapshot.
func TSVSink(w io.Writer) Sink { return &tsvSink{w: w} }

type tsvSink struct {
	w      io.Writer
	header bool
}

func (s *tsvSink) Snapshot(snap StreamSnapshot) error {
	if !s.header {
		s.header = true
		if _, err := fmt.Fprintln(s.w, "window\tfrom_sec\tto_sec\tsessions\tactive\tswarms\ttotal_bits\tserver_bits\tpeer_bits\toffload"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.6f\n",
		snap.Index, snap.FromSec, snap.ToSec, snap.SessionsSeen, snap.ActiveMembers,
		snap.Swarms, snap.Cumulative.TotalBits, snap.Cumulative.ServerBits,
		snap.Cumulative.PeerBits(), snap.Cumulative.Offload())
	return err
}

func (s *tsvSink) Finish(*SimResult, error) error { return nil }

// MetricsSink exposes the latest replay state as Prometheus-style
// gauges. It is safe for concurrent use: the job's pump goroutine writes
// while any number of scrapers read, so one sink can back a live
// /metrics endpoint for a running replay (it implements http.Handler).
type MetricsSink struct {
	mu      sync.Mutex
	snap    StreamSnapshot
	windows int
	done    bool
	fail    string
}

// NewMetricsSink returns an empty metrics sink.
func NewMetricsSink() *MetricsSink { return &MetricsSink{} }

// Snapshot implements Sink.
func (m *MetricsSink) Snapshot(snap StreamSnapshot) error {
	m.mu.Lock()
	m.snap = snap
	m.windows++
	m.mu.Unlock()
	return nil
}

// Finish implements Sink.
func (m *MetricsSink) Finish(res *SimResult, err error) error {
	m.mu.Lock()
	m.done = true
	if err != nil {
		m.fail = err.Error()
	}
	m.mu.Unlock()
	return nil
}

// Gauges returns the current gauge values by metric name.
func (m *MetricsSink) Gauges() map[string]float64 {
	m.mu.Lock()
	snap, windows, done, fail := m.snap, m.windows, m.done, m.fail
	m.mu.Unlock()
	g := map[string]float64{
		"consumelocal_replay_windows_total":  float64(windows),
		"consumelocal_replay_sessions_seen":  float64(snap.SessionsSeen),
		"consumelocal_replay_active_members": float64(snap.ActiveMembers),
		"consumelocal_replay_swarms":         float64(snap.Swarms),
		"consumelocal_replay_total_bits":     snap.Cumulative.TotalBits,
		"consumelocal_replay_server_bits":    snap.Cumulative.ServerBits,
		"consumelocal_replay_peer_bits":      snap.Cumulative.PeerBits(),
		"consumelocal_replay_offload":        snap.Cumulative.Offload(),
		"consumelocal_replay_done":           0,
		"consumelocal_replay_failed":         0,
	}
	if done {
		g["consumelocal_replay_done"] = 1
	}
	if fail != "" {
		g["consumelocal_replay_failed"] = 1
	}
	return g
}

// metricsOrder fixes the exposition order of the gauges.
var metricsOrder = []string{
	"consumelocal_replay_windows_total",
	"consumelocal_replay_sessions_seen",
	"consumelocal_replay_active_members",
	"consumelocal_replay_swarms",
	"consumelocal_replay_total_bits",
	"consumelocal_replay_server_bits",
	"consumelocal_replay_peer_bits",
	"consumelocal_replay_offload",
	"consumelocal_replay_done",
	"consumelocal_replay_failed",
}

// WritePrometheus renders the gauges in Prometheus text exposition
// format.
func (m *MetricsSink) WritePrometheus(w io.Writer) error {
	gauges := m.Gauges()
	for _, name := range metricsOrder {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name]); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP makes the sink a drop-in /metrics handler.
func (m *MetricsSink) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = m.WritePrometheus(w)
}

package consumelocal

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"consumelocal/internal/engine"
	"consumelocal/internal/obs"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// Source yields trace sessions in start order, together with the
// trace-level metadata the replay needs before the first session
// arrives. Build one with TraceSource, CSVSource, GeneratorSource or
// NewIngestSource (live ingest), or implement the interface — or its
// LiveSource extension — directly.
type Source = engine.Source

// TraceSource adapts an in-memory trace into a Source. Batch and
// parallel replays recognise it and reuse the trace directly instead of
// re-collecting the sessions.
func TraceSource(t *Trace) Source { return &memSource{Source: engine.TraceSource(t), tr: t} }

// memSource remembers the backing trace so batch-mode replays skip the
// collect step — which is what makes Simulate over Replay bit-for-bit
// free of overhead.
type memSource struct {
	Source
	tr *Trace
}

// CSVSource opens a streaming Source over a CSV trace: the out-of-core
// entry point. Any reader works — a file, an HTTP body, a pipe.
func CSVSource(r io.Reader) (Source, error) { return trace.NewScanner(r) }

// GeneratorSource streams the synthetic workload described by cfg
// directly into a replay, session by session in start order, without
// materialising the trace: the library's live trace source. The stream
// is deterministic per seed but is a different (equally distributed)
// realisation than GenerateTrace with the same configuration.
func GeneratorSource(cfg TraceConfig) (Source, error) { return trace.GeneratorSource(cfg) }

// EngineMode selects which replay engine a Job runs on.
type EngineMode int

const (
	// EngineStreaming (the default) replays out-of-core on the windowed
	// streaming engine: bounded memory, live snapshots, full
	// cancellation support.
	EngineStreaming EngineMode = iota
	// EngineBatch materialises the source and runs the serial batch
	// simulator — the reference implementation. One final snapshot is
	// emitted; cancellation is observed while collecting the source and
	// between swarm sweeps, not inside one swarm's sweep.
	EngineBatch
	// EngineParallel is EngineBatch on a worker pool (swarms processed
	// concurrently, merged deterministically).
	EngineParallel
)

// ParseEngineMode inverts EngineMode.String: it resolves the mode names
// accepted by the CLI's -engine flag and the daemon's engine query
// parameter.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "streaming":
		return EngineStreaming, nil
	case "batch":
		return EngineBatch, nil
	case "parallel":
		return EngineParallel, nil
	default:
		return 0, fmt.Errorf("unknown engine mode %q (want streaming, batch or parallel)", s)
	}
}

// String returns the mode's short name.
func (m EngineMode) String() string {
	switch m {
	case EngineStreaming:
		return "streaming"
	case EngineBatch:
		return "batch"
	case EngineParallel:
		return "parallel"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// replayOptions collects the Option knobs; the zero value plus defaults
// reproduces DefaultStreamConfig(1.0) on the streaming engine.
type replayOptions struct {
	cfg   engine.Config
	mode  EngineMode
	sinks []Sink
	// stats is the optional instrumentation set WithInstrumentation
	// attaches; the engine receives it through cfg.Stats as well.
	stats *obs.ReplayMetrics
}

// Option configures a Replay call.
type Option func(*replayOptions)

// WithSimConfig replaces the simulation configuration (policy, swarm
// formation, upload model, quantization, seeding, participation, user
// tracking) shared by every engine mode.
func WithSimConfig(cfg SimConfig) Option {
	return func(o *replayOptions) { o.cfg.Sim = cfg }
}

// WithUploadRatio is shorthand for WithSimConfig(DefaultSimConfig(r)):
// the paper's configuration at upload-to-bitrate ratio q/β = r.
func WithUploadRatio(r float64) Option {
	return func(o *replayOptions) { o.cfg.Sim = sim.DefaultConfig(r) }
}

// WithEngine selects the engine mode. The default is EngineStreaming.
func WithEngine(mode EngineMode) Option {
	return func(o *replayOptions) { o.mode = mode }
}

// WithWorkers sets the worker count: shard workers for the streaming
// engine, pool size for EngineParallel. Zero means the engine default.
func WithWorkers(n int) Option {
	return func(o *replayOptions) { o.cfg.Workers = n }
}

// WithWindow sets the reporting window in seconds for streaming replays
// (default 3600). Batch replays emit a single final snapshot regardless.
func WithWindow(sec int64) Option {
	return func(o *replayOptions) { o.cfg.WindowSec = sec }
}

// WithSnapshotBuffer bounds the Job's snapshot channel (default 4): a
// consumer lagging further than this stalls a streaming pipeline by
// design, propagating backpressure to the source.
func WithSnapshotBuffer(n int) Option {
	return func(o *replayOptions) { o.cfg.SnapshotBuffer = n }
}

// WithSink attaches a Sink to the job. Sinks observe every snapshot
// before it is forwarded to Job.Snapshots, and the final outcome. Sinks
// are part of the pipeline, not a lossy tap: when the snapshot channel
// backs up, sink delivery pauses with it, so consume the job through
// Result (which drains internally) or by ranging Snapshots. May be
// repeated.
func WithSink(s Sink) Option {
	return func(o *replayOptions) { o.sinks = append(o.sinks, s) }
}

// Job is a replay in progress, started by Replay.
//
// Snapshots delivers windowed progress; consumers that fall behind by
// more than the snapshot buffer stall a streaming pipeline by design
// (backpressure). Consumers that only want the final outcome call
// Result, which drains internally so attached Sinks still observe every
// snapshot; a job that is neither drained nor cancelled stalls once the
// buffer fills. Cancel (or cancelling the parent context) releases
// every pipeline goroutine regardless of consumer behaviour.
type Job struct {
	meta   TraceMeta
	mode   EngineMode
	cancel context.CancelFunc

	snapshots chan StreamSnapshot
	done      chan struct{}

	mu     sync.Mutex
	result *SimResult
	err    error
}

// Meta returns the metadata of the trace being replayed.
func (j *Job) Meta() TraceMeta { return j.meta }

// Mode returns the engine mode the job runs on.
func (j *Job) Mode() EngineMode { return j.mode }

// Snapshots returns the windowed progress channel. It is closed after
// the final snapshot — or early, when the job is cancelled or fails.
func (j *Job) Snapshots() <-chan StreamSnapshot { return j.snapshots }

// Done returns a channel closed when the job has fully unwound and
// Result/Err are final.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the replay: the pipeline unwinds promptly, Snapshots
// closes, and Result reports context.Canceled. Safe to call repeatedly
// and after completion.
func (j *Job) Cancel() { j.cancel() }

// Err returns the job's terminal error once it has finished — nil on
// success, context.Canceled after Cancel — and nil while it still runs.
func (j *Job) Err() error {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	default:
		return nil
	}
}

// Result blocks until the replay finishes and returns the complete
// outcome. Remaining snapshots are drained internally, so Result may be
// called with or without a concurrent Snapshots consumer.
func (j *Job) Result() (*SimResult, error) {
	for range j.snapshots {
	}
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// finish records the terminal outcome, notifies the sinks and releases
// the job. Called exactly once, as the caller's last act before its
// defers close j.snapshots and then j.done — so Sink.Finish runs while
// Snapshots is still open, and must not try to drain it. Cancelling the
// derived context here unregisters the finished job from its parent, so
// a long-lived parent context does not accumulate completed children.
func (j *Job) finish(sinks []Sink, res *SimResult, err error) {
	defer j.cancel()
	// Every sink observes the replay's own outcome; a sink failing in
	// Finish must not change what the remaining sinks see, it only
	// fails an otherwise-successful job afterwards.
	var sinkErr error
	for _, s := range sinks {
		if ferr := s.Finish(res, err); ferr != nil && sinkErr == nil {
			sinkErr = ferr
		}
	}
	if err == nil && sinkErr != nil {
		res, err = nil, sinkErr
	}
	j.mu.Lock()
	j.result, j.err = res, err
	j.mu.Unlock()
}

// Replay starts one replay of src under ctx and returns the running Job.
//
// Replay is the single entry point every other replay API is a veneer
// over: the engine mode (streaming by default; batch and parallel for
// the in-memory reference paths), the reporting window, worker count and
// attached sinks are all Options, and the three modes produce per-swarm
// results bit-for-bit identical to one another and to the deprecated
// Simulate/SimulateParallel/Stream entry points. Configuration and
// metadata are validated synchronously; a ctx already cancelled returns
// ctx.Err() immediately.
func Replay(ctx context.Context, src Source, opts ...Option) (*Job, error) {
	o := &replayOptions{cfg: engine.DefaultConfig(1.0)}
	for _, opt := range opts {
		opt(o)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fill defaulted sim fields before validating, the way every engine
	// does internally, so a sparse custom SimConfig is accepted here too.
	o.cfg.Sim = o.cfg.Sim.WithDefaults()
	if err := o.cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	ctx, cancel := context.WithCancel(ctx)
	buffer := o.cfg.SnapshotBuffer
	if buffer <= 0 {
		buffer = 4
	}
	j := &Job{
		meta:      meta,
		mode:      o.mode,
		cancel:    cancel,
		snapshots: make(chan StreamSnapshot, buffer),
		done:      make(chan struct{}),
	}

	switch o.mode {
	case EngineStreaming:
		if o.stats != nil {
			// Wrap after Meta was captured: the wrapper forwards Meta, and
			// the engine re-reads it through the wrapper harmlessly.
			src = instrumentSource(src, o.stats)
		}
		run, err := engine.StreamContext(ctx, src, o.cfg)
		if err != nil {
			cancel()
			return nil, err
		}
		go j.pumpStream(ctx, run, o.sinks, o.stats)
	case EngineBatch, EngineParallel:
		go j.runBatch(ctx, src, o)
	default:
		cancel()
		return nil, fmt.Errorf("replay: unknown engine mode %d", int(o.mode))
	}
	return j, nil
}

// pumpStream relays engine snapshots to the sinks and the Job channel,
// then settles the outcome. It always drains the engine run, so the
// pipeline can never stall on the Job consumer alone — only deliberate
// backpressure (forwarding to an undrained channel under a live context)
// blocks, and cancellation breaks exactly that wait.
func (j *Job) pumpStream(ctx context.Context, run *engine.Run, sinks []Sink, stats *obs.ReplayMetrics) {
	defer close(j.done)
	defer close(j.snapshots)

	var sinkErr error
	forward := true
	for snap := range run.Snapshots() {
		var emitStart time.Time
		if stats != nil {
			emitStart = time.Now()
		}
		for _, s := range sinks {
			if err := s.Snapshot(snap); err != nil && sinkErr == nil {
				if ctx.Err() == nil {
					// A failing sink aborts the replay; remember its error
					// since the engine will only report context.Canceled.
					sinkErr = fmt.Errorf("replay: sink: %w", err)
					j.cancel()
				}
				// A sink failing after cancellation (e.g. a response
				// writer broken by the same disconnect that cancelled
				// the job) is secondary: the run reports ctx.Err().
			}
		}
		if forward {
			select {
			case j.snapshots <- snap:
			case <-ctx.Done():
				forward = false
			}
		}
		if stats != nil {
			// Emit time covers sink delivery and the (possibly
			// backpressured) job-channel hand-off: the consumer-side stall
			// an operator is usually hunting.
			stats.SinkEmitSeconds.Add(time.Since(emitStart).Seconds())
			stats.WindowsSettled.Inc()
		}
	}
	res, err := run.Result()
	if sinkErr != nil {
		res, err = nil, sinkErr
	}
	j.finish(sinks, res, err)
}

// runBatch materialises the source and runs the in-memory simulator —
// serial or parallel — emitting one final snapshot so sinks and channel
// consumers see a uniform shape across modes.
func (j *Job) runBatch(ctx context.Context, src Source, o *replayOptions) {
	defer close(j.done)
	defer close(j.snapshots)

	// The batch path times its stages wholesale instead of wrapping the
	// source: materialise is the read stage, the simulator run is the
	// settle stage, and the single snapshot fan-out below is the emit
	// stage. Keeping the source unwrapped preserves TraceSource's
	// in-memory shortcut.
	readStart := time.Now()
	tr, err := materialize(ctx, src, j.meta)
	if o.stats != nil {
		o.stats.SourceReadSeconds.Add(time.Since(readStart).Seconds())
	}
	if err != nil {
		j.finish(o.sinks, nil, err)
		return
	}
	if o.stats != nil {
		o.stats.SourceSessions.Add(float64(len(tr.Sessions)))
	}
	settleStart := time.Now()
	var res *SimResult
	if o.mode == EngineParallel {
		// Zero means the engine default, as WithWorkers documents (and
		// as the streaming engine resolves it); per-swarm results are
		// identical at any worker count, so defaulting is safe.
		workers := o.cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		res, err = sim.RunParallelContext(ctx, tr, o.cfg.Sim, workers)
	} else {
		res, err = sim.RunContext(ctx, tr, o.cfg.Sim)
	}
	if o.stats != nil {
		o.stats.SettleSeconds.Add(time.Since(settleStart).Seconds())
	}
	if err == nil && ctx.Err() != nil {
		res, err = nil, ctx.Err()
	}
	if err != nil {
		j.finish(o.sinks, nil, err)
		return
	}

	snap := StreamSnapshot{
		FromSec:      0,
		ToSec:        j.meta.HorizonSec,
		SessionsSeen: int64(len(tr.Sessions)),
		Swarms:       len(res.Swarms),
		Delta:        res.Total,
		Cumulative:   res.Total,
		Final:        true,
	}
	emitStart := time.Now()
	var sinkErr error
	for _, s := range o.sinks {
		if err := s.Snapshot(snap); err != nil && sinkErr == nil {
			sinkErr = fmt.Errorf("replay: sink: %w", err)
		}
	}
	if sinkErr != nil {
		j.finish(o.sinks, nil, sinkErr)
		return
	}
	// The snapshot buffer is at least one deep, so this send never
	// blocks on an absent consumer.
	select {
	case j.snapshots <- snap:
	case <-ctx.Done():
	}
	if o.stats != nil {
		o.stats.SinkEmitSeconds.Add(time.Since(emitStart).Seconds())
		o.stats.WindowsSettled.Inc()
	}
	j.finish(o.sinks, res, nil)
}

// materialize collects a Source into an in-memory trace for the batch
// engines, checking ctx between sessions. A TraceSource short-circuits
// to its backing trace.
func materialize(ctx context.Context, src Source, meta TraceMeta) (*Trace, error) {
	if ms, ok := src.(*memSource); ok {
		return ms.tr, nil
	}
	tr := &Trace{
		Name:       meta.Name,
		Epoch:      meta.Epoch,
		HorizonSec: meta.HorizonSec,
		NumUsers:   meta.NumUsers,
		NumContent: meta.NumContent,
		NumISPs:    meta.NumISPs,
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := src.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			// As in the streaming engine: a cancellation that surfaces as
			// a source read error is reported as the cancellation.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("replay: read source: %w", err)
		}
		tr.Sessions = append(tr.Sessions, s)
	}
}

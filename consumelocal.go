// Package consumelocal is a reproduction of Raman, Karamshuk, Sastry,
// Secker and Chandaria, "Consume Local: Towards Carbon Free Content
// Delivery" (IEEE ICDCS 2018) as a reusable Go library.
//
// The paper shows that peer-assisted (hybrid) CDNs do not just save
// traffic: matching users with *nearby* peers shortens delivery paths and
// cuts the end-to-end carbon footprint of video streaming by 24–48%, and
// that transferring the CDN's savings to users as carbon credits can make
// most users carbon positive.
//
// The library exposes four layers:
//
//   - The closed-form analytical model (Model): energy savings S(c),
//     traffic offload G, and carbon credit transfer CCT as functions of
//     swarm capacity, upload/bitrate ratio, energy parameters (Table IV)
//     and ISP topology (Table III).
//   - The trace-driven simulator (Simulate): replays a session trace,
//     matches peers locality-first inside ISP metropolitan trees, and
//     accounts every delivered bit by source and network layer.
//   - The streaming replay engine (Stream): the simulator's out-of-core
//     twin — consumes a trace as an arrival-ordered event stream, keeps
//     only the active-session working set in memory, and reports live
//     windowed tallies while producing the same result as Simulate. It
//     also powers the long-running consumelocald service.
//   - The experiment harnesses (package internal/experiments, reachable
//     through the consumelocal CLI and the root benchmarks): regenerate
//     every table and figure of the paper's evaluation.
//
// # Quick start
//
//	model, err := consumelocal.NewModel(consumelocal.Valancius(),
//	    consumelocal.DefaultTopology().Probabilities())
//	if err != nil { ... }
//	s := model.Savings(10, 1.0) // savings of a 10-user swarm at q/β = 1
//
// For trace-driven studies, generate a synthetic workload (or load your
// own CSV) and run the simulator:
//
//	tr, err := consumelocal.GenerateTrace(consumelocal.DefaultTraceConfig(0.01))
//	res, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
//	report := consumelocal.EvaluateEnergy(res.Total, consumelocal.Baliga())
package consumelocal

import (
	"io"

	"consumelocal/internal/carbon"
	"consumelocal/internal/cdn"
	"consumelocal/internal/core"
	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/sim"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Re-exported core types. The aliases make the library usable without
// importing internal packages, which the Go toolchain would reject outside
// this module anyway.
type (
	// EnergyParams is one per-bit energy parameter set (paper Table IV).
	EnergyParams = energy.Params
	// Layer identifies a P2P localisation layer of the metro tree.
	Layer = energy.Layer
	// Model is the closed-form savings model (paper Eq. 12 / 13).
	Model = core.Model
	// SavingsBreakdown bundles the Fig. 5 curves at one capacity.
	SavingsBreakdown = core.SavingsBreakdown
	// Topology is an ISP metropolitan tree (paper Fig. 1).
	Topology = topology.Tree
	// TopologyProbabilities are per-layer localisation probabilities
	// (paper Table III).
	TopologyProbabilities = topology.Probabilities
	// Trace is a session trace (the simulator's workload).
	Trace = trace.Trace
	// Session is one playback session of a trace.
	Session = trace.Session
	// TraceConfig parameterises the synthetic trace generator.
	TraceConfig = trace.GeneratorConfig
	// TraceSummary is the Table I row of a trace.
	TraceSummary = trace.Summary
	// BitrateClass buckets sessions by streaming bitrate.
	BitrateClass = trace.BitrateClass
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a simulation run.
	SimResult = sim.Result
	// Tally is a delivered-traffic accounting unit.
	Tally = sim.Tally
	// EnergyReport prices a tally under one parameter set.
	EnergyReport = sim.EnergyReport
	// UserStats is a per-user byte ledger.
	UserStats = sim.UserStats
	// CarbonDistribution summarises per-user CCT (paper Fig. 6).
	CarbonDistribution = carbon.Distribution
	// TraceMeta is the trace-level metadata a streaming consumer has in
	// hand before sessions flow past it.
	TraceMeta = trace.Meta
	// TraceScanner iterates a CSV trace one session at a time without
	// materialising the full session list.
	TraceScanner = trace.Scanner
	// StreamConfig parameterises a streaming (out-of-core) replay.
	StreamConfig = engine.Config
	// StreamSnapshot is one windowed progress report of a streaming
	// replay.
	StreamSnapshot = engine.Snapshot
	// StreamRun is a streaming replay in progress.
	StreamRun = engine.Run
	// StreamSource yields sessions in start order for the streaming
	// engine; *TraceScanner satisfies it.
	StreamSource = engine.Source
)

// Bitrate classes of the synthetic workload.
const (
	// BitrateMobile is the low-bitrate mobile representation (800 kb/s).
	BitrateMobile = trace.BitrateMobile
	// BitrateSD is the most common catch-up TV bitrate (1.5 Mb/s).
	BitrateSD = trace.BitrateSD
	// BitrateHD is the large-screen representation (3 Mb/s).
	BitrateHD = trace.BitrateHD
)

// Valancius returns the Valancius et al. energy parameters of Table IV.
func Valancius() EnergyParams { return energy.Valancius() }

// Baliga returns the Baliga et al. energy parameters of Table IV.
func Baliga() EnergyParams { return energy.Baliga() }

// BothEnergyModels returns the two published parameter sets in paper
// order.
func BothEnergyModels() []EnergyParams { return energy.BothModels() }

// DefaultTopology returns the London metropolitan tree of Table III
// (345 exchange points, 9 PoPs, 1 core router).
func DefaultTopology() *Topology { return topology.DefaultLondon() }

// NewTopology builds a custom metropolitan tree.
func NewTopology(name string, exchanges, pops int) (*Topology, error) {
	return topology.New(name, exchanges, pops)
}

// NewModel builds the closed-form savings model from energy parameters
// and topology localisation probabilities.
func NewModel(params EnergyParams, probs TopologyProbabilities) (*Model, error) {
	return core.New(params, probs)
}

// DefaultTraceConfig returns a synthetic-trace configuration scaled
// relative to the paper's London dataset (scale 1.0 ≈ 3.3M users, 23.5M
// sessions, 30 days).
func DefaultTraceConfig(scale float64) TraceConfig {
	return trace.DefaultGeneratorConfig(scale)
}

// GenerateTrace builds a deterministic synthetic trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ReadTraceCSV loads a trace previously written with WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV serialises a trace as CSV with a metadata header.
func WriteTraceCSV(t *Trace, w io.Writer) error { return t.WriteCSV(w) }

// DefaultSimConfig returns the paper's simulation configuration
// (ISP-friendly bitrate-split swarms, locality-first matching, the
// (L−1)·q peer budget) at the given upload-to-bitrate ratio q/β.
func DefaultSimConfig(uploadRatio float64) SimConfig {
	return sim.DefaultConfig(uploadRatio)
}

// Simulate replays a trace under the configuration and returns the
// delivered-traffic accounting.
func Simulate(t *Trace, cfg SimConfig) (*SimResult, error) { return sim.Run(t, cfg) }

// SimulateParallel is Simulate on a worker pool: swarms are processed
// concurrently and merged deterministically. Per-swarm statistics are
// bit-for-bit identical to Simulate; cross-swarm aggregates agree within
// floating-point associativity.
func SimulateParallel(t *Trace, cfg SimConfig, workers int) (*SimResult, error) {
	return sim.RunParallel(t, cfg, workers)
}

// NewTraceScanner opens a streaming iterator over a CSV trace: the
// out-of-core counterpart of ReadTraceCSV.
func NewTraceScanner(r io.Reader) (*TraceScanner, error) { return trace.NewScanner(r) }

// DefaultStreamConfig returns the paper's simulation configuration at
// the given q/β ratio with hourly reporting windows, for streaming
// replay.
func DefaultStreamConfig(uploadRatio float64) StreamConfig {
	return engine.DefaultConfig(uploadRatio)
}

// Stream replays a CSV trace from r out-of-core: sessions are consumed
// as a stream, simulated incrementally, and progress is reported as
// windowed snapshots on StreamRun.Snapshots. The final result — equal to
// Simulate on the same trace, bit-for-bit per swarm — is available from
// StreamRun.Result. Consumers must drain Snapshots (or call Result,
// which drains internally); the bounded pipeline otherwise stalls by
// design, propagating backpressure to r.
func Stream(r io.Reader, cfg StreamConfig) (*StreamRun, error) {
	sc, err := trace.NewScanner(r)
	if err != nil {
		return nil, err
	}
	return engine.Stream(sc, cfg)
}

// StreamTrace replays an in-memory trace through the streaming engine —
// useful for cross-checking against Simulate and for tests.
func StreamTrace(t *Trace, cfg StreamConfig) (*StreamRun, error) {
	return engine.Stream(engine.TraceSource(t), cfg)
}

// EvaluateEnergy prices a tally under the given energy parameters,
// returning baseline (pure CDN) and hybrid energy plus the fractional
// savings (paper Eq. 1).
func EvaluateEnergy(t Tally, params EnergyParams) EnergyReport {
	return sim.Evaluate(t, params)
}

// CarbonCredits computes the per-user carbon credit transfer distribution
// of a simulation run (paper Fig. 6). The simulation must have been run
// with user tracking enabled (the default).
func CarbonCredits(res *SimResult, params EnergyParams) CarbonDistribution {
	return carbon.Distribute(res.Users, params)
}

// ProvisioningReport quantifies the CDN capacity a deployment must
// provision for peak load, with and without peer assistance.
type ProvisioningReport = cdn.ProvisioningReport

// CDNProvisioning computes the peak-provisioning report of a simulation
// run: how much server capacity peer assistance saves at the busiest
// time, the operator benefit the paper's introduction motivates.
func CDNProvisioning(res *SimResult) (ProvisioningReport, error) {
	return cdn.Provisioning(res)
}

// Package consumelocal is a reproduction of Raman, Karamshuk, Sastry,
// Secker and Chandaria, "Consume Local: Towards Carbon Free Content
// Delivery" (IEEE ICDCS 2018) as a reusable Go library.
//
// The paper shows that peer-assisted (hybrid) CDNs do not just save
// traffic: matching users with *nearby* peers shortens delivery paths and
// cuts the end-to-end carbon footprint of video streaming by 24–48%, and
// that transferring the CDN's savings to users as carbon credits can make
// most users carbon positive.
//
// The public API has three layers (see README.md for the finer-grained
// internal package layering):
//
//   - The closed-form analytical model (Model): energy savings S(c),
//     traffic offload G, and carbon credit transfer CCT as functions of
//     swarm capacity, upload/bitrate ratio, energy parameters (Table IV)
//     and ISP topology (Table III).
//   - The unified replay pipeline (Replay): one context-aware
//     source→engine→sink API for every trace-driven study. A Source
//     yields sessions in start order (an in-memory trace, a streamed
//     CSV, the synthetic generator run live, or an IngestSource fed
//     session by session as a broadcast happens, with watermark-driven
//     window settlement); Options pick the
//     engine (batch, parallel, or the out-of-core streaming engine),
//     worker count, reporting window and attached Sinks (NDJSON
//     snapshots, TSV tallies, Prometheus-style metrics); the returned
//     Job reports windowed progress, supports cancellation, and
//     produces per-swarm results bit-for-bit identical across all
//     three engines. It also powers the long-running consumelocald
//     job-manager service.
//   - The experiment harnesses (package internal/experiments, reachable
//     through the consumelocal CLI and the root benchmarks): regenerate
//     every table and figure of the paper's evaluation.
//
// # Quick start
//
//	model, err := consumelocal.NewModel(consumelocal.Valancius(),
//	    consumelocal.DefaultTopology().Probabilities())
//	if err != nil { ... }
//	s := model.Savings(10, 1.0) // savings of a 10-user swarm at q/β = 1
//
// For trace-driven studies, build a Source and replay it:
//
//	src, err := consumelocal.GeneratorSource(consumelocal.DefaultTraceConfig(0.01))
//	job, err := consumelocal.Replay(ctx, src,
//	    consumelocal.WithUploadRatio(1.0),
//	    consumelocal.WithWindow(3600))
//	for snap := range job.Snapshots() {
//	    // live windowed progress; job.Cancel() aborts mid-stream
//	}
//	res, err := job.Result()
//	report := consumelocal.EvaluateEnergy(res.Total, consumelocal.Baliga())
//
// The pre-Replay entry points — Simulate, SimulateParallel, Stream and
// StreamTrace — remain as thin deprecated wrappers.
package consumelocal

import (
	"context"
	"io"

	"consumelocal/internal/carbon"
	"consumelocal/internal/cdn"
	"consumelocal/internal/core"
	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/sim"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Re-exported core types. The aliases make the library usable without
// importing internal packages, which the Go toolchain would reject outside
// this module anyway.
type (
	// EnergyParams is one per-bit energy parameter set (paper Table IV).
	EnergyParams = energy.Params
	// Layer identifies a P2P localisation layer of the metro tree.
	Layer = energy.Layer
	// Model is the closed-form savings model (paper Eq. 12 / 13).
	Model = core.Model
	// SavingsBreakdown bundles the Fig. 5 curves at one capacity.
	SavingsBreakdown = core.SavingsBreakdown
	// Topology is an ISP metropolitan tree (paper Fig. 1).
	Topology = topology.Tree
	// TopologyProbabilities are per-layer localisation probabilities
	// (paper Table III).
	TopologyProbabilities = topology.Probabilities
	// Trace is a session trace (the simulator's workload).
	Trace = trace.Trace
	// Session is one playback session of a trace.
	Session = trace.Session
	// TraceConfig parameterises the synthetic trace generator.
	TraceConfig = trace.GeneratorConfig
	// LiveTraceConfig parameterises the live-broadcast workload
	// generator (the paper's future-work live-streaming scenario).
	LiveTraceConfig = trace.LiveConfig
	// LiveEvent is one scheduled broadcast in a LiveTraceConfig.
	LiveEvent = trace.LiveEvent
	// TraceSummary is the Table I row of a trace.
	TraceSummary = trace.Summary
	// BitrateClass buckets sessions by streaming bitrate.
	BitrateClass = trace.BitrateClass
	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a simulation run.
	SimResult = sim.Result
	// Tally is a delivered-traffic accounting unit.
	Tally = sim.Tally
	// EnergyReport prices a tally under one parameter set.
	EnergyReport = sim.EnergyReport
	// UserStats is a per-user byte ledger.
	UserStats = sim.UserStats
	// CarbonDistribution summarises per-user CCT (paper Fig. 6).
	CarbonDistribution = carbon.Distribution
	// TraceMeta is the trace-level metadata a streaming consumer has in
	// hand before sessions flow past it.
	TraceMeta = trace.Meta
	// TraceScanner iterates a CSV trace one session at a time without
	// materialising the full session list.
	TraceScanner = trace.Scanner
	// StreamConfig parameterises a streaming (out-of-core) replay.
	StreamConfig = engine.Config
	// StreamSnapshot is one windowed progress report of a streaming
	// replay.
	StreamSnapshot = engine.Snapshot
	// StreamRun is a streaming replay in progress.
	//
	// Deprecated: replays started through Replay are tracked by Job,
	// which adds cancellation and sink support.
	StreamRun = engine.Run
	// StreamSource yields sessions in start order for the streaming
	// engine; *TraceScanner satisfies it.
	//
	// Deprecated: use the equivalent Source alias.
	StreamSource = engine.Source
)

// Bitrate classes of the synthetic workload.
const (
	// BitrateMobile is the low-bitrate mobile representation (800 kb/s).
	BitrateMobile = trace.BitrateMobile
	// BitrateSD is the most common catch-up TV bitrate (1.5 Mb/s).
	BitrateSD = trace.BitrateSD
	// BitrateHD is the large-screen representation (3 Mb/s).
	BitrateHD = trace.BitrateHD
)

// Valancius returns the Valancius et al. energy parameters of Table IV.
func Valancius() EnergyParams { return energy.Valancius() }

// Baliga returns the Baliga et al. energy parameters of Table IV.
func Baliga() EnergyParams { return energy.Baliga() }

// BothEnergyModels returns the two published parameter sets in paper
// order.
func BothEnergyModels() []EnergyParams { return energy.BothModels() }

// DefaultTopology returns the London metropolitan tree of Table III
// (345 exchange points, 9 PoPs, 1 core router).
func DefaultTopology() *Topology { return topology.DefaultLondon() }

// NewTopology builds a custom metropolitan tree.
func NewTopology(name string, exchanges, pops int) (*Topology, error) {
	return topology.New(name, exchanges, pops)
}

// NewModel builds the closed-form savings model from energy parameters
// and topology localisation probabilities.
func NewModel(params EnergyParams, probs TopologyProbabilities) (*Model, error) {
	return core.New(params, probs)
}

// DefaultTraceConfig returns a synthetic-trace configuration scaled
// relative to the paper's London dataset (scale 1.0 ≈ 3.3M users, 23.5M
// sessions, 30 days).
func DefaultTraceConfig(scale float64) TraceConfig {
	return trace.DefaultGeneratorConfig(scale)
}

// GenerateTrace builds a deterministic synthetic trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// DefaultLiveTraceConfig returns an evening of live television — three
// broadcasts of growing audience — scaled like DefaultTraceConfig.
func DefaultLiveTraceConfig(scale float64) LiveTraceConfig {
	return trace.DefaultLiveConfig(scale)
}

// GenerateLiveTrace builds a deterministic live-broadcast trace: the
// materialised form of the schedule a live ingest replays as it happens.
func GenerateLiveTrace(cfg LiveTraceConfig) (*Trace, error) { return trace.GenerateLive(cfg) }

// ReadTraceCSV loads a trace previously written with WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV serialises a trace as CSV with a metadata header.
func WriteTraceCSV(t *Trace, w io.Writer) error { return t.WriteCSV(w) }

// DefaultSimConfig returns the paper's simulation configuration
// (ISP-friendly bitrate-split swarms, locality-first matching, the
// (L−1)·q peer budget) at the given upload-to-bitrate ratio q/β.
func DefaultSimConfig(uploadRatio float64) SimConfig {
	return sim.DefaultConfig(uploadRatio)
}

// Simulate replays a trace under the configuration and returns the
// delivered-traffic accounting.
//
// Deprecated: Simulate is a thin wrapper over Replay with EngineBatch;
// use Replay directly to gain cancellation, sinks and windowed
// progress. Results are bit-for-bit identical.
func Simulate(t *Trace, cfg SimConfig) (*SimResult, error) {
	job, err := Replay(context.Background(), TraceSource(t),
		WithSimConfig(cfg), WithEngine(EngineBatch))
	if err != nil {
		return nil, err
	}
	return job.Result()
}

// SimulateParallel is Simulate on a worker pool: swarms are processed
// concurrently and merged deterministically. Per-swarm statistics are
// bit-for-bit identical to Simulate; cross-swarm aggregates agree within
// floating-point associativity.
//
// Deprecated: SimulateParallel is a thin wrapper over Replay with
// EngineParallel and WithWorkers; use Replay directly.
func SimulateParallel(t *Trace, cfg SimConfig, workers int) (*SimResult, error) {
	job, err := Replay(context.Background(), TraceSource(t),
		WithSimConfig(cfg), WithEngine(EngineParallel), WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	return job.Result()
}

// NewTraceScanner opens a streaming iterator over a CSV trace: the
// out-of-core counterpart of ReadTraceCSV.
func NewTraceScanner(r io.Reader) (*TraceScanner, error) { return trace.NewScanner(r) }

// DefaultStreamConfig returns the paper's simulation configuration at
// the given q/β ratio with hourly reporting windows, for streaming
// replay.
func DefaultStreamConfig(uploadRatio float64) StreamConfig {
	return engine.DefaultConfig(uploadRatio)
}

// Stream replays a CSV trace from r out-of-core: sessions are consumed
// as a stream, simulated incrementally, and progress is reported as
// windowed snapshots on StreamRun.Snapshots. The final result — equal to
// Simulate on the same trace, bit-for-bit per swarm — is available from
// StreamRun.Result. Consumers must drain Snapshots (or call Result,
// which drains internally); the bounded pipeline otherwise stalls by
// design, propagating backpressure to r.
//
// Deprecated: use Replay with CSVSource — the same streaming engine
// with cancellation (an abandoned Stream run stalls its pipeline
// goroutines forever; a cancelled Replay job releases them).
func Stream(r io.Reader, cfg StreamConfig) (*StreamRun, error) {
	sc, err := trace.NewScanner(r)
	if err != nil {
		return nil, err
	}
	return engine.Stream(sc, cfg)
}

// StreamTrace replays an in-memory trace through the streaming engine —
// useful for cross-checking against Simulate and for tests.
//
// Deprecated: use Replay with TraceSource.
func StreamTrace(t *Trace, cfg StreamConfig) (*StreamRun, error) {
	return engine.Stream(engine.TraceSource(t), cfg)
}

// EvaluateEnergy prices a tally under the given energy parameters,
// returning baseline (pure CDN) and hybrid energy plus the fractional
// savings (paper Eq. 1).
func EvaluateEnergy(t Tally, params EnergyParams) EnergyReport {
	return sim.Evaluate(t, params)
}

// CarbonCredits computes the per-user carbon credit transfer distribution
// of a simulation run (paper Fig. 6). The simulation must have been run
// with user tracking enabled (the default).
func CarbonCredits(res *SimResult, params EnergyParams) CarbonDistribution {
	return carbon.Distribute(res.Users, params)
}

// ProvisioningReport quantifies the CDN capacity a deployment must
// provision for peak load, with and without peer assistance.
type ProvisioningReport = cdn.ProvisioningReport

// CDNProvisioning computes the peak-provisioning report of a simulation
// run: how much server capacity peer assistance saves at the busiest
// time, the operator benefit the paper's introduction motivates.
func CDNProvisioning(res *SimResult) (ProvisioningReport, error) {
	return cdn.Provisioning(res)
}

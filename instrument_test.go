package consumelocal_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"consumelocal"
	"consumelocal/internal/obs"
)

// scrape renders reg and parses it back through the exposition linter,
// so every instrumentation test doubles as a format check.
func scrape(t *testing.T, reg *consumelocal.Metrics) *obs.Exposition {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	return exp
}

// TestInstrumentationStreaming pins the stage accounting on the
// streaming engine: sessions read, windows settled and the three stage
// timers all land in the registry, and per-swarm results are untouched
// by instrumentation.
func TestInstrumentationStreaming(t *testing.T) {
	tr := replayTestTrace(t)
	reg := consumelocal.NewMetrics()
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithWindow(6*3600), consumelocal.WithInstrumentation(reg))
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	for range job.Snapshots() {
		windows++
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	assertSwarmsIdentical(t, "instrumented streaming", res, plain)

	exp := scrape(t, reg)
	if got, _ := exp.Value("consumelocal_replay_source_sessions_total"); got != float64(len(tr.Sessions)) {
		t.Fatalf("sessions total = %g, want %d", got, len(tr.Sessions))
	}
	if got, _ := exp.Value("consumelocal_replay_windows_settled_total"); got != float64(windows) {
		t.Fatalf("windows settled = %g, want %d", got, windows)
	}
	for _, name := range []string{
		"consumelocal_replay_source_read_seconds_total",
		"consumelocal_replay_settle_seconds_total",
		"consumelocal_replay_sink_emit_seconds_total",
	} {
		if v, ok := exp.Value(name); !ok || v < 0 {
			t.Fatalf("stage timer %s = %g (present %v)", name, v, ok)
		}
	}
}

// TestInstrumentationBatch covers the wholesale-timed batch path: the
// source is not wrapped (the in-memory shortcut must survive), yet the
// session count and the single final window are still accounted.
func TestInstrumentationBatch(t *testing.T) {
	tr := replayTestTrace(t)
	reg := consumelocal.NewMetrics()
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithEngine(consumelocal.EngineBatch), consumelocal.WithInstrumentation(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}
	exp := scrape(t, reg)
	if got, _ := exp.Value("consumelocal_replay_source_sessions_total"); got != float64(len(tr.Sessions)) {
		t.Fatalf("sessions total = %g, want %d", got, len(tr.Sessions))
	}
	if got, _ := exp.Value("consumelocal_replay_windows_settled_total"); got != 1 {
		t.Fatalf("windows settled = %g, want 1 (batch emits one final snapshot)", got)
	}
}

// TestIngestInstrumentation drives the backpressure accounting: a
// capacity-1 queue with a blocked producer accumulates stall time, the
// peak and depth gauges mirror the queue, and the watermark lag tracks
// the gap between pushed sessions and the watermark.
func TestIngestInstrumentation(t *testing.T) {
	meta := consumelocal.TraceMeta{
		Name: "backpressure", HorizonSec: 7200, NumUsers: 10, NumContent: 2, NumISPs: 1,
	}
	src, err := consumelocal.NewIngestSource(meta, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := consumelocal.NewMetrics()
	m := obs.NewIngestMetrics(reg)
	src.Instrument(m)

	sess := func(start int64) consumelocal.Session {
		return consumelocal.Session{StartSec: start, DurationSec: 60, Bitrate: consumelocal.BitrateSD}
	}
	if err := src.Push(sess(100)); err != nil {
		t.Fatal(err)
	}
	if src.Pending() != 1 || src.QueuePeak() != 1 {
		t.Fatalf("pending/peak = %d/%d, want 1/1", src.Pending(), src.QueuePeak())
	}
	if got := m.QueueDepth.Value(); got != 1 {
		t.Fatalf("queue depth gauge = %g, want 1", got)
	}

	// Second push blocks on the full queue until the consumer pops.
	pushed := make(chan error, 1)
	go func() { pushed <- src.Push(sess(200)) }()
	time.Sleep(30 * time.Millisecond)
	if _, err := src.NextEvent(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-pushed; err != nil {
		t.Fatal(err)
	}
	if src.Blocked() <= 0 {
		t.Fatalf("Blocked = %v after a full-queue stall, want > 0", src.Blocked())
	}
	if m.PushBlockSeconds.Value() <= 0 {
		t.Fatalf("push block gauge = %g, want > 0", m.PushBlockSeconds.Value())
	}
	// Drain the second session so the capacity-1 queue has room for the
	// watermark marks below.
	if _, err := src.NextEvent(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Newest session starts at 200 against a watermark of 50: lag is
	// trace time, not wall clock.
	if err := src.Advance(50); err != nil {
		t.Fatal(err)
	}
	if got := src.WatermarkLag(); got != 150 {
		t.Fatalf("watermark lag = %d, want 150", got)
	}
	if got := m.WatermarkLagSeconds.Value(); got != 150 {
		t.Fatalf("watermark lag gauge = %g, want 150", got)
	}
	if err := src.Advance(300); err != nil {
		t.Fatal(err)
	}
	if got := src.WatermarkLag(); got != 0 {
		t.Fatalf("watermark lag after catch-up = %d, want 0", got)
	}
	src.Abort(nil)
	if got := m.QueueDepth.Value(); got != 0 {
		t.Fatalf("queue depth after abort = %g, want 0", got)
	}
	if got := m.QueuePeak.Value(); got < 1 {
		t.Fatalf("queue peak after abort = %g, want >= 1", got)
	}
	scrape(t, reg)
}

// TestInstrumentationSharedAcrossJobs is the daemon's usage: two jobs
// record into one ReplayMetrics set via WithReplayMetrics, and the
// stage counters aggregate.
func TestInstrumentationSharedAcrossJobs(t *testing.T) {
	tr := replayTestTrace(t)
	reg := consumelocal.NewMetrics()
	shared := obs.NewStageMetrics(reg)
	for i := 0; i < 2; i++ {
		job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
			consumelocal.WithWindow(12*3600), consumelocal.WithReplayMetrics(shared))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Result(); err != nil {
			t.Fatal(err)
		}
	}
	if got := shared.SourceSessions.Value(); got != float64(2*len(tr.Sessions)) {
		t.Fatalf("shared sessions total = %g, want %d", got, 2*len(tr.Sessions))
	}
}

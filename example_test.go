package consumelocal_test

import (
	"fmt"

	"consumelocal"
)

// ExampleNewModel evaluates the closed-form savings model at the paper's
// headline operating point: a popular content swarm (c = 70 concurrent
// viewers) with upload bandwidth matching the content bitrate.
func ExampleNewModel() {
	model, err := consumelocal.NewModel(consumelocal.Valancius(),
		consumelocal.DefaultTopology().Probabilities())
	if err != nil {
		panic(err)
	}
	fmt.Printf("offload G = %.2f\n", model.Offload(70, 1.0))
	fmt.Printf("savings S = %.2f\n", model.Savings(70, 1.0))
	// Output:
	// offload G = 0.99
	// savings S = 0.46
}

// ExampleModel_CarbonCreditTransfer shows the carbon credit transfer of
// Eq. 13: users start fully carbon negative and become carbon positive
// once enough traffic is offloaded.
func ExampleModel_CarbonCreditTransfer() {
	model, err := consumelocal.NewModel(consumelocal.Baliga(),
		consumelocal.DefaultTopology().Probabilities())
	if err != nil {
		panic(err)
	}
	fmt.Printf("no sharing: %.2f\n", model.CarbonCreditTransfer(0))
	g, _ := model.CarbonNeutralOffload()
	fmt.Printf("neutral at G = %.2f\n", g)
	fmt.Printf("full sharing: %+.2f\n", model.CarbonCreditTransfer(1))
	// Output:
	// no sharing: -1.00
	// neutral at G = 0.46
	// full sharing: +0.58
}

// ExampleSimulate runs the trace-driven simulator on a deterministic
// synthetic workload and prices the outcome under both energy models.
func ExampleSimulate() {
	cfg := consumelocal.DefaultTraceConfig(0.001)
	cfg.Days = 3
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		panic(err)
	}
	res, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		panic(err)
	}
	for _, params := range consumelocal.BothEnergyModels() {
		report := consumelocal.EvaluateEnergy(res.Total, params)
		fmt.Printf("%s saves energy: %v\n", params.Name, report.Savings > 0)
	}
	// Output:
	// valancius saves energy: true
	// baliga saves energy: true
}

package consumelocal_test

import (
	"bytes"
	"math"
	"testing"

	"consumelocal"
)

func TestFacadeAnalyticalPath(t *testing.T) {
	model, err := consumelocal.NewModel(consumelocal.Valancius(),
		consumelocal.DefaultTopology().Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	s := model.Savings(70, 1.0)
	if s < 0.35 || s > 0.50 {
		t.Errorf("popular-swarm savings = %v, want the paper's 35–48%% band", s)
	}
	if g := model.Offload(1, 1); math.Abs(g-math.Exp(-1)) > 1e-12 {
		t.Errorf("offload at c=1 = %v, want e^-1", g)
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	cfg := consumelocal.DefaultTraceConfig(0.001)
	cfg.Days = 5
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through CSV to exercise the IO surface.
	var buf bytes.Buffer
	if err := consumelocal.WriteTraceCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	tr, err = consumelocal.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	res, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.TotalBits <= 0 {
		t.Fatal("no traffic simulated")
	}

	for _, params := range consumelocal.BothEnergyModels() {
		report := consumelocal.EvaluateEnergy(res.Total, params)
		if report.Savings <= 0 || report.Savings >= 1 {
			t.Errorf("%s: system savings = %v, want within (0,1)", params.Name, report.Savings)
		}
		dist := consumelocal.CarbonCredits(res, params)
		if dist.Users == 0 {
			t.Errorf("%s: no users in carbon distribution", params.Name)
		}
	}
}

func TestFacadeStreamingReplay(t *testing.T) {
	cfg := consumelocal.DefaultTraceConfig(0.001)
	cfg.Days = 3
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}

	want, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}

	// Stream the CSV form out-of-core and check it converges to the
	// batch result.
	var buf bytes.Buffer
	if err := consumelocal.WriteTraceCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	streamCfg := consumelocal.DefaultStreamConfig(1.0)
	streamCfg.WindowSec = 6 * 3600
	run, err := consumelocal.Stream(&buf, streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	var snapshots int
	for range run.Snapshots() {
		snapshots++
	}
	got, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	if snapshots < 2 {
		t.Fatalf("expected windowed snapshots, got %d", snapshots)
	}
	if got.Total != want.Total {
		t.Fatalf("streamed total %+v != batch total %+v", got.Total, want.Total)
	}
	if len(got.Swarms) != len(want.Swarms) {
		t.Fatalf("streamed %d swarms, batch %d", len(got.Swarms), len(want.Swarms))
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	topo, err := consumelocal.NewTopology("tiny", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	model, err := consumelocal.NewModel(consumelocal.Baliga(), topo.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	// A 10-exchange metro localises much faster than London's 345.
	london, err := consumelocal.NewModel(consumelocal.Baliga(),
		consumelocal.DefaultTopology().Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	if model.Savings(2, 1) <= london.Savings(2, 1) {
		t.Errorf("tiny metro should save more at small capacity: %v vs %v",
			model.Savings(2, 1), london.Savings(2, 1))
	}
}

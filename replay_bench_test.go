// Benchmarks of the unified Replay API: the same 14-day workload driven
// through the batch, parallel and streaming engines, with and without an
// attached metrics sink, so the perf trajectory captures API-layer
// overhead (job plumbing, snapshot fan-out, sink dispatch) separately
// from the engines themselves (BenchmarkSimulatorMonth, BenchmarkStream).
package consumelocal_test

import (
	"context"
	"testing"
	"time"

	"consumelocal"
)

// benchReplayTrace builds the shared 14-day workload once.
func benchReplayTrace(b *testing.B) *consumelocal.Trace {
	b.Helper()
	cfg := consumelocal.DefaultTraceConfig(0.002)
	cfg.Days = 14
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// benchmarkReplay runs one Replay configuration b.N times and reports
// sessions/s throughput.
func benchmarkReplay(b *testing.B, tr *consumelocal.Trace, opts ...consumelocal.Option) {
	b.Helper()
	simCfg := consumelocal.DefaultSimConfig(1)
	simCfg.TrackUsers = false
	opts = append([]consumelocal.Option{
		consumelocal.WithSimConfig(simCfg),
		consumelocal.WithWindow(24 * 3600),
		consumelocal.WithWorkers(4),
	}, opts...)
	b.ResetTimer()
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr), opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := job.Result(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
	}
	b.ReportMetric(float64(len(tr.Sessions))/1000, "ksessions")
	b.ReportMetric(float64(len(tr.Sessions)*b.N)/elapsed.Seconds(), "sessions/s")
}

func BenchmarkReplayBatch(b *testing.B) {
	benchmarkReplay(b, benchReplayTrace(b), consumelocal.WithEngine(consumelocal.EngineBatch))
}

func BenchmarkReplayParallel(b *testing.B) {
	benchmarkReplay(b, benchReplayTrace(b), consumelocal.WithEngine(consumelocal.EngineParallel))
}

func BenchmarkReplayStreaming(b *testing.B) {
	benchmarkReplay(b, benchReplayTrace(b), consumelocal.WithEngine(consumelocal.EngineStreaming))
}

func BenchmarkReplayStreamingMetricsSink(b *testing.B) {
	benchmarkReplay(b, benchReplayTrace(b),
		consumelocal.WithEngine(consumelocal.EngineStreaming),
		consumelocal.WithSink(consumelocal.NewMetricsSink()))
}

// BenchmarkReplayGeneratorSource streams the synthetic generator live
// through the engine: generation and replay overlap, so this is the
// end-to-end cost of a no-trace-file experiment.
func BenchmarkReplayGeneratorSource(b *testing.B) {
	cfg := consumelocal.DefaultTraceConfig(0.002)
	cfg.Days = 14
	simCfg := consumelocal.DefaultSimConfig(1)
	simCfg.TrackUsers = false
	b.ResetTimer()
	var sessions int64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		src, err := consumelocal.GeneratorSource(cfg)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		job, err := consumelocal.Replay(context.Background(), src,
			consumelocal.WithSimConfig(simCfg),
			consumelocal.WithWindow(24*3600),
			consumelocal.WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Result()
		if err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		sessions = 0
		for _, sw := range res.Swarms {
			sessions += int64(sw.Sessions)
		}
	}
	b.ReportMetric(float64(sessions)/1000, "ksessions")
	b.ReportMetric(float64(sessions*int64(b.N))/elapsed.Seconds(), "sessions/s")
}

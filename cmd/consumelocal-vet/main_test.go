package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a miniature repo with waivers in regular files,
// plus markers in vendor/ and _test.go files that the ledger must skip.
func writeTree(t *testing.T, root string) {
	t.Helper()
	files := map[string]string{
		"a.go": `package a

func f() {
	//consumelocal:ignore ctxsend fixture reason one
	_ = 0
	//consumelocal:ignore hotalloc fixture reason two
	_ = 0
}
`,
		"sub/b.go": `package sub

//consumelocal:ignore ctxsend fixture reason three
func g() {}
`,
		"sub/b_test.go": `package sub

//consumelocal:ignore lockscope must not appear: test files are exempt
func h() {}
`,
		"vendor/dep/c.go": `package dep

//consumelocal:ignore lockscope must not appear: vendor is skipped
func v() {}
`,
		"testdata/fix.go": `package fix

//consumelocal:ignore lockscope must not appear: testdata is skipped
func x() {}
`,
	}
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLedger(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	out := filepath.Join(root, "ledger.out")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if code := printLedger(f); code != 0 {
		t.Fatalf("printLedger exit code = %d, want 0", code)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)

	for _, want := range []string{
		"a.go:4: ctxsend: fixture reason one",
		"a.go:6: hotalloc: fixture reason two",
		"sub/b.go:3: ctxsend: fixture reason three",
		"waiver ledger: 3 waivers (ctxsend=2, hotalloc=1)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("ledger output missing %q\ngot:\n%s", want, got)
		}
	}
	if strings.Contains(got, "lockscope") {
		t.Errorf("ledger leaked waivers from vendor/, testdata/, or _test.go files:\n%s", got)
	}
	lines := strings.Count(strings.TrimSpace(got), "\n") + 1
	if lines != 4 {
		t.Errorf("ledger printed %d lines, want 4 (3 waivers + tally):\n%s", lines, got)
	}
}

func TestLedgerEmptyTree(t *testing.T) {
	root := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	f, err := os.Create(filepath.Join(root, "ledger.out"))
	if err != nil {
		t.Fatal(err)
	}
	if code := printLedger(f); code != 0 {
		t.Fatalf("printLedger exit code = %d, want 0", code)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(root, "ledger.out"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "waiver ledger: 0 waivers") {
		t.Errorf("empty tree ledger = %q, want the zero-waiver line", string(raw))
	}
}

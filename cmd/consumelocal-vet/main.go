// Command consumelocal-vet runs the repo's own go/analysis suite —
// borrowcheck, ctxsend, hotalloc, metricdecl, lockscope — over Go
// packages. It speaks the go vet -vettool protocol, so the same binary
// works three ways:
//
//	consumelocal-vet ./...                 # standalone: re-execs go vet -vettool=itself
//	go vet -vettool=$(pwd)/consumelocal-vet ./...
//	consumelocal-vet -ledger               # print the waiver ledger and exit
//
// The ledger enumerates every //consumelocal:ignore marker in the tree
// (file:line, analyzer, reason) so CI output shows exactly which
// findings are waived and why. See docs/LINT.md for the analyzer
// catalogue and marker grammar.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"consumelocal/internal/analysis"
)

func main() {
	// go vet drives the tool with -V=full (version handshake), -flags
	// (flag inventory), or a single *.cfg unit file. Everything else is
	// a human invocation.
	if len(os.Args) > 1 {
		arg := os.Args[1]
		if strings.HasPrefix(arg, "-V") || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(analysis.All()...) // never returns
		}
	}

	ledger := flag.Bool("ledger", false, "print the //consumelocal:ignore waiver ledger for the tree and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: consumelocal-vet [-ledger] [package patterns]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *ledger {
		os.Exit(printLedger(os.Stdout))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runAsVettool(patterns))
}

// runAsVettool re-executes the build system's vet driver pointing back
// at this binary, which then serves each compilation unit through
// unitchecker. This keeps standalone runs byte-identical to CI's
// go vet -vettool invocation.
func runAsVettool(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "consumelocal-vet: cannot locate own binary: %v\n", err)
		return 2
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "consumelocal-vet: %v\n", err)
		return 2
	}
	return 0
}

// waiver is one //consumelocal:ignore marker found in the tree.
type waiver struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// printLedger scans non-test Go files under the current directory
// (skipping vendor/ and testdata/) for ignore markers and prints one
// line per waiver plus a per-analyzer tally. Returns a process exit
// code: 0 on success even with waivers — waivers are sanctioned, the
// ledger just makes them visible.
func printLedger(w *os.File) int {
	var waivers []waiver
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		waivers = append(waivers, fileWaivers(path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "consumelocal-vet: ledger scan: %v\n", err)
		return 2
	}
	sort.Slice(waivers, func(i, j int) bool {
		if waivers[i].file != waivers[j].file {
			return waivers[i].file < waivers[j].file
		}
		return waivers[i].line < waivers[j].line
	})
	tally := map[string]int{}
	for _, wv := range waivers {
		fmt.Fprintf(w, "%s:%d: %s: %s\n", wv.file, wv.line, wv.analyzer, wv.reason)
		tally[wv.analyzer]++
	}
	names := make([]string, 0, len(tally))
	for n := range tally {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, tally[n]))
	}
	if len(parts) == 0 {
		fmt.Fprintf(w, "waiver ledger: 0 waivers\n")
	} else {
		fmt.Fprintf(w, "waiver ledger: %d waivers (%s)\n", len(waivers), strings.Join(parts, ", "))
	}
	return 0
}

// fileWaivers parses one file's comments for ignore markers. Parse
// errors are ignored: the build gate owns syntax, the ledger is
// best-effort reporting.
func fileWaivers(path string) []waiver {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if f == nil {
		_ = err
		return nil
	}
	const marker = "//consumelocal:ignore"
	var out []waiver
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			t := c.Text
			if !strings.HasPrefix(t, marker) {
				continue
			}
			rest := t[len(marker):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if name == "" {
				name = "(malformed)"
			}
			reason = strings.TrimSpace(reason)
			if reason == "" {
				reason = "(no reason given)"
			}
			out = append(out, waiver{
				file:     filepath.ToSlash(path),
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   reason,
			})
		}
	}
	return out
}

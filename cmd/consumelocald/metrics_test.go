package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"consumelocal/internal/obs"
)

// scrapeMetrics fetches GET /metrics and runs the response through the
// exposition linter, so every scrape in the suite doubles as a format
// check.
func scrapeMetrics(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not lint: %v", err)
	}
	return exp
}

// mustValue asserts one series has an exact value.
func mustValue(t *testing.T, exp *obs.Exposition, series string, want float64) {
	t.Helper()
	got, ok := exp.Value(series)
	if !ok {
		t.Fatalf("series %s missing from scrape", series)
	}
	if got != want {
		t.Fatalf("%s = %g, want %g", series, got, want)
	}
}

// TestMetricsLint pins the contract the CI metrics gate and the
// OBSERVABILITY.md catalogue rely on: a fresh daemon exposes at least
// 15 documented families, each with HELP and TYPE metadata (enforced by
// the parser), and the core series carry sane initial values.
func TestMetricsLint(t *testing.T) {
	srv := newServer(0)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	exp := scrapeMetrics(t, ts.URL)
	if n := len(exp.Families()); n < 15 {
		t.Fatalf("scrape exposes %d families, want >= 15: %v", n, exp.Families())
	}
	for _, family := range []string{
		"consumelocald_jobs_submitted_total",
		"consumelocald_jobs_finished_total",
		"consumelocald_jobs_rejected_total",
		"consumelocald_jobs_quota",
		"consumelocald_jobs_running",
		"consumelocald_jobs_pending",
		"consumelocald_http_requests_total",
		"consumelocald_http_request_seconds",
		"consumelocald_http_inflight_requests",
		"consumelocald_ingest_sessions_pushed_total",
		"consumelocald_ingest_batches_total",
		"consumelocald_ingest_queue_depth",
		"consumelocald_ingest_watermark_lag_seconds",
		"consumelocald_ingest_blocked_seconds_total",
		"consumelocald_spooled_bytes_total",
		"consumelocald_snapshot_emit_seconds",
		"consumelocald_build_info",
		"consumelocald_uptime_seconds",
		"consumelocal_replay_windows_settled_total",
		"consumelocal_replay_source_sessions_total",
	} {
		if exp.Help[family] == "" || exp.Types[family] == "" {
			t.Errorf("family %s missing from scrape (or lacks metadata)", family)
		}
	}
	mustValue(t, exp, "consumelocald_jobs_quota", float64(srv.maxJobs))
	mustValue(t, exp, "consumelocald_jobs_running", 0)
	mustValue(t, exp, fmt.Sprintf("consumelocald_build_info{go_version=%q}", runtime.Version()), 1)
	if up, ok := exp.Value("consumelocald_uptime_seconds"); !ok || up < 0 {
		t.Fatalf("uptime = %g (present %v)", up, ok)
	}
}

// TestMetricsJobLifecycle runs a generator job to completion and checks
// the lifecycle, stage and HTTP series all moved: submitted and
// finished counters by label, windows settled, snapshot emit latency
// observations, and the request counter keyed by route pattern and
// status code.
func TestMetricsJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	resp, v := postJob(t, ts.URL+"/v1/jobs?source=generator&scale=0.001&days=1&window=21600")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "done")

	exp := scrapeMetrics(t, ts.URL)
	mustValue(t, exp, `consumelocald_jobs_submitted_total{kind="generator"}`, 1)
	mustValue(t, exp, `consumelocald_jobs_finished_total{status="done"}`, 1)
	mustValue(t, exp, `consumelocald_http_requests_total{route="POST /v1/jobs",code="202"}`, 1)
	mustValue(t, exp, "consumelocald_jobs_running", 0)
	if got, _ := exp.Value("consumelocal_replay_windows_settled_total"); got < 1 {
		t.Fatalf("windows settled = %g, want >= 1", got)
	}
	if got, _ := exp.Value("consumelocal_replay_source_sessions_total"); got <= 0 {
		t.Fatalf("source sessions = %g, want > 0", got)
	}
	if got, _ := exp.Value("consumelocald_snapshot_emit_seconds_count"); got < 1 {
		t.Fatalf("snapshot emit observations = %g, want >= 1", got)
	}
	// The status-poll GETs all landed on the job route with a 200.
	series := `consumelocald_http_requests_total{route="GET /v1/jobs/{id}",code="200"}`
	if got, _ := exp.Value(series); got < 1 {
		t.Fatalf("%s = %g, want >= 1", series, got)
	}
}

// TestMetricsIngestLifecycle drives a live ingest job and checks the
// backpressure-facing series: batches and sessions counted on push, the
// watermark-lag gauge reporting trace-time debt while the job runs, and
// the lag clearing once the stream is sealed and the job settles.
func TestMetricsIngestLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	resp, v := postJob(t, ingestURL(ts.URL, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	jobURL := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID)

	// First batch: ten sessions at t=0.., watermark raised to 3600.
	if resp, _ := postSessions(t, jobURL+"/sessions?watermark=3600", "text/csv", sessionRows(0, 10)); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch 1 = %d, want 200", resp.StatusCode)
	}
	// Second batch runs ahead of the stalled watermark: newest start is
	// 7109 against watermark 3600, a 3509-second settlement debt.
	if resp, _ := postSessions(t, jobURL+"/sessions", "text/csv", sessionRows(7100, 10)); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch 2 = %d, want 200", resp.StatusCode)
	}

	exp := scrapeMetrics(t, ts.URL)
	mustValue(t, exp, `consumelocald_jobs_submitted_total{kind="ingest"}`, 1)
	mustValue(t, exp, "consumelocald_ingest_batches_total", 2)
	mustValue(t, exp, "consumelocald_ingest_sessions_pushed_total", 20)
	mustValue(t, exp, "consumelocald_jobs_running", 1)
	mustValue(t, exp, "consumelocald_ingest_watermark_lag_seconds", 7109-3600)

	if resp, err := http.Post(jobURL+"/finish", "", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("finish = %d, want 200", resp.StatusCode)
		}
	}
	pollJobStatus(t, ts.URL, v.ID, "done")

	exp = scrapeMetrics(t, ts.URL)
	mustValue(t, exp, `consumelocald_jobs_finished_total{status="done"}`, 1)
	// Settled jobs drop out of the lag aggregate: the gauge describes
	// live settlement debt, not history.
	mustValue(t, exp, "consumelocald_ingest_watermark_lag_seconds", 0)
	mustValue(t, exp, "consumelocald_ingest_queue_depth", 0)
}

// TestMetricsCancelAndReject covers the two unhappy lifecycle series: a
// cancelled job lands in finished{status="cancelled"}, and a submission
// over quota lands in rejected.
func TestMetricsCancelAndReject(t *testing.T) {
	ts := httptest.NewServer(newServer(1).routes())
	defer ts.Close()

	resp, v := postJob(t, ingestURL(ts.URL, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts.URL+"/v1/jobs?source=generator&scale=0.001&days=1"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if resp := deleteJob(t, ts.URL, v.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", resp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "cancelled")

	exp := scrapeMetrics(t, ts.URL)
	mustValue(t, exp, "consumelocald_jobs_rejected_total", 1)
	mustValue(t, exp, `consumelocald_jobs_finished_total{status="cancelled"}`, 1)
	mustValue(t, exp, `consumelocald_http_requests_total{route="POST /v1/jobs",code="429"}`, 1)
}

// TestHealthzPayload checks the extended liveness payload (the bare
// status-code check lives in main_test.go).
func TestHealthzPayload(t *testing.T) {
	srv := newServer(0)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	var h struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go_version"`
		Started       string  `json:"started"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		JobsRunning   int     `json:"jobs_running"`
		MaxJobs       int     `json:"max_jobs"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if h.GoVersion != runtime.Version() {
		t.Fatalf("go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
	if h.Started == "" || h.UptimeSeconds < 0 {
		t.Fatalf("started = %q, uptime = %g", h.Started, h.UptimeSeconds)
	}
	if h.JobsRunning != 0 || h.MaxJobs != srv.maxJobs {
		t.Fatalf("jobs_running = %d, max_jobs = %d (want 0, %d)", h.JobsRunning, h.MaxJobs, srv.maxJobs)
	}
}

// TestGracefulShutdown boots the real serve path on ephemeral ports,
// leaves a live ingest job running (its producer deliberately silent),
// and cancels the context: drainJobs must cancel the straggler inside
// the drain budget and runDaemon must return cleanly.
func TestGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runDaemon(ctx, daemonConfig{
			addr:      "127.0.0.1:0",
			pprofAddr: "127.0.0.1:0",
			maxJobs:   2,
			drain:     200 * time.Millisecond,
			logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, v := postJob(t, ingestURL(base, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	pollJobStatus(t, base, v.ID, "running")
	exp := scrapeMetrics(t, base)
	mustValue(t, exp, "consumelocald_jobs_running", 1)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runDaemon = %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	// The listener is gone after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"consumelocal/internal/joblog"
)

// durableServer boots an in-process daemon with a journal under a temp
// dir — the fault-injection and online-compaction tests don't need the
// real-binary SIGKILL harness, just the durability plumbing.
func durableServer(t *testing.T, compactBytes int64) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(0)
	srv.compactBytes = compactBytes
	if err := srv.openDurability(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.closeDurability)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestIngestFaultInjection drives the degrade-loudly contract end to
// end through HTTP: while the journal's fsync (or write) path is
// failing, a session batch must be refused with a 500 *before* it is
// acknowledged — the producer knows its rows are not durable — and the
// failure must be visible in journal_append_errors_total and the
// injected-fault counter. Clearing the fault restores normal 200s, and
// the journal that survives replays only the acknowledged rows.
func TestIngestFaultInjection(t *testing.T) {
	srv, ts := durableServer(t, 0)

	resp, v := postJob(t, ingestURL(ts.URL, "&name=faulty"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job submission = %d, want 202", resp.StatusCode)
	}
	sessionsURL := fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID)

	// A clean batch first, so the stream has journalled state the faulty
	// batch must not disturb.
	sresp, out := postSessions(t, sessionsURL+"?watermark=3600", "text/csv", sessionRows(0, 10))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("clean batch = %d (%v), want 200", sresp.StatusCode, out)
	}

	// Each faulty batch uses fresh rows: a 500 means *indeterminate* —
	// the rows may sit in the live stream unjournalled (they do here), so
	// the producer's recovery protocol is probe-and-skip, not blind
	// resend of the same rows.
	for _, fault := range []struct {
		kind  string
		start int64
		f     joblog.Faults
	}{
		{"write", 3600, joblog.Faults{WriteErr: func([]byte) error { return os.ErrClosed }}},
		{"fsync", 4000, joblog.Faults{SyncErr: func() error { return os.ErrClosed }}},
	} {
		srv.jl.InjectFaults(&fault.f)
		sresp, out = postSessions(t, sessionsURL, "text/csv", sessionRows(fault.start, 5))
		if sresp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("batch with injected %s failure = %d (%v), want 500", fault.kind, sresp.StatusCode, out)
		}
		exp := scrapeMetrics(t, ts.URL)
		if got, _ := exp.Value(fmt.Sprintf(`consumelocald_journal_injected_faults_total{kind=%q}`, fault.kind)); got != 1 {
			t.Fatalf("injected_faults_total{kind=%q} = %g, want 1", fault.kind, got)
		}
	}
	exp := scrapeMetrics(t, ts.URL)
	if got, _ := exp.Value("consumelocald_journal_append_errors_total"); got < 2 {
		t.Fatalf("journal_append_errors_total = %g, want >= 2", got)
	}

	// Service resumes once the faults clear.
	srv.jl.InjectFaults(nil)
	sresp, out = postSessions(t, sessionsURL+"?watermark=7200", "text/csv", sessionRows(5000, 5))
	if sresp.StatusCode != http.StatusOK || out["total_pushed"].(float64) != 25 {
		t.Fatalf("batch after clearing faults = %d %v, want 200 with 25 total", sresp.StatusCode, out)
	}

	// The journal on disk accounts exactly the acknowledged sessions.
	if _, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts.URL, v.ID, "done")
}

// TestOnlineCompaction exercises the background size-threshold pass
// while the daemon serves: a first ingest stream finishes (its batch
// records become foldable into the checkpoint), a second stream's
// pushes grow the journal past the threshold, and the compaction that
// fires must reclaim the finished stream's bytes, keep the counters
// honest, and leave a journal whose replay accounts every acknowledged
// session exactly — including the still-live second stream's tail (the
// checkpoint-subtraction invariant, live).
func TestOnlineCompaction(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(0)
	// Past the first stream's ~20 KiB of batch records, so no pass fires
	// while everything journalled is still a live tail (nothing to
	// reclaim); the second stream's pushes cross the line.
	srv.compactBytes = 32 << 10
	if err := srv.openDurability(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Stream A: push ~20 KiB of batches, then finish. Its payload stays
	// in the journal (a finished record clears only the replayed tail)
	// until a compaction folds it into the checkpoint.
	resp, a := postJob(t, ingestURL(ts.URL, "&name=finished-stream"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream A submission = %d, want 202", resp.StatusCode)
	}
	aTotal := 0
	for i := 0; i < 8; i++ {
		sresp, out := postSessions(t,
			fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=%d", ts.URL, a.ID, (int64(i)+1)*600),
			"text/csv", sessionRows(int64(i)*600, 100))
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("stream A batch %d = %d (%v), want 200", i, sresp.StatusCode, out)
		}
		aTotal += 100
	}
	if _, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, a.ID), "", nil); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts.URL, a.ID, "done")

	// Stream B: keep pushing until the threshold trips the background
	// pass. Compaction keeps B's whole tail (it is live) but folds A's.
	resp, b := postJob(t, ingestURL(ts.URL, "&name=live-stream"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream B submission = %d, want 202", resp.StatusCode)
	}
	bTotal := 0
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		exp := scrapeMetrics(t, ts.URL)
		if n, _ := exp.Value("consumelocald_journal_compactions_total"); n >= 1 {
			if reclaimed, _ := exp.Value("consumelocald_journal_compaction_reclaimed_bytes_total"); reclaimed <= 0 {
				t.Fatalf("compaction ran but reclaimed %g bytes", reclaimed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no online compaction within 30s")
		}
		sresp, out := postSessions(t,
			fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=%d", ts.URL, b.ID, (int64(i)+1)*600),
			"text/csv", sessionRows(int64(i)*600, 100))
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("stream B batch %d = %d (%v), want 200", i, sresp.StatusCode, out)
		}
		bTotal += 100
	}

	// The compacted journal still serves: B is running with every push
	// accounted. Snapshot the journal as a crash would leave it (a clean
	// drain journals B's cancellation, which is not what a kill -9
	// produces) and replay the copy.
	var mid jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, b.ID), &mid)
	if mid.Status != "running" || mid.Pushed != int64(bTotal) {
		t.Fatalf("stream B mid-stream view = %+v, want running with %d pushed", mid, bTotal)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, "journal.log"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv.drainJobs(0)
	srv.closeDurability()

	jl, rec, err := joblog.Open(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if rec.Sessions != int64(aTotal+bTotal) {
		t.Fatalf("compacted journal replays %d sessions, want %d", rec.Sessions, aTotal+bTotal)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("compacted journal replays %d jobs, want 2", len(rec.Jobs))
	}
	if st := rec.Jobs[0]; st.ID != a.ID || st.Status != "done" || st.Sessions != int64(aTotal) {
		t.Fatalf("stream A after compaction: %+v", st)
	}
	st := rec.Jobs[1]
	if st.ID != b.ID || st.Status != "" || st.Sessions != int64(bTotal) || st.Created == nil || st.Created.Query == "" {
		t.Fatalf("stream B after compaction: %+v", st)
	}
	if len(st.Tail) == 0 {
		t.Fatal("live stream's batch tail lost by online compaction")
	}
}

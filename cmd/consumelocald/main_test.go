package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"consumelocal/internal/engine"
	"consumelocal/internal/trace"
)

func testTraceCSV(t *testing.T) []byte {
	t.Helper()
	cfg := trace.DefaultGeneratorConfig(0.001)
	cfg.Days = 2
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestReplayLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	csv := testTraceCSV(t)

	resp, err := http.Post(ts.URL+"/v1/replay?window=21600&name=lifecycle", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("replay status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Job-ID"); got != "1" {
		t.Fatalf("X-Job-ID = %q, want 1", got)
	}

	type line struct {
		Job      int              `json:"job"`
		Snapshot *engine.Snapshot `json:"snapshot"`
		Error    string           `json:"error"`
		Summary  *struct {
			Swarms  int     `json:"swarms"`
			Offload float64 `json:"offload"`
		} `json:"summary"`
	}
	var (
		snapshots int
		summary   *line
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if l.Error != "" {
			t.Fatalf("replay reported error: %s", l.Error)
		}
		if l.Snapshot != nil {
			snapshots++
		}
		if l.Summary != nil {
			summary = &l
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if snapshots < 2 {
		t.Fatalf("expected multiple snapshots, got %d", snapshots)
	}
	if summary == nil {
		t.Fatal("missing summary line")
	}
	if summary.Summary.Swarms == 0 || summary.Summary.Offload <= 0 {
		t.Fatalf("implausible summary: %+v", summary.Summary)
	}

	// The finished job is queryable.
	var jobs []map[string]any
	getJSON(t, ts.URL+"/v1/jobs", &jobs)
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(jobs))
	}
	var job map[string]any
	getJSON(t, ts.URL+"/v1/jobs/1", &job)
	if job["status"] != "done" {
		t.Fatalf("job status = %v, want done", job["status"])
	}
	if job["name"] != "lifecycle" {
		t.Fatalf("job name = %v", job["name"])
	}

	var energyOut struct {
		Status string `json:"status"`
		Energy []struct {
			Model   string  `json:"Model"`
			Savings float64 `json:"Savings"`
		} `json:"energy"`
		Offload float64 `json:"offload"`
	}
	getJSON(t, ts.URL+"/v1/jobs/1/energy", &energyOut)
	if len(energyOut.Energy) != 2 {
		t.Fatalf("energy reports = %d, want 2", len(energyOut.Energy))
	}
	if energyOut.Offload <= 0 {
		t.Fatal("energy endpoint reports zero offload")
	}
	for _, rep := range energyOut.Energy {
		if rep.Savings <= 0 {
			t.Fatalf("model %s reports no savings", rep.Model)
		}
	}

	var carbonOut struct {
		Carbon []struct {
			Model          string  `json:"Model"`
			Users          int     `json:"Users"`
			CarbonPositive float64 `json:"CarbonPositive"`
		} `json:"carbon"`
	}
	getJSON(t, ts.URL+"/v1/jobs/1/carbon", &carbonOut)
	if len(carbonOut.Carbon) != 2 {
		t.Fatalf("carbon distributions = %d, want 2", len(carbonOut.Carbon))
	}
	if carbonOut.Carbon[0].Users == 0 {
		t.Fatal("carbon distribution has no users")
	}
}

func TestReplayRejectsBadInput(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	// Garbage body: the scanner fails before any job is registered.
	resp, err := http.Post(ts.URL+"/v1/replay", "text/csv", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage replay status = %d, want 400", resp.StatusCode)
	}

	// Bad query parameter.
	resp, err = http.Post(ts.URL+"/v1/replay?ratio=nope", "text/csv", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ratio status = %d, want 400", resp.StatusCode)
	}
}

func TestReplayWithoutUserTrackingRefusesCarbon(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	csv := testTraceCSV(t)

	resp, err := http.Post(ts.URL+"/v1/replay?track_users=false", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	carbonResp, err := http.Get(ts.URL + "/v1/jobs/1/carbon")
	if err != nil {
		t.Fatal(err)
	}
	carbonResp.Body.Close()
	if carbonResp.StatusCode != http.StatusConflict {
		t.Fatalf("carbon without tracking status = %d, want 409", carbonResp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status = %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(fmt.Errorf("decode %s: %w", url, err))
	}
}

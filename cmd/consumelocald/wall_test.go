package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestIngestWallWatermark: an ingest job opened with watermark=wall
// settles its reporting windows from the daemon clock alone. The
// producer pushes one early batch and then goes silent — exactly the
// failure mode the fallback exists for — and never advances the
// watermark itself; the accelerated wall rate walks the 4-hour horizon
// in well under a second, so every window settles anyway.
func TestIngestWallWatermark(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	// 3600 trace-seconds per 10ms tick: the 14400s horizon passes in
	// ~40ms of wall time.
	resp, v := postJob(t, ingestURL(ts.URL, "&watermark=wall&wall_interval=10ms&wall_rate=360000"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wall ingest job = %d, want 202", resp.StatusCode)
	}

	// One batch in hour zero, ahead of the just-started clock. The
	// producer sends no watermark — the daemon's clock is the only one.
	if sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(0, 20)); sresp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d (%v), want 200", sresp.StatusCode, out)
	}

	// A follower sees every window settle while the producer is silent.
	followResp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/snapshots", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer followResp.Body.Close()
	follower := bufio.NewScanner(followResp.Body)
	follower.Buffer(make([]byte, 1<<20), 1<<20)
	settled := 0
	for settled < 4 && follower.Scan() {
		var snap struct {
			ToSec int64 `json:"to_sec"`
		}
		if err := json.Unmarshal(follower.Bytes(), &snap); err != nil {
			t.Fatalf("bad snapshot line %q: %v", follower.Text(), err)
		}
		settled++
		if want := int64(settled) * 3600; snap.ToSec != want {
			t.Fatalf("window %d settled to_sec=%d, want %d", settled, snap.ToSec, want)
		}
	}
	if settled < 4 {
		t.Fatalf("only %d windows settled from the wall clock: %v", settled, follower.Err())
	}

	// The clock stopped at the horizon; the view reports the clamped
	// watermark and the stream still seals normally.
	var view jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &view)
	if view.Watermark != 14400 {
		t.Fatalf("wall watermark = %d, want clamped to horizon 14400", view.Watermark)
	}
	if fresp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || fresp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %v %d, want 200", err, fresp.StatusCode)
	}
	final := pollJobStatus(t, ts.URL, v.ID, "done")
	if final.Snapshot.SessionsSeen != 20 {
		t.Fatalf("final snapshot saw %d sessions, want 20", final.Snapshot.SessionsSeen)
	}
}

// TestIngestWallWatermarkComposesWithProducer: a producer watermark
// ahead of the slow daemon clock wins without failing the job, and
// sessions keep landing against the higher floor.
func TestIngestWallWatermarkComposesWithProducer(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	// Slow clock: ~1 trace-second per 10ms — the producer will lap it.
	_, v := postJob(t, ingestURL(ts.URL, "&watermark=wall&wall_interval=10ms&wall_rate=100"))

	if sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=7200", ts.URL, v.ID),
		"text/csv", sessionRows(0, 10)); sresp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d (%v), want 200", sresp.StatusCode, out)
	}
	var view jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &view)
	if view.Watermark < 7200 {
		t.Fatalf("watermark = %d, want the producer's 7200 to hold against the wall clock", view.Watermark)
	}
	if sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(7200, 5)); sresp.StatusCode != http.StatusOK {
		t.Fatalf("post-watermark batch = %d (%v), want 200", sresp.StatusCode, out)
	}
	if fresp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || fresp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %v %d, want 200", err, fresp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "done")
}

// TestIngestWallWatermarkRejectsBadParams: the wall mode's parameters
// are bounded like every other unauthenticated input.
func TestIngestWallWatermarkRejectsBadParams(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	for _, url := range []string{
		"&watermark=tide",
		"&watermark=wall&wall_interval=1ms",
		"&watermark=wall&wall_interval=2h",
		"&watermark=wall&wall_interval=soon",
		"&watermark=wall&wall_rate=0",
		"&watermark=wall&wall_rate=-3",
		"&watermark=wall&wall_rate=1e12",
		"&watermark=wall&wall_rate=fast",
	} {
		resp, err := http.Post(ingestURL(ts.URL, url), "text/csv", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST ...%s = %d, want 400", url, resp.StatusCode)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"consumelocal/internal/carbon"
	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// maxRetainedJobs bounds the registry: once exceeded, the oldest
// finished jobs — whose results hold full per-user ledgers — are
// evicted, keeping a long-running daemon's memory bounded by the jobs
// actually in flight plus a recent-history window.
const maxRetainedJobs = 32

// server is the daemon's shared state: a registry of replay jobs, past
// and in flight.
type server struct {
	mu     sync.Mutex
	jobs   map[int]*job
	nextID int
}

// job is one replay: its configuration fingerprint, the latest windowed
// snapshot while running, and the full result once done.
type job struct {
	mu       sync.Mutex
	id       int
	name     string
	started  time.Time
	status   string // "running", "done", "failed"
	meta     trace.Meta
	snapshot engine.Snapshot
	result   *sim.Result
	errMsg   string
}

// jobView is the JSON projection of a job.
type jobView struct {
	ID       int             `json:"id"`
	Name     string          `json:"name"`
	Started  time.Time       `json:"started"`
	Status   string          `json:"status"`
	Error    string          `json:"error,omitempty"`
	Meta     trace.Meta      `json:"meta"`
	Snapshot engine.Snapshot `json:"snapshot"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:       j.id,
		Name:     j.name,
		Started:  j.started,
		Status:   j.status,
		Error:    j.errMsg,
		Meta:     j.meta,
		Snapshot: j.snapshot,
	}
}

func newServer() *server {
	return &server{jobs: make(map[int]*job), nextID: 1}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/energy", s.handleJobEnergy)
	mux.HandleFunc("GET /v1/jobs/{id}/carbon", s.handleJobCarbon)
	return mux
}

// replayConfig parses the replay query parameters into an engine
// configuration.
func replayConfig(r *http.Request) (engine.Config, error) {
	q := r.URL.Query()
	getF := func(key string, def float64) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("query %s: %w", key, err)
		}
		return f, nil
	}
	getI := func(key string, def int64) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("query %s: %w", key, err)
		}
		return n, nil
	}
	getB := func(key string) (bool, error) {
		v := q.Get(key)
		if v == "" {
			return false, nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return false, fmt.Errorf("query %s: %w", key, err)
		}
		return b, nil
	}

	ratio, err := getF("ratio", 1.0)
	if err != nil {
		return engine.Config{}, err
	}
	cfg := engine.DefaultConfig(ratio)
	if cfg.WindowSec, err = getI("window", 3600); err != nil {
		return engine.Config{}, err
	}
	var workers int64
	if workers, err = getI("workers", int64(runtime.GOMAXPROCS(0))); err != nil {
		return engine.Config{}, err
	}
	cfg.Workers = int(workers)
	if cfg.Sim.ParticipationRate, err = getF("participation", 1.0); err != nil {
		return engine.Config{}, err
	}
	if cfg.Sim.QuantizeTickSec, err = getI("tick", 0); err != nil {
		return engine.Config{}, err
	}
	if cfg.Sim.SeedRetentionSec, err = getI("seed_retention", 0); err != nil {
		return engine.Config{}, err
	}
	cityWide, err := getB("city_wide")
	if err != nil {
		return engine.Config{}, err
	}
	mixed, err := getB("mixed_bitrates")
	if err != nil {
		return engine.Config{}, err
	}
	cfg.Sim.Swarm = swarm.Options{RestrictISP: !cityWide, SplitBitrate: !mixed}
	if v := q.Get("track_users"); v != "" {
		track, err := strconv.ParseBool(v)
		if err != nil {
			return engine.Config{}, fmt.Errorf("query track_users: %w", err)
		}
		cfg.Sim.TrackUsers = track
	}
	return cfg, nil
}

// handleReplay consumes a trace CSV from the request body — streamed, so
// the trace is never materialised — and writes NDJSON snapshots back as
// the replay progresses, finishing with a summary line. The job stays
// queryable through /v1/jobs afterwards.
func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	cfg, err := replayConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The replay reads the request body while snapshots stream out on
	// the response: opt in to concurrent read/write on HTTP/1.x, where
	// the server otherwise closes the body at the first response write.
	_ = http.NewResponseController(w).EnableFullDuplex()

	run, err := consumeStream(r, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	j := s.register(r.URL.Query().Get("name"), run.Meta())

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-ID", strconv.Itoa(j.id))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	type line struct {
		Job      int              `json:"job"`
		Snapshot *engine.Snapshot `json:"snapshot,omitempty"`
		Error    string           `json:"error,omitempty"`
		Summary  *replaySummary   `json:"summary,omitempty"`
	}
	for snap := range run.Snapshots() {
		j.mu.Lock()
		j.snapshot = snap
		j.mu.Unlock()
		snap := snap
		_ = enc.Encode(line{Job: j.id, Snapshot: &snap})
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := run.Result()

	j.mu.Lock()
	if err != nil {
		j.status = "failed"
		j.errMsg = err.Error()
	} else {
		j.status = "done"
		j.result = res
	}
	j.mu.Unlock()

	if err != nil {
		_ = enc.Encode(line{Job: j.id, Error: err.Error()})
		return
	}
	_ = enc.Encode(line{Job: j.id, Summary: summarize(res)})
}

// consumeStream builds a scanner over the request body and starts the
// engine.
func consumeStream(r *http.Request, cfg engine.Config) (*engine.Run, error) {
	sc, err := trace.NewScanner(r.Body)
	if err != nil {
		return nil, err
	}
	return engine.Stream(sc, cfg)
}

func (s *server) register(name string, meta trace.Meta) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := &job{
		id:      s.nextID,
		name:    name,
		started: time.Now().UTC(),
		status:  "running",
		meta:    meta,
	}
	if j.name == "" {
		j.name = meta.Name
	}
	s.nextID++
	s.jobs[j.id] = j
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished jobs once the registry exceeds
// maxRetainedJobs. Running jobs are never evicted. Callers hold s.mu.
func (s *server) evictLocked() {
	if len(s.jobs) <= maxRetainedJobs {
		return
	}
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if len(s.jobs) <= maxRetainedJobs {
			return
		}
		j := s.jobs[id]
		j.mu.Lock()
		finished := j.status != "running"
		j.mu.Unlock()
		if finished {
			delete(s.jobs, id)
		}
	}
}

// replaySummary is the closing line of a replay response: system offload
// and energy savings under both published parameter sets.
type replaySummary struct {
	Swarms  int                `json:"swarms"`
	Total   sim.Tally          `json:"total"`
	Offload float64            `json:"offload"`
	Energy  []sim.EnergyReport `json:"energy"`
}

func summarize(res *sim.Result) *replaySummary {
	sum := &replaySummary{
		Swarms:  len(res.Swarms),
		Total:   res.Total,
		Offload: res.Total.Offload(),
	}
	for _, p := range energy.BothModels() {
		sum.Energy = append(sum.Energy, sim.Evaluate(res.Total, p))
	}
	return sum
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool { return views[i].ID < views[k].ID })
	writeJSON(w, http.StatusOK, views)
}

// lookup resolves the {id} path segment.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d not found", id))
		return nil
	}
	return j
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

// handleJobEnergy prices the job's latest cumulative tally — live while
// the replay runs, final once done — under both Table IV parameter sets.
func (s *server) handleJobEnergy(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	tally := j.snapshot.Cumulative
	if j.result != nil {
		tally = j.result.Total
	}
	status := j.status
	j.mu.Unlock()

	reports := make([]sim.EnergyReport, 0, 2)
	for _, p := range energy.BothModels() {
		reports = append(reports, sim.Evaluate(tally, p))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":     j.id,
		"status":  status,
		"tally":   tally,
		"offload": tally.Offload(),
		"energy":  reports,
	})
}

// handleJobCarbon computes the per-user carbon credit transfer
// distribution (paper Fig. 6) of a finished replay. Requires the replay
// to have tracked users (the default).
func (s *server) handleJobCarbon(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	res := j.result
	status := j.status
	j.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %d is %s; carbon credits need a finished replay", j.id, status))
		return
	}
	if res.Users == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %d ran without user tracking (track_users=false)", j.id))
		return
	}
	dists := make([]carbon.Distribution, 0, 2)
	for _, p := range energy.BothModels() {
		dists = append(dists, carbon.Distribute(res.Users, p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "carbon": dists})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

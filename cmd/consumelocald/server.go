package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"consumelocal"
	"consumelocal/internal/carbon"
	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/joblog"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// maxRetainedJobs bounds the registry: once exceeded, the oldest
// finished jobs — whose results hold full per-user ledgers — are
// evicted, keeping a long-running daemon's memory bounded by the jobs
// actually in flight plus a recent-history window.
const maxRetainedJobs = 32

// defaultMaxJobs is the default concurrent-replay quota.
const defaultMaxJobs = 4

// defaultMaxBodyBytes caps the trace CSV a single replay submission may
// upload (the paper's full-scale trace is ~1.5 GB; 4 GiB leaves
// headroom without letting one request exhaust the disk). Note the
// in-memory engines (engine=batch|parallel) materialise the sessions in
// RAM up to this cap × max-jobs concurrently — operators hosting those
// on small machines should lower -max-body or -max-jobs.
const defaultMaxBodyBytes = 4 << 30

// maxJobSnapshots caps the per-job snapshot history: beyond it the
// older half is dropped (followers that lag that far behind skip
// ahead), keeping a job's memory bounded even for window/horizon
// combinations that settle tens of thousands of windows.
const maxJobSnapshots = 4096

// defaultIngestIdle is how long an ingest job may go without a
// successful sessions/finish call before the daemon concludes the
// producer is gone and cancels the job: a broadcast system that crashed
// mid-stream must not pin a quota slot forever.
const defaultIngestIdle = 5 * time.Minute

// defaultIngestCapacity bounds an ingest job's session queue: deep
// enough to absorb a batch per request, shallow enough that a replay
// falling behind backpressures the pushing client promptly.
const defaultIngestCapacity = 4096

// maxIngestBatchBytes caps one sessions push. Unlike trace uploads
// (spooled to disk under -max-body), a batch is parsed into memory
// before pushing, so it must stay RAM-sized; ~8 MiB is a few hundred
// thousand CSV sessions, far more than a live producer batches.
const maxIngestBatchBytes = 8 << 20

// defaultCompactBytes is the default online journal-compaction
// threshold (-journal-compact): once the journal grows this far past
// its last compacted size, it is rewritten in the background.
const defaultCompactBytes = 8 << 20

// server is the daemon's shared state: an async job manager over
// consumelocal.Replay. Every replay — submitted through the async
// /v1/jobs API or the synchronous /v1/replay stream — is a registered
// job with live snapshot history, cancellation and a quota slot.
type server struct {
	mu         sync.Mutex
	jobs       map[int]*job
	nextID     int
	maxJobs    int
	maxBody    int64
	ingestIdle time.Duration
	// pending counts submissions that claimed a quota slot but are not
	// yet published in jobs — the gap while Replay starts. Keeping them
	// out of the registry means a job is only ever visible with its
	// replay handle attached.
	pending int
	// retiredBlockedNanos accumulates the backpressure stall totals of
	// settled ingest jobs, so the daemon's blocked-seconds counter stays
	// monotonic as jobs leave the registry. Guarded by mu.
	retiredBlockedNanos int64

	// met is the daemon's /metrics instrumentation; logger receives the
	// structured request and job-lifecycle logs. newServer installs a
	// discard logger — runDaemon (and anyone else hosting the server)
	// wires the real one.
	met    *daemonMetrics
	logger *slog.Logger

	// jl and store are the durability layer (-data-dir): the
	// fsync-on-commit job journal and the completed-result store. Both
	// nil when the daemon runs ephemeral; openDurability attaches them
	// before the listener binds. recovered is what the startup journal
	// replay did (the /healthz "recovery" payload).
	jl        *joblog.Journal
	store     *joblog.Store
	recovered recoveryInfo

	// compactBytes is the online-compaction threshold (-journal-compact):
	// once the journal grows this far past its last compacted size, a
	// background goroutine rewrites it down to a checkpoint plus live
	// tails. Zero disables online compaction (startup compaction always
	// runs). compacting serialises the background passes; compactFloor is
	// the journal size right after the last one.
	compactBytes int64
	compacting   atomic.Bool
	compactFloor atomic.Int64

	// draining flips once shutdown begins: new work is refused with
	// 503 + Retry-After instead of hanging on a dying listener.
	draining atomic.Bool

	// sourceHook, when set, replaces jobSource for POST /v1/jobs: the
	// test seam that lets the httptest suite drive jobs from gated
	// in-memory sources with deterministic timing.
	sourceHook func(r *http.Request) (consumelocal.Source, func(), error)
}

// job is one replay: its registry entry, the live snapshot history
// while it runs, and the full result once done.
type job struct {
	id      int
	name    string
	kind    string // trace | generator | ingest | sync
	mode    consumelocal.EngineMode
	started time.Time
	meta    trace.Meta
	replay  *consumelocal.Job
	srv     *server
	cleanup func()
	// ingest is set for live ingest jobs: the queue the sessions/finish
	// endpoints feed. idleTimer cancels the job when the producer goes
	// silent; every successful ingest call re-arms it.
	ingest    *consumelocal.IngestSource
	idleTimer *time.Timer
	// rawQuery is the creation request's query string, journalled with
	// the created record of an ingest job so a restarted daemon can
	// rebuild the same replay configuration and resume the stream.
	rawQuery string

	mu sync.Mutex
	// status is "running", "done", "failed" or "cancelled".
	status string
	// idleFired records that the ingest idle watchdog cancelled the job,
	// so pump reports why instead of a bare "context canceled".
	idleFired bool
	// lastActive is the time of the last successful producer activity on
	// an ingest job; the watchdog measures idleness against it, so a
	// long batch re-arms it session by session as pushes land.
	lastActive time.Time
	// watchdogDisarmed stops the watchdog once the stream is sealed: no
	// producer activity is expected while a sealed queue drains, however
	// long the replay takes over it.
	watchdogDisarmed bool
	// blockedRetired marks that pump folded this ingest job's stall
	// total into the server's retired accumulator. Guarded by srv.mu.
	blockedRetired bool
	// interrupt, when set (sync /v1/replay jobs), unblocks a body read
	// the replay may be stalled inside, so DELETE can free the quota
	// slot of a client that stopped sending. Only called while status
	// is "running" — the submitting handler is then still blocked in
	// its settle wait, so its connection is safe to touch.
	interrupt func()
	// snaps is the retained snapshot window; snapsStart is the absolute
	// index of snaps[0] (non-zero once maxJobSnapshots forced eviction).
	snaps      []engine.Snapshot
	snapsStart int
	result     *sim.Result
	errMsg     string
	changed    chan struct{}

	// recovered marks a job rebuilt from the journal after a restart:
	// replay and ingest are nil (there is no live pipeline behind it)
	// and the status is terminal. The rec* fields carry the
	// producer-side view an ingest job's queue would otherwise serve.
	recovered    bool
	recIngest    bool
	recPushed    int64
	recWatermark int64
}

// broadcastLocked wakes every follower. Callers hold j.mu.
func (j *job) broadcastLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// jobView is the JSON projection of a job.
type jobView struct {
	ID        int             `json:"id"`
	Name      string          `json:"name"`
	Kind      string          `json:"kind,omitempty"`
	Mode      string          `json:"mode"`
	Started   time.Time       `json:"started"`
	Status    string          `json:"status"`
	Error     string          `json:"error,omitempty"`
	Meta      trace.Meta      `json:"meta"`
	Snapshots int             `json:"snapshots"`
	Snapshot  engine.Snapshot `json:"snapshot"`
	// Ingest marks a live ingest job; Pushed and Watermark then report
	// the stream's producer-side progress.
	Ingest    bool  `json:"ingest,omitempty"`
	Pushed    int64 `json:"pushed,omitempty"`
	Watermark int64 `json:"watermark_sec,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	v := jobView{
		ID:        j.id,
		Name:      j.name,
		Kind:      j.kind,
		Mode:      j.mode.String(),
		Started:   j.started,
		Status:    j.status,
		Error:     j.errMsg,
		Meta:      j.meta,
		Snapshots: j.snapsStart + len(j.snaps),
	}
	if n := len(j.snaps); n > 0 {
		v.Snapshot = j.snaps[n-1]
	}
	j.mu.Unlock()
	// The ingest queue has its own lock; read it outside j.mu to keep
	// the lock order trivial. A recovered job has no queue — its view
	// is the journalled progress at the moment the daemon last
	// committed a record for it.
	switch {
	case j.ingest != nil:
		v.Ingest = true
		v.Pushed = j.ingest.Pushed()
		v.Watermark = j.ingest.Watermark()
	case j.recIngest:
		v.Ingest = true
		v.Pushed = j.recPushed
		v.Watermark = j.recWatermark
	}
	return v
}

func newServer(maxJobs int) *server {
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	s := &server{
		jobs:       make(map[int]*job),
		nextID:     1,
		maxJobs:    maxJobs,
		maxBody:    defaultMaxBodyBytes,
		ingestIdle: defaultIngestIdle,
		logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	s.met = newDaemonMetrics(s)
	return s
}

// routes returns the daemon's full handler: the route table wrapped in
// the request-instrumentation middleware (request counts, latency,
// structured logs).
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	mux.HandleFunc("POST /v1/jobs/{id}/sessions", s.handleIngestSessions)
	mux.HandleFunc("POST /v1/jobs/{id}/finish", s.handleIngestFinish)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/snapshots", s.handleJobSnapshots)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/energy", s.handleJobEnergy)
	mux.HandleFunc("GET /v1/jobs/{id}/carbon", s.handleJobCarbon)
	return s.met.instrument(mux, s.logger)
}

// handleHealthz is the liveness probe, extended with build and uptime
// information so an operator's first curl answers "what is this and how
// long has it been up" without reaching for /metrics.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	running := s.runningLocked()
	s.mu.Unlock()
	payload := map[string]any{
		"status":         "ok",
		"go_version":     runtime.Version(),
		"started":        s.met.start.UTC(),
		"uptime_seconds": time.Since(s.met.start).Seconds(),
		"jobs_running":   running,
		"max_jobs":       s.maxJobs,
		"draining":       s.draining.Load(),
	}
	if s.jl != nil {
		payload["durable"] = true
		payload["recovery"] = s.recovered
	}
	writeJSON(w, http.StatusOK, payload)
}

// replaySpec is the parsed query-parameter form of a replay request.
type replaySpec struct {
	cfg  engine.Config
	mode consumelocal.EngineMode
	name string
	// kind labels the submission for the lifecycle metrics and logs:
	// trace | generator | ingest | sync.
	kind string
	// rawQuery is the submission's raw query string, kept only for
	// ingest jobs — journalled so a restart can resume the stream.
	rawQuery string
}

// options converts the spec into Replay options.
func (sp replaySpec) options() []consumelocal.Option {
	return []consumelocal.Option{
		consumelocal.WithSimConfig(sp.cfg.Sim),
		consumelocal.WithWindow(sp.cfg.WindowSec),
		consumelocal.WithWorkers(sp.cfg.Workers),
		consumelocal.WithSnapshotBuffer(sp.cfg.SnapshotBuffer),
		consumelocal.WithEngine(sp.mode),
	}
}

// parseSpec parses the replay query parameters shared by /v1/replay and
// /v1/jobs.
func parseSpec(r *http.Request) (replaySpec, error) {
	return parseSpecQuery(r.URL.Query())
}

// parseSpecQuery is parseSpec over bare query values — the form journal
// recovery re-parses a resumed ingest job's journalled query through,
// so a resume runs under exactly the validation its creation did.
func parseSpecQuery(q url.Values) (replaySpec, error) {
	getF := func(key string, def float64) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("query %s: %w", key, err)
		}
		return f, nil
	}
	getI := func(key string, def int64) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("query %s: %w", key, err)
		}
		return n, nil
	}
	getB := func(key string) (bool, error) {
		v := q.Get(key)
		if v == "" {
			return false, nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return false, fmt.Errorf("query %s: %w", key, err)
		}
		return b, nil
	}

	sp := replaySpec{name: q.Get("name")}
	ratio, err := getF("ratio", 1.0)
	if err != nil {
		return sp, err
	}
	sp.cfg = engine.DefaultConfig(ratio)
	if sp.cfg.WindowSec, err = getI("window", 3600); err != nil {
		return sp, err
	}
	// Snapshot history is retained per job; a tiny window on a long
	// horizon would manufacture millions of snapshots, so floor it.
	if sp.cfg.WindowSec < 60 {
		return sp, fmt.Errorf("query window: must be at least 60 seconds, got %d", sp.cfg.WindowSec)
	}
	var workers int64
	if workers, err = getI("workers", int64(runtime.GOMAXPROCS(0))); err != nil {
		return sp, err
	}
	sp.cfg.Workers = int(workers)
	if sp.cfg.Sim.ParticipationRate, err = getF("participation", 1.0); err != nil {
		return sp, err
	}
	if sp.cfg.Sim.QuantizeTickSec, err = getI("tick", 0); err != nil {
		return sp, err
	}
	if sp.cfg.Sim.SeedRetentionSec, err = getI("seed_retention", 0); err != nil {
		return sp, err
	}
	cityWide, err := getB("city_wide")
	if err != nil {
		return sp, err
	}
	mixed, err := getB("mixed_bitrates")
	if err != nil {
		return sp, err
	}
	sp.cfg.Sim.Swarm = swarm.Options{RestrictISP: !cityWide, SplitBitrate: !mixed}
	if v := q.Get("track_users"); v != "" {
		track, err := strconv.ParseBool(v)
		if err != nil {
			return sp, fmt.Errorf("query track_users: %w", err)
		}
		sp.cfg.Sim.TrackUsers = track
	}
	if v := q.Get("engine"); v != "" {
		if sp.mode, err = consumelocal.ParseEngineMode(v); err != nil {
			return sp, fmt.Errorf("query engine: %w", err)
		}
	}
	return sp, nil
}

// spoolIdleTimeout bounds how long an async job submission's upload may
// go without delivering a byte: the handler holds a claimed quota slot
// while spooling, so a stalled client must not pin it indefinitely. The
// deadline is re-armed per chunk — a steadily sending client is never
// cut off however large (within max-body) or slow its trace.
const spoolIdleTimeout = time.Minute

// jobSource resolves the trace source of an async job submission.
// source=generator streams the synthetic workload live; otherwise the
// request body is a trace CSV, spooled to a temporary file so the replay
// outlives the request while staying out-of-core.
func (s *server) jobSource(w http.ResponseWriter, r *http.Request) (consumelocal.Source, func(), error) {
	if s.sourceHook != nil {
		return s.sourceHook(r)
	}
	q := r.URL.Query()
	switch v := q.Get("source"); v {
	case "generator":
		scale, days, seed := 0.01, 7, int64(1)
		if raw := q.Get("scale"); raw != "" {
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("query scale: %w", err)
			}
			// DefaultGeneratorConfig treats scale<=0 as full paper scale —
			// refuse rather than let a typo launch a 23.5M-session job, and
			// bound the upside so one request cannot allocate unbounded
			// per-user tables.
			if f <= 0 || f > 1 {
				return nil, nil, fmt.Errorf("query scale: must be in (0, 1], got %g", f)
			}
			scale = f
		}
		if raw := q.Get("days"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return nil, nil, fmt.Errorf("query days: %w", err)
			}
			// The generator allocates days*24 hour buckets up front; bound
			// it so one request cannot OOM the daemon.
			if n < 1 || n > 365 {
				return nil, nil, fmt.Errorf("query days: must be in [1, 365], got %d", n)
			}
			days = n
		}
		if raw := q.Get("seed"); raw != "" {
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("query seed: %w", err)
			}
			seed = n
		}
		cfg := trace.DefaultGeneratorConfig(scale)
		cfg.Days = days
		cfg.Seed = seed
		src, err := consumelocal.GeneratorSource(cfg)
		return src, nil, err
	case "ingest":
		meta, err := ingestMeta(q)
		if err != nil {
			return nil, nil, err
		}
		capacity, err := parseIngestCapacity(q)
		if err != nil {
			return nil, nil, err
		}
		ing, err := consumelocal.NewIngestSource(meta, capacity)
		if err != nil {
			return nil, nil, err
		}
		wall, err := parseWallWatermark(q)
		if err != nil {
			return nil, nil, err
		}
		stopWall := func() {}
		if wall.enabled {
			wallCtx, cancel := context.WithCancel(context.Background())
			stopWall = cancel
			go wallWatermark(wallCtx, ing, meta.HorizonSec, wall.interval, wall.rate)
		}
		// The cleanup runs once the job settles: tear the queue down so
		// producers blocked in a push unblock and later pushes are
		// refused with a closed-stream conflict. Aborting also unwinds
		// the wall-clock watermark goroutine; cancelling its context
		// first just spares it a doomed Advance.
		return ing, func() {
			stopWall()
			ing.Abort(errIngestJobOver)
		}, nil
	case "", "body":
		f, err := os.CreateTemp("", "consumelocald-job-*.csv")
		if err != nil {
			return nil, nil, fmt.Errorf("spool trace: %w", err)
		}
		cleanup := func() {
			f.Close()
			os.Remove(f.Name())
		}
		// Cap the spool so one oversized submission cannot exhaust the
		// disk (MaxBytesReader fails the read with *MaxBytesError), and
		// keep a stalled upload from pinning its claimed quota slot with
		// an idle deadline, re-armed after every chunk (the server sets
		// no global ReadTimeout).
		rc := http.NewResponseController(w)
		body := http.MaxBytesReader(nil, r.Body, s.maxBody)
		buf := make([]byte, 256<<10)
		for {
			_ = rc.SetReadDeadline(time.Now().Add(spoolIdleTimeout))
			n, rerr := body.Read(buf)
			if n > 0 {
				if _, werr := f.Write(buf[:n]); werr != nil {
					cleanup()
					return nil, nil, fmt.Errorf("spool trace: %w", werr)
				}
				s.met.spooledBytes.Add(float64(n))
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				cleanup()
				return nil, nil, fmt.Errorf("spool trace: %w", rerr)
			}
		}
		_ = rc.SetReadDeadline(time.Time{})
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("spool trace: %w", err)
		}
		src, err := consumelocal.CSVSource(bufio.NewReader(f))
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return src, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("query source: unknown source %q", v)
	}
}

// parseIngestCapacity parses ?capacity=, the ingest queue bound: one
// job cannot buffer an unbounded burst in memory — backpressure, not
// buffering, absorbs a slow replay.
func parseIngestCapacity(q url.Values) (int, error) {
	capacity := defaultIngestCapacity
	if raw := q.Get("capacity"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return 0, fmt.Errorf("query capacity: %w", err)
		}
		if n < 1 || n > 1<<20 {
			return 0, fmt.Errorf("query capacity: must be in [1, %d], got %d", 1<<20, n)
		}
		capacity = n
	}
	return capacity, nil
}

// Upper bounds on ingest stream metadata. Every streaming worker
// allocates a Days()×NumISPs day grid up front, so an unauthenticated
// request must not be able to declare a geological horizon or a
// thousand ISPs and OOM (or panic) the daemon — the generator path
// bounds days to [1, 365] for the same reason. A year-long broadcast
// over every ISP of a large market fits comfortably.
const (
	maxIngestHorizonSec = 366 * 24 * 3600
	maxIngestISPs       = 256
	maxIngestPopulation = 1 << 30
)

// ingestMeta assembles the stream metadata of an ingest job from query
// parameters. The replay needs the horizon and population sizes before
// the first session arrives, so all four are required up front — they
// are what Push validates each live session against.
func ingestMeta(q url.Values) (trace.Meta, error) {
	meta := trace.Meta{Name: q.Get("name")}
	if meta.Name == "" {
		meta.Name = "ingest"
	}
	for _, p := range []struct {
		key string
		max int
		dst *int
	}{
		{"users", maxIngestPopulation, &meta.NumUsers},
		{"content", maxIngestPopulation, &meta.NumContent},
		{"isps", maxIngestISPs, &meta.NumISPs},
	} {
		raw := q.Get(p.key)
		if raw == "" {
			return meta, fmt.Errorf("source=ingest needs query %s (stream metadata is required up front)", p.key)
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			return meta, fmt.Errorf("query %s: %w", p.key, err)
		}
		if n > p.max {
			return meta, fmt.Errorf("query %s: must be at most %d, got %d", p.key, p.max, n)
		}
		*p.dst = n
	}
	raw := q.Get("horizon")
	if raw == "" {
		return meta, fmt.Errorf("source=ingest needs query horizon (stream metadata is required up front)")
	}
	horizon, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return meta, fmt.Errorf("query horizon: %w", err)
	}
	if horizon > maxIngestHorizonSec {
		return meta, fmt.Errorf("query horizon: must be at most %d seconds (366 days), got %d", maxIngestHorizonSec, horizon)
	}
	meta.HorizonSec = horizon
	if raw := q.Get("epoch"); raw != "" {
		epoch, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			return meta, fmt.Errorf("query epoch: %w", err)
		}
		meta.Epoch = epoch
	}
	return meta, meta.Validate()
}

// Bounds on the wall-clock watermark parameters. The interval floor
// keeps an unauthenticated request from scheduling a busy-loop ticker;
// the rate ceiling keeps elapsed×rate inside int64 seconds for any
// plausible daemon uptime (the horizon cap clamps the watermark anyway).
const (
	minWallInterval = 10 * time.Millisecond
	maxWallInterval = time.Hour
	maxWallRate     = 1e9
)

// wallConfig is the parsed wall-clock watermark fallback of an ingest
// job: derive Advance from the daemon clock so a producer that sends
// sessions but no (or late) watermarks still gets its reporting windows
// settled — the "silent producer" gap in the durable-service story.
type wallConfig struct {
	enabled  bool
	interval time.Duration
	rate     float64 // trace-seconds advanced per wall-clock second
}

// parseWallWatermark parses ?watermark=wall with its wall_interval and
// wall_rate companions. The default rate of 1 matches a producer
// pushing in real time against the stream epoch; accelerated replays
// (the loadtest's evening-in-seconds schedules) raise it.
func parseWallWatermark(q url.Values) (wallConfig, error) {
	cfg := wallConfig{interval: time.Second, rate: 1}
	switch v := q.Get("watermark"); v {
	case "":
		return cfg, nil
	case "wall":
		cfg.enabled = true
	default:
		return cfg, fmt.Errorf("query watermark: unknown mode %q (only \"wall\" is supported on job creation)", v)
	}
	if raw := q.Get("wall_interval"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			return cfg, fmt.Errorf("query wall_interval: %w", err)
		}
		if d < minWallInterval || d > maxWallInterval {
			return cfg, fmt.Errorf("query wall_interval: must be in [%s, %s], got %s", minWallInterval, maxWallInterval, d)
		}
		cfg.interval = d
	}
	if raw := q.Get("wall_rate"); raw != "" {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return cfg, fmt.Errorf("query wall_rate: %w", err)
		}
		if f <= 0 || f > maxWallRate {
			return cfg, fmt.Errorf("query wall_rate: must be in (0, %g], got %g", float64(maxWallRate), f)
		}
		cfg.rate = f
	}
	return cfg, nil
}

// wallWatermark advances an ingest stream's watermark from the daemon
// clock: every interval it promises the replay that trace time has
// reached elapsed×rate (clamped to the horizon), settling reporting
// windows even while the producer is silent. Producer-sent watermarks
// compose — whichever clock is ahead wins, and a producer overtaking
// the ticker between its check and its Advance is tolerated, not an
// error. Wall advances are not producer activity: the idle watchdog
// still reaps a stream whose producer has disappeared. The goroutine
// exits when the stream is sealed, aborted, the horizon is reached, or
// ctx is cancelled.
func wallWatermark(ctx context.Context, ing *consumelocal.IngestSource, horizonSec int64, interval time.Duration, rate float64) {
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		target := int64(time.Since(start).Seconds() * rate)
		if target > horizonSec {
			target = horizonSec
		}
		if target <= ing.Watermark() {
			continue
		}
		switch err := ing.AdvanceContext(ctx, target); {
		case err == nil:
		case errors.Is(err, consumelocal.ErrOutOfOrder):
			// A producer watermark outran the daemon clock; theirs wins.
		default:
			// Sealed, aborted or cancelled — the stream no longer needs
			// a clock.
			return
		}
		if target >= horizonSec {
			return
		}
	}
}

// runningLocked counts in-flight replays. Callers hold s.mu.
func (s *server) runningLocked() int {
	running := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.status == "running" {
			running++
		}
		j.mu.Unlock()
	}
	return running
}

// running counts in-flight replays (the jobs_running gauge).
func (s *server) running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runningLocked()
}

// pendingSlots counts claimed-but-unpublished quota slots (the
// jobs_pending gauge).
func (s *server) pendingSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// ingestQueueDepth sums the pending events of every retained ingest
// stream — settled streams are torn down, so they contribute zero.
func (s *server) ingestQueueDepth() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth := 0
	for _, j := range s.jobs {
		if j.ingest != nil {
			depth += j.ingest.Pending()
		}
	}
	return float64(depth)
}

// ingestWatermarkLag reports the worst watermark lag across running
// ingest jobs. Settled jobs are excluded: their lag is frozen at
// whatever the stream last saw and no longer describes live debt.
func (s *server) ingestWatermarkLag() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var worst int64
	for _, j := range s.jobs {
		if j.ingest == nil {
			continue
		}
		j.mu.Lock()
		running := j.status == "running"
		j.mu.Unlock()
		if !running {
			continue
		}
		if lag := j.ingest.WatermarkLag(); lag > worst {
			worst = lag
		}
	}
	return float64(worst)
}

// ingestBlockedSeconds is the monotonic backpressure-stall total: the
// retired accumulator plus the live totals of not-yet-retired streams.
func (s *server) ingestBlockedSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	nanos := s.retiredBlockedNanos
	for _, j := range s.jobs {
		if j.ingest != nil && !j.blockedRetired {
			nanos += int64(j.ingest.Blocked())
		}
	}
	return time.Duration(nanos).Seconds()
}

// retireIngest folds a settled ingest job's stall total into the
// retired accumulator, exactly once, so eviction from the registry
// cannot make the blocked-seconds counter regress.
func (s *server) retireIngest(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.ingest == nil || j.blockedRetired {
		return
	}
	j.blockedRetired = true
	s.retiredBlockedNanos += int64(j.ingest.Blocked())
}

// quotaExceededLocked returns the 429 error when the quota is
// exhausted, nil otherwise. Callers hold s.mu.
func (s *server) quotaExceededLocked() error {
	if used := s.runningLocked() + s.pending; used >= s.maxJobs {
		return fmt.Errorf("job quota exhausted: %d replays already running (max %d)", used, s.maxJobs)
	}
	return nil
}

// claimSlot reserves a quota slot before the handler does any heavy
// lifting (spooling a multi-gigabyte body, opening a source): the
// reservation is counted in pending until startJob converts it into a
// registered job or releaseSlot gives it back, so concurrent
// submissions cannot each spool a full body only to be refused.
func (s *server) claimSlot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.quotaExceededLocked(); err != nil {
		s.met.jobsRejected.Inc()
		return err
	}
	s.pending++
	return nil
}

// releaseSlot returns a claimed-but-unused quota slot.
func (s *server) releaseSlot() {
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
}

// startJob starts the replay under ctx and publishes the job, consuming
// the quota slot the caller claimed with claimSlot. The job is only
// registered with its replay handle attached (DELETE and followers can
// never observe a half-built one). It returns an HTTP status alongside
// the error so handlers pass refusals through uniformly.
func (s *server) startJob(ctx context.Context, sp replaySpec, src consumelocal.Source, cleanup func(), extra ...consumelocal.Option) (*job, int, error) {
	// Every job records into the daemon's shared per-stage set, so
	// /metrics exposes daemon-wide source/settle/emit totals.
	opts := append(sp.options(), consumelocal.WithReplayMetrics(s.met.replay))
	rep, err := consumelocal.Replay(ctx, src, append(opts, extra...)...)
	if err != nil {
		s.releaseSlot()
		if cleanup != nil {
			cleanup()
		}
		return nil, http.StatusBadRequest, err
	}

	kind := sp.kind
	if kind == "" {
		kind = "trace"
	}
	j := &job{
		name:    sp.name,
		kind:    kind,
		mode:    sp.mode,
		srv:     s,
		started: time.Now().UTC(),
		// rep.Meta was captured synchronously by Replay before the engine
		// goroutines began consuming src; reading src.Meta() here instead
		// would race any Source whose metadata is not an immutable field.
		meta:     rep.Meta(),
		replay:   rep,
		cleanup:  cleanup,
		status:   "running",
		changed:  make(chan struct{}),
		rawQuery: sp.rawQuery,
	}
	if j.name == "" {
		j.name = j.meta.Name
	}
	// An ingest-sourced job keeps its queue handle: the sessions/finish
	// endpoints feed it, and the idle watchdog cancels the job when the
	// producer goes silent (a crashed broadcast system must not pin a
	// quota slot forever). Successful ingest calls re-arm the watchdog.
	j.ingest, _ = src.(*consumelocal.IngestSource)
	s.armWatchdog(j)
	s.mu.Lock()
	s.pending--
	j.id = s.nextID
	s.nextID++
	s.jobs[j.id] = j
	evicted := s.evictLocked()
	s.mu.Unlock()
	s.dropStored(evicted)
	// The admission record lands — fsynced — before the 202/200 goes
	// out, so a job the client was told exists survives a crash (as
	// "interrupted" if it never finishes).
	s.journalAppend(s.createdRecord(j))

	s.met.jobsSubmitted.With1(kind).Inc()
	s.logger.Info("job started",
		slog.Int("job", j.id),
		slog.String("kind", kind),
		slog.String("mode", j.mode.String()),
		slog.String("name", j.name))
	go j.pump()
	return j, http.StatusOK, nil
}

// armWatchdog arms an ingest job's idle watchdog (a no-op for other
// jobs or with the watchdog disabled). Shared by startJob and journal
// recovery — a resumed stream gets a fresh idle window for its producer
// to reattach in.
func (s *server) armWatchdog(j *job) {
	if j.ingest == nil || s.ingestIdle <= 0 {
		return
	}
	idle := s.ingestIdle
	fire := func() {
		j.mu.Lock()
		if j.watchdogDisarmed || j.status != "running" {
			j.mu.Unlock()
			return
		}
		// A producer blocked in backpressure is not idle: its queued
		// sessions are still draining through the replay. Nor is one
		// whose last successful push was under the deadline ago —
		// re-arm for the remainder instead of trusting timer resets
		// to have raced correctly.
		remaining := idle - time.Since(j.lastActive)
		if j.ingest.Pending() > 0 || remaining > 0 {
			if remaining < idle/10 {
				remaining = idle / 10
			}
			j.idleTimer.Reset(remaining)
			j.mu.Unlock()
			return
		}
		j.idleFired = true
		j.mu.Unlock()
		j.replay.Cancel()
	}
	j.mu.Lock()
	j.lastActive = time.Now()
	j.idleTimer = time.AfterFunc(idle, fire)
	j.mu.Unlock()
}

// pump follows the replay to completion: snapshot history grows as the
// job runs (broadcast to every follower), and the terminal status is
// settled from the replay outcome.
func (j *job) pump() {
	for snap := range j.replay.Snapshots() {
		t0 := time.Now()
		j.mu.Lock()
		j.snaps = append(j.snaps, snap)
		if len(j.snaps) > maxJobSnapshots {
			// Drop the older half in one move, so eviction costs O(1)
			// amortised per snapshot instead of an O(cap) shift on every
			// append past the cap.
			drop := len(j.snaps) - maxJobSnapshots/2
			j.snaps = append(j.snaps[:0], j.snaps[drop:]...)
			j.snapsStart += drop
		}
		j.broadcastLocked()
		j.mu.Unlock()
		j.srv.met.snapshotEmit.Observe(time.Since(t0).Seconds())
	}
	res, err := j.replay.Result()

	j.mu.Lock()
	switch {
	case err == nil:
		j.status = "done"
		j.result = res
	case errors.Is(err, context.Canceled):
		j.status = "cancelled"
		j.errMsg = err.Error()
		if j.idleFired {
			j.errMsg = "ingest stream idle: the producer pushed nothing before the idle deadline; job cancelled"
		}
	default:
		j.status = "failed"
		j.errMsg = err.Error()
	}
	// The interrupt closure pins the submitting request's connection
	// (ResponseController and buffers); drop it so a settled job in the
	// retained registry does not keep up to 32 dead connections alive.
	j.interrupt = nil
	j.broadcastLocked()
	status, errMsg := j.status, j.errMsg
	j.mu.Unlock()

	if j.idleTimer != nil {
		j.idleTimer.Stop()
	}
	if j.cleanup != nil {
		j.cleanup()
		j.cleanup = nil
	}
	// Persist the terminal state: a done job's full result document
	// first, then the journalled terminal record — the order that keeps
	// "journal says done" implying "the store can serve it".
	j.persistFinished()
	// Fold the stream's stall total into the retired accumulator after
	// cleanup aborted the queue, so the live sum never counts a stall
	// that lands between retirement and the abort.
	j.srv.retireIngest(j)
	j.srv.met.jobsFinished.With1(status).Inc()
	j.srv.logger.Info("job finished",
		slog.Int("job", j.id),
		slog.String("kind", j.kind),
		slog.String("status", status),
		slog.String("err", errMsg),
		slog.Duration("ran", time.Since(j.started)))
}

// handleCreateJob starts an asynchronous replay: the request returns as
// soon as the job is admitted (202) and the replay runs in the
// background, pollable through GET /v1/jobs/{id} and streamable through
// GET /v1/jobs/{id}/snapshots until DELETE cancels it.
func (s *server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.handleDraining(w) {
		return
	}
	sp, err := parseSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A live ingest replay must run on the streaming engine: the batch
	// engines materialise the whole source before simulating, which for
	// an unsealed stream means blocking until the broadcast ends — and
	// their materialise step cannot be interrupted while the producer is
	// silent.
	if r.URL.Query().Get("source") == "ingest" && sp.mode != consumelocal.EngineStreaming {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("source=ingest requires engine=streaming; the %s engine cannot follow an unsealed stream", sp.mode))
		return
	}
	switch r.URL.Query().Get("source") {
	case "generator":
		sp.kind = "generator"
	case "ingest":
		sp.kind = "ingest"
		sp.rawQuery = r.URL.RawQuery
	default:
		sp.kind = "trace"
	}
	// Claim the quota slot before spooling the body, so over-quota
	// submissions are refused without writing a byte to disk. The
	// Retry-After gives client backoff a real signal: quota clears as
	// soon as a running replay settles.
	if err := s.claimSlot(); err != nil {
		w.Header().Set("Retry-After", quotaRetryAfter)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	src, cleanup, err := s.jobSource(w, r)
	if err != nil {
		s.releaseSlot()
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	j, status, err := s.startJob(context.Background(), sp, src, cleanup)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// errIngestJobOver is the abort cause recorded when an ingest job
// settles (done, failed or cancelled) and its queue is torn down: the
// diagnosis a producer sees when it keeps pushing afterwards.
var errIngestJobOver = errors.New("the replay job is no longer running")

// ingestBatch is the JSON form of one sessions push: a batch of
// sessions in start order, optionally advancing the watermark after the
// batch lands.
type ingestBatch struct {
	Sessions     []trace.Session `json:"sessions"`
	WatermarkSec *int64          `json:"watermark_sec,omitempty"`
}

// ingestJob resolves {id} to an ingest job, writing the error response
// itself otherwise.
func (s *server) ingestJob(w http.ResponseWriter, r *http.Request) *job {
	j := s.lookup(w, r)
	if j == nil {
		return nil
	}
	if j.ingest == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %d is not an ingest job", j.id))
		return nil
	}
	return j
}

// touchIngest records successful producer activity. The watchdog
// measures idleness against the last touch (and against queue depth),
// so touching per accepted session keeps a long-running batch alive
// without racing timer resets against a concurrent fire.
func (j *job) touchIngest() {
	if j.idleTimer == nil {
		return
	}
	j.mu.Lock()
	j.lastActive = time.Now()
	j.mu.Unlock()
}

// handleIngestSessions appends a batch of sessions to a live ingest
// job: CSV rows (the interchange columns, header optional) or a JSON
// {"sessions": [...]} document by Content-Type. The watermark advances
// when the JSON carries watermark_sec or the request a ?watermark=
// query. Pushes block while the replay's queue is full — backpressure
// on the producer — and a batch rejected part-way reports how many
// sessions landed so the producer can resume without double-pushing.
func (s *server) handleIngestSessions(w http.ResponseWriter, r *http.Request) {
	j := s.ingestJob(w, r)
	if j == nil {
		return
	}
	var (
		sessions  []trace.Session
		watermark *int64
	)
	// The batch is materialised before pushing (so ordering failures can
	// report an exact resume point), so cap it well below -max-body —
	// which was sized for disk-spooled trace uploads, not for RAM. A
	// producer with more than a few hundred thousand sessions per push
	// splits the batch; that is the protocol's shape anyway.
	limit := s.maxBody
	if limit > maxIngestBatchBytes {
		limit = maxIngestBatchBytes
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var batch ingestBatch
		if err := json.NewDecoder(body).Decode(&batch); err != nil {
			writeError(w, batchErrStatus(err), fmt.Errorf("decode session batch: %w", err))
			return
		}
		sessions, watermark = batch.Sessions, batch.WatermarkSec
	} else {
		var err error
		if sessions, err = trace.ReadSessionsCSV(body); err != nil {
			writeError(w, batchErrStatus(err), err)
			return
		}
	}
	if raw := r.URL.Query().Get("watermark"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query watermark: %w", err))
			return
		}
		watermark = &n
	}
	s.met.ingestBatches.Inc()

	pushed := 0
	for _, sess := range sessions {
		if err := j.ingest.PushContext(r.Context(), sess); err != nil {
			// The accepted prefix is real ingested data the response
			// reports (and producers resume from) — journal it before
			// acknowledging it.
			if perr := s.journalBatch(j, sessions[:pushed], false); perr != nil {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("journal batch: %w", perr))
				return
			}
			writeIngestError(w, r, j, pushed, err)
			return
		}
		pushed++
		s.met.ingestSessions.Inc()
		// Touch per accepted session, not per batch: a large batch
		// draining through backpressure for longer than the idle
		// deadline is a live producer, not a silent one.
		j.touchIngest()
	}
	advanced := false
	if watermark != nil {
		if err := j.ingest.AdvanceContext(r.Context(), *watermark); err != nil {
			if perr := s.journalBatch(j, sessions[:pushed], false); perr != nil {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("journal batch: %w", perr))
				return
			}
			writeIngestError(w, r, j, pushed, err)
			return
		}
		advanced = true
		j.touchIngest()
	}
	// Fsync-on-commit: the batch record must be durable before the 200
	// acknowledges it. A journal failure here refuses the ack — the
	// producer must treat the batch as indeterminate — rather than
	// acknowledging sessions a restart would forget.
	if err := s.journalBatch(j, sessions[:pushed], advanced); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("journal batch: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":           j.id,
		"pushed":        pushed,
		"total_pushed":  j.ingest.Pushed(),
		"watermark_sec": j.ingest.Watermark(),
	})
}

// batchErrStatus distinguishes an oversized batch (413, the cap is the
// server's) from a malformed one (400, the bytes are the producer's).
func batchErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeIngestError maps a push/advance failure onto an HTTP status:
// ordering violations and a stream that no longer accepts input are
// state conflicts (409), a producer that disconnected mid-push gets no
// response (nobody is listening), anything else — malformed or
// out-of-range sessions — is a bad request. The response carries how
// many sessions of the batch landed before the failure.
func writeIngestError(w http.ResponseWriter, r *http.Request, j *job, pushed int, err error) {
	if r.Context().Err() != nil {
		// The push failed because this producer went away, not because
		// the stream refused it.
		return
	}
	status := http.StatusBadRequest
	if errors.Is(err, consumelocal.ErrOutOfOrder) || errors.Is(err, consumelocal.ErrIngestClosed) {
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]any{
		"error":  err.Error(),
		"job":    j.id,
		"pushed": pushed,
	})
}

// handleIngestFinish seals an ingest stream: no further sessions are
// accepted, the queued ones drain, the final windows settle and the job
// completes ("done"). Sealing an already-sealed stream is a no-op;
// sealing a cancelled or failed job reports the conflict.
func (s *server) handleIngestFinish(w http.ResponseWriter, r *http.Request) {
	j := s.ingestJob(w, r)
	if j == nil {
		return
	}
	if err := j.ingest.Close(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	// The stream is sealed: no further producer activity is expected or
	// possible, so disarm the watchdog — a large queued backlog may
	// legitimately take longer than the idle deadline to drain.
	if j.idleTimer != nil {
		j.mu.Lock()
		j.watchdogDisarmed = true
		j.mu.Unlock()
		j.idleTimer.Stop()
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleReplay is the synchronous form: it consumes a trace CSV from
// the request body — streamed, never spooled — and writes NDJSON
// snapshots back while the replay progresses, finishing with a summary
// line. Disconnecting cancels the replay (the request context is the
// job's context); the job stays queryable through /v1/jobs afterwards.
func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if s.handleDraining(w) {
		return
	}
	sp, err := parseSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sp.kind = "sync"
	// The replay reads the request body while snapshots stream out on
	// the response: opt in to concurrent read/write on HTTP/1.x, where
	// the server otherwise closes the body at the first response write.
	_ = http.NewResponseController(w).EnableFullDuplex()

	if err := s.claimSlot(); err != nil {
		w.Header().Set("Retry-After", quotaRetryAfter)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	// The same spool cap as /v1/jobs: batch and parallel engines
	// materialise the body in memory, so an unbounded stream must not
	// reach them. Exceeding the cap mid-replay fails the job with a
	// body-read error. The read deadline covers only the
	// pre-registration phase (CSV header, job startup): a client that
	// stalls before the job is registered cannot pin its claimed slot
	// unseen, while one that stalls afterwards holds a visible running
	// job an operator can DELETE. The deadline is lifted below, since
	// the engine reads the body for the whole replay.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(spoolIdleTimeout))
	src, err := consumelocal.CSVSource(http.MaxBytesReader(nil, r.Body, s.maxBody))
	if err != nil {
		s.releaseSlot()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The response is attached as a Sink, not a follower over the
	// retained history: sinks deliver every snapshot with backpressure
	// (a slow client slows the replay), so the synchronous stream is
	// always complete — unlike /v1/jobs/{id}/snapshots, which may skip
	// ahead past evicted history.
	sink := &syncSink{w: w, ready: make(chan struct{})}
	j, status, err := s.startJob(r.Context(), sp, src, nil, consumelocal.WithSink(sink))
	if err != nil {
		writeError(w, status, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-ID", strconv.Itoa(j.id))
	w.WriteHeader(http.StatusOK)
	_ = rc.SetReadDeadline(time.Time{})
	j.mu.Lock()
	j.interrupt = func() { _ = rc.SetReadDeadline(time.Now()) }
	j.mu.Unlock()
	sink.start(j.id)

	// Snapshot lines stream from the replay's pump goroutine; wait for
	// the job to settle before writing the closing line (no writes
	// interleave — sinks finish before the status transition lands).
	// The wait does not bail on r.Context().Done(): the request context
	// is the job's context, so a disconnect unwinds the replay and
	// settles the status promptly, and returning earlier would let the
	// sink write to the ResponseWriter after the handler exits.
	for {
		j.mu.Lock()
		settled := j.status != "running"
		changed := j.changed
		j.mu.Unlock()
		if settled {
			break
		}
		<-changed
	}

	j.mu.Lock()
	res, errMsg := j.result, j.errMsg
	j.mu.Unlock()
	if errMsg != "" {
		sink.write(replayLine{Job: j.id, Error: errMsg})
		return
	}
	if res != nil {
		sink.write(replayLine{Job: j.id, Summary: summarize(res)})
	}
}

// syncSink streams each snapshot of a synchronous replay straight onto
// the response as it settles. It blocks snapshot delivery until start
// publishes the job id (the replay begins before registration hands the
// id back), and a failed client write aborts the replay through the
// sink-error path.
type syncSink struct {
	w     http.ResponseWriter
	id    int
	ready chan struct{}
}

// start releases snapshot delivery once the job id is known.
func (s *syncSink) start(id int) {
	s.id = id
	close(s.ready)
}

func (s *syncSink) write(l replayLine) error {
	if err := json.NewEncoder(s.w).Encode(l); err != nil {
		return err
	}
	if flusher, ok := s.w.(http.Flusher); ok {
		flusher.Flush()
	}
	return nil
}

// Snapshot implements consumelocal.Sink.
func (s *syncSink) Snapshot(snap engine.Snapshot) error {
	<-s.ready
	return s.write(replayLine{Job: s.id, Snapshot: &snap})
}

// Finish implements consumelocal.Sink; the handler writes the closing
// summary/error line itself after the job record settles.
func (s *syncSink) Finish(*sim.Result, error) error { return nil }

// replayLine is one NDJSON line of the synchronous replay response.
type replayLine struct {
	Job      int              `json:"job"`
	Snapshot *engine.Snapshot `json:"snapshot,omitempty"`
	Error    string           `json:"error,omitempty"`
	Summary  *replaySummary   `json:"summary,omitempty"`
}

// follow replays the job's snapshot history through emit — past entries
// first, then live ones as they land — until the job finishes or ctx is
// done. Positions are absolute snapshot indices, so eviction of the
// retained window (snapsStart advancing) makes a lagging follower skip
// the dropped entries instead of stalling.
func (j *job) follow(ctx context.Context, emit func(engine.Snapshot)) {
	next := 0
	for {
		j.mu.Lock()
		if next < j.snapsStart {
			next = j.snapsStart
		}
		pending := append([]engine.Snapshot(nil), j.snaps[next-j.snapsStart:]...)
		next = j.snapsStart + len(j.snaps)
		finished := j.status != "running"
		changed := j.changed
		j.mu.Unlock()

		for _, snap := range pending {
			emit(snap)
		}
		if finished {
			return
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return
		}
	}
}

// handleJobSnapshots streams a job's snapshots as NDJSON: the full
// history first, then live mid-flight snapshots until the job finishes,
// closing with a status line. Any number of followers may attach to the
// same running job.
func (s *server) handleJobSnapshots(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	j.follow(r.Context(), func(snap engine.Snapshot) {
		_ = enc.Encode(snap)
		if flusher != nil {
			flusher.Flush()
		}
	})
	j.mu.Lock()
	status, errMsg := j.status, j.errMsg
	j.mu.Unlock()
	if status != "running" {
		_ = enc.Encode(map[string]string{"status": status, "error": errMsg})
	}
}

// handleCancelJob cancels a running replay mid-stream. Cancellation is
// idempotent; a finished job reports its settled status unchanged. A
// prompt unwind (the usual case) is reflected in the response — the
// wait is bounded, so a Source stuck inside Next still gets an answer:
// the in-flight view, with status "cancelled" arriving via polling once
// the pipeline releases.
func (s *server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	// A recovered job has no replay behind it and is already settled;
	// cancellation is the idempotent no-op the settled branch reports.
	if j.replay != nil {
		j.replay.Cancel()
	}
	// A sync replay may be blocked reading a stalled client's body,
	// where cancellation is not observed; cut the read so the slot is
	// actually freed.
	j.mu.Lock()
	if j.status == "running" && j.interrupt != nil {
		j.interrupt()
	}
	j.mu.Unlock()
	deadline := time.After(time.Second)
	for {
		j.mu.Lock()
		settled := j.status != "running"
		changed := j.changed
		j.mu.Unlock()
		if settled {
			break
		}
		select {
		case <-changed:
		case <-deadline:
			// Still unwinding (e.g. a Source blocked in Next); report the
			// in-flight view rather than hanging the client.
			writeJSON(w, http.StatusOK, j.view())
			return
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.view())
}

// drainJobs gives running replays up to drain to finish on their own,
// then cancels the stragglers and waits a bounded moment for their
// pipelines to unwind. The shutdown path calls it before closing the
// HTTP server, so in-flight sync replay handlers — which block until
// their job settles — can complete inside the server's own shutdown
// deadline.
func (s *server) drainJobs(drain time.Duration) {
	deadline := time.Now().Add(drain)
	for s.running() > 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	running := s.running()
	if running == 0 {
		return
	}
	s.logger.Info("drain deadline passed; cancelling running jobs", slog.Int("running", running))
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.replay == nil {
			// Recovered jobs are settled and have no pipeline to unwind.
			continue
		}
		j.replay.Cancel()
		// As in DELETE: a sync replay may be blocked reading a stalled
		// client's body where cancellation is not observed; cut the read.
		j.mu.Lock()
		if j.status == "running" && j.interrupt != nil {
			j.interrupt()
		}
		j.mu.Unlock()
	}
	settle := time.Now().Add(5 * time.Second)
	for s.running() > 0 && time.Now().Before(settle) {
		time.Sleep(25 * time.Millisecond)
	}
}

// evictLocked drops the oldest finished jobs once the registry exceeds
// maxRetainedJobs, returning the evicted IDs so the caller can drop
// their stored results outside the lock (eviction must never do file
// I/O under s.mu). Running jobs are never evicted. Callers hold s.mu.
func (s *server) evictLocked() []int {
	if len(s.jobs) <= maxRetainedJobs {
		return nil
	}
	ids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var evicted []int
	for _, id := range ids {
		if len(s.jobs) <= maxRetainedJobs {
			break
		}
		j := s.jobs[id]
		j.mu.Lock()
		finished := j.status != "running"
		j.mu.Unlock()
		if finished {
			delete(s.jobs, id)
			evicted = append(evicted, id)
		}
	}
	return evicted
}

// replaySummary is the closing line of a replay response: system offload
// and energy savings under both published parameter sets.
type replaySummary struct {
	Swarms  int                `json:"swarms"`
	Total   sim.Tally          `json:"total"`
	Offload float64            `json:"offload"`
	Energy  []sim.EnergyReport `json:"energy"`
}

func summarize(res *sim.Result) *replaySummary {
	sum := &replaySummary{
		Swarms:  len(res.Swarms),
		Total:   res.Total,
		Offload: res.Total.Offload(),
	}
	for _, p := range energy.BothModels() {
		sum.Energy = append(sum.Energy, sim.Evaluate(res.Total, p))
	}
	return sum
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool { return views[i].ID < views[k].ID })
	writeJSON(w, http.StatusOK, views)
}

// lookup resolves the {id} path segment.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d not found", id))
		return nil
	}
	return j
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

// handleJobEnergy prices the job's latest cumulative tally — live while
// the replay runs, final once done — under both Table IV parameter sets.
func (s *server) handleJobEnergy(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	var tally sim.Tally
	if n := len(j.snaps); n > 0 {
		tally = j.snaps[n-1].Cumulative
	}
	if j.result != nil {
		tally = j.result.Total
	}
	status := j.status
	j.mu.Unlock()

	reports := make([]sim.EnergyReport, 0, 2)
	for _, p := range energy.BothModels() {
		reports = append(reports, sim.Evaluate(tally, p))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":     j.id,
		"status":  status,
		"tally":   tally,
		"offload": tally.Offload(),
		"energy":  reports,
	})
}

// handleJobCarbon computes the per-user carbon credit transfer
// distribution (paper Fig. 6) of a finished replay. Requires the replay
// to have tracked users (the default).
func (s *server) handleJobCarbon(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	res := j.result
	status := j.status
	j.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %d is %s; carbon credits need a finished replay", j.id, status))
		return
	}
	if res.Users == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %d ran without user tracking (track_users=false)", j.id))
		return
	}
	dists := make([]carbon.Distribution, 0, 2)
	for _, p := range energy.BothModels() {
		dists = append(dists, carbon.Distribute(res.Users, p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "carbon": dists})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

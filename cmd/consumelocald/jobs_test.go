package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"consumelocal"
	"consumelocal/internal/engine"
	"consumelocal/internal/trace"
)

// gatedSource is a deterministic live Source for job-manager tests: each
// session is released by one token on gate (close the gate to release
// the rest), so tests control exactly how far a replay has progressed
// when they poll, follow or cancel it.
type gatedSource struct {
	meta     trace.Meta
	sessions []trace.Session
	gate     chan struct{}

	mu       sync.Mutex
	consumed int
}

func newGatedSource(n int, spacingSec int64) *gatedSource {
	g := &gatedSource{
		meta: trace.Meta{
			Name:       "gated",
			HorizonSec: int64(n)*spacingSec + 7200,
			NumUsers:   100,
			NumContent: 4,
			NumISPs:    2,
		},
		gate: make(chan struct{}, n),
	}
	for i := 0; i < n; i++ {
		g.sessions = append(g.sessions, trace.Session{
			UserID:      uint32(i % 100),
			ContentID:   uint32(i % 4),
			ISP:         uint8(i % 2),
			Exchange:    uint16(i % 345),
			StartSec:    int64(i) * spacingSec,
			DurationSec: 600,
			Bitrate:     trace.BitrateSD,
		})
	}
	return g
}

func (g *gatedSource) Meta() trace.Meta { return g.meta }

func (g *gatedSource) Next() (trace.Session, error) {
	g.mu.Lock()
	i := g.consumed
	g.mu.Unlock()
	if i >= len(g.sessions) {
		return trace.Session{}, io.EOF
	}
	<-g.gate
	g.mu.Lock()
	s := g.sessions[g.consumed]
	g.consumed++
	g.mu.Unlock()
	return s, nil
}

func (g *gatedSource) Consumed() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.consumed
}

// release feeds n session tokens through the gate.
func (g *gatedSource) release(n int) {
	for i := 0; i < n; i++ {
		g.gate <- struct{}{}
	}
}

// gatedServer wires a test server whose async jobs read from gated
// sources, handed out in submission order.
func gatedServer(t *testing.T, maxJobs int, sources ...*gatedSource) *httptest.Server {
	t.Helper()
	srv := newServer(maxJobs)
	var mu sync.Mutex
	next := 0
	srv.sourceHook = func(*http.Request) (consumelocal.Source, func(), error) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(sources) {
			return nil, nil, fmt.Errorf("test: no source for submission %d", next+1)
		}
		src := sources[next]
		next++
		return src, nil, nil
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts
}

func postJob(t *testing.T, url string) (*http.Response, jobView) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, v
}

func pollJobStatus(t *testing.T, base string, id int, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v jobView
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", base, id), &v)
		if v.Status == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in status %q (want %q)", id, v.Status, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func deleteJob(t *testing.T, base string, id int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestAsyncJobLifecycle submits a CSV-bodied async job and follows it
// through 202 → running → done, then reads its snapshot history and
// energy report.
func TestAsyncJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	csv := testTraceCSV(t)

	resp, err := http.Post(ts.URL+"/v1/jobs?window=21600&name=async", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status = %d, want 202", resp.StatusCode)
	}
	if v.ID == 0 || v.Name != "async" || v.Mode != "streaming" {
		t.Fatalf("implausible job view: %+v", v)
	}

	final := pollJobStatus(t, ts.URL, v.ID, "done")
	if final.Snapshots < 2 {
		t.Fatalf("finished job has %d snapshots, want several", final.Snapshots)
	}
	if !final.Snapshot.Final {
		t.Fatal("latest snapshot of a finished job should be final")
	}

	// Full snapshot history as NDJSON, closed by a status line.
	sresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/snapshots", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var lines, statusLines int
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, ok := m["status"]; ok {
			statusLines++
			if !strings.Contains(sc.Text(), `"done"`) {
				t.Fatalf("closing status line = %s, want done", sc.Text())
			}
			continue
		}
		lines++
	}
	if lines != final.Snapshots || statusLines != 1 {
		t.Fatalf("snapshot stream: %d lines + %d status, want %d + 1", lines, statusLines, final.Snapshots)
	}

	var energyOut struct {
		Status  string  `json:"status"`
		Offload float64 `json:"offload"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d/energy", ts.URL, v.ID), &energyOut)
	if energyOut.Status != "done" || energyOut.Offload <= 0 {
		t.Fatalf("energy endpoint: %+v", energyOut)
	}
}

// TestAsyncJobGeneratorSource runs a job off the live synthetic
// generator: no request body, no trace file, workload streamed straight
// into the engine.
func TestAsyncJobGeneratorSource(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	resp, v := postJob(t, ts.URL+"/v1/jobs?source=generator&scale=0.001&days=2&window=21600")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generator job status = %d, want 202", resp.StatusCode)
	}
	final := pollJobStatus(t, ts.URL, v.ID, "done")
	if final.Snapshots == 0 || final.Snapshot.SessionsSeen == 0 {
		t.Fatalf("generator job finished empty: %+v", final)
	}
	if final.Snapshot.Cumulative.Offload() <= 0 {
		t.Fatal("generator job reports no offload")
	}
}

// TestJobQuotaConcurrencyAndCancel is the job-manager acceptance test:
// two gated replays run concurrently, a third submission bounces off the
// quota with 429, DELETE cancels one mid-stream, and the freed slot
// admits a new job.
func TestJobQuotaConcurrencyAndCancel(t *testing.T) {
	const sessions = 40
	a := newGatedSource(sessions, 1800)
	b := newGatedSource(sessions, 1800)
	c := newGatedSource(sessions, 1800)
	ts := gatedServer(t, 2, a, b, c)

	respA, jobA := postJob(t, ts.URL+"/v1/jobs?name=a")
	respB, jobB := postJob(t, ts.URL+"/v1/jobs?name=b")
	if respA.StatusCode != http.StatusAccepted || respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job submissions = %d/%d, want 202/202", respA.StatusCode, respB.StatusCode)
	}

	// Both replays are live at once: each consumes sessions only when
	// its gate feeds them, and both make progress while both run.
	a.release(4)
	b.release(4)
	waitFor(t, "both jobs consuming", func() bool { return a.Consumed() >= 4 && b.Consumed() >= 4 })
	var views []jobView
	getJSON(t, ts.URL+"/v1/jobs", &views)
	running := 0
	for _, v := range views {
		if v.Status == "running" {
			running++
		}
	}
	if running != 2 {
		t.Fatalf("%d jobs running, want 2 concurrent replays", running)
	}

	// Quota: a third replay is refused with 429 while both slots are
	// taken — before its source is even resolved.
	respOver, _ := postJob(t, ts.URL+"/v1/jobs?name=over")
	if respOver.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission = %d, want 429", respOver.StatusCode)
	}

	// DELETE cancels job A mid-stream: its source is released and the
	// pipeline unwinds, but consumption stops at the cancellation point.
	if resp := deleteJob(t, ts.URL, jobA.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	close(a.gate)
	final := pollJobStatus(t, ts.URL, jobA.ID, "cancelled")
	if final.Error == "" {
		t.Fatal("cancelled job reports no error")
	}
	if got := a.Consumed(); got >= sessions {
		t.Fatalf("cancelled job consumed the whole source (%d sessions)", got)
	}

	// The freed slot admits the next submission, which reads source c
	// (the refused attempt never consumed one).
	respC, jobC := postJob(t, ts.URL+"/v1/jobs?name=c")
	if respC.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submission = %d, want 202", respC.StatusCode)
	}

	close(b.gate)
	close(c.gate)
	pollJobStatus(t, ts.URL, jobB.ID, "done")
	pollJobStatus(t, ts.URL, jobC.ID, "done")
}

// TestJobSnapshotsMidFlight follows a running job's snapshot stream:
// history arrives first, live windows land while the replay is provably
// still running, and the stream closes with the job's final status.
func TestJobSnapshotsMidFlight(t *testing.T) {
	src := newGatedSource(40, 1800) // a window boundary every 2 sessions
	ts := gatedServer(t, 1, src)

	resp, v := postJob(t, ts.URL+"/v1/jobs?name=live")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission = %d, want 202", resp.StatusCode)
	}

	// Let a few windows settle, then attach a follower.
	src.release(8)
	waitFor(t, "windows settled", func() bool {
		var view jobView
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &view)
		return view.Snapshots >= 2
	})

	sresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/snapshots", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Two history lines arrive while the job still runs.
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("snapshot stream ended after %d lines: %v", i, sc.Err())
		}
		var snap map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad snapshot line %q: %v", sc.Text(), err)
		}
		if _, ok := snap["cumulative"]; !ok {
			t.Fatalf("snapshot line missing cumulative tally: %s", sc.Text())
		}
	}
	var mid jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &mid)
	if mid.Status != "running" {
		t.Fatalf("job status while following = %q, want running", mid.Status)
	}

	// Release the rest; the follower sees the remaining snapshots and
	// the closing status line.
	close(src.gate)
	sawStatus := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"status"`) {
			sawStatus = true
			if !strings.Contains(sc.Text(), `"done"`) {
				t.Fatalf("closing line = %s, want done", sc.Text())
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawStatus {
		t.Fatal("snapshot stream missing closing status line")
	}
}

func TestCreateJobRejectsBadInput(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	for _, url := range []string{
		"/v1/jobs?ratio=nope",
		"/v1/jobs?engine=quantum",
		"/v1/jobs?source=quantum",
		"/v1/jobs?source=generator&scale=wat",
		"/v1/jobs?source=generator&scale=0",
		"/v1/jobs?source=generator&scale=1.5",
		"/v1/jobs?source=generator&days=0",
		"/v1/jobs?source=generator&days=400",
		"/v1/jobs?window=30",
	} {
		resp, err := http.Post(ts.URL+url, "text/csv", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, resp.StatusCode)
		}
	}

	// Garbage CSV body fails at source construction, before a job is
	// registered.
	resp, err := http.Post(ts.URL+"/v1/jobs", "text/csv", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}
	var views []jobView
	getJSON(t, ts.URL+"/v1/jobs", &views)
	if len(views) != 0 {
		t.Fatalf("rejected submissions registered %d jobs", len(views))
	}
}

func TestCancelMissingJob(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	if resp := deleteJob(t, ts.URL, 42); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE missing job = %d, want 404", resp.StatusCode)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFollowAcrossEviction drives job.follow across snapshot-history
// evictions: a caught-up follower must keep receiving new snapshots
// after snapsStart advances, and a follower that fell behind the
// retained window skips ahead instead of stalling (regression: follow
// once tracked slice-relative positions and starved forever at the
// first eviction).
func TestFollowAcrossEviction(t *testing.T) {
	j := &job{status: "running", changed: make(chan struct{})}
	for i := 0; i < 5; i++ {
		j.snaps = append(j.snaps, engine.Snapshot{Index: i})
	}

	emitted := make(chan int, 32)
	followDone := make(chan struct{})
	go func() {
		defer close(followDone)
		j.follow(context.Background(), func(snap engine.Snapshot) {
			emitted <- snap.Index
		})
	}()
	recv := func(want int) {
		t.Helper()
		select {
		case got := <-emitted:
			if got != want {
				t.Errorf("follow emitted snapshot %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for snapshot %d", want)
		}
	}
	for i := 0; i < 5; i++ {
		recv(i)
	}

	// push appends the snapshot and evicts the history down to keep
	// entries, exactly as pump does when maxJobSnapshots overflows.
	push := func(idx, keep int) {
		j.mu.Lock()
		j.snaps = append(j.snaps, engine.Snapshot{Index: idx})
		if drop := len(j.snaps) - keep; drop > 0 {
			j.snaps = append(j.snaps[:0], j.snaps[drop:]...)
			j.snapsStart += drop
		}
		j.broadcastLocked()
		j.mu.Unlock()
	}

	push(5, 3) // caught-up follower across an eviction
	recv(5)
	push(6, 2)
	recv(6)
	// Evict past the follower's position entirely: it must skip ahead to
	// the start of the retained window.
	j.mu.Lock()
	j.snaps = []engine.Snapshot{{Index: 9}}
	j.snapsStart = 9
	j.broadcastLocked()
	j.mu.Unlock()
	recv(9)

	j.mu.Lock()
	j.status = "done"
	j.broadcastLocked()
	j.mu.Unlock()
	select {
	case <-followDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follow did not return after the job finished")
	}
}

// TestCreateJobBodyTooLarge exercises the spool cap: a body larger than
// the server's maxBody is refused with 413 before any job registers.
func TestCreateJobBodyTooLarge(t *testing.T) {
	srv := newServer(0)
	srv.maxBody = 1024
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "text/csv", strings.NewReader(strings.Repeat("x", 4096)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
	var views []jobView
	getJSON(t, ts.URL+"/v1/jobs", &views)
	if len(views) != 0 {
		t.Fatalf("rejected submission registered %d jobs", len(views))
	}
}

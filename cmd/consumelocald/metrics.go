package main

import (
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"consumelocal/internal/obs"
)

// daemonMetrics is the daemon-wide instrumentation set served on
// GET /metrics: job lifecycle, HTTP traffic, ingest backpressure, spool
// volume and snapshot fan-out latency, plus the replay pipeline's
// shared per-stage counters. Hot-path updates are plain atomics; the
// derived gauges (running jobs, queue depths, watermark lag) are
// computed at scrape time from the job registry.
type daemonMetrics struct {
	reg   *obs.Registry
	start time.Time

	// replay is the per-stage instrumentation set shared by every job
	// the daemon runs (stage counters aggregate across jobs; the
	// per-stream ingest gauges are deliberately absent — the aggregate
	// consumelocald_ingest_* series below replace them).
	replay *obs.ReplayMetrics

	jobsSubmitted *obs.CounterVec // kind: trace|generator|ingest|sync
	jobsFinished  *obs.CounterVec // status: done|failed|cancelled
	jobsRejected  *obs.Counter
	jobsQuota     *obs.Gauge

	httpRequests *obs.CounterVec // route, code
	httpLatency  *obs.Histogram
	httpInflight *obs.Gauge

	ingestSessions *obs.Counter
	ingestBatches  *obs.Counter

	spooledBytes *obs.Counter
	snapshotEmit *obs.Histogram

	// Durability series. All stay zero unless the daemon runs with
	// -data-dir; recoverySecs doubles as a "durable mode on" signal.
	journalFsync       *obs.Histogram
	journalRecords     *obs.CounterVec // type: created|batch|watermark|finished|evicted|checkpoint
	journalErrors      *obs.Counter
	journalCompactions *obs.Counter
	journalReclaimed   *obs.Counter
	journalFaults      *obs.CounterVec // kind: write|fsync|mangle
	recoveryJobs       *obs.CounterVec // outcome: restored|resumed|resume_failed|interrupted|carried|dropped
	recoveryTorn       *obs.Counter
	recoverySecs       *obs.Gauge

	reqID atomic.Uint64
}

// newDaemonMetrics registers the daemon's series on a fresh registry.
// The derived gauges close over s, which they read under its own locks
// at scrape time — scrapes take s.mu (and per-job locks) but never the
// reverse, so the lock order stays registry → s.mu → j.mu.
func newDaemonMetrics(s *server) *daemonMetrics {
	r := obs.NewRegistry()
	m := &daemonMetrics{
		reg:    r,
		start:  time.Now(),
		replay: obs.NewStageMetrics(r),

		jobsSubmitted: r.CounterVec("consumelocald_jobs_submitted_total",
			"Replay jobs admitted, by submission kind (trace upload, generator, live ingest, synchronous replay).",
			"kind"),
		jobsFinished: r.CounterVec("consumelocald_jobs_finished_total",
			"Replay jobs settled, by terminal status.", "status"),
		jobsRejected: r.Counter("consumelocald_jobs_rejected_total",
			"Submissions refused because the concurrent-job quota was exhausted."),
		jobsQuota: r.Gauge("consumelocald_jobs_quota",
			"Configured concurrent-replay quota (-max-jobs)."),

		httpRequests: r.CounterVec("consumelocald_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		httpLatency: r.Histogram("consumelocald_http_request_seconds",
			"HTTP request latency. Streaming routes (snapshot followers, sync replays) legitimately run for the whole replay.",
			obs.LatencyBuckets),
		httpInflight: r.Gauge("consumelocald_http_inflight_requests",
			"HTTP requests currently being served."),

		ingestSessions: r.Counter("consumelocald_ingest_sessions_pushed_total",
			"Sessions accepted onto live ingest streams across all jobs."),
		ingestBatches: r.Counter("consumelocald_ingest_batches_total",
			"Session batches posted to live ingest streams (parsed successfully)."),

		spooledBytes: r.Counter("consumelocald_spooled_bytes_total",
			"Trace bytes spooled to temporary files for async job submissions."),
		snapshotEmit: r.Histogram("consumelocald_snapshot_emit_seconds",
			"Latency of publishing one snapshot to a job's retained history and followers.",
			obs.LatencyBuckets),

		journalFsync: r.Histogram("consumelocald_journal_fsync_seconds",
			"Latency of one job-journal append's write+fsync (the durability cost on the ingest ack path).",
			obs.LatencyBuckets),
		journalRecords: r.CounterVec("consumelocald_journal_records_total",
			"Job-journal records appended, by record type.", "type"),
		journalErrors: r.Counter("consumelocald_journal_append_errors_total",
			"Job-journal appends that failed. Batch-record failures refuse the ingest ack (500); lifecycle-record failures degrade durability loudly but keep serving."),
		journalCompactions: r.Counter("consumelocald_journal_compactions_total",
			"Online journal compactions completed (background checkpoint+rewrite on the size threshold)."),
		journalReclaimed: r.Counter("consumelocald_journal_compaction_reclaimed_bytes_total",
			"Journal bytes reclaimed by online compactions."),
		journalFaults: r.CounterVec("consumelocald_journal_injected_faults_total",
			"Faults injected into the journal write path by the testing seam, by kind (write, fsync, mangle). Always zero in production.",
			"kind"),
		recoveryJobs: r.CounterVec("consumelocald_recovery_jobs_total",
			"Jobs reconciled during startup replay, by outcome (restored, resumed, resume_failed, interrupted, carried, dropped).", "outcome"),
		recoveryTorn: r.Counter("consumelocald_recovery_torn_tail_total",
			"Startup replays that found and truncated a torn journal tail (expected after a crash mid-append)."),
		recoverySecs: r.Gauge("consumelocald_recovery_seconds",
			"Wall time the last startup recovery took (journal replay plus result reloads). Zero when -data-dir is off."),
	}
	m.jobsQuota.Set(float64(s.maxJobs))
	r.Info("consumelocald_build_info",
		"Build information; the value is always 1.",
		[2]string{"go_version", runtime.Version()})
	r.GaugeFunc("consumelocald_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(m.start).Seconds() })
	r.GaugeFunc("consumelocald_jobs_running",
		"Replay jobs currently running.",
		func() float64 { return float64(s.running()) })
	r.GaugeFunc("consumelocald_jobs_pending",
		"Quota slots claimed by submissions still starting up (spooling, opening sources).",
		func() float64 { return float64(s.pendingSlots()) })
	r.GaugeFunc("consumelocald_ingest_queue_depth",
		"Queued events across all live ingest streams (sum).",
		s.ingestQueueDepth)
	r.GaugeFunc("consumelocald_ingest_watermark_lag_seconds",
		"Largest trace-time gap between pushed sessions and the watermark across running ingest jobs.",
		s.ingestWatermarkLag)
	r.CounterFunc("consumelocald_ingest_blocked_seconds_total",
		"Seconds producers have spent blocked in backpressure across all ingest streams, ever.",
		s.ingestBlockedSeconds)
	r.GaugeFunc("consumelocald_journal_size_bytes",
		"Current job-journal file size (what the online-compaction threshold watches). Zero when -data-dir is off.",
		func() float64 {
			if s.jl == nil {
				return 0
			}
			return float64(s.jl.Size())
		})
	return m
}

// statusWriter records the response status for the request metrics. It
// forwards Flush (the streaming endpoints type-assert http.Flusher) and
// exposes the wrapped writer through Unwrap, so http.ResponseController
// (read deadlines, full-duplex on /v1/replay) keeps working.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps the daemon mux with request accounting: per-route
// request counts and latency, an in-flight gauge, and one structured
// log line per request carrying a daemon-unique request id. The route
// label is the mux's registered pattern — resolved via mux.Handler, not
// r.Pattern, because the middleware runs outside the mux — so label
// cardinality is bounded by the route table, never by client input.
func (m *daemonMetrics) instrument(mux *http.ServeMux, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		rid := m.reqID.Add(1)
		m.httpInflight.Add(1)
		rec := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(rec, r)
		m.httpInflight.Add(-1)
		dur := time.Since(start)
		m.httpLatency.Observe(dur.Seconds())
		m.httpRequests.With2(route, strconv.Itoa(rec.status())).Inc()
		logger.Info("request",
			slog.Uint64("req", rid),
			slog.String("method", r.Method),
			slog.String("url", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status()),
			slog.Duration("dur", dur),
			slog.String("remote", r.RemoteAddr))
	})
}

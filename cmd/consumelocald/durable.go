package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	"consumelocal"
	"consumelocal/internal/engine"
	"consumelocal/internal/joblog"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// storedResult is the result-store document of one finished job:
// everything GET /v1/jobs/{id}, /energy and /carbon serve, so a
// restarted daemon re-serves the job byte-for-byte without re-running
// the replay. Floats survive the JSON round trip exactly (encoding/json
// emits shortest-round-trip representations), which is what makes
// "byte-identical after restart" achievable rather than approximate.
type storedResult struct {
	ID        int             `json:"id"`
	Name      string          `json:"name"`
	Kind      string          `json:"kind"`
	Mode      string          `json:"mode"`
	Started   time.Time       `json:"started"`
	Meta      trace.Meta      `json:"meta"`
	Snapshots int             `json:"snapshots"`
	Snapshot  engine.Snapshot `json:"snapshot"`
	Ingest    bool            `json:"ingest,omitempty"`
	Pushed    int64           `json:"pushed,omitempty"`
	Watermark int64           `json:"watermark_sec,omitempty"`
	Result    *sim.Result     `json:"result"`
}

// errInterrupted is the deterministic terminal error of jobs the
// journal shows running at the moment the daemon died and that cannot
// be resumed (non-ingest sources, or an ingest stream whose journal
// predates payload-carrying batch records): recovery fails them loudly
// instead of pretending.
const errInterrupted = "failed (daemon restart): the replay was interrupted before it finished"

// recoveryInfo is the /healthz "recovery" payload: what the last
// journal replay did. Immutable once openDurability returns.
type recoveryInfo struct {
	Restored     int     `json:"restored_jobs"`
	Resumed      int     `json:"resumed_jobs"`
	ResumeFailed int     `json:"resume_failed_jobs"`
	Interrupted  int     `json:"interrupted_jobs"`
	Carried      int     `json:"carried_jobs"`
	Dropped      int     `json:"dropped_jobs"`
	TornTail     bool    `json:"torn_tail"`
	Sessions     int64   `json:"sessions_restored"`
	DurationMs   float64 `json:"duration_ms"`
}

// openDurability attaches the journal and result store under dataDir
// and replays the journal into the registry: finished jobs come back
// with their stored results, jobs that were running when the daemon
// died are deterministically failed, the monotonic ingest counters are
// restored, and the journal is compacted down to a checkpoint plus the
// retained jobs' terminal records. Must run before the listener binds:
// once the daemon serves requests, recovery is complete.
func (s *server) openDurability(dataDir string) error {
	t0 := time.Now()
	jl, rec, err := joblog.Open(dataDir)
	if err != nil {
		return err
	}
	store, err := joblog.OpenStore(dataDir)
	if err != nil {
		jl.Close()
		return err
	}
	jl.OnFsync = s.met.journalFsync.Observe
	jl.OnAppend = func(recordType string) { s.met.journalRecords.With1(recordType).Inc() }
	jl.OnFault = func(kind string) { s.met.journalFaults.With1(kind).Inc() }
	s.jl, s.store = jl, store

	info := recoveryInfo{TornTail: rec.TornTail, Sessions: rec.Sessions}
	if rec.TornTail {
		s.met.recoveryTorn.Inc()
	}
	// Restore the monotonic ingest counters from the journal totals, so
	// a client ledger built on counter deltas (the loadtest skew
	// cross-check) survives the restart instead of watching the counter
	// reset to zero.
	s.met.ingestSessions.Add(float64(rec.Sessions))
	s.met.ingestBatches.Add(float64(rec.Batches))

	// The retention cap applies across restarts too: only the newest
	// maxRetainedJobs journalled jobs come back; older ones are dropped
	// with their stored results.
	states := rec.Jobs
	keepFrom := 0
	if len(states) > maxRetainedJobs {
		keepFrom = len(states) - maxRetainedJobs
	}
	for _, st := range states[:keepFrom] {
		info.Dropped++
		s.met.recoveryJobs.With1("dropped").Inc()
		_ = store.Delete(st.ID)
	}
	resumed := make(map[int]bool)
	for _, st := range states[keepFrom:] {
		j, outcome := s.recoverJob(st)
		s.jobs[j.id] = j
		switch outcome {
		case "restored":
			info.Restored++
		case "resumed":
			info.Resumed++
			resumed[j.id] = true
		case "resume_failed":
			info.ResumeFailed++
		case "interrupted":
			info.Interrupted++
		case "carried":
			info.Carried++
		default:
			info.Dropped++
		}
		s.met.recoveryJobs.With1(outcome).Inc()
	}
	if rec.MaxID >= s.nextID {
		s.nextID = rec.MaxID + 1
	}

	// Compact: the journal shrinks to one checkpoint (carrying the
	// aggregate totals forward) plus a created+finished pair per settled
	// job — and, for a resumed job, its journalled created record and
	// full batch tail, so the stream stays resumable across the next
	// crash too. Tail sessions are subtracted from the checkpoint (they
	// re-count when the tail replays), keeping the totals exact.
	recs := make([]joblog.Record, 0, 1+2*len(s.jobs))
	recs = append(recs, joblog.Record{Type: joblog.TypeCheckpoint, Sessions: rec.Sessions, Batches: rec.Batches})
	for _, st := range states[keepFrom:] {
		j := s.jobs[st.ID]
		if resumed[st.ID] {
			recs = append(recs, *st.Created)
			for _, t := range st.Tail {
				if t.Type == joblog.TypeBatch {
					recs[0].Sessions -= t.Sessions
					recs[0].Batches--
				}
				recs = append(recs, t)
			}
			continue
		}
		recs = append(recs, s.createdRecord(j), s.finishedRecord(j))
	}
	if err := jl.Rewrite(recs); err != nil {
		return fmt.Errorf("compact journal: %w", err)
	}
	s.compactFloor.Store(jl.Size())
	info.DurationMs = float64(time.Since(t0).Microseconds()) / 1e3
	s.recovered = info
	s.met.recoverySecs.Set(time.Since(t0).Seconds())
	return nil
}

// recoverJob rebuilds one registry entry from its journal state. The
// returned outcome labels the recovery_jobs_total metric: "restored"
// (done, result re-served), "interrupted" (was running, now failed),
// "carried" (already failed/cancelled, status re-served) or "dropped"
// (journal says done but the result store has no document).
func (s *server) recoverJob(st *joblog.JobState) (*job, string) {
	// ParseEngineMode tolerates every mode the daemon ever journalled;
	// an unknown one (journal from a newer binary) degrades to the
	// zero mode rather than refusing recovery.
	mode, _ := consumelocal.ParseEngineMode(st.Mode)
	j := &job{
		id:        st.ID,
		name:      st.Name,
		kind:      st.Kind,
		mode:      mode,
		srv:       s,
		started:   st.Started,
		meta:      st.Meta,
		recovered: true,
		changed:   make(chan struct{}),
	}
	setIngestView := func(pushed, watermark int64) {
		if j.kind == "ingest" {
			j.recIngest, j.recPushed, j.recWatermark = true, pushed, watermark
		}
	}
	switch st.Status {
	case "done":
		var sr storedResult
		ok, err := s.store.Get(st.ID, &sr)
		if !ok || err != nil {
			j.status = "failed"
			j.errMsg = "result lost: the journal records this job done but the result store has no document"
			setIngestView(st.Sessions, st.Watermark)
			s.logger.Warn("recovery: stored result missing",
				slog.Int("job", st.ID), slog.Any("err", err))
			return j, "dropped"
		}
		j.status = "done"
		j.result = sr.Result
		if sr.Snapshots > 0 {
			j.snaps = []engine.Snapshot{sr.Snapshot}
			j.snapsStart = sr.Snapshots - 1
		}
		// Trust the stored document for identity too: it captured the
		// exact view the daemon served before the crash.
		j.name, j.kind, j.meta, j.started = sr.Name, sr.Kind, sr.Meta, sr.Started
		if m, err := consumelocal.ParseEngineMode(sr.Mode); err == nil {
			j.mode = m
		}
		if sr.Ingest {
			j.recIngest, j.recPushed, j.recWatermark = true, sr.Pushed, sr.Watermark
		}
		return j, "restored"
	case "failed", "cancelled":
		j.status = st.Status
		j.errMsg = st.Error
		j.snapsStart = st.Snapshots
		setIngestView(st.Sessions, st.Watermark)
		return j, "carried"
	default:
		// No terminal record: the daemon died while this job ran. An
		// ingest job whose journal carries its creation query and full
		// batch payloads is rebuilt live — re-fed deterministically from
		// the journal, the producer none the wiser. Anything else (or a
		// resume that fails) is failed loudly, as before.
		if j.kind == "ingest" && st.Created != nil && st.Created.Query != "" {
			live, err := s.resumeJob(st)
			if err == nil {
				return live, "resumed"
			}
			s.logger.Warn("recovery: resume failed; job falls back to interrupted",
				slog.Int("job", st.ID), slog.String("err", err.Error()))
			j.status = "failed"
			j.errMsg = errInterrupted
			setIngestView(st.Sessions, st.Watermark)
			return j, "resume_failed"
		}
		j.status = "failed"
		j.errMsg = errInterrupted
		setIngestView(st.Sessions, st.Watermark)
		return j, "interrupted"
	}
}

// resumeJob rebuilds a live ingest job from its journal state: the
// creation query is re-parsed into the same replay configuration, a
// fresh IngestSource and streaming run are started, and the journalled
// batch tail — every session the old daemon fsynced before acking — is
// re-fed in journal order, restoring the ordering floor, the watermark,
// and the monotonic pushed counter exactly. The job re-enters "running"
// with a fresh idle window, so a producer retrying its next batch gets
// the same 200/409 semantics as if the crash never happened, and the
// final result is bit-for-bit what an uninterrupted run yields.
func (s *server) resumeJob(st *joblog.JobState) (*job, error) {
	q, err := url.ParseQuery(st.Created.Query)
	if err != nil {
		return nil, fmt.Errorf("journalled query: %w", err)
	}
	sp, err := parseSpecQuery(q)
	if err != nil {
		return nil, fmt.Errorf("journalled query: %w", err)
	}
	if sp.mode != consumelocal.EngineStreaming {
		return nil, fmt.Errorf("journalled engine mode %s cannot follow a live stream", sp.mode)
	}
	capacity, err := parseIngestCapacity(q)
	if err != nil {
		return nil, fmt.Errorf("journalled query: %w", err)
	}
	wall, err := parseWallWatermark(q)
	if err != nil {
		return nil, fmt.Errorf("journalled query: %w", err)
	}
	// An old-format journal records batch counts without payloads; those
	// streams cannot be reproduced and must fail honestly instead.
	for _, t := range st.Tail {
		if t.Type == joblog.TypeBatch && t.Sessions > 0 && t.CSV == "" {
			return nil, fmt.Errorf("journal batch records carry no session payload (pre-resume journal format)")
		}
	}

	ing, err := consumelocal.NewIngestSource(st.Meta, capacity)
	if err != nil {
		return nil, err
	}
	opts := append(sp.options(), consumelocal.WithReplayMetrics(s.met.replay))
	rep, err := consumelocal.Replay(context.Background(), ing, opts...)
	if err != nil {
		return nil, err
	}
	// On any re-feed failure, unwind the half-built pipeline: abort the
	// queue, cancel the run, and drain it in the background so its
	// goroutines exit.
	unwind := func() {
		ing.Abort(errIngestJobOver)
		rep.Cancel()
		go func() {
			for range rep.Snapshots() {
			}
			_, _ = rep.Result()
		}()
	}
	// Re-feed the fsynced history. The engine consumes concurrently, so
	// blocking pushes drain however deep the tail runs; watermarks apply
	// after their batch, exactly as the original requests interleaved.
	for _, t := range st.Tail {
		if t.CSV != "" {
			sessions, err := trace.ReadSessionsCSV(strings.NewReader(t.CSV))
			if err != nil {
				unwind()
				return nil, fmt.Errorf("replay journalled batch: %w", err)
			}
			for _, sess := range sessions {
				if err := ing.Push(sess); err != nil {
					unwind()
					return nil, fmt.Errorf("replay journalled batch: %w", err)
				}
			}
		}
		if t.WatermarkSec > ing.Watermark() {
			if err := ing.Advance(t.WatermarkSec); err != nil {
				unwind()
				return nil, fmt.Errorf("replay journalled watermark: %w", err)
			}
		}
	}
	if got := ing.Pushed(); got != st.Sessions {
		unwind()
		return nil, fmt.Errorf("re-fed %d sessions but the journal accounts %d", got, st.Sessions)
	}

	// The wall clock restarts only after the re-feed: Advance is
	// monotonic and the ticker skips targets at or below the restored
	// watermark, so a restart never regresses it.
	stopWall := func() {}
	if wall.enabled {
		wallCtx, cancel := context.WithCancel(context.Background())
		stopWall = cancel
		go wallWatermark(wallCtx, ing, st.Meta.HorizonSec, wall.interval, wall.rate)
	}
	j := &job{
		id:       st.ID,
		name:     st.Name,
		kind:     st.Kind,
		mode:     sp.mode,
		srv:      s,
		started:  st.Started,
		meta:     st.Meta,
		replay:   rep,
		ingest:   ing,
		status:   "running",
		changed:  make(chan struct{}),
		rawQuery: st.Created.Query,
		cleanup: func() {
			stopWall()
			ing.Abort(errIngestJobOver)
		},
	}
	s.armWatchdog(j)
	go j.pump()
	return j, nil
}

// closeDurability syncs and closes the journal on shutdown.
func (s *server) closeDurability() {
	if s.jl == nil {
		return
	}
	if err := s.jl.Close(); err != nil {
		s.logger.Warn("journal close failed", slog.String("err", err.Error()))
	}
}

// createdRecord renders a job's admission record. For ingest jobs it
// carries the creation query string — the recipe a restarted daemon
// resumes the stream from.
func (s *server) createdRecord(j *job) joblog.Record {
	meta := j.meta
	return joblog.Record{
		Type:    joblog.TypeCreated,
		Job:     j.id,
		Name:    j.name,
		Kind:    j.kind,
		Mode:    j.mode.String(),
		Started: j.started,
		Meta:    &meta,
		Query:   j.rawQuery,
	}
}

// finishedRecord renders a job's terminal record from its settled
// registry state (callers ensure the job is settled).
func (s *server) finishedRecord(j *job) joblog.Record {
	j.mu.Lock()
	rec := joblog.Record{
		Type:      joblog.TypeFinished,
		Job:       j.id,
		Status:    j.status,
		Error:     j.errMsg,
		Snapshots: j.snapsStart + len(j.snaps),
	}
	j.mu.Unlock()
	if j.ingest != nil {
		rec.Sessions = j.ingest.Pushed()
		rec.WatermarkSec = j.ingest.Watermark()
	} else if j.recIngest {
		rec.Sessions = j.recPushed
		rec.WatermarkSec = j.recWatermark
	}
	return rec
}

// journalAppend commits one record, degrading loudly on failure: an
// append error (disk full, journal closed) means restart fidelity is
// lost for this transition, not that the in-memory job is wrong. The
// one exception is the batch-acknowledgement path, which uses
// journalBatch and refuses the ack instead.
func (s *server) journalAppend(rec joblog.Record) {
	if s.jl == nil {
		return
	}
	if err := s.jl.Append(rec); err != nil {
		s.met.journalErrors.Inc()
		s.logger.Error("journal append failed",
			slog.String("type", rec.Type),
			slog.Int("job", rec.Job),
			slog.String("err", err.Error()))
	}
}

// journalCSVChunk bounds one batch record's CSV payload. An HTTP batch
// may run to maxIngestBatchBytes (8 MiB), well past the 1 MiB journal
// frame cap, so an oversized batch is split across records — each row
// lands exactly once, and only the final chunk carries the watermark so
// a resume's re-feed never advances the floor ahead of unfed rows.
const journalCSVChunk = 256 << 10

// journalBatch durably records an accepted ingest batch (or a bare
// watermark advance) — payload included, so a restart can re-feed it —
// before the handler acknowledges it. A nil error means the records are
// fsynced (one write, one fsync, however many chunks); on failure the
// caller must not acknowledge the sessions as accepted.
func (s *server) journalBatch(j *job, accepted []trace.Session, advanced bool) error {
	if s.jl == nil || (len(accepted) == 0 && !advanced) {
		return nil
	}
	watermark := j.ingest.Watermark()
	var recs []joblog.Record
	if len(accepted) == 0 {
		recs = []joblog.Record{{Type: joblog.TypeWatermark, Job: j.id, WatermarkSec: watermark}}
	} else {
		csv := make([]byte, 0, min(len(accepted)*32, journalCSVChunk+64))
		count := int64(0)
		flush := func() {
			recs = append(recs, joblog.Record{
				Type:     joblog.TypeBatch,
				Job:      j.id,
				Sessions: count,
				CSV:      string(csv),
			})
			csv, count = csv[:0], 0
		}
		for _, sess := range accepted {
			csv = trace.AppendSessionCSV(csv, sess)
			count++
			if len(csv) >= journalCSVChunk {
				flush()
			}
		}
		if count > 0 {
			flush()
		}
		recs[len(recs)-1].WatermarkSec = watermark
	}
	if err := s.jl.AppendBatch(recs); err != nil {
		s.met.journalErrors.Inc()
		s.logger.Error("journal batch append failed",
			slog.Int("job", j.id), slog.String("err", err.Error()))
		return err
	}
	s.maybeCompact()
	return nil
}

// maybeCompact kicks off a background online compaction once the
// journal has grown compactBytes past its last compacted size: the
// journal is re-replayed and rewritten to a checkpoint plus live batch
// tails (joblog.CompactionPlan) while the daemon keeps serving. At most
// one pass runs at a time; appends block only for the rewrite itself,
// which the threshold keeps bounded.
func (s *server) maybeCompact() {
	if s.jl == nil || s.compactBytes <= 0 {
		return
	}
	if s.jl.Size() < s.compactFloor.Load()+s.compactBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		reclaimed, err := s.jl.Compact(joblog.CompactionPlan)
		s.compactFloor.Store(s.jl.Size())
		if err != nil {
			s.met.journalErrors.Inc()
			s.logger.Error("journal compaction failed", slog.String("err", err.Error()))
			return
		}
		s.met.journalCompactions.Inc()
		if reclaimed > 0 {
			s.met.journalReclaimed.Add(float64(reclaimed))
		}
		s.logger.Info("journal compacted",
			slog.Int64("reclaimed_bytes", reclaimed),
			slog.Int64("size_bytes", s.jl.Size()))
	}()
}

// dropStored deletes evicted jobs' results and journals the eviction,
// so a restart does not resurrect jobs the retention window already
// let go. Runs outside s.mu — file I/O never happens under the
// registry lock.
func (s *server) dropStored(ids []int) {
	if s.jl == nil {
		return
	}
	for _, id := range ids {
		_ = s.store.Delete(id)
		s.journalAppend(joblog.Record{Type: joblog.TypeEvicted, Job: id})
	}
}

// persistFinished is pump's terminal hook under a data dir: store a
// done job's full result document first, then journal the terminal
// record — in that order, so a journal that says "done" always has a
// result behind it. A failed store write downgrades the journalled
// status: the job stays "done" in memory for this process's lifetime,
// but a restart will (correctly) refuse to promise a result it does
// not have.
func (j *job) persistFinished() {
	s := j.srv
	if s.jl == nil || j.recovered {
		return
	}
	j.mu.Lock()
	status := j.status
	var snap engine.Snapshot
	if n := len(j.snaps); n > 0 {
		snap = j.snaps[n-1]
	}
	total := j.snapsStart + len(j.snaps)
	res := j.result
	j.mu.Unlock()

	if status == "done" {
		sr := storedResult{
			ID:        j.id,
			Name:      j.name,
			Kind:      j.kind,
			Mode:      j.mode.String(),
			Started:   j.started,
			Meta:      j.meta,
			Snapshots: total,
			Snapshot:  snap,
			Result:    res,
		}
		if j.ingest != nil {
			sr.Ingest = true
			sr.Pushed = j.ingest.Pushed()
			sr.Watermark = j.ingest.Watermark()
		}
		if err := s.store.Put(j.id, &sr); err != nil {
			s.met.journalErrors.Inc()
			s.logger.Error("result store write failed",
				slog.Int("job", j.id), slog.String("err", err.Error()))
			return
		}
	}
	s.journalAppend(s.finishedRecord(j))
}

// handleDraining refuses new work while the daemon drains for
// shutdown: a clean 503 with a Retry-After is a real signal a client
// policy can key off, where a connection that hangs until the listener
// dies is not. Returns true when the request was answered.
func (s *server) handleDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", drainRetryAfter)
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("daemon is draining for shutdown; retry against another instance"))
	return true
}

// Retry-After hints, in seconds. Quota refusals clear as soon as a
// running replay settles; a draining daemon is gone for good, so the
// hint is only how long a client should wait before trying a
// (restarted or rescheduled) instance.
const (
	quotaRetryAfter = "1"
	drainRetryAfter = "5"
)

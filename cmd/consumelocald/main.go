// Command consumelocald is the long-running service form of the
// reproduction: an asynchronous hybrid-CDN replay job manager built on
// the unified consumelocal.Replay pipeline. Clients submit replay jobs —
// a streamed trace CSV, or the synthetic generator run live — and poll
// state, follow NDJSON snapshots mid-flight, price energy and carbon,
// and cancel, while the daemon enforces a concurrent-replay quota.
//
// Usage:
//
//	consumelocald [-addr :8377] [-max-jobs 4] [-ingest-idle 5m] [-pprof addr]
//
// API:
//
//	POST   /v1/jobs                 start an async replay job (202).
//	                                Body: trace CSV (spooled), or
//	                                ?source=generator with scale, days,
//	                                seed to stream the synthetic workload
//	                                live, or ?source=ingest with horizon,
//	                                users, content, isps (and optional
//	                                epoch, capacity) to open a live ingest
//	                                stream fed through the sessions
//	                                endpoint. Shared query: ratio, window,
//	                                workers, engine (streaming|batch|
//	                                parallel; ingest is streaming-only),
//	                                participation, tick, seed_retention,
//	                                city_wide, mixed_bitrates,
//	                                track_users, name.
//	                                429 once max-jobs replays run.
//	POST   /v1/jobs/{id}/sessions   append a session batch to a live
//	                                ingest job (CSV rows or JSON
//	                                {"sessions":[...]}), optionally
//	                                advancing the arrival watermark
//	                                (?watermark= or "watermark_sec")
//	POST   /v1/jobs/{id}/finish     seal a live ingest stream; the job
//	                                drains and completes
//	GET    /v1/jobs                 list replay jobs
//	GET    /v1/jobs/{id}            one job's status and latest snapshot
//	GET    /v1/jobs/{id}/snapshots  follow snapshots as NDJSON mid-flight
//	DELETE /v1/jobs/{id}            cancel a running replay
//	GET    /v1/jobs/{id}/energy     energy reports under both Table IV models
//	GET    /v1/jobs/{id}/carbon     per-user carbon credit distribution
//	POST   /v1/replay               synchronous form: stream a trace CSV in,
//	                                NDJSON snapshots out on one connection
//	GET    /healthz                 liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	maxJobs := flag.Int("max-jobs", defaultMaxJobs, "concurrent replay quota (excess submissions get 429)")
	maxBody := flag.Int64("max-body", defaultMaxBodyBytes, "largest trace CSV a replay submission may upload, in bytes (must be positive; excess gets 413)")
	ingestIdle := flag.Duration("ingest-idle", defaultIngestIdle, "cancel a live ingest job whose producer stays silent this long (0 disables the watchdog)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate listener (e.g. localhost:6060; empty disables)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: unexpected arguments")
		os.Exit(2)
	}
	if *maxBody <= 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -max-body must be positive")
		os.Exit(2)
	}
	if *maxJobs <= 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -max-jobs must be positive")
		os.Exit(2)
	}

	if *ingestIdle < 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -ingest-idle must be non-negative")
		os.Exit(2)
	}

	srv := newServer(*maxJobs)
	srv.maxBody = *maxBody
	srv.ingestIdle = *ingestIdle

	// Profiling stays off the service listener: the job API is what
	// clients reach, the pprof endpoints are an operator tool bound to
	// their own (typically loopback) address.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("consumelocald pprof listening on %s", *pprofAddr)
			// -pprof is an explicit opt-in: failing to bind it should be
			// as fatal as failing to bind -addr, not a scrolled-past log
			// line under a daemon that looks healthy.
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Fatalf("consumelocald: pprof listener: %v", err)
			}
		}()
	}
	// No global Read/WriteTimeout: /v1/replay legitimately reads its body
	// and writes snapshots for the whole replay. Slow-loris protection is
	// the header timeout here plus per-request read deadlines covering
	// the pre-registration phase of both submission paths (the async
	// body spool, the sync CSV header); a sync client that stalls after
	// registration holds a visible running job, and DELETE both cancels
	// it and cuts the stalled body read so the quota slot is freed.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("consumelocald listening on %s (max %d concurrent jobs)", *addr, *maxJobs)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("consumelocald: %v", err)
	}
}

// Command consumelocald is the long-running service form of the
// reproduction: a hybrid-CDN replay daemon built on the streaming engine
// (internal/engine). Clients POST a trace — streaming the CSV body, so
// month-scale traces replay out-of-core — and read live windowed
// tallies, energy reports and carbon-credit snapshots back out while the
// replay is still running.
//
// Usage:
//
//	consumelocald [-addr :8377]
//
// API:
//
//	POST /v1/replay            stream a trace CSV in; NDJSON snapshots out.
//	                           Query: ratio, window, workers, participation,
//	                           tick, seed_retention, city_wide,
//	                           mixed_bitrates, track_users, name
//	GET  /v1/jobs              list replay jobs
//	GET  /v1/jobs/{id}         one job's status and latest snapshot
//	GET  /v1/jobs/{id}/energy  energy reports under both Table IV models
//	GET  /v1/jobs/{id}/carbon  per-user carbon credit distribution
//	GET  /healthz              liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: unexpected arguments")
		os.Exit(2)
	}

	srv := newServer()
	log.Printf("consumelocald listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		log.Fatalf("consumelocald: %v", err)
	}
}

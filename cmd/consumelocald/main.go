// Command consumelocald is the long-running service form of the
// reproduction: an asynchronous hybrid-CDN replay job manager built on
// the unified consumelocal.Replay pipeline. Clients submit replay jobs —
// a streamed trace CSV, or the synthetic generator run live — and poll
// state, follow NDJSON snapshots mid-flight, price energy and carbon,
// and cancel, while the daemon enforces a concurrent-replay quota.
//
// Usage:
//
//	consumelocald [-addr :8377] [-max-jobs 4] [-ingest-idle 5m] [-drain 30s] [-data-dir dir] [-pprof addr]
//
// With -data-dir the daemon is durable: every job state transition is
// journalled (fsynced before ingest batches are acknowledged, payload
// included), finished results are persisted, and on restart the
// journal is replayed — finished jobs are re-served byte-identically,
// live ingest jobs are resumed (rebuilt from their creation query and
// re-fed from the journalled batches, bit-for-bit equal to an
// uninterrupted run), non-resumable interrupted jobs are reported
// failed, and the ingest counters pick up where they left off. The
// journal is compacted on startup and online past -journal-compact
// bytes of growth. See docs/DURABILITY.md. Without the flag, state is
// in-memory only, as before.
//
// API:
//
//	POST   /v1/jobs                 start an async replay job (202).
//	                                Body: trace CSV (spooled), or
//	                                ?source=generator with scale, days,
//	                                seed to stream the synthetic workload
//	                                live, or ?source=ingest with horizon,
//	                                users, content, isps (and optional
//	                                epoch, capacity) to open a live ingest
//	                                stream fed through the sessions
//	                                endpoint; watermark=wall (with
//	                                wall_interval, wall_rate) derives
//	                                watermark advances from the daemon
//	                                clock for producers that send none.
//	                                Shared query: ratio, window,
//	                                workers, engine (streaming|batch|
//	                                parallel; ingest is streaming-only),
//	                                participation, tick, seed_retention,
//	                                city_wide, mixed_bitrates,
//	                                track_users, name.
//	                                429 once max-jobs replays run.
//	POST   /v1/jobs/{id}/sessions   append a session batch to a live
//	                                ingest job (CSV rows or JSON
//	                                {"sessions":[...]}), optionally
//	                                advancing the arrival watermark
//	                                (?watermark= or "watermark_sec")
//	POST   /v1/jobs/{id}/finish     seal a live ingest stream; the job
//	                                drains and completes
//	GET    /v1/jobs                 list replay jobs
//	GET    /v1/jobs/{id}            one job's status and latest snapshot
//	GET    /v1/jobs/{id}/snapshots  follow snapshots as NDJSON mid-flight
//	DELETE /v1/jobs/{id}            cancel a running replay
//	GET    /v1/jobs/{id}/energy     energy reports under both Table IV models
//	GET    /v1/jobs/{id}/carbon     per-user carbon credit distribution
//	POST   /v1/replay               synchronous form: stream a trace CSV in,
//	                                NDJSON snapshots out on one connection
//	GET    /healthz                 liveness, build and uptime info
//	GET    /metrics                 Prometheus text exposition (see
//	                                docs/OBSERVABILITY.md for the catalogue)
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions stop,
// running replays get -drain to finish (then are cancelled), and both
// the service and pprof listeners close cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// daemonConfig is everything runDaemon needs, separated from flag
// parsing so tests can boot the real serve-and-shutdown path on an
// ephemeral port.
type daemonConfig struct {
	addr         string
	pprofAddr    string
	maxJobs      int
	maxBody      int64
	ingestIdle   time.Duration
	drain        time.Duration
	dataDir      string
	compactBytes int64
	logger       *slog.Logger
}

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	maxJobs := flag.Int("max-jobs", defaultMaxJobs, "concurrent replay quota (excess submissions get 429)")
	maxBody := flag.Int64("max-body", defaultMaxBodyBytes, "largest trace CSV a replay submission may upload, in bytes (must be positive; excess gets 413)")
	ingestIdle := flag.Duration("ingest-idle", defaultIngestIdle, "cancel a live ingest job whose producer stays silent this long (0 disables the watchdog)")
	drain := flag.Duration("drain", 30*time.Second, "on SIGINT/SIGTERM, give running replays this long to finish before cancelling them")
	dataDir := flag.String("data-dir", "", "journal job state and persist finished results here, replaying on restart (empty keeps state in-memory only)")
	compactBytes := flag.Int64("journal-compact", defaultCompactBytes, "compact the job journal online once it grows this many bytes past its last compacted size (0 disables online compaction)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate listener (e.g. localhost:6060; empty disables)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: unexpected arguments")
		os.Exit(2)
	}
	if *maxBody <= 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -max-body must be positive")
		os.Exit(2)
	}
	if *maxJobs <= 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -max-jobs must be positive")
		os.Exit(2)
	}
	if *ingestIdle < 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -ingest-idle must be non-negative")
		os.Exit(2)
	}
	if *drain < 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -drain must be non-negative")
		os.Exit(2)
	}
	if *compactBytes < 0 {
		fmt.Fprintln(os.Stderr, "consumelocald: -journal-compact must be non-negative")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := runDaemon(ctx, daemonConfig{
		addr:         *addr,
		pprofAddr:    *pprofAddr,
		maxJobs:      *maxJobs,
		maxBody:      *maxBody,
		ingestIdle:   *ingestIdle,
		drain:        *drain,
		dataDir:      *dataDir,
		compactBytes: *compactBytes,
		logger:       logger,
	}, nil)
	if err != nil {
		logger.Error("consumelocald exiting", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

// runDaemon binds the listeners, serves until ctx is cancelled (the
// signal path) or a listener fails, then shuts down gracefully: running
// replays get cfg.drain to finish before being cancelled, and both HTTP
// servers close out their in-flight requests. ready, when non-nil,
// receives the bound service address once requests can be served — the
// seam the daemon tests and the metrics smoke target use with addr
// 127.0.0.1:0.
func runDaemon(ctx context.Context, cfg daemonConfig, ready func(addr string)) error {
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := newServer(cfg.maxJobs)
	if cfg.maxBody > 0 {
		srv.maxBody = cfg.maxBody
	}
	srv.ingestIdle = cfg.ingestIdle
	srv.logger = logger

	// Durability opens — and recovery fully completes — before the
	// listener binds, so no request ever observes a half-recovered
	// registry and there is no "recovering" HTTP state to model.
	if cfg.dataDir != "" {
		srv.compactBytes = cfg.compactBytes
		if err := srv.openDurability(cfg.dataDir); err != nil {
			return fmt.Errorf("open data dir %s: %w", cfg.dataDir, err)
		}
		defer srv.closeDurability()
		rec := srv.recovered
		logger.Info("journal recovered",
			slog.String("data_dir", cfg.dataDir),
			slog.Int("restored", rec.Restored),
			slog.Int("resumed", rec.Resumed),
			slog.Int("resume_failed", rec.ResumeFailed),
			slog.Int("interrupted", rec.Interrupted),
			slog.Int("carried", rec.Carried),
			slog.Int("dropped", rec.Dropped),
			slog.Bool("torn_tail", rec.TornTail),
			slog.Int64("sessions", rec.Sessions),
			slog.Duration("took", time.Duration(rec.DurationMs*float64(time.Millisecond))))
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", cfg.addr, err)
	}

	// Profiling stays off the service listener: the job API is what
	// clients reach, the pprof endpoints are an operator tool bound to
	// their own (typically loopback) address. -pprof is an explicit
	// opt-in, so failing to bind it is as fatal as failing to bind -addr.
	var pprofSrv *http.Server
	errc := make(chan error, 2)
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("bind pprof %s: %w", cfg.pprofAddr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: mux}
		logger.Info("pprof listening", slog.String("addr", pln.Addr().String()))
		go func() { errc <- fmt.Errorf("pprof listener: %w", pprofSrv.Serve(pln)) }()
	}

	// No global Read/WriteTimeout: /v1/replay legitimately reads its body
	// and writes snapshots for the whole replay. Slow-loris protection is
	// the header timeout here plus per-request read deadlines covering
	// the pre-registration phase of both submission paths (the async
	// body spool, the sync CSV header); a sync client that stalls after
	// registration holds a visible running job, and DELETE both cancels
	// it and cuts the stalled body read so the quota slot is freed.
	hs := &http.Server{
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info("consumelocald listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("max_jobs", srv.maxJobs))
	go func() { errc <- hs.Serve(ln) }()
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		// A listener died on its own; nothing graceful left to do.
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", slog.Duration("drain", cfg.drain))
	// New work gets 503 + Retry-After from here on; a load balancer (or
	// the loadtest supervisor) should fail over rather than queue on a
	// daemon that is tearing down.
	srv.draining.Store(true)
	srv.drainJobs(cfg.drain)
	// With the jobs settled, in-flight handlers (including sync replay
	// streams, which block until their job settles) can finish promptly.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Warn("service shutdown incomplete", slog.String("err", err.Error()))
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil {
			logger.Warn("pprof shutdown incomplete", slog.String("err", err.Error()))
		}
	}
	logger.Info("shutdown complete")
	return nil
}

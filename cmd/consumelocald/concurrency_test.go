package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"consumelocal/internal/obs"
)

// TestQuotaBurstConcurrentCreates fires a burst of simultaneous job
// submissions at a small quota — the loadtest harness's opening move —
// and requires the daemon to stay exact under the race: every request
// answered, at most max-jobs admitted, every refusal a clean 429, and
// the admission+rejection metrics adding back up to the burst. Run
// under -race (ci.sh races this package), this also pins the
// claim-slot/pending accounting against concurrent submissions.
func TestQuotaBurstConcurrentCreates(t *testing.T) {
	const maxJobs, burst = 4, 32
	sources := make([]*gatedSource, maxJobs)
	for i := range sources {
		sources[i] = newGatedSource(4, 600)
	}
	ts := gatedServer(t, maxJobs, sources...)

	var accepted, rejected, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJob(t, ts.URL+"/v1/jobs")
			switch resp.StatusCode {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d burst submissions answered with neither 202 nor 429", other.Load())
	}
	if got := accepted.Load(); got != maxJobs {
		t.Fatalf("burst admitted %d jobs, want exactly the quota %d", got, maxJobs)
	}
	if got := rejected.Load(); got != burst-maxJobs {
		t.Fatalf("burst rejected %d submissions, want %d", got, burst-maxJobs)
	}

	// The server's own accounting agrees with the clients'.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape under load does not lint: %v", err)
	}
	if got, _ := exp.Value(`consumelocald_jobs_rejected_total`); got != burst-maxJobs {
		t.Fatalf("jobs_rejected_total = %g, want %d", got, burst-maxJobs)
	}
	if got, _ := exp.Value(`consumelocald_jobs_running`); got != maxJobs {
		t.Fatalf("jobs_running = %g, want %d", got, maxJobs)
	}

	// Let the admitted replays finish so the server tears down cleanly.
	for _, src := range sources {
		src.release(len(src.sessions))
	}
}

// TestIngestRacingProducers points several concurrent producers at one
// ingest stream, all pushing interleaved start times. The ordering
// contract guarantees most batches conflict (409 with an out-of-order
// diagnosis) while the stream itself stays usable: the accepted
// sessions form a non-decreasing sequence the replay completes over.
// This is the server half of the loadtest's racing-producer workload.
func TestIngestRacingProducers(t *testing.T) {
	const producers, batches = 8, 6
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	_, v := postJob(t, ingestURL(ts.URL, ""))
	url := fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID)

	var accepted, conflicted, other atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				// Producers deliberately overlap: producer p pushes
				// starts p*100+b*50±…, so later producers' early batches
				// regress behind earlier producers' later ones.
				start := int64(p*100 + b*50)
				resp, out := postSessions(t, url, "text/csv", sessionRows(start, 3))
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(3)
				case http.StatusConflict:
					// Partial batches report their landed prefix.
					if n, ok := out["pushed"].(float64); ok {
						accepted.Add(int64(n))
					}
					if msg, ok := out["error"].(string); ok && !strings.Contains(msg, "out of order") {
						t.Errorf("409 without an ordering diagnosis: %q", msg)
					}
					conflicted.Add(1)
				default:
					other.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d racing pushes answered with neither 200 nor 409", other.Load())
	}
	if conflicted.Load() == 0 {
		t.Fatal("no ordering conflicts under racing producers; the interleave should force 409s")
	}
	if accepted.Load() == 0 {
		t.Fatal("no sessions accepted at all; at least the front-running batches must land")
	}

	// The stream survived the contention: it seals and drains normally,
	// with the final snapshot accounting for exactly the accepted set.
	if resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %v %d, want 200", err, resp.StatusCode)
	}
	final := pollJobStatus(t, ts.URL, v.ID, "done")
	if final.Snapshot.SessionsSeen != accepted.Load() {
		t.Fatalf("replay saw %d sessions, clients had %d accepted", final.Snapshot.SessionsSeen, accepted.Load())
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecovery is the durability acceptance test: it runs the
// real binary (SIGKILL needs a process, not an httptest server),
// crashes it mid-ingest, and checks the restart honours the journal's
// promises — finished results re-served byte-for-byte, in-flight
// ingest jobs resumed live from their journalled batches, IDs never
// reused, and a torn final record truncated instead of poisoning
// replay.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes the real daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "consumelocald")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	// ---- Life before the crash: one job finishes, one is mid-stream.
	d := startCrashDaemon(t, bin, dataDir)
	resp, v := postJob(t, d.base+"/v1/jobs?source=generator&scale=0.001&days=1&window=21600&name=survivor")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generator job = %d", resp.StatusCode)
	}
	genID := v.ID
	waitStatus(t, d.base, genID, "done")
	before := map[string][]byte{}
	for _, path := range crashReadPaths(genID) {
		before[path] = getBytes(t, d.base+path)
	}

	resp, v = postJob(t, ingestURL(d.base, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job = %d", resp.StatusCode)
	}
	ingID := v.ID
	if sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=3600", d.base, ingID),
		"text/csv", sessionRows(0, 20)); sresp.StatusCode != http.StatusOK || out["pushed"].(float64) != 20 {
		t.Fatalf("batch = %d %v, want 200 with 20 pushed", sresp.StatusCode, out)
	}
	d.kill()

	// ---- Restart on the same data dir.
	d = startCrashDaemon(t, bin, dataDir)
	h := getHealthz(t, d.base)
	if h.Durable != true || h.Recovery == nil {
		t.Fatalf("healthz after restart not durable: %+v", h)
	}
	if h.Recovery.Restored != 1 || h.Recovery.Resumed != 1 || h.Recovery.Interrupted != 0 || h.Recovery.TornTail {
		t.Fatalf("recovery = %+v, want 1 restored, 1 resumed, no torn tail", h.Recovery)
	}
	for _, path := range crashReadPaths(genID) {
		if after := getBytes(t, d.base+path); !bytes.Equal(after, before[path]) {
			t.Errorf("%s not byte-identical after restart:\n before: %s\n after:  %s", path, before[path], after)
		}
	}
	// The mid-stream ingest job is back as a live running job with its
	// journalled progress, and the producer can keep pushing — same
	// 200/409 semantics as if the crash never happened.
	var ing jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", d.base, ingID), &ing)
	if ing.Status != "running" {
		t.Fatalf("resumed job = %q/%q, want running", ing.Status, ing.Error)
	}
	if ing.Pushed != 20 || ing.Watermark != 3600 {
		t.Fatalf("resumed job progress = %d pushed / %d watermark, want the journalled 20/3600", ing.Pushed, ing.Watermark)
	}
	// A session below the restored ordering floor is still refused…
	if sresp, _ := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", d.base, ingID),
		"text/csv", sessionRows(10, 1)); sresp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order push to resumed job = %d, want 409", sresp.StatusCode)
	}
	// …and the producer's next in-order batch lands normally.
	if sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=7200", d.base, ingID),
		"text/csv", sessionRows(4000, 5)); sresp.StatusCode != http.StatusOK || out["total_pushed"].(float64) != 25 {
		t.Fatalf("post-resume batch = %d %v, want 200 with total_pushed 25", sresp.StatusCode, out)
	}
	finishURL := fmt.Sprintf("%s/v1/jobs/%d/finish", d.base, ingID)
	if fresp, err := http.Post(finishURL, "", nil); err != nil || fresp.StatusCode != http.StatusOK {
		t.Fatalf("finish resumed job: %v %v", err, fresp)
	} else {
		fresp.Body.Close()
	}
	waitStatus(t, d.base, ingID, "done")
	// IDs are not reused across the crash.
	resp, v = postJob(t, d.base+"/v1/jobs?source=generator&scale=0.001&days=1&window=21600&name=post-crash")
	if resp.StatusCode != http.StatusAccepted || v.ID <= ingID {
		t.Fatalf("post-crash job = %d id %d, want 202 with a fresh id > %d", resp.StatusCode, v.ID, ingID)
	}
	waitStatus(t, d.base, v.ID, "done")
	d.kill()

	// ---- Torn tail: chop bytes off the journal's final record, the
	// shape a crash mid-append leaves behind.
	journal := filepath.Join(dataDir, "journal.log")
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	d = startCrashDaemon(t, bin, dataDir)
	h = getHealthz(t, d.base)
	if h.Recovery == nil || !h.Recovery.TornTail {
		t.Fatalf("recovery after torn tail = %+v, want torn_tail true", h.Recovery)
	}
	for _, path := range crashReadPaths(genID) {
		if after := getBytes(t, d.base+path); !bytes.Equal(after, before[path]) {
			t.Errorf("%s not byte-identical after torn-tail restart", path)
		}
	}
	d.stop()
}

// TestCrashResume is the resume acceptance test: the same producer
// schedule is driven against an uninterrupted daemon and against one
// SIGKILLed twice mid-stream, and the finished results must be
// bit-for-bit identical — the journal re-feed reproduces the stream
// exactly, and resume composes across repeated crashes.
func TestCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes the real daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "consumelocald")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build daemon: %v\n%s", err, out)
	}
	batches := []struct {
		startSec  int64
		n         int
		watermark int64
	}{
		{0, 30, 3600},
		{3600, 30, 7200},
		{7200, 30, 14400},
	}
	push := func(base string, id, i int) {
		t.Helper()
		b := batches[i]
		url := fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=%d", base, id, b.watermark)
		if resp, out := postSessions(t, url, "text/csv", sessionRows(b.startSec, b.n)); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d = %d %v", i, resp.StatusCode, out)
		}
	}
	finish := func(base string, id int) {
		t.Helper()
		resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", base, id), "", nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("finish: %v %v", err, resp)
		}
		resp.Body.Close()
	}
	resultPaths := func(id int) []string {
		return []string{
			fmt.Sprintf("/v1/jobs/%d/energy", id),
			fmt.Sprintf("/v1/jobs/%d/carbon", id),
		}
	}

	// ---- Reference: the schedule replayed without a crash.
	d := startCrashDaemon(t, bin, t.TempDir())
	resp, v := postJob(t, ingestURL(d.base, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job = %d", resp.StatusCode)
	}
	refID := v.ID
	for i := range batches {
		push(d.base, refID, i)
	}
	finish(d.base, refID)
	waitStatus(t, d.base, refID, "done")
	want := map[string][]byte{}
	for _, path := range resultPaths(refID) {
		want[path] = getBytes(t, d.base+path)
	}
	d.stop()

	// ---- Crash run: the same schedule, a SIGKILL after every batch but
	// the last, resumed from the journal each time.
	dataDir := t.TempDir()
	d = startCrashDaemon(t, bin, dataDir)
	resp, v = postJob(t, ingestURL(d.base, ""))
	if resp.StatusCode != http.StatusAccepted || v.ID != refID {
		t.Fatalf("ingest job = %d id %d, want id %d so the result documents compare byte-for-byte", resp.StatusCode, v.ID, refID)
	}
	pushed := int64(0)
	for i := range batches {
		if i > 0 {
			d.kill()
			d = startCrashDaemon(t, bin, dataDir)
			h := getHealthz(t, d.base)
			if h.Recovery == nil || h.Recovery.Resumed != 1 || h.Recovery.ResumeFailed != 0 {
				t.Fatalf("recovery before batch %d = %+v, want 1 resumed", i, h.Recovery)
			}
			var ing jobView
			getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", d.base, refID), &ing)
			if ing.Status != "running" || ing.Pushed != pushed {
				t.Fatalf("resumed job before batch %d = %q with %d pushed, want running with %d", i, ing.Status, ing.Pushed, pushed)
			}
		}
		push(d.base, refID, i)
		pushed += int64(batches[i].n)
	}
	finish(d.base, refID)
	waitStatus(t, d.base, refID, "done")
	for _, path := range resultPaths(refID) {
		if got := getBytes(t, d.base+path); !bytes.Equal(got, want[path]) {
			t.Errorf("%s differs from the uninterrupted run:\n want: %s\n got:  %s", path, want[path], got)
		}
	}
	d.stop()
}

// crashReadPaths are the read-side endpoints whose responses must
// survive a restart byte-for-byte.
func crashReadPaths(id int) []string {
	return []string{
		fmt.Sprintf("/v1/jobs/%d", id),
		fmt.Sprintf("/v1/jobs/%d/energy", id),
		fmt.Sprintf("/v1/jobs/%d/carbon", id),
	}
}

// crashDaemon is one real consumelocald process under test.
type crashDaemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
	done chan error
}

// startCrashDaemon launches the built binary on an ephemeral port with
// the given data dir and waits for its listening log line.
func startCrashDaemon(t *testing.T, bin, dataDir string) *crashDaemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-drain", "2s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &crashDaemon{t: t, cmd: cmd, done: make(chan error, 1)}
	t.Cleanup(func() { d.stop() })
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, `msg="consumelocald listening"`) {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "addr="); ok {
						select {
						case addrc <- strings.Trim(v, `"`):
						default:
						}
					}
				}
			}
			t.Logf("[daemon] %s", line)
		}
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
		return d
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not report a listening address within 15s")
	}
	return nil
}

// kill crashes the daemon: SIGKILL, no drain, no fsync beyond what the
// journal already paid.
func (d *crashDaemon) kill() {
	d.t.Helper()
	if d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	<-d.done
}

// stop is the graceful teardown (and the idempotent cleanup hook).
func (d *crashDaemon) stop() {
	if d.cmd.Process == nil || d.cmd.ProcessState != nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.done:
	case <-time.After(10 * time.Second):
		d.cmd.Process.Kill()
		<-d.done
	}
}

// healthzRecovery mirrors the daemon's recoveryInfo JSON.
type healthzRecovery struct {
	Restored     int  `json:"restored_jobs"`
	Resumed      int  `json:"resumed_jobs"`
	ResumeFailed int  `json:"resume_failed_jobs"`
	Interrupted  int  `json:"interrupted_jobs"`
	Carried      int  `json:"carried_jobs"`
	Dropped      int  `json:"dropped_jobs"`
	TornTail     bool `json:"torn_tail"`
}

type healthzPayload struct {
	Status   string           `json:"status"`
	Durable  bool             `json:"durable"`
	Recovery *healthzRecovery `json:"recovery"`
}

func getHealthz(t *testing.T, base string) healthzPayload {
	t.Helper()
	var h healthzPayload
	getJSON(t, base+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status = %q", h.Status)
	}
	return h
}

// getBytes fetches a URL and returns the exact response body.
func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// waitStatus polls one job until it reaches want.
func waitStatus(t *testing.T, base string, id int, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v jobView
		if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &v) == nil {
			if v.Status == want {
				return
			}
			if v.Status != "running" {
				t.Fatalf("job %d settled as %q (%s), want %q", id, v.Status, v.Error, want)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d did not reach %q within 60s", id, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

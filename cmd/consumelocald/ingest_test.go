package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"consumelocal/internal/trace"
)

// ingestURL builds the job-creation URL for a small live stream: 100
// users, 4 content items, 2 ISPs, a 4-hour horizon, hourly windows.
func ingestURL(base string, extra string) string {
	return base + "/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=2&window=3600" + extra
}

// sessionRows renders n sessions starting at startSec as bare CSV rows.
func sessionRows(startSec int64, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,600,1500\n", i%100, i%4, i%2, i%345, startSec+int64(i))
	}
	return b.String()
}

func postSessions(t *testing.T, url, contentType, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("response body: %v", err)
	}
	return resp, out
}

// TestIngestJobLifecycle drives a complete live broadcast through the
// daemon: open an ingest job, push CSV and JSON session batches with
// watermark advancement, watch windows settle mid-broadcast through the
// snapshot follower, seal the stream, and see the job finish with every
// pushed session accounted for.
func TestIngestJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	resp, v := postJob(t, ingestURL(ts.URL, "&name=broadcast"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job submission = %d, want 202", resp.StatusCode)
	}
	if !v.Ingest || v.Mode != "streaming" {
		t.Fatalf("ingest job view = %+v, want an ingest streaming job", v)
	}

	// First batch: CSV rows, then advance the watermark past the first
	// window boundary via the query parameter.
	sresp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=3600", ts.URL, v.ID),
		"text/csv", sessionRows(0, 20))
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("CSV batch = %d (%v), want 200", sresp.StatusCode, out)
	}
	if out["pushed"].(float64) != 20 || out["watermark_sec"].(float64) != 3600 {
		t.Fatalf("CSV batch response = %v", out)
	}

	// A follower attached mid-broadcast sees the settled window while
	// the job is still running.
	followResp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/snapshots", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer followResp.Body.Close()
	follower := bufio.NewScanner(followResp.Body)
	follower.Buffer(make([]byte, 1<<20), 1<<20)
	if !follower.Scan() {
		t.Fatalf("no mid-broadcast snapshot: %v", follower.Err())
	}
	var snap struct {
		ToSec        int64 `json:"to_sec"`
		SessionsSeen int64 `json:"sessions_seen"`
	}
	if err := json.Unmarshal(follower.Bytes(), &snap); err != nil {
		t.Fatalf("bad snapshot line %q: %v", follower.Text(), err)
	}
	if snap.ToSec != 3600 || snap.SessionsSeen != 20 {
		t.Fatalf("mid-broadcast snapshot = %+v, want window settled at 3600 after 20 sessions", snap)
	}
	var mid jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &mid)
	if mid.Status != "running" || mid.Pushed != 20 || mid.Watermark != 3600 {
		t.Fatalf("mid-broadcast view = %+v, want a running ingest job at watermark 3600", mid)
	}

	// Second batch: JSON sessions with an embedded watermark advance.
	batch := ingestBatch{WatermarkSec: new(int64)}
	*batch.WatermarkSec = 7200
	for i := 0; i < 10; i++ {
		batch.Sessions = append(batch.Sessions, trace.Session{
			UserID: uint32(i), ContentID: 1, ISP: 1, Exchange: 7,
			StartSec: 3700 + int64(i), DurationSec: 300, Bitrate: trace.BitrateSD,
		})
	}
	raw, _ := json.Marshal(batch)
	sresp, out = postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"application/json", string(raw))
	if sresp.StatusCode != http.StatusOK || out["total_pushed"].(float64) != 30 {
		t.Fatalf("JSON batch = %d %v, want 200 with 30 total", sresp.StatusCode, out)
	}

	// Seal the stream: the job drains and completes.
	fresp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %d, want 200", fresp.StatusCode)
	}
	final := pollJobStatus(t, ts.URL, v.ID, "done")
	if !final.Snapshot.Final || final.Snapshot.SessionsSeen != 30 {
		t.Fatalf("final view = %+v, want a final snapshot over 30 sessions", final)
	}

	// The follower saw the broadcast out: its stream closes with "done".
	sawDone := false
	for follower.Scan() {
		if strings.Contains(follower.Text(), `"status"`) && strings.Contains(follower.Text(), `"done"`) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("follower did not see the closing done status")
	}

	// Pushing into a finished broadcast is a conflict.
	sresp, _ = postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(8000, 1))
	if sresp.StatusCode != http.StatusConflict {
		t.Fatalf("push after finish = %d, want 409", sresp.StatusCode)
	}
}

// TestIngestOutOfOrderPush: a session behind the already-pushed start
// or the watermark is refused with 409 and does not poison the job; a
// session violating the stream metadata is a 400.
func TestIngestOutOfOrderPush(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()
	_, v := postJob(t, ingestURL(ts.URL, ""))

	if resp, _ := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=3600", ts.URL, v.ID),
		"text/csv", sessionRows(1000, 5)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch = %d, want 200", resp.StatusCode)
	}

	// Behind the watermark.
	resp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(2000, 1))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("behind-watermark push = %d (%v), want 409", resp.StatusCode, out)
	}
	if out["pushed"].(float64) != 0 {
		t.Fatalf("rejected batch reports %v pushed, want 0", out["pushed"])
	}

	// A partially-valid batch lands its ordered prefix and reports it.
	body := sessionRows(4000, 2) + sessionRows(3900, 1)
	resp, out = postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID), "text/csv", body)
	if resp.StatusCode != http.StatusConflict || out["pushed"].(float64) != 2 {
		t.Fatalf("mixed batch = %d %v, want 409 with 2 pushed", resp.StatusCode, out)
	}

	// Out-of-range metadata (user 500 of 100) is a bad request.
	resp, _ = postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", "500,0,0,1,5000,600,1500\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range session = %d, want 400", resp.StatusCode)
	}

	// The job survived every rejection and still completes.
	if resp, _ := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %d, want 200", resp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "done")
}

// TestIngestQuotaAndCancel: ingest jobs hold a quota slot for the whole
// broadcast; DELETE mid-broadcast cancels the job, refuses further
// pushes, and frees the slot for the next submission.
func TestIngestQuotaAndCancel(t *testing.T) {
	ts := httptest.NewServer(newServer(1).routes())
	defer ts.Close()

	resp, v := postJob(t, ingestURL(ts.URL, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job = %d, want 202", resp.StatusCode)
	}
	if resp, _ := postJob(t, ingestURL(ts.URL, "")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ingest job = %d, want 429 while the broadcast holds the slot", resp.StatusCode)
	}

	if resp, _ := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(0, 5)); resp.StatusCode != http.StatusOK {
		t.Fatalf("push = %d, want 200", resp.StatusCode)
	}

	if resp := deleteJob(t, ts.URL, v.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "cancelled")

	// The torn-down stream refuses the producer...
	if resp, _ := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(100, 1)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("push after cancel = %d, want 409", resp.StatusCode)
	}
	if resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("finish after cancel = %v %d, want 409", err, resp.StatusCode)
	}

	// ...and the slot is free for the next broadcast.
	if resp, _ := postJob(t, ingestURL(ts.URL, "")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel ingest job = %d, want 202", resp.StatusCode)
	}
}

// TestIngestIdleWatchdog: a broadcast whose producer disappears —
// client crash, network partition — is cancelled after the idle
// deadline so it cannot pin its quota slot forever.
func TestIngestIdleWatchdog(t *testing.T) {
	srv := newServer(1)
	srv.ingestIdle = 50 * time.Millisecond
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, v := postJob(t, ingestURL(ts.URL, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest job = %d, want 202", resp.StatusCode)
	}
	final := pollJobStatus(t, ts.URL, v.ID, "cancelled")
	if !strings.Contains(final.Error, "idle") {
		t.Fatalf("watchdog-cancelled job error = %q, want an idle diagnosis", final.Error)
	}
	// The reclaimed slot admits the next broadcast.
	if resp, _ := postJob(t, ingestURL(ts.URL, "")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-watchdog ingest job = %d, want 202", resp.StatusCode)
	}
}

// TestIngestWatchdogSparesActiveProducer: a producer pushing steadily —
// even in many small requests — must never be reaped, and sealing the
// stream disarms the watchdog entirely while the backlog drains.
func TestIngestWatchdogSparesActiveProducer(t *testing.T) {
	srv := newServer(1)
	srv.ingestIdle = 300 * time.Millisecond
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	_, v := postJob(t, ingestURL(ts.URL, ""))
	// Push well past the idle deadline in small steps: each accepted
	// session re-arms the watchdog.
	for i := 0; i < 12; i++ {
		resp, out := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
			"text/csv", sessionRows(int64(i*10), 1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push %d = %d (%v): the watchdog reaped an active producer", i, resp.StatusCode, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var view jobView
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, v.ID), &view)
	if view.Status != "running" {
		t.Fatalf("steadily-fed job is %q (%s), want running", view.Status, view.Error)
	}

	// Sealing disarms the watchdog: the job finishes as done however
	// long the drain takes, never as idle-cancelled.
	if resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("finish = %v %d, want 200", err, resp.StatusCode)
	}
	if final := pollJobStatus(t, ts.URL, v.ID, "done"); final.Error != "" {
		t.Fatalf("sealed job finished with error %q", final.Error)
	}
}

// TestIngestRejectsBadRequests covers the ingest-specific validation:
// missing stream metadata, malformed parameters, non-streaming engines,
// and sessions endpoints on non-ingest jobs.
func TestIngestRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(0).routes())
	defer ts.Close()

	for _, url := range []string{
		"/v1/jobs?source=ingest",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4",
		"/v1/jobs?source=ingest&horizon=0&users=100&content=4&isps=2",
		"/v1/jobs?source=ingest&horizon=14400&users=wat&content=4&isps=2",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=2&capacity=0",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=2&epoch=yesterday",
		"/v1/jobs?source=ingest&horizon=9000000000000000000&users=100&content=4&isps=2",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=9999",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=2&engine=batch",
		"/v1/jobs?source=ingest&horizon=14400&users=100&content=4&isps=2&engine=parallel",
	} {
		resp, err := http.Post(ts.URL+url, "text/csv", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, resp.StatusCode)
		}
	}

	// A batch beyond the RAM-sized cap is refused with 413 before a
	// single session is parsed into memory.
	bigSrv := newServer(0)
	bigSrv.maxBody = 1024
	bts := httptest.NewServer(bigSrv.routes())
	defer bts.Close()
	_, bv := postJob(t, ingestURL(bts.URL, ""))
	resp2, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/sessions", bts.URL, bv.ID),
		"text/csv", strings.NewReader(sessionRows(0, 200)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d, want 413", resp2.StatusCode)
	}

	// sessions/finish on a non-ingest job: conflict.
	resp, v := postJob(t, ts.URL+"/v1/jobs?source=generator&scale=0.001&days=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generator job = %d, want 202", resp.StatusCode)
	}
	if sresp, _ := postSessions(t, fmt.Sprintf("%s/v1/jobs/%d/sessions", ts.URL, v.ID),
		"text/csv", sessionRows(0, 1)); sresp.StatusCode != http.StatusConflict {
		t.Fatalf("sessions on generator job = %d, want 409", sresp.StatusCode)
	}
	if fresp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%d/finish", ts.URL, v.ID), "", nil); err != nil || fresp.StatusCode != http.StatusConflict {
		t.Fatalf("finish on generator job = %v %d, want 409", err, fresp.StatusCode)
	}
	pollJobStatus(t, ts.URL, v.ID, "done")
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"consumelocal"
)

// runBench is the perf-trajectory harness: it replays one shared
// synthetic workload through every engine of the unified Replay API
// under testing.Benchmark and writes the headline numbers — sessions/s,
// ns/op, B/op, allocs/op per engine — as JSON, so each PR can record
// its before/after next to the code (see docs/PERF.md).
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consumelocal bench", flag.ContinueOnError)
	fs.SetOutput(out)
	scale := fs.Float64("scale", 0.002, "trace scale relative to the paper's dataset")
	days := fs.Int("days", 14, "trace horizon in days")
	seed := fs.Int64("seed", 1, "trace generator seed")
	workers := fs.Int("workers", 4, "parallel/streaming worker count")
	output := fs.String("o", "", "write the JSON report to this file (default: stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench: unexpected arguments %q", fs.Args())
	}

	traceCfg := consumelocal.DefaultTraceConfig(*scale)
	traceCfg.Days = *days
	traceCfg.Seed = *seed
	tr, err := consumelocal.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	simCfg := consumelocal.DefaultSimConfig(1.0)
	simCfg.TrackUsers = false

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	report.Trace.Scale = *scale
	report.Trace.Days = *days
	report.Trace.Seed = *seed
	report.Trace.Sessions = len(tr.Sessions)

	engines := []consumelocal.EngineMode{
		consumelocal.EngineBatch,
		consumelocal.EngineParallel,
		consumelocal.EngineStreaming,
	}
	fmt.Fprintf(out, "bench: %d sessions over %d days (scale %g, seed %d)\n",
		len(tr.Sessions), *days, *scale, *seed)
	for _, mode := range engines {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job, err := consumelocal.Replay(context.Background(),
					consumelocal.TraceSource(tr),
					consumelocal.WithSimConfig(simCfg),
					consumelocal.WithEngine(mode),
					consumelocal.WithWindow(24*3600),
					consumelocal.WithWorkers(*workers),
				)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := job.Result(); err != nil {
					b.Fatal(err)
				}
			}
		})
		eb := engineBench{
			Engine:         mode.String(),
			Runs:           res.N,
			NsPerOp:        res.NsPerOp(),
			BytesPerOp:     res.AllocedBytesPerOp(),
			AllocsPerOp:    res.AllocsPerOp(),
			SessionsPerSec: float64(len(tr.Sessions)*res.N) / res.T.Seconds(),
		}
		report.Engines = append(report.Engines, eb)
		fmt.Fprintf(out, "%-10s %12.0f sessions/s %14d ns/op %12d B/op %9d allocs/op\n",
			eb.Engine, eb.SessionsPerSec, eb.NsPerOp, eb.BytesPerOp, eb.AllocsPerOp)
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return fmt.Errorf("bench: write report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		fmt.Fprintf(out, "bench: report written to %s\n", *output)
	}
	return nil
}

// benchReport is the BENCH_replay.json schema.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Trace       struct {
		Scale    float64 `json:"scale"`
		Days     int     `json:"days"`
		Seed     int64   `json:"seed"`
		Sessions int     `json:"sessions"`
	} `json:"trace"`
	Engines []engineBench `json:"engines"`
}

// engineBench is one engine's measurement.
type engineBench struct {
	Engine         string  `json:"engine"`
	Runs           int     `json:"runs"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	NsPerOp        int64   `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"consumelocal"
)

// runBench is the perf-trajectory harness: it replays one shared
// synthetic workload through every engine of the unified Replay API
// under testing.Benchmark and writes the headline numbers — sessions/s,
// ns/op, B/op, allocs/op per engine and worker count — as JSON, so each
// PR can record its before/after next to the code (see docs/PERF.md).
//
// The parallel and streaming engines are measured once per entry of the
// -workers list (the multi-core scaling matrix); the batch engine is
// single-threaded and measured once.
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consumelocal bench", flag.ContinueOnError)
	fs.SetOutput(out)
	scale := fs.Float64("scale", 0.002, "trace scale relative to the paper's dataset")
	days := fs.Int("days", 14, "trace horizon in days")
	seed := fs.Int64("seed", 1, "trace generator seed")
	workers := fs.String("workers", "4", "comma-separated worker counts for the parallel/streaming engines (e.g. 1,2,4,8)")
	output := fs.String("o", "", "write the JSON report to this file (default: stdout only)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark runs to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile taken after the benchmark runs to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench: unexpected arguments %q", fs.Args())
	}
	workerCounts, err := parseWorkerList(*workers)
	if err != nil {
		return err
	}

	traceCfg := consumelocal.DefaultTraceConfig(*scale)
	traceCfg.Days = *days
	traceCfg.Seed = *seed
	tr, err := consumelocal.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	simCfg := consumelocal.DefaultSimConfig(1.0)
	simCfg.TrackUsers = false

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("bench: start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	report.Trace.Scale = *scale
	report.Trace.Days = *days
	report.Trace.Seed = *seed
	report.Trace.Sessions = len(tr.Sessions)

	type benchCase struct {
		mode    consumelocal.EngineMode
		workers int
	}
	var cases []benchCase
	// The batch engine is serial; worker counts apply to the other two.
	cases = append(cases, benchCase{consumelocal.EngineBatch, 1})
	for _, mode := range []consumelocal.EngineMode{consumelocal.EngineParallel, consumelocal.EngineStreaming} {
		for _, w := range workerCounts {
			cases = append(cases, benchCase{mode, w})
		}
	}

	fmt.Fprintf(out, "bench: %d sessions over %d days (scale %g, seed %d)\n",
		len(tr.Sessions), *days, *scale, *seed)
	for _, bc := range cases {
		bc := bc
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job, err := consumelocal.Replay(context.Background(),
					consumelocal.TraceSource(tr),
					consumelocal.WithSimConfig(simCfg),
					consumelocal.WithEngine(bc.mode),
					consumelocal.WithWindow(24*3600),
					consumelocal.WithWorkers(bc.workers),
				)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := job.Result(); err != nil {
					b.Fatal(err)
				}
			}
		})
		eb := engineBench{
			Engine:         bc.mode.String(),
			Workers:        bc.workers,
			Runs:           res.N,
			NsPerOp:        res.NsPerOp(),
			BytesPerOp:     res.AllocedBytesPerOp(),
			AllocsPerOp:    res.AllocsPerOp(),
			SessionsPerSec: float64(len(tr.Sessions)*res.N) / res.T.Seconds(),
		}
		report.Engines = append(report.Engines, eb)
		fmt.Fprintf(out, "%-10s w=%-2d %12.0f sessions/s %14d ns/op %12d B/op %9d allocs/op\n",
			eb.Engine, eb.Workers, eb.SessionsPerSec, eb.NsPerOp, eb.BytesPerOp, eb.AllocsPerOp)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		runtime.GC() // materialise the final live set before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("bench: write heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return fmt.Errorf("bench: write report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		fmt.Fprintf(out, "bench: report written to %s\n", *output)
	}
	return nil
}

// parseWorkerList parses the -workers flag: a comma-separated list of
// positive worker counts, e.g. "1,2,4,8".
func parseWorkerList(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bench: invalid -workers entry %q (want positive integers, e.g. 1,2,4,8)", part)
		}
		counts = append(counts, w)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("bench: -workers needs at least one positive worker count")
	}
	return counts, nil
}

// benchReport is the BENCH_replay.json schema.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Trace       struct {
		Scale    float64 `json:"scale"`
		Days     int     `json:"days"`
		Seed     int64   `json:"seed"`
		Sessions int     `json:"sessions"`
	} `json:"trace"`
	Engines []engineBench `json:"engines"`
}

// engineBench is one engine × worker-count measurement.
type engineBench struct {
	Engine         string  `json:"engine"`
	Workers        int     `json:"workers"`
	Runs           int     `json:"runs"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	NsPerOp        int64   `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

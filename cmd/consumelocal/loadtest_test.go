package main

import (
	"strings"
	"testing"
)

// The loadtest subcommand validates its flags before touching the
// network or spawning anything — a misconfigured run must fail fast,
// not hammer the wrong target.
func TestRunLoadtestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no target", nil, "need -addr"},
		{"bare addr", []string{"-addr", "localhost:8377"}, "base URL"},
		{"bad mix", []string{"-addr", "http://localhost:1", "-mix", "4:3"}, "-mix"},
		{"zero clients", []string{"-addr", "http://localhost:1", "-clients", "0"}, "-clients"},
		{"bad wall", []string{"-addr", "http://localhost:1", "-wall", "2"}, "-wall"},
		{"narrow window", []string{"-addr", "http://localhost:1", "-window", "10"}, "-window"},
		{"positional", []string{"-addr", "http://localhost:1", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		var out strings.Builder
		err := run(append([]string{"loadtest"}, tc.args...), &out)
		if err == nil {
			t.Errorf("%s: loadtest accepted %v", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunLoadtestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"loadtest", "-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestUsageMentionsLoadtest(t *testing.T) {
	var out strings.Builder
	run(nil, &out) // prints usage before erroring
	if !strings.Contains(out.String(), "loadtest") {
		t.Fatal("usage text does not list the loadtest subcommand")
	}
}

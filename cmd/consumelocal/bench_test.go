package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchWritesReport runs the bench harness at a tiny scale and
// checks the JSON report: one measurement per engine, with positive
// throughput, so the perf trajectory file can never silently go stale
// in shape.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness timing run")
	}
	path := filepath.Join(t.TempDir(), "BENCH_replay.json")
	var out bytes.Buffer
	err := run([]string{"bench", "-scale", "0.0005", "-days", "2", "-o", path}, &out)
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Trace.Sessions <= 0 {
		t.Fatalf("report records %d sessions", report.Trace.Sessions)
	}
	want := []string{"batch", "parallel", "streaming"}
	if len(report.Engines) != len(want) {
		t.Fatalf("report has %d engines, want %d", len(report.Engines), len(want))
	}
	for i, eng := range report.Engines {
		if eng.Engine != want[i] {
			t.Fatalf("engine %d = %q, want %q", i, eng.Engine, want[i])
		}
		if eng.SessionsPerSec <= 0 || eng.Runs <= 0 || eng.NsPerOp <= 0 {
			t.Fatalf("engine %q has empty measurements: %+v", eng.Engine, eng)
		}
	}
	if !strings.Contains(out.String(), "sessions/s") {
		t.Fatalf("bench output missing summary table:\n%s", out.String())
	}
}

func TestBenchRejectsExtraArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bench", "extra"}, &out); err == nil {
		t.Fatal("expected an error for stray arguments")
	}
}

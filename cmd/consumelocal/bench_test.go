package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchWritesReport runs the bench harness at a tiny scale with a
// two-entry worker sweep and checks the JSON report: one measurement
// per engine × worker count, each carrying its workers field and
// positive throughput, so the perf trajectory file can never silently
// go stale in shape.
func TestBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness timing run")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_replay.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{"bench", "-scale", "0.0005", "-days", "2", "-workers", "1,2",
		"-cpuprofile", cpuPath, "-memprofile", memPath, "-o", path}, &out)
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Trace.Sessions <= 0 {
		t.Fatalf("report records %d sessions", report.Trace.Sessions)
	}
	type entry struct {
		engine  string
		workers int
	}
	want := []entry{
		{"batch", 1},
		{"parallel", 1}, {"parallel", 2},
		{"streaming", 1}, {"streaming", 2},
	}
	if len(report.Engines) != len(want) {
		t.Fatalf("report has %d entries, want %d", len(report.Engines), len(want))
	}
	for i, eng := range report.Engines {
		if eng.Engine != want[i].engine || eng.Workers != want[i].workers {
			t.Fatalf("entry %d = %q w=%d, want %q w=%d",
				i, eng.Engine, eng.Workers, want[i].engine, want[i].workers)
		}
		if eng.SessionsPerSec <= 0 || eng.Runs <= 0 || eng.NsPerOp <= 0 {
			t.Fatalf("entry %q w=%d has empty measurements: %+v", eng.Engine, eng.Workers, eng)
		}
	}
	if !strings.Contains(out.String(), "sessions/s") {
		t.Fatalf("bench output missing summary table:\n%s", out.String())
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestBenchRejectsBadWorkerList(t *testing.T) {
	for _, bad := range []string{"0", "-1", "a", "1,,x", ","} {
		var out bytes.Buffer
		if err := run([]string{"bench", "-workers", bad}, &out); err == nil {
			t.Fatalf("expected an error for -workers %q", bad)
		}
	}
}

func TestBenchRejectsExtraArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bench", "extra"}, &out); err == nil {
		t.Fatal("expected an error for stray arguments")
	}
}

// Command consumelocal regenerates the tables and figures of "Consume
// Local: Towards Carbon Free Content Delivery" (ICDCS 2018) from the
// reproduction's synthetic workload, simulator and closed-form model.
//
// Usage:
//
//	consumelocal <experiment> [flags]
//
// Experiments: table1, table3, table4, fig2, fig3, fig4, fig5, fig6,
// ablations, provisioning, live, accounting, simulate, replay,
// tracegen, bench, loadtest, all.
//
// Flags:
//
//	-scale f    trace scale relative to the paper's dataset (default 0.01)
//	-days n     trace horizon in days (default 30)
//	-seed n     generator seed (default 1)
//	-ratio f    upload-to-bitrate ratio q/β (default 1.0)
//	-tsv dir    also write gnuplot-ready TSV files into dir
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"consumelocal/internal/experiments"
	"consumelocal/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "consumelocal:", err)
		os.Exit(1)
	}
}

// run dispatches the experiment named by args.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return errors.New("missing experiment name")
	}
	name := args[0]

	// The simulate, replay, bench and loadtest subcommands have their
	// own flag sets (trace path, policy knobs, report output), so they
	// dispatch before the shared experiment flags parse.
	if name == "simulate" {
		return runSimulate(args[1:], out)
	}
	if name == "replay" {
		return runReplay(args[1:], out)
	}
	if name == "bench" {
		return runBench(args[1:], out)
	}
	if name == "loadtest" {
		return runLoadtest(args[1:], out)
	}

	fs := flag.NewFlagSet("consumelocal", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.01, "trace scale relative to the paper's dataset")
	days := fs.Int("days", 30, "trace horizon in days")
	seed := fs.Int64("seed", 1, "trace generator seed")
	ratio := fs.Float64("ratio", 1.0, "upload-to-bitrate ratio q/beta")
	tsvDir := fs.String("tsv", "", "directory for gnuplot-ready TSV output")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.UploadRatio = *ratio

	sink := &outputSink{out: out, tsvDir: *tsvDir}

	switch name {
	case "table1":
		return runTable1(cfg, sink)
	case "table3":
		return sink.table("table3", experiments.Table3())
	case "table4":
		return sink.table("table4", experiments.Table4(cfg))
	case "fig2":
		return runFig2(cfg, sink)
	case "fig3":
		return runFig3(cfg, sink)
	case "fig4":
		return runFig4(cfg, sink)
	case "fig5":
		return runFig5(cfg, sink)
	case "fig6":
		return runFig6(cfg, sink)
	case "ablations":
		return runAblations(cfg, sink)
	case "provisioning":
		return runProvisioning(cfg, sink)
	case "live":
		return runLive(cfg, sink)
	case "accounting":
		return runAccounting(cfg, sink)
	case "tracegen":
		return runTracegen(cfg, out)
	case "all":
		return runAll(cfg, sink)
	default:
		usage(out)
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func usage(out io.Writer) {
	fmt.Fprintln(out, `usage: consumelocal <experiment> [flags]

experiments:
  table1     dataset description (paper Table I)
  table3     localisation probabilities (paper Table III)
  table4     energy parameters (paper Table IV)
  fig2       savings vs capacity, theory + simulation (paper Fig. 2)
  fig3       per-swarm capacity and savings CCDFs (paper Fig. 3)
  fig4       daily aggregate savings per ISP (paper Fig. 4)
  fig5       savings decomposition and CC transfer (paper Fig. 5)
  fig6       per-user carbon credit transfer CDF (paper Fig. 6)
  ablations  matching policy, swarm scope, budget, topology
  provisioning  CDN peak-capacity reduction from peer assistance
  live       live broadcasts vs catch-up viewing (future work)
  accounting per-bit vs per-subscriber energy accounting
  simulate   run the simulator on a trace CSV (-trace file, or stdin)
  replay     stream a trace CSV through the out-of-core engine with
             live windowed reports (-trace file, or stdin)
  tracegen   write a synthetic trace as CSV to stdout
  bench      benchmark every replay engine on one shared workload and
             record sessions/s, B/op and allocs/op (-o BENCH_replay.json)
  loadtest   hammer a consumelocald daemon with a concurrent client
             fleet and record latency percentiles, throughput and
             error counts (-addr or -daemon, -o BENCH_daemon.json)
  all        run everything

flags: -scale -days -seed -ratio -tsv`)
}

// outputSink renders results to the terminal and optionally mirrors them
// as TSV files.
type outputSink struct {
	out    io.Writer
	tsvDir string
}

func (s *outputSink) table(name string, t *experiments.Table) error {
	if err := t.RenderText(s.out); err != nil {
		return err
	}
	fmt.Fprintln(s.out)
	return s.mirror(name, t.WriteTSV)
}

func (s *outputSink) dataset(name string, d *experiments.Dataset) error {
	if err := d.RenderText(s.out); err != nil {
		return err
	}
	fmt.Fprintln(s.out)
	return s.mirror(name, d.WriteTSV)
}

// mirror writes one artefact into the TSV directory when configured.
func (s *outputSink) mirror(name string, write func(io.Writer) error) error {
	if s.tsvDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.tsvDir, 0o755); err != nil {
		return fmt.Errorf("tsv dir: %w", err)
	}
	path := filepath.Join(s.tsvDir, name+".tsv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tsv file: %w", err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

func runTable1(cfg experiments.Config, sink *outputSink) error {
	t, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	return sink.table("table1", t)
}

func runFig2(cfg experiments.Config, sink *outputSink) error {
	res, err := experiments.Fig2(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("fig2_tiers", res.Tiers); err != nil {
		return err
	}
	for i := range res.Theory {
		if err := sink.dataset(fmt.Sprintf("fig2_theory_%d", i), &res.Theory[i]); err != nil {
			return err
		}
	}
	for i := range res.Simulation {
		if err := sink.dataset(fmt.Sprintf("fig2_sim_%d", i), &res.Simulation[i]); err != nil {
			return err
		}
	}
	return nil
}

func runFig3(cfg experiments.Config, sink *outputSink) error {
	res, err := experiments.Fig3(cfg)
	if err != nil {
		return err
	}
	if err := sink.dataset("fig3_capacity", &res.Capacities); err != nil {
		return err
	}
	if err := sink.dataset("fig3_savings", &res.Savings); err != nil {
		return err
	}
	return sink.table("fig3_summary", res.Summary)
}

func runFig4(cfg experiments.Config, sink *outputSink) error {
	res, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	for i := range res.Datasets {
		if err := sink.dataset(fmt.Sprintf("fig4_%d", i), &res.Datasets[i]); err != nil {
			return err
		}
	}
	return sink.table("fig4_summary", res.Summary)
}

func runFig5(cfg experiments.Config, sink *outputSink) error {
	res, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	for i := range res.Datasets {
		if err := sink.dataset(fmt.Sprintf("fig5_%d", i), &res.Datasets[i]); err != nil {
			return err
		}
	}
	return sink.table("fig5_summary", res.Summary)
}

func runFig6(cfg experiments.Config, sink *outputSink) error {
	res, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	if err := sink.dataset("fig6_cdf", &res.CDF); err != nil {
		return err
	}
	return sink.table("fig6_summary", res.Summary)
}

func runAblations(cfg experiments.Config, sink *outputSink) error {
	matching, err := experiments.AblationMatching(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("ablation_matching", matching); err != nil {
		return err
	}
	scope, err := experiments.AblationSwarmScope(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("ablation_scope", scope); err != nil {
		return err
	}
	budget, err := experiments.AblationBudget(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("ablation_budget", budget); err != nil {
		return err
	}
	participation, err := experiments.AblationParticipation(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("ablation_participation", participation); err != nil {
		return err
	}
	placement, err := experiments.AblationPlacement(cfg)
	if err != nil {
		return err
	}
	if err := sink.table("ablation_placement", placement); err != nil {
		return err
	}
	topo, err := experiments.AblationTopology(cfg)
	if err != nil {
		return err
	}
	if err := sink.dataset("ablation_topology", topo); err != nil {
		return err
	}
	sweep, err := experiments.ScaleSweep(cfg, nil)
	if err != nil {
		return err
	}
	return sink.table("scale_sweep", sweep)
}

func runProvisioning(cfg experiments.Config, sink *outputSink) error {
	table, err := experiments.Provisioning(cfg)
	if err != nil {
		return err
	}
	return sink.table("provisioning", table)
}

func runLive(cfg experiments.Config, sink *outputSink) error {
	table, err := experiments.Live(cfg)
	if err != nil {
		return err
	}
	return sink.table("live", table)
}

func runAccounting(cfg experiments.Config, sink *outputSink) error {
	table, err := experiments.Accounting(cfg)
	if err != nil {
		return err
	}
	return sink.table("accounting", table)
}

func runTracegen(cfg experiments.Config, out io.Writer) error {
	gc := trace.DefaultGeneratorConfig(cfg.Scale)
	gc.Days = cfg.Days
	gc.Seed = cfg.Seed
	tr, err := trace.Generate(gc)
	if err != nil {
		return err
	}
	return tr.WriteCSV(out)
}

func runAll(cfg experiments.Config, sink *outputSink) error {
	steps := []func() error{
		func() error { return runTable1(cfg, sink) },
		func() error { return sink.table("table3", experiments.Table3()) },
		func() error { return sink.table("table4", experiments.Table4(cfg)) },
		func() error { return runFig2(cfg, sink) },
		func() error { return runFig3(cfg, sink) },
		func() error { return runFig4(cfg, sink) },
		func() error { return runFig5(cfg, sink) },
		func() error { return runFig6(cfg, sink) },
		func() error { return runAblations(cfg, sink) },
		func() error { return runProvisioning(cfg, sink) },
		func() error { return runLive(cfg, sink) },
		func() error { return runAccounting(cfg, sink) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

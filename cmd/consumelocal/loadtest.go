package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"consumelocal/internal/loadgen"
)

// runLoadtest is the daemon-side companion to runBench: where bench
// measures the replay engines in-process, loadtest hammers a real
// consumelocald over HTTP with a concurrent client fleet — ingest
// producers (some silent, exercising the watermark=wall fallback),
// snapshot followers and spooled-trace submitters — and writes the
// latency/throughput/error report to BENCH_daemon.json. With -addr it
// drives an already-running daemon; without, it spawns -daemon itself
// on an ephemeral port and tears it down after the run. -chaos arms
// the fault injection: the spawned daemon is SIGKILLed and restarted
// mid-run on the same -data-dir, and the report gains recovery timings
// and a post-crash ledger cross-check (see docs/DURABILITY.md). See
// docs/LOADTEST.md for the workload and report schema.
func runLoadtest(args []string, out io.Writer) error {
	def := loadgen.DefaultConfig()
	fs := flag.NewFlagSet("consumelocal loadtest", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "", "base URL of a running consumelocald (e.g. http://localhost:8377); empty spawns -daemon")
	daemonPath := fs.String("daemon", "", "consumelocald binary to spawn when -addr is empty")
	clients := fs.Int("clients", def.Clients, "total concurrent clients across the workload mix")
	duration := fs.Duration("duration", def.Duration, "how long to drive load")
	rate := fs.Float64("rate", def.Rate, "aggregate offered op rate per second, 0 for unpaced")
	burst := fs.Int("burst", def.Burst, "token-bucket burst capacity")
	mixFlag := fs.String("mix", def.Mix, "producers:followers:trace client ratio")
	wall := fs.Float64("wall", def.WallFraction, "fraction of producers opening jobs with watermark=wall")
	scale := fs.Float64("scale", def.Scale, "live-trace scale for the shared workload")
	window := fs.Int64("window", def.Window, "ingest reporting window in trace seconds")
	seed := fs.Int64("seed", def.Seed, "trace and jitter seed")
	maxJobs := fs.Int("max-jobs", 0, "-max-jobs for a spawned daemon (0 derives from the fleet)")
	chaos := fs.Bool("chaos", false, "SIGKILL and restart the spawned daemon mid-run (requires spawn mode; implies a durable -data-dir)")
	chaosKills := fs.Int("chaos-kills", 1, "kill/restart cycles in -chaos mode, spread evenly through the run (live ingest jobs must survive every one)")
	dataDir := fs.String("data-dir", "", "-data-dir for a spawned daemon (empty with -chaos uses a temp dir)")
	output := fs.String("o", def.Output, "write the JSON report here (empty skips the file)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadtest: unexpected arguments %q", fs.Args())
	}

	cfg := loadgen.Config{
		Addr:         *addr,
		DaemonPath:   *daemonPath,
		Clients:      *clients,
		Duration:     *duration,
		Rate:         *rate,
		Burst:        *burst,
		Mix:          *mixFlag,
		WallFraction: *wall,
		Scale:        *scale,
		Window:       *window,
		Seed:         *seed,
		MaxJobs:      *maxJobs,
		Chaos:        *chaos,
		ChaosKills:   *chaosKills,
		DataDir:      *dataDir,
		Output:       *output,
		Out:          out,
	}

	// Ctrl-C ends the run early but still writes the report for what
	// ran; a second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	_, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	fmt.Fprintf(out, "loadtest: completed in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs shrinks the workload so CLI tests stay quick.
func fastArgs(name string) []string {
	return []string{name, "-scale", "0.002", "-days", "7"}
}

func TestRunRequiresExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("expected error without experiment name")
	}
	if !strings.Contains(buf.String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"figure-nine"}, &buf); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"table3", "-nope"}, &buf); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunTables(t *testing.T) {
	for _, name := range []string{"table1", "table3", "table4"} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(fastArgs(name), &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("no output")
			}
		})
	}
}

func TestRunTable3Content(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"table3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"345", "11.1%", "Core Router"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	for _, name := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "ablations", "provisioning", "live", "accounting"} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(fastArgs(name), &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("no output")
			}
		})
	}
}

func TestRunTracegen(t *testing.T) {
	var buf bytes.Buffer
	if err := run(fastArgs("tracegen"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "#meta ") {
		t.Errorf("tracegen output missing meta header: %.60q", out)
	}
	if !strings.Contains(out, "user,content,isp") {
		t.Error("tracegen output missing CSV header")
	}
}

func TestRunSimulateFromFile(t *testing.T) {
	// Generate a tiny trace, write it to disk, then simulate it through
	// the CLI round trip.
	var csv bytes.Buffer
	if err := run([]string{"tracegen", "-scale", "0.0005", "-days", "3"}, &csv); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(path, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	jsonPath := filepath.Join(dir, "result.json")
	var out bytes.Buffer
	err := run([]string{"simulate", "-trace", path, "-ratio", "0.8",
		"-participation", "0.5", "-json", jsonPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "system") {
		t.Errorf("missing system row: %s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"swarms"`) {
		t.Error("JSON result missing swarms field")
	}
}

func TestRunSimulateBadTracePath(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"simulate", "-trace", "/nonexistent/trace.csv"}, &out); err == nil {
		t.Error("expected error for missing trace file")
	}
}

func TestRunSimulateBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"simulate", "-bogus"}, &out); err == nil {
		t.Error("expected flag error")
	}
}

func TestRunWritesTSVMirror(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"fig5", "-tsv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no TSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "#") {
		t.Errorf("TSV file missing title comment: %.40q", string(data))
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"consumelocal/internal/carbon"
	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// runSimulate implements the `simulate` subcommand: run the hybrid-CDN
// simulator on a user-provided trace (CSV from -trace, or stdin) and
// report system and per-ISP savings under both energy models. The full
// result can be archived as JSON with -json for downstream analysis.
func runSimulate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace CSV path (default: read stdin)")
	ratio := fs.Float64("ratio", 1.0, "upload-to-bitrate ratio q/beta")
	participation := fs.Float64("participation", 1.0, "fraction of users contributing upload capacity")
	seedRetention := fs.Int64("seed-retention", 0, "post-playback seeding window in seconds")
	tick := fs.Int64("tick", 0, "quantize sessions to this tick (seconds); 0 = exact")
	cityWide := fs.Bool("city-wide", false, "allow swarms to span ISPs")
	mixedBitrates := fs.Bool("mixed-bitrates", false, "allow swarms to mix bitrate classes")
	jsonPath := fs.String("json", "", "write the full result as JSON to this path")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := loadTrace(*tracePath)
	if err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*ratio)
	cfg.ParticipationRate = *participation
	cfg.SeedRetentionSec = *seedRetention
	cfg.QuantizeTickSec = *tick
	cfg.Swarm = swarm.Options{RestrictISP: !*cityWide, SplitBitrate: !*mixedBitrates}

	res, err := sim.RunParallel(tr, cfg, *workers)
	if err != nil {
		return err
	}

	if err := printSimReport(out, tr, res); err != nil {
		return err
	}
	if *jsonPath != "" {
		if err := writeResultJSON(res, *jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nfull result written to %s\n", *jsonPath)
	}
	return nil
}

// loadTrace reads a trace CSV from path, or stdin when path is empty.
func loadTrace(path string) (*trace.Trace, error) {
	if path == "" {
		return trace.ReadCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

// printSimReport renders the simulation outcome as a terminal report.
func printSimReport(out io.Writer, tr *trace.Trace, res *sim.Result) error {
	summary := tr.Summarize()
	fmt.Fprintf(out, "trace %q: %d users, %d sessions, %d days, %.2f TB watched\n",
		tr.Name, summary.Users, summary.Sessions, tr.Days(), summary.TotalBytes/1e12)
	fmt.Fprintf(out, "policy %s: %.1f%% of traffic served by peers\n\n",
		res.PolicyName, 100*res.Total.Offload())

	models := energy.BothModels()
	fmt.Fprintf(out, "%-8s %12s", "scope", "traffic")
	for _, p := range models {
		fmt.Fprintf(out, " %12s", p.Name)
	}
	fmt.Fprintln(out)

	printRow := func(scope string, t sim.Tally) {
		fmt.Fprintf(out, "%-8s %9.2f TB", scope, t.TotalBits/8/1e12)
		for _, p := range models {
			fmt.Fprintf(out, " %11.1f%%", 100*sim.Evaluate(t, p).Savings)
		}
		fmt.Fprintln(out)
	}
	for isp, tally := range res.ISPTotals() {
		if tally.TotalBits <= 0 {
			continue
		}
		printRow(fmt.Sprintf("ISP-%d", isp+1), tally)
	}
	printRow("system", res.Total)

	if res.Users != nil {
		fmt.Fprintln(out)
		for _, p := range models {
			dist := carbon.Distribute(res.Users, p)
			fmt.Fprintf(out, "carbon positive users (%s): %.1f%%\n", p.Name, 100*dist.CarbonPositive)
		}
	}
	return nil
}

// writeResultJSON archives the full result.
func writeResultJSON(res *sim.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(res); err != nil {
		return fmt.Errorf("encode result: %w", err)
	}
	return f.Close()
}

package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"consumelocal"
	"consumelocal/internal/energy"
	"consumelocal/internal/obs"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
)

// runReplay implements the `replay` subcommand on the unified Replay
// pipeline: pick a source (-trace file, stdin, -generate for the live
// synthetic generator, or -live for the evening-TV broadcast schedule
// replayed through a live ingest stream), an engine mode, and print
// live windowed reports followed by the same summary the simulate
// subcommand produces. -ndjson swaps the table for the NDJSON snapshot
// sink.
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace CSV path (default: read stdin)")
	generate := fs.Float64("generate", 0, "stream the synthetic generator live at this scale instead of reading a trace")
	liveScale := fs.Float64("live", 0, "replay the evening-TV live broadcast schedule at this audience scale, fed through a live ingest stream with hourly watermarks")
	genDays := fs.Int("days", 7, "generator horizon in days (with -generate)")
	genSeed := fs.Int64("seed", 1, "generator seed (with -generate or -live)")
	mode := fs.String("engine", "streaming", "engine mode: streaming, batch or parallel")
	ratio := fs.Float64("ratio", 1.0, "upload-to-bitrate ratio q/beta")
	window := fs.Int64("window", 3600, "reporting window in seconds")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "shard workers")
	participation := fs.Float64("participation", 1.0, "fraction of users contributing upload capacity")
	seedRetention := fs.Int64("seed-retention", 0, "post-playback seeding window in seconds")
	tick := fs.Int64("tick", 0, "quantize sessions to this tick (seconds); 0 = exact")
	cityWide := fs.Bool("city-wide", false, "allow swarms to span ISPs")
	mixedBitrates := fs.Bool("mixed-bitrates", false, "allow swarms to mix bitrate classes")
	ndjson := fs.Bool("ndjson", false, "emit snapshots as NDJSON instead of a table")
	stats := fs.Bool("stats", false, "print a per-stage instrumentation summary at exit (stage timings, windows; with -live also peak queue depth, backpressure stalls and watermark lag); with -ndjson it goes to stderr to keep the stream clean")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("replay: unexpected arguments %q", fs.Args())
	}
	var generateSet, liveSet, daysSet, seedSet bool
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "generate":
			generateSet = true
		case "live":
			liveSet = true
		case "days":
			daysSet = true
		case "seed":
			seedSet = true
		}
	})
	// An explicit non-positive -generate or -live must not silently fall
	// through to the stdin/trace path (DefaultTraceConfig would also
	// treat 0 as full paper scale, which no typo should launch).
	if generateSet && *generate <= 0 {
		return fmt.Errorf("replay: -generate must be a positive scale, got %g", *generate)
	}
	if liveSet && *liveScale <= 0 {
		return fmt.Errorf("replay: -live must be a positive scale, got %g", *liveScale)
	}
	sources := 0
	for _, set := range []bool{*generate > 0, *liveScale > 0, *tracePath != ""} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return fmt.Errorf("replay: -generate, -live and -trace are mutually exclusive")
	}
	if daysSet && !generateSet {
		return fmt.Errorf("replay: -days only applies with -generate")
	}
	if seedSet && !generateSet && !liveSet {
		return fmt.Errorf("replay: -seed only applies with -generate or -live")
	}

	engineMode, err := consumelocal.ParseEngineMode(*mode)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}

	var src consumelocal.Source
	// ing keeps the live stream's handle when -live is set, so -stats can
	// report the queue and backpressure figures at exit.
	var ing *consumelocal.IngestSource
	switch {
	case *generate > 0:
		gcfg := consumelocal.DefaultTraceConfig(*generate)
		gcfg.Days = *genDays
		gcfg.Seed = *genSeed
		src, err = consumelocal.GeneratorSource(gcfg)
		if err != nil {
			return err
		}
	case *liveScale > 0:
		// The live demo drives the ingest path end to end: the evening-TV
		// schedule is generated up front, but the replay consumes it the
		// way a broadcast happens — pushed session by session into an
		// IngestSource, the watermark advanced each simulated hour, the
		// stream sealed when the evening ends.
		lcfg := consumelocal.DefaultLiveTraceConfig(*liveScale)
		lcfg.Seed = *genSeed
		tr, err := consumelocal.GenerateLiveTrace(lcfg)
		if err != nil {
			return err
		}
		ing, err = consumelocal.NewIngestSource(tr.Meta(), 0)
		if err != nil {
			return err
		}
		go func() {
			watermark := int64(0)
			for _, s := range tr.Sessions {
				for next := watermark + 3600; next <= s.StartSec; next += 3600 {
					if ing.Advance(next) != nil {
						return
					}
					watermark = next
				}
				if ing.Push(s) != nil {
					return
				}
			}
			_ = ing.Advance(tr.HorizonSec)
			_ = ing.Close()
		}()
		src = ing
	default:
		in := io.Reader(os.Stdin)
		if *tracePath != "" {
			f, err := os.Open(*tracePath)
			if err != nil {
				return fmt.Errorf("open trace: %w", err)
			}
			defer f.Close()
			in = f
		}
		src, err = consumelocal.CSVSource(in)
		if err != nil {
			return err
		}
	}

	simCfg := sim.DefaultConfig(*ratio)
	simCfg.ParticipationRate = *participation
	simCfg.SeedRetentionSec = *seedRetention
	simCfg.QuantizeTickSec = *tick
	simCfg.Swarm = swarm.Options{RestrictISP: !*cityWide, SplitBitrate: !*mixedBitrates}

	opts := []consumelocal.Option{
		consumelocal.WithSimConfig(simCfg),
		consumelocal.WithEngine(engineMode),
		consumelocal.WithWindow(*window),
		consumelocal.WithWorkers(*workers),
	}
	if *ndjson {
		opts = append(opts, consumelocal.WithSink(consumelocal.NDJSONSink(out)))
	}
	var stages *obs.ReplayMetrics
	if *stats {
		stages = obs.NewReplayMetrics(consumelocal.NewMetrics())
		opts = append(opts, consumelocal.WithReplayMetrics(stages))
		if ing != nil {
			ing.Instrument(stages.Ingest)
		}
	}

	job, err := consumelocal.Replay(context.Background(), src, opts...)
	if err != nil {
		return err
	}

	meta := job.Meta()
	models := energy.BothModels()
	if !*ndjson {
		fmt.Fprintf(out, "replaying %q (%s engine): %d-day horizon, window %ds, %d workers\n\n",
			meta.Name, job.Mode(), meta.Days(), *window, *workers)
		fmt.Fprintf(out, "%8s %10s %9s %8s %8s", "window", "sessions", "active", "traffic", "offload")
		for _, p := range models {
			fmt.Fprintf(out, " %10s", p.Name)
		}
		fmt.Fprintln(out)
	}

	var seen int64
	for snap := range job.Snapshots() {
		seen = snap.SessionsSeen
		if *ndjson {
			continue // the NDJSON sink already wrote the line
		}
		label := fmt.Sprintf("%dh", snap.ToSec/3600)
		if snap.Final {
			label = "final"
		}
		fmt.Fprintf(out, "%8s %10d %9d %5.2f TB %7.1f%%",
			label, snap.SessionsSeen, snap.ActiveMembers,
			snap.Cumulative.TotalBits/8/1e12, 100*snap.Cumulative.Offload())
		for _, p := range models {
			fmt.Fprintf(out, " %9.1f%%", 100*sim.Evaluate(snap.Cumulative, p).Savings)
		}
		fmt.Fprintln(out)
	}

	res, err := job.Result()
	if err != nil {
		return err
	}
	if !*ndjson {
		fmt.Fprintf(out, "\n%d sessions across %d swarms; %.1f%% of traffic served by peers (policy %s)\n",
			seen, len(res.Swarms), 100*res.Total.Offload(), res.PolicyName)
		for _, p := range models {
			report := sim.Evaluate(res.Total, p)
			fmt.Fprintf(out, "energy savings (%s): %.1f%%\n", p.Name, 100*report.Savings)
		}
	}
	if stages != nil {
		w := out
		if *ndjson {
			w = os.Stderr
		}
		printStats(w, stages, ing)
	}
	return nil
}

// printStats renders the -stats summary: where the replay's wall-clock
// went, stage by stage, and — for a live ingest replay — how hard the
// backpressure worked.
func printStats(w io.Writer, m *obs.ReplayMetrics, ing *consumelocal.IngestSource) {
	fmt.Fprintf(w, "\nper-stage instrumentation:\n")
	fmt.Fprintf(w, "  source read  %9.3fs  (%.0f sessions)\n", m.SourceReadSeconds.Value(), m.SourceSessions.Value())
	fmt.Fprintf(w, "  settle       %9.3fs  (summed across workers)\n", m.SettleSeconds.Value())
	fmt.Fprintf(w, "  sink emit    %9.3fs  (%.0f windows)\n", m.SinkEmitSeconds.Value(), m.WindowsSettled.Value())
	if ing != nil {
		fmt.Fprintf(w, "  ingest       peak queue %d events, producer blocked %.3fs, final watermark lag %ds\n",
			ing.QueuePeak(), ing.Blocked().Seconds(), ing.WatermarkLag())
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"consumelocal/internal/energy"
	"consumelocal/internal/engine"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// runReplay implements the `replay` subcommand: stream a trace CSV
// through the out-of-core engine (-trace file, or stdin — so a
// generator can be piped straight in) and print live windowed reports
// followed by the same summary the simulate subcommand produces.
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace CSV path (default: read stdin)")
	ratio := fs.Float64("ratio", 1.0, "upload-to-bitrate ratio q/beta")
	window := fs.Int64("window", 3600, "reporting window in seconds")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "shard workers")
	participation := fs.Float64("participation", 1.0, "fraction of users contributing upload capacity")
	seedRetention := fs.Int64("seed-retention", 0, "post-playback seeding window in seconds")
	tick := fs.Int64("tick", 0, "quantize sessions to this tick (seconds); 0 = exact")
	cityWide := fs.Bool("city-wide", false, "allow swarms to span ISPs")
	mixedBitrates := fs.Bool("mixed-bitrates", false, "allow swarms to mix bitrate classes")
	ndjson := fs.Bool("ndjson", false, "emit snapshots as NDJSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := io.Reader(os.Stdin)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		in = f
	}
	sc, err := trace.NewScanner(in)
	if err != nil {
		return err
	}

	cfg := engine.DefaultConfig(*ratio)
	cfg.WindowSec = *window
	cfg.Workers = *workers
	cfg.Sim.ParticipationRate = *participation
	cfg.Sim.SeedRetentionSec = *seedRetention
	cfg.Sim.QuantizeTickSec = *tick
	cfg.Sim.Swarm = swarm.Options{RestrictISP: !*cityWide, SplitBitrate: !*mixedBitrates}

	run, err := engine.Stream(sc, cfg)
	if err != nil {
		return err
	}

	meta := run.Meta()
	models := energy.BothModels()
	if !*ndjson {
		fmt.Fprintf(out, "replaying %q out-of-core: %d-day horizon, window %ds, %d workers\n\n",
			meta.Name, meta.Days(), cfg.WindowSec, cfg.Workers)
		fmt.Fprintf(out, "%8s %10s %9s %8s %8s", "window", "sessions", "active", "traffic", "offload")
		for _, p := range models {
			fmt.Fprintf(out, " %10s", p.Name)
		}
		fmt.Fprintln(out)
	}

	var seen int64
	enc := json.NewEncoder(out)
	for snap := range run.Snapshots() {
		seen = snap.SessionsSeen
		if *ndjson {
			if err := enc.Encode(snap); err != nil {
				return err
			}
			continue
		}
		label := fmt.Sprintf("%dh", snap.ToSec/3600)
		if snap.Final {
			label = "final"
		}
		fmt.Fprintf(out, "%8s %10d %9d %5.2f TB %7.1f%%",
			label, snap.SessionsSeen, snap.ActiveMembers,
			snap.Cumulative.TotalBits/8/1e12, 100*snap.Cumulative.Offload())
		for _, p := range models {
			fmt.Fprintf(out, " %9.1f%%", 100*sim.Evaluate(snap.Cumulative, p).Savings)
		}
		fmt.Fprintln(out)
	}

	res, err := run.Result()
	if err != nil {
		return err
	}
	if !*ndjson {
		fmt.Fprintf(out, "\n%d sessions across %d swarms; %.1f%% of traffic served by peers (policy %s)\n",
			seen, len(res.Swarms), 100*res.Total.Offload(), res.PolicyName)
		for _, p := range models {
			report := sim.Evaluate(res.Total, p)
			fmt.Fprintf(out, "energy savings (%s): %.1f%%\n", p.Name, 100*report.Savings)
		}
	}
	return nil
}

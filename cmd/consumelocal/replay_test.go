package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"consumelocal"
)

// writeTestTrace generates a small trace CSV on disk through the CLI's
// own tracegen path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	var csv bytes.Buffer
	if err := run([]string{"tracegen", "-scale", "0.0005", "-days", "3"}, &csv); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunReplayTableOutput is the golden-shape run: replay a generated
// trace and check every section of the report is present and plausible.
func TestRunReplayTableOutput(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	err := run([]string{"replay", "-trace", path, "-window", "21600", "-workers", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"replaying \"synthetic-london\" (streaming engine)",
		"3-day horizon, window 21600s, 2 workers",
		"window   sessions    active  traffic  offload",
		"valancius",
		"baliga",
		"final",
		"of traffic served by peers (policy locality-first)",
		"energy savings (valancius):",
		"energy savings (baliga):",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("replay output missing %q:\n%s", want, got)
		}
	}
	// One table row per 6-hour window of a 3-day trace, plus the final
	// row: at least 5 windowed lines ("    42h  ..." rows).
	if rows := regexp.MustCompile(`(?m)^\s*\d+h\s`).FindAllString(got, -1); len(rows) < 5 {
		t.Errorf("replay output has %d windowed report rows, want >= 5:\n%s", len(rows), got)
	}
}

// TestRunReplayNDJSON checks the sink-backed NDJSON mode: every line
// parses, snapshots carry monotone cumulative tallies, and the stream
// closes with the summary line.
func TestRunReplayNDJSON(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := run([]string{"replay", "-trace", path, "-window", "21600", "-ndjson"}, &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		snapshots int
		summaries int
		lastTotal float64
		sawFinal  bool
	)
	for sc.Scan() {
		var line struct {
			Final      bool `json:"final"`
			Cumulative *struct {
				TotalBits float64 `json:"total_bits"`
			} `json:"cumulative"`
			Summary *struct {
				Swarms  int     `json:"swarms"`
				Offload float64 `json:"offload"`
			} `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Summary != nil:
			summaries++
			if line.Summary.Swarms == 0 || line.Summary.Offload <= 0 {
				t.Fatalf("implausible summary line: %s", sc.Text())
			}
		case line.Cumulative != nil:
			snapshots++
			if line.Cumulative.TotalBits < lastTotal {
				t.Fatalf("cumulative tally regressed: %s", sc.Text())
			}
			lastTotal = line.Cumulative.TotalBits
			sawFinal = sawFinal || line.Final
		default:
			t.Fatalf("unrecognised NDJSON line: %s", sc.Text())
		}
	}
	if snapshots < 3 || summaries != 1 || !sawFinal {
		t.Fatalf("NDJSON stream: %d snapshots, %d summaries, final=%v", snapshots, summaries, sawFinal)
	}
}

// TestRunReplayGeneratorSource streams the synthetic generator straight
// into the engine — no trace file at all.
func TestRunReplayGeneratorSource(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"replay", "-generate", "0.0005", "-days", "2", "-window", "21600"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2-day horizon") || !strings.Contains(got, "energy savings") {
		t.Errorf("generator replay output incomplete:\n%s", got)
	}
}

// TestRunReplayLiveIngest replays the evening-TV broadcast schedule
// through the live ingest path and checks the report reflects a
// watermarked, windowed live replay whose outcome matches a direct
// replay of the materialised schedule.
func TestRunReplayLiveIngest(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"replay", "-live", "0.001"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"replaying \"live-evening\" (streaming engine)",
		"1-day horizon",
		"final",
		"of traffic served by peers (policy locality-first)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("live replay output missing %q:\n%s", want, got)
		}
	}
	// The evening is quiet until 18:00 and the watermark advances every
	// hour regardless, so the table must contain idle windowed rows
	// before the first broadcast: at least 18 hourly rows plus final.
	if rows := regexp.MustCompile(`(?m)^\s*\d+h\s`).FindAllString(got, -1); len(rows) < 18 {
		t.Errorf("live replay printed %d windowed rows, want hourly rows across the evening:\n%s", len(rows), got)
	}

	// Same outcome as replaying the materialised schedule directly.
	tr, err := consumelocal.GenerateLiveTrace(consumelocal.DefaultLiveTraceConfig(0.001))
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithUploadRatio(1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%.1f%% of traffic served by peers", 100*res.Total.Offload())
	if !strings.Contains(got, want) {
		t.Fatalf("live replay output missing %q:\n%s", want, got)
	}
}

// TestRunReplayEngineModesAgree replays the same trace on all three
// engines and checks the reported summaries agree.
func TestRunReplayEngineModesAgree(t *testing.T) {
	path := writeTestTrace(t)
	summaryOf := func(mode string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run([]string{"replay", "-trace", path, "-engine", mode}, &out); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		for _, l := range lines {
			if strings.Contains(l, "of traffic served by peers") {
				// Strip the leading session count: batch modes report one
				// aggregate snapshot, so only the tail is comparable.
				if i := strings.Index(l, "across"); i >= 0 {
					return l[i:]
				}
			}
		}
		t.Fatalf("no summary line in %s output:\n%s", mode, out.String())
		return ""
	}
	streaming := summaryOf("streaming")
	batch := summaryOf("batch")
	parallel := summaryOf("parallel")
	if streaming != batch || batch != parallel {
		t.Fatalf("engine summaries disagree:\nstreaming: %s\nbatch:     %s\nparallel:  %s",
			streaming, batch, parallel)
	}
}

func TestRunReplayFlagValidation(t *testing.T) {
	path := writeTestTrace(t)
	for name, args := range map[string][]string{
		"bad flag":            {"replay", "-bogus"},
		"bad ratio":           {"replay", "-ratio", "nope"},
		"unknown engine":      {"replay", "-trace", path, "-engine", "quantum"},
		"missing trace":       {"replay", "-trace", "/nonexistent/trace.csv"},
		"positional args":     {"replay", "-trace", path, "extra"},
		"generate and trace":  {"replay", "-generate", "0.001", "-trace", path},
		"invalid generate":    {"replay", "-generate", "0.001", "-days", "0"},
		"zero generate":       {"replay", "-generate", "0"},
		"negative generate":   {"replay", "-generate", "-0.5"},
		"negative ratio":      {"replay", "-trace", path, "-ratio", "-2"},
		"zero live":           {"replay", "-live", "0"},
		"live and trace":      {"replay", "-live", "0.001", "-trace", path},
		"live and generate":   {"replay", "-live", "0.001", "-generate", "0.001"},
		"days with live":      {"replay", "-live", "0.001", "-days", "2"},
		"seed without source": {"replay", "-trace", path, "-seed", "7"},
	} {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(args, &out); err == nil {
				t.Errorf("expected error for %v", args)
			}
		})
	}
}

// TestRunReplayMatchesLibrary pins the CLI path to the library: the
// offload figure the CLI reports equals a direct Replay over the same
// file, at the CLI's printed precision.
func TestRunReplayMatchesLibrary(t *testing.T) {
	path := writeTestTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := consumelocal.CSVSource(f)
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), src, consumelocal.WithUploadRatio(1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"replay", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%.1f%% of traffic served by peers", 100*res.Total.Offload())
	if !strings.Contains(out.String(), want) {
		t.Fatalf("CLI output missing %q:\n%s", want, out.String())
	}
}

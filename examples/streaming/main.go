// Streaming: replay a live synthetic workload through the unified
// Replay pipeline with windowed energy reporting and a metrics sink.
//
// The example streams the synthetic generator straight into the
// out-of-core engine — no trace file, no materialised session list;
// sessions are drawn in start order as the replay consumes them, the
// way a live ingest endpoint would feed the consumelocald service.
// Hourly snapshots report cumulative offload and energy savings while
// the replay runs, a Prometheus-style metrics sink tracks the same
// state for scraping, and cancelling the job (ctrl-C) unwinds the whole
// pipeline.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"consumelocal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A two-day workload, streamed live: the generator is a Source, so
	// the full trace never exists in memory or on disk.
	traceCfg := consumelocal.DefaultTraceConfig(0.002)
	traceCfg.Days = 2
	src, err := consumelocal.GeneratorSource(traceCfg)
	if err != nil {
		return err
	}

	// ctrl-C cancels the job; the replay returns context.Canceled and
	// every pipeline goroutine exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	metrics := consumelocal.NewMetricsSink()
	job, err := consumelocal.Replay(ctx, src,
		consumelocal.WithUploadRatio(1.0),
		consumelocal.WithWindow(4*3600),
		consumelocal.WithSink(metrics))
	if err != nil {
		return err
	}

	meta := job.Meta()
	fmt.Printf("replaying %q live from the synthetic generator (%s engine)\n\n", meta.Name, job.Mode())
	models := consumelocal.BothEnergyModels()
	fmt.Printf("%8s %10s %9s %9s", "window", "sessions", "active", "offload")
	for _, p := range models {
		fmt.Printf(" %10s", p.Name)
	}
	fmt.Println()

	for snap := range job.Snapshots() {
		label := fmt.Sprintf("%dh", snap.ToSec/3600)
		if snap.Final {
			label = "final"
		}
		fmt.Printf("%8s %10d %9d %8.1f%%", label,
			snap.SessionsSeen, snap.ActiveMembers, 100*snap.Cumulative.Offload())
		for _, p := range models {
			fmt.Printf(" %9.1f%%", 100*consumelocal.EvaluateEnergy(snap.Cumulative, p).Savings)
		}
		fmt.Println()
	}

	res, err := job.Result()
	if err != nil {
		return err
	}
	fmt.Printf("\nreplay complete: %d swarms, %.2f TB watched, %.1f%% served by peers\n",
		len(res.Swarms), res.Total.TotalBits/8/1e12, 100*res.Total.Offload())
	for _, p := range models {
		report := consumelocal.EvaluateEnergy(res.Total, p)
		fmt.Printf("energy savings (%s): %.1f%%\n", p.Name, 100*report.Savings)
	}

	// The metrics sink saw the same replay; dump the gauges a scraper
	// would read from a live /metrics endpoint.
	fmt.Println("\nprometheus exposition:")
	return metrics.WritePrometheus(os.Stdout)
}

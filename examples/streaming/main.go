// Streaming: replay a trace out-of-core through the streaming engine
// with live windowed energy reporting.
//
// The example writes a synthetic trace to a temporary CSV file, then
// replays it through consumelocal.Stream: the file is consumed as a
// stream — only the active-session working set is ever in memory — while
// hourly snapshots report cumulative offload and energy savings as the
// replay progresses, the way the consumelocald service reports a live
// job.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"consumelocal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate a two-day workload and persist it as CSV: the on-disk
	// interchange format a real deployment would replay from.
	traceCfg := consumelocal.DefaultTraceConfig(0.002)
	traceCfg.Days = 2
	tr, err := consumelocal.GenerateTrace(traceCfg)
	if err != nil {
		return err
	}
	path := filepath.Join(os.TempDir(), "consumelocal-streaming-example.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := consumelocal.WriteTraceCSV(tr, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	defer os.Remove(path)

	// Replay the file out-of-core: the engine pulls sessions from the
	// CSV stream as it needs them, and windowed snapshots arrive on a
	// bounded channel while the replay is still consuming input.
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()

	streamCfg := consumelocal.DefaultStreamConfig(1.0)
	streamCfg.WindowSec = 4 * 3600
	run, err := consumelocal.Stream(in, streamCfg)
	if err != nil {
		return err
	}

	meta := run.Meta()
	fmt.Printf("replaying %q out-of-core from %s\n\n", meta.Name, path)
	models := consumelocal.BothEnergyModels()
	fmt.Printf("%8s %10s %9s %9s", "window", "sessions", "active", "offload")
	for _, p := range models {
		fmt.Printf(" %10s", p.Name)
	}
	fmt.Println()

	for snap := range run.Snapshots() {
		label := fmt.Sprintf("%dh", snap.ToSec/3600)
		if snap.Final {
			label = "final"
		}
		fmt.Printf("%8s %10d %9d %8.1f%%", label,
			snap.SessionsSeen, snap.ActiveMembers, 100*snap.Cumulative.Offload())
		for _, p := range models {
			fmt.Printf(" %9.1f%%", 100*consumelocal.EvaluateEnergy(snap.Cumulative, p).Savings)
		}
		fmt.Println()
	}

	res, err := run.Result()
	if err != nil {
		return err
	}
	fmt.Printf("\nreplay complete: %d swarms, %.2f TB watched, %.1f%% served by peers\n",
		len(res.Swarms), res.Total.TotalBits/8/1e12, 100*res.Total.Offload())
	for _, p := range models {
		report := consumelocal.EvaluateEnergy(res.Total, p)
		fmt.Printf("energy savings (%s): %.1f%%\n", p.Name, 100*report.Savings)
	}
	return nil
}

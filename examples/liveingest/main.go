// Live ingest: shadow a broadcast as it happens. Where examples/liveevent
// materialises the evening-TV schedule and simulates it offline, this
// client drives the consumelocald live ingest API the way a broadcast
// system would: it opens a long-running ingest replay job, pushes each
// hour's tune-ins as a session batch while advancing the arrival
// watermark, and seals the stream when the evening ends — all in
// accelerated real time, with the daemon's windowed snapshots following
// along mid-broadcast.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/consumelocald
//	go run ./examples/liveingest [-addr http://localhost:8377] [-scale 0.002] [-speedup 3600]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	"consumelocal"
)

func main() {
	addr := flag.String("addr", "http://localhost:8377", "consumelocald base URL")
	scale := flag.Float64("scale", 0.002, "audience scale relative to a city-sized broadcast")
	speedup := flag.Float64("speedup", 3600, "broadcast acceleration: simulated seconds per wall-clock second")
	flag.Parse()
	if err := run(*addr, *scale, *speedup); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, scale, speedup float64) error {
	if speedup <= 0 {
		return fmt.Errorf("liveingest: -speedup must be positive")
	}
	tr, err := consumelocal.GenerateLiveTrace(consumelocal.DefaultLiveTraceConfig(scale))
	if err != nil {
		return err
	}

	// Open the long-running ingest job: stream metadata up front, hourly
	// reporting windows.
	q := url.Values{}
	q.Set("source", "ingest")
	q.Set("name", tr.Name)
	q.Set("horizon", fmt.Sprint(tr.HorizonSec))
	q.Set("users", fmt.Sprint(tr.NumUsers))
	q.Set("content", fmt.Sprint(tr.NumContent))
	q.Set("isps", fmt.Sprint(tr.NumISPs))
	q.Set("window", "3600")
	var job struct {
		ID int `json:"id"`
	}
	if err := postJSON(addr+"/v1/jobs?"+q.Encode(), "", nil, &job); err != nil {
		return fmt.Errorf("open ingest job: %w", err)
	}
	fmt.Printf("ingest job %d opened: %d sessions to broadcast at %gx\n", job.ID, len(tr.Sessions), speedup)

	// Follow the job's snapshots concurrently: this is the mid-broadcast
	// view an operator dashboard would render.
	followDone := make(chan error, 1)
	go func() { followDone <- follow(addr, job.ID) }()

	// Broadcast hour by hour: push the hour's tune-ins as one CSV batch,
	// advance the watermark to the hour boundary, sleep the accelerated
	// hour. Quiet hours still advance the watermark — that is what lets
	// the daemon settle their empty windows.
	sessions := tr.Sessions
	for hour := int64(0); hour*3600 < tr.HorizonSec; hour++ {
		boundary := (hour + 1) * 3600
		if boundary > tr.HorizonSec {
			boundary = tr.HorizonSec
		}
		var batch strings.Builder
		for len(sessions) > 0 && sessions[0].StartSec < boundary {
			s := sessions[0]
			fmt.Fprintf(&batch, "%d,%d,%d,%d,%d,%d,%d\n",
				s.UserID, s.ContentID, s.ISP, s.Exchange, s.StartSec, s.DurationSec, s.Bitrate)
			sessions = sessions[1:]
		}
		pushURL := fmt.Sprintf("%s/v1/jobs/%d/sessions?watermark=%d", addr, job.ID, boundary)
		var out struct {
			Pushed int `json:"pushed"`
		}
		if err := postJSON(pushURL, "text/csv", strings.NewReader(batch.String()), &out); err != nil {
			return fmt.Errorf("hour %d: %w", hour, err)
		}
		if out.Pushed > 0 {
			fmt.Printf("hour %2d: pushed %d sessions, watermark %ds\n", hour, out.Pushed, boundary)
		}
		time.Sleep(time.Duration(3600 / speedup * float64(time.Second)))
	}

	// The evening is over: seal the stream and let the replay finish.
	if err := postJSON(fmt.Sprintf("%s/v1/jobs/%d/finish", addr, job.ID), "", nil, nil); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	if err := <-followDone; err != nil {
		return err
	}

	// Price the finished broadcast under both Table IV energy models.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/energy", addr, job.ID))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var energy struct {
		Offload float64 `json:"offload"`
		Energy  []struct {
			Model   string  `json:"Model"`
			Savings float64 `json:"Savings"`
		} `json:"energy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&energy); err != nil {
		return err
	}
	fmt.Printf("\nbroadcast complete: %.1f%% of traffic served by peers\n", 100*energy.Offload)
	for _, e := range energy.Energy {
		fmt.Printf("energy savings (%s): %.1f%%\n", e.Model, 100*e.Savings)
	}
	return nil
}

// follow streams the job's NDJSON snapshots, printing one line per
// settled window until the job finishes.
func follow(addr string, id int) error {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/snapshots", addr, id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			ToSec      int64  `json:"to_sec"`
			Sessions   int64  `json:"sessions_seen"`
			Active     int    `json:"active_members"`
			Status     string `json:"status"`
			Cumulative *struct {
				TotalBits float64 `json:"total_bits"`
			} `json:"cumulative"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("follow: %w", err)
		}
		switch {
		case line.Status != "":
			fmt.Printf("  job settled: %s\n", line.Status)
		case line.Cumulative != nil && line.Cumulative.TotalBits > 0:
			fmt.Printf("  window to %2dh: %6d sessions seen, %5d active, %.2f GB delivered\n",
				line.ToSec/3600, line.Sessions, line.Active, line.Cumulative.TotalBits/8/1e9)
		}
	}
	return sc.Err()
}

// postJSON posts body (may be nil) and decodes the JSON response into
// out (may be nil), treating any non-2xx status as an error carrying
// the server's diagnosis.
func postJSON(rawURL, contentType string, body io.Reader, out any) error {
	resp, err := http.Post(rawURL, contentType, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

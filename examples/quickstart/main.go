// Quickstart: evaluate the closed-form model of "Consume Local" for one
// content swarm under both published energy parameter sets.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"consumelocal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	probs := consumelocal.DefaultTopology().Probabilities()

	fmt.Println("Consume Local quickstart: energy savings of one content swarm")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "model", "c=0.1", "c=1", "c=10", "c=100")

	const ratio = 1.0 // upload bandwidth equals the content bitrate
	for _, params := range consumelocal.BothEnergyModels() {
		model, err := consumelocal.NewModel(params, probs)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", params.Name,
			100*model.Savings(0.1, ratio),
			100*model.Savings(1, ratio),
			100*model.Savings(10, ratio),
			100*model.Savings(100, ratio))
	}

	fmt.Println()
	fmt.Println("Carbon credit transfer (Eq. 13):")
	for _, params := range consumelocal.BothEnergyModels() {
		model, err := consumelocal.NewModel(params, probs)
		if err != nil {
			return err
		}
		gStar, ok := model.CarbonNeutralOffload()
		if !ok {
			fmt.Printf("  %-12s users can never become carbon neutral\n", params.Name)
			continue
		}
		fmt.Printf("  %-12s neutral at offload G*=%.2f, carbon positive by %.0f%% when G=1\n",
			params.Name, gStar, 100*model.AsymptoticCCT())
	}
	return nil
}

// Live event: the paper's future-work live-streaming scenario. Live
// audiences watch in lockstep, so swarms reach concurrencies that
// catch-up viewing never sees — and the energy savings of peer-assisted
// delivery approach the asymptotic bound during the broadcast. This
// example generates an evening with three live broadcasts, simulates
// hybrid delivery, and contrasts the outcome with a catch-up workload of
// comparable volume.
//
// Run with:
//
//	go run ./examples/liveevent [-scale 0.002]
package main

import (
	"flag"
	"fmt"
	"log"

	"consumelocal"
	"consumelocal/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 0.002, "audience scale relative to a city-sized broadcast")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	liveCfg := trace.DefaultLiveConfig(scale)
	live, err := trace.GenerateLive(liveCfg)
	if err != nil {
		return err
	}

	// A catch-up workload with roughly the same number of sessions spread
	// over a full day, for contrast.
	cuCfg := consumelocal.DefaultTraceConfig(scale)
	cuCfg.Days = 1
	cuCfg.TargetSessions = len(live.Sessions)
	catchup, err := consumelocal.GenerateTrace(cuCfg)
	if err != nil {
		return err
	}

	simCfg := consumelocal.DefaultSimConfig(1.0)
	liveRes, err := consumelocal.Simulate(live, simCfg)
	if err != nil {
		return err
	}
	cuRes, err := consumelocal.Simulate(catchup, simCfg)
	if err != nil {
		return err
	}

	fmt.Printf("live evening: %d sessions across %d broadcasts\n",
		len(live.Sessions), len(liveCfg.Events))
	fmt.Printf("catch-up day: %d sessions across %d items\n\n",
		len(catchup.Sessions), catchup.NumContent)

	fmt.Printf("%-22s %10s %10s\n", "", "live", "catch-up")
	fmt.Printf("%-22s %9.1f%% %9.1f%%\n", "traffic from peers",
		100*liveRes.Total.Offload(), 100*cuRes.Total.Offload())
	for _, params := range consumelocal.BothEnergyModels() {
		fmt.Printf("%-22s %9.1f%% %9.1f%%\n", "savings ("+params.Name+")",
			100*consumelocal.EvaluateEnergy(liveRes.Total, params).Savings,
			100*consumelocal.EvaluateEnergy(cuRes.Total, params).Savings)
	}

	// Peak swarm concurrency explains the gap.
	peak := 0.0
	for _, sw := range liveRes.Swarms {
		if sw.Capacity > peak {
			peak = sw.Capacity
		}
	}
	fmt.Printf("\nlargest live swarm capacity (day average): %.1f concurrent viewers\n", peak)
	fmt.Println("live synchronisation pushes swarms toward the asymptotic savings bound.")
	return nil
}

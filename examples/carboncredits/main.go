// Carbon credits: who becomes carbon positive? Simulates a synthetic
// month of catch-up TV, transfers the CDN's energy savings to uploading
// users as carbon credits (paper Section V), and reports how the net
// per-user carbon balance distributes — including why the remaining
// carbon-negative users stay negative (they watch niche content with
// swarms too small to share from).
//
// Run with:
//
//	go run ./examples/carboncredits [-scale 0.01] [-days 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"consumelocal"
)

func main() {
	scale := flag.Float64("scale", 0.01, "trace scale relative to the paper's dataset")
	days := flag.Int("days", 30, "trace horizon in days")
	flag.Parse()

	if err := run(*scale, *days); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64, days int) error {
	cfg := consumelocal.DefaultTraceConfig(scale)
	cfg.Days = days
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	res, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		return err
	}

	fmt.Println("Per-user carbon balance after carbon credit transfer (Eq. 13)")
	fmt.Println()
	for _, params := range consumelocal.BothEnergyModels() {
		dist := consumelocal.CarbonCredits(res, params)
		fmt.Printf("%s model:\n", params.Name)
		fmt.Printf("  users analysed:       %d\n", dist.Users)
		fmt.Printf("  carbon positive:      %.1f%%\n", 100*dist.CarbonPositive)
		fmt.Printf("  median per-user CCT:  %+.3f\n", dist.Median)
		fmt.Printf("  CCT quartiles (CDF):  %s\n", quartiles(dist))
		fmt.Println()
	}

	// Why do some users stay carbon negative? Inspect the sharing ratio
	// of the extremes: positive users upload much more than they consume
	// because they watch popular, well-swarmed content.
	type userShare struct {
		id    uint32
		share float64 // uploaded / downloaded
	}
	shares := make([]userShare, 0, len(res.Users))
	for id, u := range res.Users {
		if u.DownloadedBits <= 0 {
			continue
		}
		shares = append(shares, userShare{id: id, share: u.UploadedBits / u.DownloadedBits})
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].share > shares[j].share })
	if len(shares) > 10 {
		var top, bottom float64
		for _, s := range shares[:10] {
			top += s.share
		}
		for _, s := range shares[len(shares)-10:] {
			bottom += s.share
		}
		fmt.Printf("sharing ratio (uploaded/downloaded): top-10 users avg %.2f, bottom-10 avg %.2f\n",
			top/10, bottom/10)
		fmt.Println("users with small ratios watch niche items whose swarms are too small to upload into.")
	}
	return nil
}

// quartiles renders the 25/50/75% points of the CCT CDF.
func quartiles(dist consumelocal.CarbonDistribution) string {
	q := func(target float64) float64 {
		for _, p := range dist.CDF {
			if p.Y >= target {
				return p.X
			}
		}
		if n := len(dist.CDF); n > 0 {
			return dist.CDF[n-1].X
		}
		return 0
	}
	return fmt.Sprintf("p25=%+.2f p50=%+.2f p75=%+.2f", q(0.25), q(0.50), q(0.75))
}

// Planning: use the closed form the way the paper suggests — "a
// reasonable approximation that can potentially be used for network
// planning purposes" (Section IV.B.2). For a given ISP topology and
// energy model, answer three planning questions:
//
//  1. How popular must a content item be (what swarm capacity) before
//     peer assistance starts paying off energy-wise?
//  2. What upload bandwidth must the ISP provision (relative to the
//     content bitrate) to reach a target saving?
//  3. How do the answers change for a differently shaped metro network?
//
// Run with:
//
//	go run ./examples/planning
package main

import (
	"fmt"
	"log"
	"math"

	"consumelocal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Network planning with the closed-form savings model")
	fmt.Println()

	topologies := []struct {
		name            string
		exchanges, pops int
	}{
		{"london (345 ExP / 9 PoP)", 345, 9},
		{"dense metro (1000 ExP / 20 PoP)", 1000, 20},
		{"small city (60 ExP / 4 PoP)", 60, 4},
	}

	for _, tc := range topologies {
		topo, err := consumelocal.NewTopology(tc.name, tc.exchanges, tc.pops)
		if err != nil {
			return err
		}
		fmt.Println(tc.name)
		for _, params := range consumelocal.BothEnergyModels() {
			model, err := consumelocal.NewModel(params, topo.Probabilities())
			if err != nil {
				return err
			}
			c10 := capacityForSavings(model, 1.0, 0.10)
			c20 := capacityForSavings(model, 1.0, 0.20)
			rho := ratioForSavings(model, 50, 0.15)
			fmt.Printf("  %-11s capacity for 10%% saving: %-9s for 20%%: %-9s  q/β for 15%% at c=50: %s\n",
				params.Name+":", formatCapacity(c10), formatCapacity(c20), formatRatio(rho))
		}
		fmt.Println()
	}

	fmt.Println("Reading: denser edges need bigger swarms before peers localise;")
	fmt.Println("the Valancius parameters reward offload more because its CDN path is costly.")
	return nil
}

// capacityForSavings finds the smallest capacity c achieving the target
// saving at the given q/β, by bisection over a log range. Returns -1 when
// the target is unreachable.
func capacityForSavings(model *consumelocal.Model, ratio, target float64) float64 {
	lo, hi := 1e-3, 1e6
	if model.Savings(hi, ratio) < target {
		return -1
	}
	for i := 0; i < 80; i++ {
		mid := sqrtProduct(lo, hi)
		if model.Savings(mid, ratio) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ratioForSavings finds the smallest q/β achieving the target saving at
// capacity c. Returns -1 when even q/β = 1 falls short.
func ratioForSavings(model *consumelocal.Model, c, target float64) float64 {
	if model.Savings(c, 1) < target {
		return -1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if model.Savings(c, mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// sqrtProduct returns the geometric mean of a and b (log-space midpoint).
func sqrtProduct(a, b float64) float64 {
	return a * math.Sqrt(b/a)
}

func formatCapacity(c float64) string {
	if c < 0 {
		return "unreachable"
	}
	return fmt.Sprintf("%.2f", c)
}

func formatRatio(r float64) string {
	if r < 0 {
		return "unreachable"
	}
	return fmt.Sprintf("%.2f", r)
}

// Catch-up TV: the paper's motivating workload end to end. Generates a
// synthetic month of BBC-iPlayer-like sessions for a large city, runs the
// hybrid-CDN simulator with ISP-friendly locality-first swarms, and
// reports the system-wide energy savings per ISP under both energy
// models — the experiment behind the paper's headline 24–48% figure.
//
// Run with:
//
//	go run ./examples/catchuptv [-scale 0.01] [-days 30] [-ratio 1.0]
package main

import (
	"flag"
	"fmt"
	"log"

	"consumelocal"
)

func main() {
	scale := flag.Float64("scale", 0.01, "trace scale relative to the paper's dataset")
	days := flag.Int("days", 30, "trace horizon in days")
	ratio := flag.Float64("ratio", 1.0, "upload-to-bitrate ratio q/beta")
	flag.Parse()

	if err := run(*scale, *days, *ratio); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64, days int, ratio float64) error {
	cfg := consumelocal.DefaultTraceConfig(scale)
	cfg.Days = days
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		return err
	}
	summary := tr.Summarize()
	fmt.Printf("workload: %d users, %d sessions over %d days (%.1f TB watched)\n",
		summary.Users, summary.Sessions, days, summary.TotalBytes/1e12)

	res, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(ratio))
	if err != nil {
		return err
	}
	fmt.Printf("hybrid delivery: %.1f%% of traffic served by peers (q/β=%.1f)\n\n",
		100*res.Total.Offload(), ratio)

	fmt.Printf("%-8s %12s %14s %14s\n", "ISP", "traffic", "valancius", "baliga")
	ispTotals := res.ISPTotals()
	models := consumelocal.BothEnergyModels()
	for isp, tally := range ispTotals {
		if tally.TotalBits <= 0 {
			continue
		}
		fmt.Printf("ISP-%-4d %9.2f TB %13.1f%% %13.1f%%\n",
			isp+1,
			tally.TotalBits/8/1e12,
			100*consumelocal.EvaluateEnergy(tally, models[0]).Savings,
			100*consumelocal.EvaluateEnergy(tally, models[1]).Savings)
	}

	fmt.Println()
	for _, params := range models {
		rep := consumelocal.EvaluateEnergy(res.Total, params)
		fmt.Printf("system-wide (%s): baseline %.1f MJ, hybrid %.1f MJ, saving %.1f%%\n",
			params.Name, rep.BaselineJoules/1e6, rep.HybridJoules/1e6, 100*rep.Savings)
	}
	return nil
}

package consumelocal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"consumelocal/internal/engine"
	"consumelocal/internal/obs"
)

// LiveSource is a Source for unsealed, watermarked streams: sessions
// are pushed as the broadcast happens rather than read from a finished
// trace. IngestSource is the library's implementation; the streaming
// engine prefers a LiveSource's ctx-aware NextEvent over Next, so live
// replays settle reporting windows on watermark advances and unwind on
// cancellation even while the producer is silent.
type LiveSource = engine.LiveSource

// SourceEvent is one item of a live stream: a session, or a
// watermark-only progress mark.
type SourceEvent = engine.Event

// Errors reported by IngestSource. Producers distinguish a session
// rejected for ordering (the push is wrong) from a stream that no
// longer accepts input (the job is over).
var (
	// ErrIngestClosed is returned by Push, Advance and Close once the
	// stream is sealed or aborted.
	ErrIngestClosed = errors.New("consumelocal: ingest source closed")
	// ErrOutOfOrder is wrapped by Push when a session would violate the
	// stream's ordering contract (non-decreasing start times, never
	// behind the watermark) and by Advance on a watermark regression.
	ErrOutOfOrder = errors.New("out of order")
)

// defaultIngestCapacity bounds an IngestSource's queue when the caller
// does not: enough to absorb a burst of arrivals, small enough that a
// lagging engine backpressures the producer promptly.
const defaultIngestCapacity = 1024

// IngestSource is a bounded, concurrency-safe session queue implementing
// LiveSource: the live-ingest counterpart of CSVSource. A producer —
// typically an HTTP handler fed by a broadcast system — Pushes sessions
// as they occur and Advances the arrival watermark as the broadcast
// clock moves; the replay engine consumes the queue concurrently,
// settling reporting windows as the watermark passes them. When the
// engine lags, Push blocks once the queue is full (backpressure); when
// the broadcast ends, Close seals the stream and the replay completes
// after draining it.
//
// Ordering contract (trace.Scanner's, extended to watermarks): session
// start times are non-decreasing, and no session may start before the
// current watermark. Violating pushes are rejected with ErrOutOfOrder
// and leave the stream usable; the offending session is simply refused.
//
// Any number of goroutines may Push, Advance and Close concurrently,
// though the ordering contract is easiest to uphold from one producer.
type IngestSource struct {
	meta     TraceMeta
	capacity int

	mu   sync.Mutex
	cond *sync.Cond
	// queue is a FIFO of sessions and watermark marks; head indexes the
	// next event to deliver so pops are O(1), and the consumed prefix is
	// compacted away once it dominates the slice.
	queue []SourceEvent
	head  int
	// watermark and lastStart enforce the ordering contract at the
	// producer edge, before an invalid session can poison the replay.
	watermark int64
	lastStart int64
	pushed    int64
	sealed    bool
	abortErr  error
	// blockedNanos accumulates producer stall time (Push/Advance waiting
	// on a full queue) and peak records the deepest the queue has been —
	// always tracked, so Blocked and QueuePeak cost nothing to read and
	// the clock is touched only when a producer actually blocks.
	blockedNanos int64
	peak         int
	// metrics, when attached via Instrument, mirrors depth, peak, lag and
	// stall time into an obs gauge set on every queue transition.
	metrics *obs.IngestMetrics
}

// NewIngestSource returns an ingest queue for a stream with the given
// metadata, which is validated eagerly — the replay needs it before the
// first session arrives. capacity bounds the queue (sessions and
// watermark marks together); zero or negative means the default (1024).
func NewIngestSource(meta TraceMeta, capacity int) (*IngestSource, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		capacity = defaultIngestCapacity
	}
	s := &IngestSource{meta: meta, capacity: capacity, lastStart: -1}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Meta returns the stream's trace metadata.
func (s *IngestSource) Meta() TraceMeta { return s.meta }

// Pushed returns the number of sessions accepted so far.
func (s *IngestSource) Pushed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed
}

// Watermark returns the current arrival watermark.
func (s *IngestSource) Watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Pending returns the number of queued events not yet consumed by the
// replay — producer-side lag, the backpressure signal.
func (s *IngestSource) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.len()
}

// QueuePeak returns the deepest the queue has been over the stream's
// lifetime.
func (s *IngestSource) QueuePeak() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Blocked returns the cumulative time producers have spent stalled in
// Push or Advance waiting for queue space — the backpressure the replay
// has exerted on the broadcast feed. It only ever grows.
func (s *IngestSource) Blocked() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.blockedNanos)
}

// WatermarkLag returns how far, in trace seconds, the newest pushed
// session start runs ahead of the arrival watermark — the settlement
// debt a stalled watermark accrues. Zero while the watermark keeps up.
func (s *IngestSource) WatermarkLag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagLocked()
}

// Instrument attaches an ingest instrumentation set: queue depth, peak
// depth, watermark lag and producer stall time are published on every
// queue transition from here on. The gauges describe this one stream,
// so attach a set to a single source only — a daemon aggregating many
// streams derives its figures from the Pending/Blocked/WatermarkLag
// accessors instead. Attach before the replay starts consuming.
func (s *IngestSource) Instrument(m *obs.IngestMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	s.publishLocked()
}

// lagLocked computes the watermark lag. Callers hold s.mu.
func (s *IngestSource) lagLocked() int64 {
	if s.lastStart > s.watermark {
		return s.lastStart - s.watermark
	}
	return 0
}

// publishLocked mirrors the queue's state into the attached metrics set,
// if any. Callers hold s.mu.
func (s *IngestSource) publishLocked() {
	if s.metrics == nil {
		return
	}
	depth := float64(s.len())
	s.metrics.QueueDepth.Set(depth)
	s.metrics.QueuePeak.SetMax(depth)
	s.metrics.WatermarkLagSeconds.Set(float64(s.lagLocked()))
}

// noteBlockedLocked accounts one producer stall. Callers hold s.mu.
func (s *IngestSource) noteBlockedLocked(d time.Duration) {
	s.blockedNanos += int64(d)
	if s.metrics != nil {
		s.metrics.PushBlockSeconds.Add(d.Seconds())
	}
}

// Push appends one session to the stream, blocking while the queue is
// full — backpressure from a replay that cannot keep up. It fails with
// ErrOutOfOrder (wrapped, with detail) when the session violates the
// ordering contract, a validation error when it violates the stream
// metadata, and ErrIngestClosed once the stream is sealed or aborted.
func (s *IngestSource) Push(sess Session) error {
	return s.PushContext(context.Background(), sess)
}

// PushContext is Push bounded by a context: a producer whose client has
// disconnected stops waiting for queue space and returns ctx.Err().
func (s *IngestSource) PushContext(ctx context.Context, sess Session) error {
	defer s.wakeOnDone(ctx)()
	s.mu.Lock()
	defer s.mu.Unlock()
	var blockStart time.Time
	defer func() {
		if !blockStart.IsZero() {
			s.noteBlockedLocked(time.Since(blockStart))
		}
	}()
	for {
		if err := s.closedLocked(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.len() < s.capacity {
			break
		}
		if blockStart.IsZero() {
			blockStart = time.Now()
		}
		s.cond.Wait()
	}
	// Validate under the lock, after any wait: the floor (lastStart,
	// watermark) only ever rises, so a session admitted here is ordered
	// against everything already queued.
	if sess.StartSec < s.lastStart {
		return fmt.Errorf("consumelocal: ingest session %d: %w: starts at %d, before already-pushed start %d",
			s.pushed, ErrOutOfOrder, sess.StartSec, s.lastStart)
	}
	if sess.StartSec < s.watermark {
		return fmt.Errorf("consumelocal: ingest session %d: %w: starts at %d, behind watermark %d",
			s.pushed, ErrOutOfOrder, sess.StartSec, s.watermark)
	}
	if err := s.meta.ValidateSession(s.pushed, sess); err != nil {
		return err
	}
	s.queue = append(s.queue, SourceEvent{Session: sess})
	s.lastStart = sess.StartSec
	s.pushed++
	if n := s.len(); n > s.peak {
		s.peak = n
	}
	s.publishLocked()
	s.cond.Broadcast()
	return nil
}

// Advance raises the arrival watermark: a promise that no future session
// will start before watermarkSec, which lets the replay settle every
// reporting window the promise closes even while no sessions arrive. A
// regressing watermark is rejected with ErrOutOfOrder; re-asserting the
// current one is a no-op. Like Push, Advance blocks while the queue is
// full — unless the trailing event is already a mark, in which case the
// two coalesce.
func (s *IngestSource) Advance(watermarkSec int64) error {
	return s.AdvanceContext(context.Background(), watermarkSec)
}

// AdvanceContext is Advance bounded by a context.
func (s *IngestSource) AdvanceContext(ctx context.Context, watermarkSec int64) error {
	defer s.wakeOnDone(ctx)()
	s.mu.Lock()
	defer s.mu.Unlock()
	var blockStart time.Time
	defer func() {
		if !blockStart.IsZero() {
			s.noteBlockedLocked(time.Since(blockStart))
		}
	}()
	for {
		if err := s.closedLocked(); err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if watermarkSec < s.watermark {
			return fmt.Errorf("consumelocal: ingest watermark %w: %d regresses behind %d",
				ErrOutOfOrder, watermarkSec, s.watermark)
		}
		if watermarkSec == s.watermark {
			return nil
		}
		if n := len(s.queue); n > s.head && s.queue[n-1].Mark {
			s.queue[n-1].WatermarkSec = watermarkSec
			break
		}
		if s.len() < s.capacity {
			s.queue = append(s.queue, SourceEvent{Mark: true, WatermarkSec: watermarkSec})
			if n := s.len(); n > s.peak {
				s.peak = n
			}
			break
		}
		if blockStart.IsZero() {
			blockStart = time.Now()
		}
		s.cond.Wait()
	}
	s.watermark = watermarkSec
	s.publishLocked()
	s.cond.Broadcast()
	return nil
}

// Close seals the stream: no further Push or Advance is accepted, and
// once the queued events drain the replay completes normally. Closing a
// sealed stream is a no-op; closing an aborted one reports the abort.
func (s *IngestSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abortErr != nil {
		return s.abortErr
	}
	s.sealed = true
	s.cond.Broadcast()
	return nil
}

// Abort tears the stream down: queued events are discarded, blocked
// producers and the consumer unblock immediately, and every subsequent
// call fails. The replay consuming the source observes err from
// NextEvent (a replay already cancelled reports its own ctx.Err()
// instead). A nil err is recorded as ErrIngestClosed. Abort after Close
// still discards whatever has not been consumed yet.
func (s *IngestSource) Abort(err error) {
	if err == nil {
		err = ErrIngestClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abortErr != nil {
		return
	}
	s.abortErr = err
	s.queue = nil
	s.head = 0
	s.publishLocked()
	s.cond.Broadcast()
}

// Next implements Source by draining NextEvent, skipping watermark
// marks. The streaming engine never calls it — it prefers NextEvent —
// but the batch engines' materialise step and any plain-Source consumer
// use it; they cannot be unblocked by a context, so pair Next-driven
// consumption with Close/Abort from the producer side.
func (s *IngestSource) Next() (Session, error) {
	for {
		ev, err := s.NextEvent(context.Background())
		if err != nil {
			return Session{}, err
		}
		if !ev.Mark {
			return ev.Session, nil
		}
	}
}

// NextEvent implements LiveSource: it returns the next queued session
// or watermark mark, blocking until one arrives, the stream is sealed
// and drained (io.EOF), the stream is aborted (the abort error), or ctx
// is done (ctx.Err()).
func (s *IngestSource) NextEvent(ctx context.Context) (SourceEvent, error) {
	defer s.wakeOnDone(ctx)()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.abortErr != nil {
			return SourceEvent{}, s.abortErr
		}
		if s.head < len(s.queue) {
			ev := s.queue[s.head]
			s.queue[s.head] = SourceEvent{}
			s.head++
			// Compact once the consumed prefix dominates, keeping the
			// queue's footprint proportional to what is actually pending.
			if s.head >= s.capacity && s.head*2 >= len(s.queue) {
				s.queue = append(s.queue[:0], s.queue[s.head:]...)
				s.head = 0
			}
			s.publishLocked()
			s.cond.Broadcast()
			return ev, nil
		}
		if s.sealed {
			return SourceEvent{}, io.EOF
		}
		if err := ctx.Err(); err != nil {
			return SourceEvent{}, err
		}
		s.cond.Wait()
	}
}

// len counts pending events. Callers hold s.mu.
func (s *IngestSource) len() int { return len(s.queue) - s.head }

// closedLocked reports why the stream no longer accepts input, nil while
// it does. Callers hold s.mu.
func (s *IngestSource) closedLocked() error {
	if s.abortErr != nil {
		return fmt.Errorf("%w: %w", ErrIngestClosed, s.abortErr)
	}
	if s.sealed {
		return ErrIngestClosed
	}
	return nil
}

// wakeOnDone arranges for ctx's cancellation to wake every goroutine
// waiting on the queue's condition variable, and returns the stop
// function releasing that arrangement. The broadcast runs under the
// lock, so a waiter cannot check ctx and then miss the wake-up between
// its check and its Wait.
func (s *IngestSource) wakeOnDone(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	return func() { stop() }
}

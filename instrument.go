package consumelocal

import (
	"context"
	"time"

	"consumelocal/internal/obs"
)

// Metrics aliases the observability kit's registry so callers inside
// the module can build one without importing internal/obs directly.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry, ready for
// WithInstrumentation and for serving as a /metrics handler.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithInstrumentation registers the replay pipeline's instrumentation
// set on reg and records into it: per-stage wall-clock totals (source
// read, engine settle, sink emit), sessions read, windows settled, and
// — when the Source is an IngestSource — queue depth, backpressure
// stall time and watermark lag at the points backpressure actually
// happens. Counters are plain atomics on the hot path; the overhead is
// two clock reads per session on the source stage and per mark on the
// settle stage, and nothing when the option is absent.
//
// The same registry may be shared by many jobs: the stage counters
// aggregate across them (this is how consumelocald exposes daemon-wide
// stage totals), while the ingest gauges describe whichever stream
// wrote them last, so per-stream gauges belong to single-job
// registries. Registering twice on one registry panics (duplicate
// series) — share the ReplayMetrics via WithReplayMetrics instead.
func WithInstrumentation(reg *Metrics) Option {
	return WithReplayMetrics(obs.NewReplayMetrics(reg))
}

// WithReplayMetrics is WithInstrumentation for an already-registered
// instrumentation set — the form a daemon uses to share one set across
// every job it runs.
func WithReplayMetrics(m *obs.ReplayMetrics) Option {
	return func(o *replayOptions) {
		o.stats = m
		o.cfg.Stats = m
	}
}

// timedSource wraps a Source, accumulating read time and session counts
// into the job's instrumentation set.
type timedSource struct {
	src Source
	m   *obs.ReplayMetrics
}

func (t *timedSource) Meta() TraceMeta { return t.src.Meta() }

func (t *timedSource) Next() (Session, error) {
	t0 := time.Now()
	s, err := t.src.Next()
	t.m.SourceReadSeconds.Add(time.Since(t0).Seconds())
	if err == nil {
		t.m.SourceSessions.Inc()
	}
	return s, err
}

// timedLiveSource additionally preserves the LiveSource extension, so
// instrumenting an ingest-fed replay keeps watermark-driven settlement.
type timedLiveSource struct {
	timedSource
	live LiveSource
}

func (t *timedLiveSource) NextEvent(ctx context.Context) (SourceEvent, error) {
	t0 := time.Now()
	ev, err := t.live.NextEvent(ctx)
	t.m.SourceReadSeconds.Add(time.Since(t0).Seconds())
	if err == nil && !ev.Mark {
		t.m.SourceSessions.Inc()
	}
	return ev, err
}

// instrumentSource wraps src with stage timing, preserving the
// LiveSource extension when present. The streaming engine is the only
// caller — the batch path times its materialise step wholesale instead,
// which also keeps TraceSource's in-memory shortcut intact.
func instrumentSource(src Source, m *obs.ReplayMetrics) Source {
	if live, ok := src.(LiveSource); ok {
		return &timedLiveSource{timedSource: timedSource{src: src, m: m}, live: live}
	}
	return &timedSource{src: src, m: m}
}

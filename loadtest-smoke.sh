#!/bin/sh
# loadtest-smoke: end-to-end check of the load harness against a real
# daemon. Builds consumelocald, lets `consumelocal loadtest` spawn it
# and drive a small fleet (~64 clients for a few seconds), then asserts
# the report is well-formed: sessions actually flowed, latency
# histograms filled, the /metrics cross-check ran, and — the headline
# CI gate — zero 5xx responses. Run via `make loadtest-smoke`.
set -eu

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT INT TERM

go build -o "$workdir/consumelocald" ./cmd/consumelocald
go run ./cmd/consumelocal loadtest \
    -daemon "$workdir/consumelocald" \
    -clients 64 -duration 5s -rate 400 -burst 64 \
    -scale 0.001 -o "$workdir/BENCH_daemon.json"

report="$workdir/BENCH_daemon.json"
test -s "$report"

# jq-free JSON assertions, in the spirit of metrics-smoke.sh: the keys
# are stable (they are the loadgen.Report schema) and indented one per
# line.
grep -q '"http_5xx": 0,' "$report" || {
    echo "loadtest-smoke: daemon returned 5xx under load" >&2
    cat "$report" >&2
    exit 1
}
grep -q '"sessions_accepted": [1-9]' "$report" || {
    echo "loadtest-smoke: no sessions ingested" >&2
    cat "$report" >&2
    exit 1
}
grep -q '"jobs_opened": [1-9]' "$report"
grep -q '"sessions_per_sec": [1-9]' "$report"
grep -q '"p95_ms"' "$report"
grep -q '"server": {' "$report"
grep -q '"rss_peak_bytes": [1-9]' "$report"

sps="$(sed -n 's/.*"sessions_per_sec": \([0-9.]*\).*/\1/p' "$report" | head -n 1)"
echo "loadtest-smoke OK: $sps sessions/s, zero 5xx"

#!/bin/sh
# CI gate: every PR must build cleanly, pass vet and the formatting
# check, pass the tier-1 test suite, and race-check the concurrent
# subsystems: the streaming engine, the Replay API layer (root package)
# and the consumelocald job manager. It also refuses committed build
# artifacts: a PR once shipped an 8.9 MB consumelocald binary at the
# repo root, and that class of mistake must never land again.
set -eux

# Guard: no tracked built binaries (by name) and no tracked file over
# 1 MB — source files are orders of magnitude smaller.
tracked_binaries="$(git ls-files | grep -E '(^|/)(consumelocal|consumelocald)$|\.(test|exe|o|a|so)$' || true)"
test -z "$tracked_binaries"
oversized="$(git ls-files -z | xargs -0 -r du -b -- | awk '$1 > 1048576 {print $2}')"
test -z "$oversized"

go build ./...
go vet ./...
# Repo-specific analyzers: borrowcheck, ctxsend, hotalloc, metricdecl,
# lockscope — see docs/LINT.md. The waiver ledger prints every
# //consumelocal:ignore marker (file:line, analyzer, reason) so the
# CI log shows exactly which findings are sanctioned and why.
vet_tool_dir="$(mktemp -d)"
trap 'rm -rf "$vet_tool_dir"' EXIT
go build -o "$vet_tool_dir/consumelocal-vet" ./cmd/consumelocal-vet
go vet -vettool="$vet_tool_dir/consumelocal-vet" ./...
"$vet_tool_dir/consumelocal-vet" -ledger
fmt_drift="$(gofmt -s -l .)"
test -z "$fmt_drift"
go test ./...
go test -race . ./internal/engine/... ./cmd/consumelocald/... \
	./internal/joblog/... ./internal/loadgen/... ./internal/sim/... ./internal/swarm/...
# Metrics lint: every /metrics scrape must parse under the exposition
# linter (HELP/TYPE metadata, histogram suffixes, no duplicate series)
# and expose the documented families — see docs/OBSERVABILITY.md.
go test -count=1 -run 'TestMetrics|TestHealthzPayload' ./cmd/consumelocald
go test -count=1 -run 'TestParseExposition|TestObsCounterAllocs|TestScrapeSteadyStateAllocs' ./internal/obs
# Benchmark smoke: one iteration of every benchmark, so the perf
# harness (make bench, cmd/consumelocal bench) can't bit-rot unnoticed.
go test -run '^$' -bench . -benchtime 1x ./...
# Load-harness smoke: spawn a real consumelocald and drive a small
# concurrent fleet through the loadtest subcommand; the report must be
# well-formed with zero 5xx — see docs/LOADTEST.md.
./loadtest-smoke.sh
# Fault-injection smoke: same harness with -chaos — SIGKILL and restart
# a durable daemon mid-run; the report must show a clean recovery and a
# reconciled session ledger — see docs/DURABILITY.md.
./chaos-smoke.sh

package consumelocal_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"consumelocal"
)

func liveTestTrace(t testing.TB) *consumelocal.Trace {
	t.Helper()
	tr, err := consumelocal.GenerateLiveTrace(consumelocal.DefaultLiveTraceConfig(0.001))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// feedIngest replays a materialised trace into an ingest source the way
// a live producer would: sessions in start order, the watermark advanced
// to every hour boundary the broadcast clock passes, sealed at the end.
func feedIngest(t testing.TB, ing *consumelocal.IngestSource, tr *consumelocal.Trace) {
	t.Helper()
	watermark := int64(0)
	for _, s := range tr.Sessions {
		for next := watermark + 3600; next <= s.StartSec; next += 3600 {
			if err := ing.Advance(next); err != nil {
				t.Errorf("Advance(%d): %v", next, err)
				return
			}
			watermark = next
		}
		if err := ing.Push(s); err != nil {
			t.Errorf("Push(start=%d): %v", s.StartSec, err)
			return
		}
	}
	if err := ing.Advance(tr.HorizonSec); err != nil {
		t.Errorf("Advance(horizon): %v", err)
	}
	if err := ing.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestIngestReplayMatchesMaterialisedTrace is the live-ingest acceptance
// test: a replay fed session by session through an IngestSource — with
// watermark advancement interleaved, exactly as a live broadcast would
// drive it — must produce per-swarm results bit-for-bit identical to a
// Replay over the equivalent materialised live trace.
func TestIngestReplayMatchesMaterialisedTrace(t *testing.T) {
	tr := liveTestTrace(t)

	wantJob, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithEngine(consumelocal.EngineBatch))
	if err != nil {
		t.Fatal(err)
	}
	want, err := wantJob.Result()
	if err != nil {
		t.Fatal(err)
	}

	ing, err := consumelocal.NewIngestSource(tr.Meta(), 64)
	if err != nil {
		t.Fatal(err)
	}
	go feedIngest(t, ing, tr)

	job, err := consumelocal.Replay(context.Background(), ing,
		consumelocal.WithWindow(3600), consumelocal.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Swarms) != len(want.Swarms) {
		t.Fatalf("swarm counts differ: ingest %d, materialised %d", len(got.Swarms), len(want.Swarms))
	}
	if !reflect.DeepEqual(got.Swarms, want.Swarms) {
		for i := range got.Swarms {
			if !reflect.DeepEqual(got.Swarms[i], want.Swarms[i]) {
				t.Fatalf("swarm %d differs:\n got %+v\nwant %+v", i, got.Swarms[i], want.Swarms[i])
			}
		}
		t.Fatal("per-swarm results differ")
	}
	if got.Total != want.Total {
		t.Fatalf("totals differ:\n got %+v\nwant %+v", got.Total, want.Total)
	}
}

// TestIngestWatermarkSettlesWindowsMidBroadcast: with the stream still
// open, advancing the watermark must settle and deliver the windows it
// passes — the mid-broadcast progress a live dashboard follows.
func TestIngestWatermarkSettlesWindowsMidBroadcast(t *testing.T) {
	tr := liveTestTrace(t)
	ing, err := consumelocal.NewIngestSource(tr.Meta(), 0)
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), ing, consumelocal.WithWindow(3600))
	if err != nil {
		t.Fatal(err)
	}
	defer job.Cancel()

	// Push the first broadcast's opening minutes, then advance the clock
	// past two window boundaries without sealing the stream.
	first := tr.Sessions[0].StartSec
	n := 0
	for _, s := range tr.Sessions {
		if s.StartSec >= first+600 {
			break
		}
		if err := ing.Push(s); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("live trace has no opening burst")
	}
	boundary := (first/3600 + 2) * 3600
	if err := ing.Advance(boundary); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	settled := 0
	for settled < 2 {
		select {
		case snap, ok := <-job.Snapshots():
			if !ok {
				t.Fatal("snapshot channel closed mid-broadcast")
			}
			if snap.Final {
				t.Fatal("final snapshot before the stream was sealed")
			}
			if snap.ToSec > boundary {
				t.Fatalf("window [%d,%d) settled beyond the watermark %d", snap.FromSec, snap.ToSec, boundary)
			}
			settled++
		case <-deadline:
			t.Fatalf("only %d windows settled mid-broadcast, want 2", settled)
		}
	}
	if err := job.Err(); err != nil {
		t.Fatalf("job failed mid-broadcast: %v", err)
	}
}

func TestIngestOutOfOrderRejected(t *testing.T) {
	meta := consumelocal.TraceMeta{Name: "ingest", HorizonSec: 7200, NumUsers: 10, NumContent: 2, NumISPs: 1}
	sess := func(start int64) consumelocal.Session {
		return consumelocal.Session{UserID: 1, StartSec: start, DurationSec: 60, Bitrate: consumelocal.BitrateSD}
	}
	ing, err := consumelocal.NewIngestSource(meta, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := ing.Push(sess(100)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(sess(50)); !errors.Is(err, consumelocal.ErrOutOfOrder) {
		t.Fatalf("regressing push = %v, want ErrOutOfOrder", err)
	}
	if err := ing.Advance(200); err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(sess(150)); !errors.Is(err, consumelocal.ErrOutOfOrder) {
		t.Fatalf("behind-watermark push = %v, want ErrOutOfOrder", err)
	}
	if err := ing.Advance(100); !errors.Is(err, consumelocal.ErrOutOfOrder) {
		t.Fatalf("regressing watermark = %v, want ErrOutOfOrder", err)
	}
	// A rejected push leaves the stream usable.
	if err := ing.Push(sess(250)); err != nil {
		t.Fatalf("push after rejection = %v, want nil", err)
	}
	// Metadata violations are rejected with the validation error.
	bad := sess(300)
	bad.UserID = 99
	if err := ing.Push(bad); err == nil || errors.Is(err, consumelocal.ErrOutOfOrder) {
		t.Fatalf("out-of-range user = %v, want a validation error", err)
	}
	// Watermarks already passed may be re-asserted (heartbeats).
	if err := ing.Advance(200); err != nil {
		t.Fatalf("re-asserting the watermark = %v, want nil", err)
	}
}

// TestIngestBackpressure: a full queue blocks Push until the consumer
// drains it; PushContext unblocks on its own context instead.
func TestIngestBackpressure(t *testing.T) {
	meta := consumelocal.TraceMeta{Name: "ingest", HorizonSec: 7200, NumUsers: 10, NumContent: 2, NumISPs: 1}
	sess := func(start int64) consumelocal.Session {
		return consumelocal.Session{UserID: 1, StartSec: start, DurationSec: 60, Bitrate: consumelocal.BitrateSD}
	}
	ing, err := consumelocal.NewIngestSource(meta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(sess(0)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := ing.PushContext(ctx, sess(1)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked push = %v, want context.DeadlineExceeded", err)
	}

	// Draining one event frees the slot and the same push succeeds.
	if ev, err := ing.NextEvent(context.Background()); err != nil || ev.Mark {
		t.Fatalf("NextEvent = %+v, %v", ev, err)
	}
	if err := ing.Push(sess(1)); err != nil {
		t.Fatal(err)
	}
}

// TestIngestCloseAndAbort: Close seals (drain then EOF, pushes refused),
// Abort tears down (producers and consumer unblock with the error).
func TestIngestCloseAndAbort(t *testing.T) {
	meta := consumelocal.TraceMeta{Name: "ingest", HorizonSec: 7200, NumUsers: 10, NumContent: 2, NumISPs: 1}
	sess := func(start int64) consumelocal.Session {
		return consumelocal.Session{UserID: 1, StartSec: start, DurationSec: 60, Bitrate: consumelocal.BitrateSD}
	}

	ing, err := consumelocal.NewIngestSource(meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(sess(0)); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(sess(1)); !errors.Is(err, consumelocal.ErrIngestClosed) {
		t.Fatalf("push after close = %v, want ErrIngestClosed", err)
	}
	if err := ing.Advance(3600); !errors.Is(err, consumelocal.ErrIngestClosed) {
		t.Fatalf("advance after close = %v, want ErrIngestClosed", err)
	}
	// Sealed stream still drains, then reports a clean end.
	if _, err := ing.NextEvent(context.Background()); err != nil {
		t.Fatalf("drain after close = %v", err)
	}
	if _, err := ing.Next(); err == nil || err.Error() != "EOF" {
		t.Fatalf("sealed drained stream = %v, want io.EOF", err)
	}

	// Abort: a producer blocked on a full queue unblocks with the error.
	ing2, err := consumelocal.NewIngestSource(meta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing2.Push(sess(0)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	pushErr := make(chan error, 1)
	go func() { pushErr <- ing2.Push(sess(1)) }()
	time.Sleep(20 * time.Millisecond)
	ing2.Abort(boom)
	select {
	case err := <-pushErr:
		if !errors.Is(err, boom) || !errors.Is(err, consumelocal.ErrIngestClosed) {
			t.Fatalf("aborted push = %v, want both ErrIngestClosed and the abort cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not unblock the producer")
	}
	if _, err := ing2.NextEvent(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("aborted NextEvent = %v, want the abort cause", err)
	}
}

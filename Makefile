GO ?= go

.PHONY: all build vet lint test race bench microbench metrics-smoke ci

all: build

## build: compile every package and both binaries
build:
	$(GO) build ./...

## vet: static analysis over the whole module
vet:
	$(GO) vet ./...

## lint: formatting gate — fails when gofmt would rewrite anything
lint:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt needed on:"; echo "$$drift"; exit 1; \
	fi

## test: the tier-1 suite
test:
	$(GO) test ./...

## race: race-check the concurrent subsystems (Replay API layer,
## streaming engine, parallel simulator, daemon job manager)
race:
	$(GO) test -race . ./internal/engine/... ./internal/sim/... ./cmd/consumelocald/...

## bench: the reproduction's benchmark report at reduced scale, then
## the replay perf-trajectory harness (writes BENCH_replay.json with
## sessions/s, B/op and allocs/op per engine × worker count — see
## docs/PERF.md)
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) run ./cmd/consumelocal bench -workers 1,2,4,8 -o BENCH_replay.json

## microbench: the hot-path micro-benchmarks (tracker settlement, batch
## sweeper, matching, CSV fast lane, shard batch feed) at full bench time
microbench:
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerAdvance|BenchmarkSweeper|BenchmarkScannerScan|BenchmarkShardBatchFeed|BenchmarkMatchInto' \
		./internal/swarm/ ./internal/trace/ ./internal/engine/ ./internal/matching/

## metrics-smoke: boot a real consumelocald, run a generator job via
## the HTTP API, scrape /metrics and require the documented series,
## then SIGTERM it and require a clean graceful exit
metrics-smoke:
	./metrics-smoke.sh

## ci: what every PR must pass — see ci.sh
ci:
	./ci.sh

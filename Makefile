GO ?= go

.PHONY: all build vet lint test race bench microbench metrics-smoke loadtest loadtest-smoke chaos-smoke ci

all: build

## build: compile every package and both binaries
build:
	$(GO) build ./...

## vet: static analysis over the whole module
vet:
	$(GO) vet ./...

## lint: formatting gate (gofmt -s) plus the repo's own go/analysis
## suite — borrowcheck, ctxsend, hotalloc, metricdecl, lockscope —
## followed by the waiver ledger (see docs/LINT.md)
lint:
	@drift="$$(gofmt -s -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt -s needed on:"; echo "$$drift"; exit 1; \
	fi
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/consumelocal-vet" ./cmd/consumelocal-vet && \
	$(GO) vet -vettool="$$tmp/consumelocal-vet" ./... && \
	"$$tmp/consumelocal-vet" -ledger

## test: the tier-1 suite
test:
	$(GO) test ./...

## race: race-check the concurrent subsystems (Replay API layer,
## streaming engine, parallel simulator, daemon job manager, job
## journal, load generator, incremental swarm)
race:
	$(GO) test -race . ./internal/engine/... ./internal/sim/... ./cmd/consumelocald/... \
		./internal/joblog/... ./internal/loadgen/... ./internal/swarm/...

## bench: the reproduction's benchmark report at reduced scale, then
## the replay perf-trajectory harness (writes BENCH_replay.json with
## sessions/s, B/op and allocs/op per engine × worker count — see
## docs/PERF.md)
## The trajectory only means something if every PR commits its numbers,
## so the target fails loudly when the regenerated report is left
## uncommitted.
bench:
	$(GO) test -bench=. -benchtime=1x .
	$(GO) run ./cmd/consumelocal bench -workers 1,2,4,8 -o BENCH_replay.json
	@if git rev-parse --is-inside-work-tree >/dev/null 2>&1 && \
		! git diff --quiet -- BENCH_replay.json; then \
		echo ""; \
		echo "bench: BENCH_replay.json differs from the committed copy."; \
		echo "bench: commit the regenerated report so the perf trajectory"; \
		echo "bench: tracks this PR — a stale JSON defeats the harness."; \
		exit 1; \
	fi

## loadtest: the full-scale daemon hammer — spawns its own consumelocald
## and drives 256 concurrent clients for 30s, writing BENCH_daemon.json
## (sessions/s, latency percentiles, error counts, /metrics cross-check;
## see docs/LOADTEST.md)
loadtest:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/consumelocald" ./cmd/consumelocald && \
	$(GO) run ./cmd/consumelocal loadtest -daemon "$$tmp/consumelocald" -o BENCH_daemon.json

## loadtest-smoke: small-fleet end-to-end check of the load harness
## (64 clients, self-spawned daemon, asserts a well-formed report with
## zero 5xx) — part of ci
loadtest-smoke:
	./loadtest-smoke.sh

## chaos-smoke: fault-injection end-to-end check — loadtest -chaos
## SIGKILLs and restarts a durable daemon mid-run, then the report must
## show a clean recovery (ledger_ok, zero 5xx) — part of ci
chaos-smoke:
	./chaos-smoke.sh

## microbench: the hot-path micro-benchmarks (tracker settlement, batch
## sweeper, matching, CSV fast lane, shard batch feed) at full bench time
microbench:
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerAdvance|BenchmarkSweeper|BenchmarkScannerScan|BenchmarkShardBatchFeed|BenchmarkMatchInto' \
		./internal/swarm/ ./internal/trace/ ./internal/engine/ ./internal/matching/

## metrics-smoke: boot a real consumelocald, run a generator job via
## the HTTP API, scrape /metrics and require the documented series,
## then SIGTERM it and require a clean graceful exit
metrics-smoke:
	./metrics-smoke.sh

## ci: what every PR must pass — see ci.sh
ci:
	./ci.sh

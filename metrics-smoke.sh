#!/bin/sh
# metrics-smoke: end-to-end observability check against a real daemon.
# Boots consumelocald on an ephemeral port, runs a generator replay job
# through the HTTP API, scrapes /metrics, asserts the lifecycle and
# stage series moved, then shuts the daemon down with SIGTERM and
# requires a clean exit — so the graceful-drain path is exercised by a
# real signal, not just the in-process tests. Run via `make
# metrics-smoke`.
set -eu

workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/consumelocald" ./cmd/consumelocald
"$workdir/consumelocald" -addr 127.0.0.1:0 -drain 10s 2>"$workdir/daemon.log" &
pid=$!

# The daemon logs its bound address; -addr 127.0.0.1:0 keeps the smoke
# run off any fixed port.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/.*msg="consumelocald listening".*addr=\([0-9.:]*\).*/\1/p' "$workdir/daemon.log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$workdir/daemon.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
test -n "$addr"
base="http://$addr"

curl -fsS "$base/healthz" | grep -q '"status":"ok"'

job="$(curl -fsS -X POST "$base/v1/jobs?source=generator&scale=0.001&days=1&window=21600")"
id="$(printf '%s' "$job" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')"
test -n "$id"

status=""
i=0
while [ $i -lt 300 ]; do
    status="$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')"
    [ "$status" = done ] && break
    [ "$status" = failed ] && { echo "metrics-smoke: job failed" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ "$status" = done ]

metrics="$(curl -fsS "$base/metrics")"
printf '%s\n' "$metrics" | grep -qF 'consumelocald_jobs_submitted_total{kind="generator"} 1'
printf '%s\n' "$metrics" | grep -qF 'consumelocald_jobs_finished_total{status="done"} 1'
printf '%s\n' "$metrics" | grep -q '^consumelocal_replay_windows_settled_total [1-9]'
printf '%s\n' "$metrics" | grep -q '^consumelocald_http_requests_total{route="POST /v1/jobs",code="202"} 1'
printf '%s\n' "$metrics" | grep -q '^consumelocald_build_info{go_version='

kill -TERM "$pid"
wait "$pid"
pid=""
echo "metrics-smoke OK: $(printf '%s\n' "$metrics" | grep -c '^# HELP') families exposed, daemon drained cleanly"

package consumelocal_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"consumelocal"
)

func replayTestTrace(t testing.TB) *consumelocal.Trace {
	t.Helper()
	cfg := consumelocal.DefaultTraceConfig(0.001)
	cfg.Days = 3
	tr, err := consumelocal.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// assertSwarmsIdentical checks per-swarm statistics for exact equality —
// the bit-for-bit guarantee the unified API inherits from the engines.
func assertSwarmsIdentical(t *testing.T, label string, got, want *consumelocal.SimResult) {
	t.Helper()
	if len(got.Swarms) != len(want.Swarms) {
		t.Fatalf("%s: %d swarms, want %d", label, len(got.Swarms), len(want.Swarms))
	}
	for i := range got.Swarms {
		if got.Swarms[i] != want.Swarms[i] {
			t.Fatalf("%s: swarm %d differs:\n got %+v\nwant %+v", label, i, got.Swarms[i], want.Swarms[i])
		}
	}
}

// TestReplayModesMatchLegacyEntryPoints is the API-redesign cross-check:
// every engine mode reached through Replay must reproduce its legacy
// entry point bit for bit, per swarm and in total.
func TestReplayModesMatchLegacyEntryPoints(t *testing.T) {
	tr := replayTestTrace(t)
	simCfg := consumelocal.DefaultSimConfig(1.0)

	legacyBatch, err := consumelocal.Simulate(tr, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	legacyParallel, err := consumelocal.SimulateParallel(tr, simCfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	legacyStreamRun, err := consumelocal.StreamTrace(tr, consumelocal.StreamConfig{Sim: simCfg, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	legacyStream, err := legacyStreamRun.Result()
	if err != nil {
		t.Fatal(err)
	}

	replayWith := func(opts ...consumelocal.Option) *consumelocal.SimResult {
		t.Helper()
		job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
			append([]consumelocal.Option{consumelocal.WithSimConfig(simCfg)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	batch := replayWith(consumelocal.WithEngine(consumelocal.EngineBatch))
	parallel := replayWith(consumelocal.WithEngine(consumelocal.EngineParallel), consumelocal.WithWorkers(3))
	stream := replayWith(consumelocal.WithEngine(consumelocal.EngineStreaming), consumelocal.WithWorkers(3))

	assertSwarmsIdentical(t, "batch", batch, legacyBatch)
	assertSwarmsIdentical(t, "parallel", parallel, legacyParallel)
	assertSwarmsIdentical(t, "streaming", stream, legacyStream)
	if batch.Total != legacyBatch.Total {
		t.Fatalf("batch total %+v != legacy %+v", batch.Total, legacyBatch.Total)
	}
	if parallel.Total != legacyParallel.Total {
		t.Fatalf("parallel total %+v != legacy %+v", parallel.Total, legacyParallel.Total)
	}
	if stream.Total != legacyStream.Total {
		t.Fatalf("streaming total %+v != legacy %+v", stream.Total, legacyStream.Total)
	}
	// And the three modes agree with one another per swarm.
	assertSwarmsIdentical(t, "parallel vs batch", parallel, batch)
	assertSwarmsIdentical(t, "streaming vs batch", stream, batch)
}

// TestReplayCSVSourceMatchesTraceSource replays the CSV form of the same
// trace and expects the identical outcome.
func TestReplayCSVSourceMatchesTraceSource(t *testing.T) {
	tr := replayTestTrace(t)
	var buf bytes.Buffer
	if err := consumelocal.WriteTraceCSV(tr, &buf); err != nil {
		t.Fatal(err)
	}
	src, err := consumelocal.CSVSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), src, consumelocal.WithUploadRatio(1.0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := consumelocal.Simulate(tr, consumelocal.DefaultSimConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	assertSwarmsIdentical(t, "csv", got, want)
}

func TestReplayPreCancelledContext(t *testing.T) {
	tr := replayTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := consumelocal.Replay(ctx, consumelocal.TraceSource(tr))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay under cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled Replay took %v, want prompt return", elapsed)
	}
}

// TestReplayCancelMidStream cancels a streaming job that nobody drains
// and checks the whole pipeline unwinds without leaking goroutines — the
// regression the old Stream API could not avoid.
func TestReplayCancelMidStream(t *testing.T) {
	tr := replayTestTrace(t)
	baseline := runtime.NumGoroutine()

	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithWindow(3600), consumelocal.WithSnapshotBuffer(1), consumelocal.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-job.Snapshots(); !ok {
		t.Fatal("no snapshot before cancel")
	}
	if err := job.Err(); err != nil {
		t.Fatalf("running job reports err %v", err)
	}
	job.Cancel()

	res, err := job.Result()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Result after Cancel = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled job produced a result")
	}
	if err := job.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after Cancel = %v, want context.Canceled", err)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("Done not closed after Result returned")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplayParentContextCancellation: cancelling the caller's context
// behaves exactly like Job.Cancel.
func TestReplayParentContextCancellation(t *testing.T) {
	tr := replayTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	job, err := consumelocal.Replay(ctx, consumelocal.TraceSource(tr),
		consumelocal.WithWindow(3600), consumelocal.WithSnapshotBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-job.Snapshots(); !ok {
		t.Fatal("no snapshot before cancel")
	}
	cancel()
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result after parent cancel = %v, want context.Canceled", err)
	}
}

func TestReplayGeneratorSource(t *testing.T) {
	cfg := consumelocal.DefaultTraceConfig(0.001)
	cfg.Days = 3
	src, err := consumelocal.GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), src,
		consumelocal.WithUploadRatio(1.0), consumelocal.WithWindow(6*3600))
	if err != nil {
		t.Fatal(err)
	}
	var snapshots int
	for range job.Snapshots() {
		snapshots++
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if snapshots < 2 {
		t.Fatalf("expected windowed snapshots from the live generator, got %d", snapshots)
	}
	if res.Total.TotalBits <= 0 || res.Total.Offload() <= 0 {
		t.Fatalf("implausible generator replay: %+v", res.Total)
	}
	if int64(float64(cfg.TargetSessions)*0.9) > sumSessions(res) {
		t.Fatalf("generator replay saw %d sessions, target %d", sumSessions(res), cfg.TargetSessions)
	}
}

func sumSessions(res *consumelocal.SimResult) int64 {
	var n int64
	for _, sw := range res.Swarms {
		n += int64(sw.Sessions)
	}
	return n
}

func TestReplaySinks(t *testing.T) {
	tr := replayTestTrace(t)
	var ndjson, tsv bytes.Buffer
	metrics := consumelocal.NewMetricsSink()

	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithUploadRatio(1.0),
		consumelocal.WithWindow(6*3600),
		consumelocal.WithSink(consumelocal.NDJSONSink(&ndjson)),
		consumelocal.WithSink(consumelocal.TSVSink(&tsv)),
		consumelocal.WithSink(metrics))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}

	// NDJSON: every line parses; snapshots plus one summary.
	var lines, summaries int
	sc := bufio.NewScanner(&ndjson)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var m map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if _, ok := m["summary"]; ok {
			summaries++
		}
	}
	if lines < 3 || summaries != 1 {
		t.Fatalf("NDJSON sink wrote %d lines (%d summaries)", lines, summaries)
	}

	// TSV: header plus one row per snapshot.
	rows := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	if !strings.HasPrefix(rows[0], "window\tfrom_sec") {
		t.Fatalf("TSV header missing: %q", rows[0])
	}
	if len(rows)-1 != lines-1 {
		t.Fatalf("TSV rows = %d, NDJSON snapshots = %d", len(rows)-1, lines-1)
	}

	// Metrics: final gauges report the finished replay.
	g := metrics.Gauges()
	if g["consumelocal_replay_done"] != 1 || g["consumelocal_replay_failed"] != 0 {
		t.Fatalf("metrics done/failed = %v/%v", g["consumelocal_replay_done"], g["consumelocal_replay_failed"])
	}
	if g["consumelocal_replay_total_bits"] != res.Total.TotalBits {
		t.Fatalf("metrics total bits = %v, want %v", g["consumelocal_replay_total_bits"], res.Total.TotalBits)
	}
	var prom bytes.Buffer
	if err := metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "consumelocal_replay_offload ") {
		t.Fatalf("prometheus exposition missing offload gauge:\n%s", prom.String())
	}
}

// TestReplaySinksRunWithoutConsumer: sinks observe the full replay even
// when nobody drains Job.Snapshots — they are pipeline participants,
// not taps on the consumer channel.
func TestReplaySinksRunWithoutConsumer(t *testing.T) {
	tr := replayTestTrace(t)
	var tsv bytes.Buffer
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithWindow(6*3600), consumelocal.WithSink(consumelocal.TSVSink(&tsv)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(tsv.String(), "\n"); rows < 3 {
		t.Fatalf("TSV sink saw only %d rows without a channel consumer", rows)
	}
}

type failingSink struct{ calls int }

func (f *failingSink) Snapshot(consumelocal.StreamSnapshot) error {
	f.calls++
	return errors.New("sink exploded")
}
func (f *failingSink) Finish(*consumelocal.SimResult, error) error { return nil }

func TestReplaySinkErrorAbortsJob(t *testing.T) {
	tr := replayTestTrace(t)
	sink := &failingSink{}
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithWindow(3600), consumelocal.WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result()
	if err == nil || !strings.Contains(err.Error(), "sink exploded") {
		t.Fatalf("Result = %v, want sink error", err)
	}
	if res != nil {
		t.Fatal("failed job produced a result")
	}
}

func TestReplayBatchEmitsFinalSnapshot(t *testing.T) {
	tr := replayTestTrace(t)
	job, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithEngine(consumelocal.EngineBatch))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []consumelocal.StreamSnapshot
	for snap := range job.Snapshots() {
		snaps = append(snaps, snap)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || !snaps[0].Final {
		t.Fatalf("batch mode emitted %d snapshots (final=%v), want exactly one final", len(snaps), len(snaps) > 0 && snaps[0].Final)
	}
	if snaps[0].Cumulative != res.Total {
		t.Fatalf("final snapshot tally %+v != result total %+v", snaps[0].Cumulative, res.Total)
	}
	if snaps[0].SessionsSeen != int64(len(tr.Sessions)) {
		t.Fatalf("final snapshot saw %d sessions, want %d", snaps[0].SessionsSeen, len(tr.Sessions))
	}
}

func TestReplayRejectsInvalidInput(t *testing.T) {
	tr := replayTestTrace(t)
	// Invalid sim configuration.
	bad := consumelocal.DefaultSimConfig(-1)
	if _, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithSimConfig(bad)); err == nil {
		t.Fatal("expected config validation error")
	}
	// Invalid metadata.
	empty := &consumelocal.Trace{}
	if _, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(empty)); err == nil {
		t.Fatal("expected metadata validation error")
	}
	// Unknown engine mode.
	if _, err := consumelocal.Replay(context.Background(), consumelocal.TraceSource(tr),
		consumelocal.WithEngine(consumelocal.EngineMode(99))); err == nil {
		t.Fatal("expected unknown mode error")
	}
}

// TestReplayModeString pins the mode names used in logs and job views.
func TestReplayModeString(t *testing.T) {
	for mode, want := range map[consumelocal.EngineMode]string{
		consumelocal.EngineStreaming: "streaming",
		consumelocal.EngineBatch:     "batch",
		consumelocal.EngineParallel:  "parallel",
		consumelocal.EngineMode(7):   "mode-7",
	} {
		if got := mode.String(); got != want {
			t.Errorf("EngineMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

// TestReplaySourceErrorPropagates: a source failing mid-stream fails the
// job with that error.
func TestReplaySourceErrorPropagates(t *testing.T) {
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=5 content=5 isps=2\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,100,60,1500\n" +
		"1,0,0,0,50,60,1500\n" // out of start order
	src, err := consumelocal.CSVSource(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	job, err := consumelocal.Replay(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("Result = %v, want stream validation error", err)
	}
}

func TestParseEngineMode(t *testing.T) {
	modes := []consumelocal.EngineMode{
		consumelocal.EngineStreaming, consumelocal.EngineBatch, consumelocal.EngineParallel,
	}
	for _, want := range modes {
		got, err := consumelocal.ParseEngineMode(want.String())
		if err != nil {
			t.Fatalf("ParseEngineMode(%q): %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("ParseEngineMode(%q) = %v, want %v", want.String(), got, want)
		}
	}
	if _, err := consumelocal.ParseEngineMode("quantum"); err == nil {
		t.Fatal("ParseEngineMode accepted an unknown mode")
	}
}

// cancelThenFailSink models a response writer broken by the same
// disconnect that cancelled the job: the write error is secondary and
// must not displace the cancellation.
type cancelThenFailSink struct{ cancel context.CancelFunc }

func (s cancelThenFailSink) Snapshot(consumelocal.StreamSnapshot) error {
	s.cancel()
	return errors.New("broken pipe")
}

func (s cancelThenFailSink) Finish(*consumelocal.SimResult, error) error { return nil }

func TestReplaySinkErrorAfterCancelIsCancellation(t *testing.T) {
	tr := replayTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job, err := consumelocal.Replay(ctx, consumelocal.TraceSource(tr),
		consumelocal.WithWindow(3600), consumelocal.WithSink(cancelThenFailSink{cancel: cancel}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result = %v, want context.Canceled", err)
	}
}

package matching

import (
	"slices"
	"sync"

	"consumelocal/internal/energy"
)

// LocalityFirst is the paper's managed-swarm matching policy: demand is
// satisfied from the closest available peers, layer by layer. The zero
// value is ready to use and safe for concurrent Match calls (per-call
// scratch state lives in an internal pool).
type LocalityFirst struct{}

var _ Policy = LocalityFirst{}

// Name implements Policy.
func (LocalityFirst) Name() string { return "locality-first" }

// groupPair is one peer in a grouping pass: sorted by (k1, k2, idx),
// groups are runs of equal k1 and subgroups runs of equal (k1, k2).
// Sorting replaces the map-bucket grouping of the original
// implementation: groups still come out in ascending key order with
// members in ascending index order, so the floating-point operation
// sequence — and therefore the simulator's bit-for-bit results — is
// unchanged, while the per-interval map, bucket and key-slice
// allocations are gone.
type groupPair struct {
	k1, k2 int64
	idx    int32
}

func cmpGroupPair(a, b groupPair) int {
	if a.k1 != b.k1 {
		if a.k1 < b.k1 {
			return -1
		}
		return 1
	}
	if a.k2 != b.k2 {
		if a.k2 < b.k2 {
			return -1
		}
		return 1
	}
	if a.idx != b.idx {
		if a.idx < b.idx {
			return -1
		}
		return 1
	}
	return 0
}

// lfScratch is the reusable per-Match working state. Matching runs once
// per activity interval — the single hottest call in both engines — so
// its temporaries are pooled rather than reallocated per interval.
type lfScratch struct {
	residD, residC []float64
	pairs          []groupPair
	starts         []int32 // subgroup boundaries of the current cross pass
	demand         []float64
	capacity       []float64
	served         []float64
	used           []float64
}

// floats returns a zeroed scratch slice of length n.
func floats(buf *[]float64, n int) []float64 {
	s := grown(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// grown returns a scratch slice of length n with arbitrary contents,
// for callers that overwrite every element themselves.
func grown(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

var lfPool = sync.Pool{New: func() any { return new(lfScratch) }}

// Match implements Policy, allocating a fresh result per call; the
// engines recycle one Allocation through MatchInto instead.
func (p LocalityFirst) Match(peers []Peer, demands, caps []float64, budget float64) (Allocation, error) {
	var a Allocation
	if err := p.MatchInto(&a, peers, demands, caps, budget); err != nil {
		return Allocation{}, err
	}
	return a, nil
}

// MatchInto implements Policy. The algorithm runs three passes:
//
//  1. Exchange pass: within every exchange point hosting at least two
//     peers, local demand is matched against local capacity.
//  2. PoP pass: per PoP, remaining demand is matched against remaining
//     capacity of *other* exchange points under the same PoP.
//  3. Core pass: remaining demand is matched across PoPs.
//
// Cross-group passes use a largest-remaining-first greedy that achieves
// the maximum feasible flow under the no-self-serving constraint. Finally
// the paper's (L−1)·q budget is applied, trimming least-local traffic
// first.
//
//consumelocal:hotpath
func (LocalityFirst) MatchInto(alloc *Allocation, peers []Peer, demands, caps []float64, budget float64) error {
	totalDemand, err := validate(peers, demands, caps)
	if err != nil {
		return err
	}
	n := len(peers)
	alloc.reset(n, totalDemand)
	if n < 2 || budget == 0 {
		return nil
	}

	sc := lfPool.Get().(*lfScratch)
	defer lfPool.Put(sc)

	// Residual demand/capacity per peer, consumed pass by pass; the
	// copies overwrite every element, so no zeroing pass is needed.
	residD := grown(&sc.residD, n)
	residC := grown(&sc.residC, n)
	copy(residD, demands)
	copy(residC, caps)

	if cap(sc.pairs) < n {
		sc.pairs = make([]groupPair, n)
	}
	pairs := sc.pairs[:n]

	// Pass 1: within exchange points.
	for i, p := range peers {
		pairs[i] = groupPair{k1: int64(p.Exchange), idx: int32(i)}
	}
	slices.SortFunc(pairs, cmpGroupPair)
	for s := 0; s < n; {
		e := s + 1
		for e < n && pairs[e].k1 == pairs[s].k1 {
			e++
		}
		if e-s >= 2 {
			flow := matchWithin(pairs[s:e], residD, residC)
			record(alloc, energy.LayerExchange, flow, pairs[s:e], residD, residC, demands, caps)
		}
		s = e
	}

	// Pass 2: across exchanges within each PoP. Sorting by (PoP,
	// exchange, index) makes PoPs runs and their exchange subgroups
	// sub-runs of the same ordering.
	for i, p := range peers {
		pairs[i] = groupPair{k1: int64(p.PoP), k2: int64(p.Exchange), idx: int32(i)}
	}
	slices.SortFunc(pairs, cmpGroupPair)
	for s := 0; s < n; {
		e := s + 1
		for e < n && pairs[e].k1 == pairs[s].k1 {
			e++
		}
		flows := crossMatch(sc, pairs[s:e], residD, residC)
		record(alloc, energy.LayerPoP, flows, pairs[s:e], residD, residC, demands, caps)
		s = e
	}

	// Pass 3: across PoPs through the core.
	for i, p := range peers {
		pairs[i] = groupPair{k1: int64(p.PoP), k2: int64(p.PoP), idx: int32(i)}
	}
	slices.SortFunc(pairs, cmpGroupPair)
	flows := crossMatch(sc, pairs, residD, residC)
	record(alloc, energy.LayerCore, flows, pairs, residD, residC, demands, caps)

	applyBudget(alloc, budget)
	return nil
}

// matchWithin matches demand against capacity inside one group where every
// member can serve every other. With at least two members the feasible
// flow is min(total demand, total capacity): a cyclic assignment routes
// around self-serving. It mutates the residual vectors and returns the
// flow.
func matchWithin(members []groupPair, residDemand, residCap []float64) float64 {
	var sumD, sumU float64
	for _, m := range members {
		sumD += residDemand[m.idx]
		sumU += residCap[m.idx]
	}
	flow := sumD
	if sumU < flow {
		flow = sumU
	}
	if flow <= 0 {
		return 0
	}
	drainProportional(members, residDemand, sumD, flow)
	drainProportional(members, residCap, sumU, flow)
	return flow
}

// crossMatch matches residual demand of each subgroup (a run of equal k2
// within the sorted members) against residual capacity of the *other*
// subgroups, using a largest-remaining-first greedy that achieves the
// maximum total flow under the no-same-group constraint. It mutates the
// residual vectors and returns the total flow.
func crossMatch(sc *lfScratch, members []groupPair, residDemand, residCap []float64) float64 {
	// Subgroup boundaries: starts[g] is the first member of subgroup g.
	starts := sc.starts[:0]
	for i := range members {
		if i == 0 || members[i].k2 != members[i-1].k2 {
			starts = append(starts, int32(i))
		}
	}
	sc.starts = starts
	k := len(starts)
	if k < 2 {
		return 0
	}
	end := func(g int) int {
		if g+1 < k {
			return int(starts[g+1])
		}
		return len(members)
	}

	demand := floats(&sc.demand, k)
	capacity := floats(&sc.capacity, k)
	for g := 0; g < k; g++ {
		for _, m := range members[starts[g]:end(g)] {
			demand[g] += residDemand[m.idx]
			capacity[g] += residCap[m.idx]
		}
	}

	// served[g] / used[g] accumulate how much of group g's demand was
	// served and capacity consumed in this pass.
	served := floats(&sc.served, k)
	used := floats(&sc.used, k)
	var total float64
	const eps = 1e-9
	for {
		gd := argmax(demand)
		if gd < 0 || demand[gd] <= eps {
			break
		}
		gu := argmaxExcept(capacity, gd)
		if gu < 0 || capacity[gu] <= eps {
			break
		}
		x := demand[gd]
		if capacity[gu] < x {
			x = capacity[gu]
		}
		demand[gd] -= x
		capacity[gu] -= x
		served[gd] += x
		used[gu] += x
		total += x
	}
	if total <= 0 {
		return 0
	}

	// Fold the per-group outcomes back into the per-peer residuals.
	for g := 0; g < k; g++ {
		group := members[starts[g]:end(g)]
		if served[g] > 0 {
			var sumD float64
			for _, m := range group {
				sumD += residDemand[m.idx]
			}
			drainProportional(group, residDemand, sumD, served[g])
		}
		if used[g] > 0 {
			var sumU float64
			for _, m := range group {
				sumU += residCap[m.idx]
			}
			drainProportional(group, residCap, sumU, used[g])
		}
	}
	return total
}

// drainProportional subtracts amount from the members' entries of vec,
// proportionally to their current values (which sum to sum).
func drainProportional(members []groupPair, vec []float64, sum, amount float64) {
	if sum <= 0 {
		return
	}
	scale := amount / sum
	if scale > 1 {
		scale = 1
	}
	for _, m := range members {
		vec[m.idx] -= vec[m.idx] * scale
		if vec[m.idx] < 0 {
			vec[m.idx] = 0
		}
	}
}

// record books flow at a layer and attributes it to the members' upload
// and peer-download tallies, truing each member up to its cumulative
// consumed capacity (caps[i] − residCap[i]) and met demand
// (demands[i] − residDemand[i]). The per-member updates are independent
// max-assignments, so member order does not affect the outcome.
func record(alloc *Allocation, layer energy.Layer, flow float64, members []groupPair,
	residDemand, residCap, demands, caps []float64) {
	if flow <= 0 {
		return
	}
	alloc.LayerBits[layer.Index()] += flow
	alloc.ServerBits -= flow

	for _, m := range members {
		i := m.idx
		if upSoFar := caps[i] - residCap[i]; upSoFar > alloc.UploadedBits[i] {
			alloc.UploadedBits[i] = upSoFar
		}
		if downSoFar := demands[i] - residDemand[i]; downSoFar > alloc.PeerReceivedBits[i] {
			alloc.PeerReceivedBits[i] = downSoFar
		}
	}
}

// argmax returns the index of the largest entry, or -1 for empty input.
func argmax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// argmaxExcept returns the index of the largest entry other than skip, or
// -1 when no other entry exists.
func argmaxExcept(xs []float64, skip int) int {
	best := -1
	for i, x := range xs {
		if i == skip {
			continue
		}
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

package matching

import (
	"sort"

	"consumelocal/internal/energy"
)

// LocalityFirst is the paper's managed-swarm matching policy: demand is
// satisfied from the closest available peers, layer by layer. The zero
// value is ready to use.
type LocalityFirst struct{}

var _ Policy = LocalityFirst{}

// Name implements Policy.
func (LocalityFirst) Name() string { return "locality-first" }

// Match implements Policy. The algorithm runs three passes:
//
//  1. Exchange pass: within every exchange point hosting at least two
//     peers, local demand is matched against local capacity.
//  2. PoP pass: per PoP, remaining demand is matched against remaining
//     capacity of *other* exchange points under the same PoP.
//  3. Core pass: remaining demand is matched across PoPs.
//
// Cross-group passes use a largest-remaining-first greedy that achieves
// the maximum feasible flow under the no-self-serving constraint. Finally
// the paper's (L−1)·q budget is applied, trimming least-local traffic
// first.
func (LocalityFirst) Match(peers []Peer, demands, caps []float64, budget float64) (Allocation, error) {
	totalDemand, err := validate(peers, demands, caps)
	if err != nil {
		return Allocation{}, err
	}
	n := len(peers)
	alloc := serverOnly(n, totalDemand)
	if n < 2 || budget == 0 {
		return alloc, nil
	}

	// Residual demand/capacity per peer, consumed pass by pass.
	residDemand := append([]float64(nil), demands...)
	residCap := append([]float64(nil), caps...)

	// Pass 1: within exchange points.
	byExchange := groupIndices(peers, func(p Peer) int { return p.Exchange })
	for _, members := range byExchange {
		if len(members) < 2 {
			continue
		}
		flow := matchWithin(members, residDemand, residCap)
		record(&alloc, energy.LayerExchange, flow, members, residDemand, residCap, demands, caps)
	}

	// Pass 2: across exchanges within each PoP.
	byPoP := groupIndices(peers, func(p Peer) int { return p.PoP })
	for _, members := range byPoP {
		groups := subGroups(members, peers, func(p Peer) int { return p.Exchange })
		flows := crossMatch(groups, residDemand, residCap)
		record(&alloc, energy.LayerPoP, flows, members, residDemand, residCap, demands, caps)
	}

	// Pass 3: across PoPs through the core.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	groups := subGroups(all, peers, func(p Peer) int { return p.PoP })
	flows := crossMatch(groups, residDemand, residCap)
	record(&alloc, energy.LayerCore, flows, all, residDemand, residCap, demands, caps)

	applyBudget(&alloc, budget)
	return alloc, nil
}

// groupIndices buckets peer indices by a key function, returning groups in
// deterministic (ascending key) order.
func groupIndices(peers []Peer, key func(Peer) int) [][]int {
	byKey := make(map[int][]int)
	for i, p := range peers {
		k := key(p)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// subGroups partitions the given member indices by a key function.
func subGroups(members []int, peers []Peer, key func(Peer) int) [][]int {
	byKey := make(map[int][]int)
	for _, i := range members {
		k := key(peers[i])
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// matchWithin matches demand against capacity inside one group where every
// member can serve every other. With at least two members the feasible
// flow is min(total demand, total capacity): a cyclic assignment routes
// around self-serving. It mutates the residual vectors and returns the
// flow.
func matchWithin(members []int, residDemand, residCap []float64) float64 {
	var sumD, sumU float64
	for _, i := range members {
		sumD += residDemand[i]
		sumU += residCap[i]
	}
	flow := sumD
	if sumU < flow {
		flow = sumU
	}
	if flow <= 0 {
		return 0
	}
	drainProportional(members, residDemand, sumD, flow)
	drainProportional(members, residCap, sumU, flow)
	return flow
}

// crossMatch matches residual demand of each group against residual
// capacity of the *other* groups, using a largest-remaining-first greedy
// that achieves the maximum total flow under the no-same-group constraint.
// It mutates the residual vectors and returns the total flow.
func crossMatch(groups [][]int, residDemand, residCap []float64) float64 {
	k := len(groups)
	if k < 2 {
		return 0
	}
	demand := make([]float64, k)
	capacity := make([]float64, k)
	for g, members := range groups {
		for _, i := range members {
			demand[g] += residDemand[i]
			capacity[g] += residCap[i]
		}
	}

	// served[g] / used[g] accumulate how much of group g's demand was
	// served and capacity consumed in this pass.
	served := make([]float64, k)
	used := make([]float64, k)
	var total float64
	const eps = 1e-9
	for {
		gd := argmax(demand)
		if gd < 0 || demand[gd] <= eps {
			break
		}
		gu := argmaxExcept(capacity, gd)
		if gu < 0 || capacity[gu] <= eps {
			break
		}
		x := demand[gd]
		if capacity[gu] < x {
			x = capacity[gu]
		}
		demand[gd] -= x
		capacity[gu] -= x
		served[gd] += x
		used[gu] += x
		total += x
	}
	if total <= 0 {
		return 0
	}

	// Fold the per-group outcomes back into the per-peer residuals.
	for g, members := range groups {
		if served[g] > 0 {
			var sumD float64
			for _, i := range members {
				sumD += residDemand[i]
			}
			drainProportional(members, residDemand, sumD, served[g])
		}
		if used[g] > 0 {
			var sumU float64
			for _, i := range members {
				sumU += residCap[i]
			}
			drainProportional(members, residCap, sumU, used[g])
		}
	}
	return total
}

// drainProportional subtracts amount from the members' entries of vec,
// proportionally to their current values (which sum to sum).
func drainProportional(members []int, vec []float64, sum, amount float64) {
	if sum <= 0 {
		return
	}
	scale := amount / sum
	if scale > 1 {
		scale = 1
	}
	for _, i := range members {
		vec[i] -= vec[i] * scale
		if vec[i] < 0 {
			vec[i] = 0
		}
	}
}

// record books flow at a layer and attributes it to the members' upload
// and peer-download tallies, proportionally to what each member
// contributed in this pass (the difference between original and residual,
// minus previously recorded amounts).
func record(alloc *Allocation, layer energy.Layer, flow float64, members []int,
	residDemand, residCap, demands, caps []float64) {
	if flow <= 0 {
		return
	}
	alloc.LayerBits[layer.Index()] += flow
	alloc.ServerBits -= flow

	// True up each member's tallies to its cumulative consumed capacity
	// (caps[i] − residCap[i]) and met demand (demands[i] − residDemand[i]).
	for _, i := range members {
		if upSoFar := caps[i] - residCap[i]; upSoFar > alloc.UploadedBits[i] {
			alloc.UploadedBits[i] = upSoFar
		}
		if downSoFar := demands[i] - residDemand[i]; downSoFar > alloc.PeerReceivedBits[i] {
			alloc.PeerReceivedBits[i] = downSoFar
		}
	}
}

// argmax returns the index of the largest entry, or -1 for empty input.
func argmax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// argmaxExcept returns the index of the largest entry other than skip, or
// -1 when no other entry exists.
func argmaxExcept(xs []float64, skip int) int {
	best := -1
	for i, x := range xs {
		if i == skip {
			continue
		}
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

package matching

import (
	"slices"
	"sync"

	"consumelocal/internal/energy"
)

// Random is the locality-oblivious ablation baseline: the same volume of
// traffic is offloaded to peers as a locality-aware matcher would achieve
// globally, but uploader–downloader pairs are formed uniformly at random,
// so peer bits are priced at the layer distribution of random pairs. The
// zero value is ready to use.
//
// Comparing Random against LocalityFirst isolates the contribution of
// *consuming local* (shorter P2P paths) from the contribution of
// offloading per se (fewer server bits).
type Random struct{}

var _ Policy = Random{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// rndScratch is the reusable per-MatchInto working state: one sortable
// key slice for the pair-localisation counting passes.
type rndScratch struct {
	pairs []groupPair
}

var rndPool = sync.Pool{New: func() any { return new(rndScratch) }}

// Match implements Policy, allocating a fresh result per call; the
// engines recycle one Allocation through MatchInto instead.
func (p Random) Match(peers []Peer, demands, caps []float64, budget float64) (Allocation, error) {
	var a Allocation
	if err := p.MatchInto(&a, peers, demands, caps, budget); err != nil {
		return Allocation{}, err
	}
	return a, nil
}

// MatchInto implements Policy. The total peer flow is min(total demand,
// total capacity) — achievable for n >= 2 via cyclic assignments — and is
// distributed over layers according to the exact probability that a
// uniformly random ordered pair of distinct peers shares an exchange
// point or a PoP.
//
//consumelocal:hotpath
func (Random) MatchInto(alloc *Allocation, peers []Peer, demands, caps []float64, budget float64) error {
	totalDemand, err := validate(peers, demands, caps)
	if err != nil {
		return err
	}
	n := len(peers)
	alloc.reset(n, totalDemand)
	if n < 2 || budget == 0 {
		return nil
	}

	var totalCap float64
	for _, c := range caps {
		totalCap += c
	}
	flow := totalDemand
	if totalCap < flow {
		flow = totalCap
	}
	if flow <= 0 {
		return nil
	}

	pExchange, pPoP := pairLocalisation(peers)
	alloc.LayerBits[energy.LayerExchange.Index()] = flow * pExchange
	alloc.LayerBits[energy.LayerPoP.Index()] = flow * (pPoP - pExchange)
	alloc.LayerBits[energy.LayerCore.Index()] = flow * (1 - pPoP)
	alloc.ServerBits = totalDemand - flow

	// Uploads consume capacity proportionally; downloads are met
	// proportionally to demand.
	for i := range peers {
		if totalCap > 0 {
			alloc.UploadedBits[i] = caps[i] / totalCap * flow
		}
		if totalDemand > 0 {
			alloc.PeerReceivedBits[i] = demands[i] / totalDemand * flow
		}
	}

	applyBudget(alloc, budget)
	return nil
}

// pairLocalisation returns the probability that a uniformly random ordered
// pair of distinct peers shares an exchange point, and the probability it
// shares a PoP (which includes the same-exchange case). Co-location is
// counted by sorting a pooled key slice and summing k·(k−1) over equal
// runs — the counts are exact integers, so the result is identical to the
// former map-based counting regardless of summation order, without the
// two per-interval map allocations.
func pairLocalisation(peers []Peer) (sameExchange, samePoP float64) {
	n := len(peers)
	if n < 2 {
		return 0, 0
	}
	sc := rndPool.Get().(*rndScratch)
	defer rndPool.Put(sc)
	if cap(sc.pairs) < n {
		sc.pairs = make([]groupPair, n)
	}
	pairs := sc.pairs[:n]

	pairsTotal := float64(n) * float64(n-1)
	for i, p := range peers {
		pairs[i] = groupPair{k1: int64(p.Exchange), idx: int32(i)}
	}
	exPairs := coLocatedPairs(pairs)
	for i, p := range peers {
		pairs[i] = groupPair{k1: int64(p.PoP), idx: int32(i)}
	}
	popPairs := coLocatedPairs(pairs)
	return exPairs / pairsTotal, popPairs / pairsTotal
}

// coLocatedPairs sorts the keys and returns Σ k·(k−1) over equal-key
// runs: the number of ordered pairs of distinct peers sharing a key.
func coLocatedPairs(pairs []groupPair) float64 {
	slices.SortFunc(pairs, cmpGroupPair)
	var total float64
	for s := 0; s < len(pairs); {
		e := s + 1
		for e < len(pairs) && pairs[e].k1 == pairs[s].k1 {
			e++
		}
		k := float64(e - s)
		total += k * (k - 1)
		s = e
	}
	return total
}

package matching

import (
	"consumelocal/internal/energy"
)

// Random is the locality-oblivious ablation baseline: the same volume of
// traffic is offloaded to peers as a locality-aware matcher would achieve
// globally, but uploader–downloader pairs are formed uniformly at random,
// so peer bits are priced at the layer distribution of random pairs. The
// zero value is ready to use.
//
// Comparing Random against LocalityFirst isolates the contribution of
// *consuming local* (shorter P2P paths) from the contribution of
// offloading per se (fewer server bits).
type Random struct{}

var _ Policy = Random{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Match implements Policy. The total peer flow is min(total demand, total
// capacity) — achievable for n >= 2 via cyclic assignments — and is
// distributed over layers according to the exact probability that a
// uniformly random ordered pair of distinct peers shares an exchange
// point or a PoP.
func (Random) Match(peers []Peer, demands, caps []float64, budget float64) (Allocation, error) {
	totalDemand, err := validate(peers, demands, caps)
	if err != nil {
		return Allocation{}, err
	}
	n := len(peers)
	alloc := serverOnly(n, totalDemand)
	if n < 2 || budget == 0 {
		return alloc, nil
	}

	var totalCap float64
	for _, c := range caps {
		totalCap += c
	}
	flow := totalDemand
	if totalCap < flow {
		flow = totalCap
	}
	if flow <= 0 {
		return alloc, nil
	}

	pExchange, pPoP := pairLocalisation(peers)
	alloc.LayerBits[energy.LayerExchange.Index()] = flow * pExchange
	alloc.LayerBits[energy.LayerPoP.Index()] = flow * (pPoP - pExchange)
	alloc.LayerBits[energy.LayerCore.Index()] = flow * (1 - pPoP)
	alloc.ServerBits = totalDemand - flow

	// Uploads consume capacity proportionally; downloads are met
	// proportionally to demand.
	for i := range peers {
		if totalCap > 0 {
			alloc.UploadedBits[i] = caps[i] / totalCap * flow
		}
		if totalDemand > 0 {
			alloc.PeerReceivedBits[i] = demands[i] / totalDemand * flow
		}
	}

	applyBudget(&alloc, budget)
	return alloc, nil
}

// pairLocalisation returns the probability that a uniformly random ordered
// pair of distinct peers shares an exchange point, and the probability it
// shares a PoP (which includes the same-exchange case).
func pairLocalisation(peers []Peer) (sameExchange, samePoP float64) {
	n := len(peers)
	if n < 2 {
		return 0, 0
	}
	exchangeCounts := make(map[int]int)
	popCounts := make(map[int]int)
	for _, p := range peers {
		exchangeCounts[p.Exchange]++
		popCounts[p.PoP]++
	}
	pairs := float64(n) * float64(n-1)
	var exPairs, popPairs float64
	for _, k := range exchangeCounts {
		exPairs += float64(k) * float64(k-1)
	}
	for _, k := range popCounts {
		popPairs += float64(k) * float64(k-1)
	}
	return exPairs / pairs, popPairs / pairs
}

package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"consumelocal/internal/energy"
)

const eps = 1e-6

// uniformInputs builds n peers with uniform demand and capacity, placed by
// the given exchange assignments (PoP = exchange % pops).
func uniformInputs(exchanges []int, pops int, demand, capacity float64) ([]Peer, []float64, []float64) {
	peers := make([]Peer, len(exchanges))
	demands := make([]float64, len(exchanges))
	caps := make([]float64, len(exchanges))
	for i, e := range exchanges {
		peers[i] = Peer{User: uint32(i), Exchange: e, PoP: e % pops}
		demands[i] = demand
		caps[i] = capacity
	}
	return peers, demands, caps
}

// checkConservation verifies the Policy contract on an allocation.
func checkConservation(t *testing.T, a Allocation, demands []float64) {
	t.Helper()
	var totalDemand, received, uploaded float64
	for i := range demands {
		totalDemand += demands[i]
		received += a.PeerReceivedBits[i]
		uploaded += a.UploadedBits[i]
	}
	if math.Abs(received+a.ServerBits-totalDemand) > eps*(1+totalDemand) {
		t.Errorf("traffic not conserved: received %v + server %v != demand %v",
			received, a.ServerBits, totalDemand)
	}
	if math.Abs(uploaded-a.PeerBits()) > eps*(1+uploaded) {
		t.Errorf("uploads %v != layer bits %v", uploaded, a.PeerBits())
	}
	if math.Abs(received-a.PeerBits()) > eps*(1+received) {
		t.Errorf("peer downloads %v != layer bits %v", received, a.PeerBits())
	}
	if a.ServerBits < -eps {
		t.Errorf("negative server bits: %v", a.ServerBits)
	}
	for l, b := range a.LayerBits {
		if b < -eps {
			t.Errorf("negative layer %d bits: %v", l, b)
		}
	}
}

func policies() []Policy {
	return []Policy{LocalityFirst{}, Random{}}
}

func TestPolicyNames(t *testing.T) {
	if (LocalityFirst{}).Name() != "locality-first" {
		t.Error("unexpected LocalityFirst name")
	}
	if (Random{}).Name() != "random" {
		t.Error("unexpected Random name")
	}
}

func TestMatchRejectsMismatchedInputs(t *testing.T) {
	for _, p := range policies() {
		if _, err := p.Match(make([]Peer, 2), make([]float64, 1), make([]float64, 2), -1); err == nil {
			t.Errorf("%s: expected length mismatch error", p.Name())
		}
		if _, err := p.Match(make([]Peer, 1), []float64{-1}, []float64{1}, -1); err == nil {
			t.Errorf("%s: expected negative demand error", p.Name())
		}
	}
}

func TestMatchSinglePeerGoesToServer(t *testing.T) {
	for _, p := range policies() {
		peers, demands, caps := uniformInputs([]int{0}, 9, 100, 100)
		a, err := p.Match(peers, demands, caps, -1)
		if err != nil {
			t.Fatal(err)
		}
		if a.ServerBits != 100 || a.PeerBits() != 0 {
			t.Errorf("%s: lone peer should be served entirely by the CDN: %+v", p.Name(), a)
		}
	}
}

func TestMatchZeroBudgetDisablesSharing(t *testing.T) {
	for _, p := range policies() {
		peers, demands, caps := uniformInputs([]int{0, 0}, 9, 100, 100)
		a, err := p.Match(peers, demands, caps, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.PeerBits() != 0 || a.ServerBits != 200 {
			t.Errorf("%s: zero budget should disable sharing: %+v", p.Name(), a)
		}
	}
}

func TestLocalitySameExchangeAllLocal(t *testing.T) {
	// Two peers on the same exchange, enough capacity: all shared bits
	// must be priced at the exchange layer.
	peers, demands, caps := uniformInputs([]int{5, 5}, 9, 100, 100)
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LayerBits[energy.LayerExchange.Index()]; math.Abs(got-200) > eps {
		t.Errorf("exchange bits = %v, want 200", got)
	}
	if a.LayerBits[energy.LayerPoP.Index()] != 0 || a.LayerBits[energy.LayerCore.Index()] != 0 {
		t.Errorf("unexpected non-local traffic: %+v", a.LayerBits)
	}
	checkConservation(t, a, demands)
}

func TestLocalitySamePoPCrossExchange(t *testing.T) {
	// Exchanges 0 and 9 share PoP 0 (9 % 9 == 0) but are different
	// exchanges: traffic must be priced at the PoP layer.
	peers, demands, caps := uniformInputs([]int{0, 9}, 9, 100, 100)
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LayerBits[energy.LayerPoP.Index()]; math.Abs(got-200) > eps {
		t.Errorf("pop bits = %v, want 200: %+v", got, a.LayerBits)
	}
	checkConservation(t, a, demands)
}

func TestLocalityCrossPoP(t *testing.T) {
	// Exchanges 0 and 1 are under different PoPs: core traffic.
	peers, demands, caps := uniformInputs([]int{0, 1}, 9, 100, 100)
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LayerBits[energy.LayerCore.Index()]; math.Abs(got-200) > eps {
		t.Errorf("core bits = %v, want 200: %+v", got, a.LayerBits)
	}
	checkConservation(t, a, demands)
}

func TestLocalityPrefersLocalLayers(t *testing.T) {
	// Three peers: two share exchange 0, one sits on exchange 1 (other
	// PoP). Capacity is scarce (half of demand), so local matching should
	// saturate the exchange layer before any cross traffic happens.
	peers, demands, caps := uniformInputs([]int{0, 0, 1}, 9, 100, 50)
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	exBits := a.LayerBits[energy.LayerExchange.Index()]
	// The two co-located peers have 100 joint capacity against 200 joint
	// demand: all 100 flows locally.
	if math.Abs(exBits-100) > eps {
		t.Errorf("exchange bits = %v, want 100: %+v", exBits, a.LayerBits)
	}
	checkConservation(t, a, demands)
}

func TestLocalityBudgetTrimsCoreFirst(t *testing.T) {
	// Force both exchange-local and core traffic, then squeeze the budget
	// so only the local traffic survives.
	peers, demands, caps := uniformInputs([]int{0, 0, 1, 2}, 9, 100, 100)
	unbounded, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.PeerBits() < 300 {
		t.Fatalf("setup: expected heavy sharing, got %v", unbounded.PeerBits())
	}
	exBits := unbounded.LayerBits[energy.LayerExchange.Index()]

	budget := exBits // keep exactly the local traffic
	a, err := LocalityFirst{}.Match(peers, demands, caps, budget)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PeerBits()-budget) > eps {
		t.Errorf("budget not enforced: peer bits %v, budget %v", a.PeerBits(), budget)
	}
	if got := a.LayerBits[energy.LayerExchange.Index()]; math.Abs(got-exBits) > eps {
		t.Errorf("local traffic trimmed before core: exchange %v, want %v", got, exBits)
	}
	if a.LayerBits[energy.LayerCore.Index()] > eps {
		t.Errorf("core traffic should be trimmed first, got %v", a.LayerBits[energy.LayerCore.Index()])
	}
	checkConservation(t, a, demands)
}

func TestLocalityCapacityConstrained(t *testing.T) {
	// q/β = 0.5: peers can serve at most half the demand.
	peers, demands, caps := uniformInputs([]int{3, 3, 3, 3}, 9, 100, 50)
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PeerBits()-200) > eps {
		t.Errorf("peer bits = %v, want 200 (capacity bound)", a.PeerBits())
	}
	if math.Abs(a.ServerBits-200) > eps {
		t.Errorf("server bits = %v, want 200", a.ServerBits)
	}
	checkConservation(t, a, demands)
}

func TestLocalityPaperBudgetMatchesEq2(t *testing.T) {
	// With uniform q and the paper budget (L-1)·q, the peer traffic in a
	// capacity-constrained window must be exactly (L-1)·q.
	const l, q, beta = 5, 80.0, 100.0
	peers, demands, caps := uniformInputs([]int{1, 1, 1, 1, 1}, 9, beta, q)
	budget := float64(l-1) * q
	a, err := LocalityFirst{}.Match(peers, demands, caps, budget)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PeerBits()-budget) > eps {
		t.Errorf("peer bits = %v, want (L-1)q = %v", a.PeerBits(), budget)
	}
	checkConservation(t, a, demands)
}

func TestLocalityNoSelfServeTwoGroups(t *testing.T) {
	// Demand concentrated in one exchange, capacity in another (same PoP):
	// everything must flow at the PoP layer, bounded by the capacity side.
	peers := []Peer{
		{User: 0, Exchange: 0, PoP: 0},
		{User: 1, Exchange: 9, PoP: 0},
	}
	demands := []float64{100, 0}
	caps := []float64{0, 60}
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LayerBits[energy.LayerPoP.Index()]; math.Abs(got-60) > eps {
		t.Errorf("pop bits = %v, want 60", got)
	}
	if math.Abs(a.UploadedBits[1]-60) > eps || a.UploadedBits[0] > eps {
		t.Errorf("upload attribution wrong: %v", a.UploadedBits)
	}
	if math.Abs(a.PeerReceivedBits[0]-60) > eps {
		t.Errorf("download attribution wrong: %v", a.PeerReceivedBits)
	}
	checkConservation(t, a, demands)
}

func TestCrossMatchSelfExclusion(t *testing.T) {
	// One dominant group cannot serve itself: D=[10,10] U=[15,5] can move
	// at most 15 units across groups.
	peers := []Peer{
		{User: 0, Exchange: 0, PoP: 0}, {User: 1, Exchange: 0, PoP: 0},
		{User: 2, Exchange: 9, PoP: 0}, {User: 3, Exchange: 9, PoP: 0},
	}
	demands := []float64{10, 0, 10, 0}
	caps := []float64{0, 15, 0, 5}
	// Within-exchange pass handles part of it: group {0,1} has demand 10
	// and capacity 15 locally => 10 flows at exchange layer; group {2,3}
	// moves 5 locally. Remaining demand 5 (group 2) matches remaining
	// capacity 5 (group 1) at the PoP layer.
	a, err := LocalityFirst{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.LayerBits[energy.LayerExchange.Index()]; math.Abs(got-15) > eps {
		t.Errorf("exchange bits = %v, want 15", got)
	}
	if got := a.LayerBits[energy.LayerPoP.Index()]; math.Abs(got-5) > eps {
		t.Errorf("pop bits = %v, want 5", got)
	}
	checkConservation(t, a, demands)
}

func TestRandomLayerSplitMatchesPairProbabilities(t *testing.T) {
	// 4 peers: two on exchange 0, one on exchange 9 (same PoP as 0), one
	// on exchange 1 (different PoP).
	peers, demands, caps := uniformInputs([]int{0, 0, 9, 1}, 9, 100, 100)
	a, err := Random{}.Match(peers, demands, caps, -1)
	if err != nil {
		t.Fatal(err)
	}
	flow := a.PeerBits()
	if math.Abs(flow-400) > eps {
		t.Fatalf("flow = %v, want 400", flow)
	}
	// Ordered pairs: 4×3 = 12. Same exchange: 2×1 = 2 => 1/6.
	// Same PoP: peers {0,1,2} => 3×2 = 6 => 1/2 (includes same exchange).
	wantExchange := flow / 6
	wantPoP := flow * (0.5 - 1.0/6)
	wantCore := flow * 0.5
	if got := a.LayerBits[energy.LayerExchange.Index()]; math.Abs(got-wantExchange) > eps {
		t.Errorf("exchange bits = %v, want %v", got, wantExchange)
	}
	if got := a.LayerBits[energy.LayerPoP.Index()]; math.Abs(got-wantPoP) > eps {
		t.Errorf("pop bits = %v, want %v", got, wantPoP)
	}
	if got := a.LayerBits[energy.LayerCore.Index()]; math.Abs(got-wantCore) > eps {
		t.Errorf("core bits = %v, want %v", got, wantCore)
	}
	checkConservation(t, a, demands)
}

func TestRandomNeverBeatsLocalityOnLocalBits(t *testing.T) {
	// For identical inputs, locality-first must put at least as many bits
	// on the exchange layer as random matching (in expectation terms the
	// random policy uses the pair distribution, so this holds
	// deterministically here).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		exchanges := make([]int, n)
		for i := range exchanges {
			exchanges[i] = rng.Intn(6)
		}
		peers, demands, caps := uniformInputs(exchanges, 3, 100, float64(20+rng.Intn(100)))
		local, err := LocalityFirst{}.Match(peers, demands, caps, -1)
		if err != nil {
			t.Fatal(err)
		}
		random, err := Random{}.Match(peers, demands, caps, -1)
		if err != nil {
			t.Fatal(err)
		}
		li := energy.LayerExchange.Index()
		if local.LayerBits[li] < random.LayerBits[li]-eps {
			t.Errorf("trial %d: locality exchange bits %v < random %v",
				trial, local.LayerBits[li], random.LayerBits[li])
		}
	}
}

// Property test: both policies conserve traffic and respect the budget for
// arbitrary inputs.
func TestPoliciesConservationProperty(t *testing.T) {
	for _, p := range policies() {
		p := p
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(30)
			exchanges := make([]int, n)
			for i := range exchanges {
				exchanges[i] = rng.Intn(10)
			}
			peers, demands, caps := uniformInputs(exchanges, 4, 0, 0)
			for i := range demands {
				demands[i] = rng.Float64() * 200
				caps[i] = rng.Float64() * 200
			}
			budget := -1.0
			if rng.Intn(2) == 0 {
				budget = rng.Float64() * 300
			}
			a, err := p.Match(peers, demands, caps, budget)
			if err != nil {
				return false
			}
			var totalDemand, received, uploaded float64
			for i := range demands {
				totalDemand += demands[i]
				received += a.PeerReceivedBits[i]
				uploaded += a.UploadedBits[i]
			}
			tol := eps * (1 + totalDemand)
			if math.Abs(received+a.ServerBits-totalDemand) > tol {
				return false
			}
			if math.Abs(uploaded-a.PeerBits()) > tol {
				return false
			}
			if budget >= 0 && a.PeerBits() > budget+tol {
				return false
			}
			// A peer can never upload more than its capacity or receive
			// more than its demand.
			for i := range demands {
				if a.UploadedBits[i] > caps[i]+tol || a.PeerReceivedBits[i] > demands[i]+tol {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestPairLocalisation(t *testing.T) {
	peers := []Peer{
		{Exchange: 0, PoP: 0},
		{Exchange: 0, PoP: 0},
		{Exchange: 1, PoP: 1},
	}
	ex, pop := pairLocalisation(peers)
	if math.Abs(ex-2.0/6) > eps {
		t.Errorf("same-exchange probability = %v, want 1/3", ex)
	}
	if math.Abs(pop-2.0/6) > eps {
		t.Errorf("same-pop probability = %v, want 1/3", pop)
	}
	if ex, pop := pairLocalisation(nil); ex != 0 || pop != 0 {
		t.Error("empty input should yield zero probabilities")
	}
}

package matching

import (
	"math/rand"
	"testing"
)

// matchWorkload builds one interval's matching inputs: n peers spread
// over a small exchange/PoP topology with varied demand and capacity,
// the shape both engines feed per activity interval.
func matchWorkload(n int, seed int64) (peers []Peer, demands, caps []float64) {
	rng := rand.New(rand.NewSource(seed))
	peers = make([]Peer, n)
	demands = make([]float64, n)
	caps = make([]float64, n)
	for i := range peers {
		exchange := rng.Intn(12)
		peers[i] = Peer{User: uint32(i), Exchange: exchange, PoP: exchange / 4}
		demands[i] = float64(1+rng.Intn(1000)) * 1e6
		caps[i] = float64(rng.Intn(800)) * 1e6
	}
	return peers, demands, caps
}

// allocationsEqual compares two allocations bit for bit.
func allocationsEqual(t *testing.T, label string, got *Allocation, want Allocation) {
	t.Helper()
	if got.ServerBits != want.ServerBits {
		t.Fatalf("%s: ServerBits = %v, want %v", label, got.ServerBits, want.ServerBits)
	}
	if got.LayerBits != want.LayerBits {
		t.Fatalf("%s: LayerBits = %v, want %v", label, got.LayerBits, want.LayerBits)
	}
	if len(got.UploadedBits) != len(want.UploadedBits) {
		t.Fatalf("%s: %d uploaded entries, want %d", label, len(got.UploadedBits), len(want.UploadedBits))
	}
	for i := range want.UploadedBits {
		if got.UploadedBits[i] != want.UploadedBits[i] {
			t.Fatalf("%s: UploadedBits[%d] = %v, want %v", label, i, got.UploadedBits[i], want.UploadedBits[i])
		}
		if got.PeerReceivedBits[i] != want.PeerReceivedBits[i] {
			t.Fatalf("%s: PeerReceivedBits[%d] = %v, want %v", label, i, got.PeerReceivedBits[i], want.PeerReceivedBits[i])
		}
	}
}

// TestMatchIntoReusesAllocation pins the MatchInto contract for both
// policies: recycling one Allocation across intervals of varying size —
// growing, shrinking, budget-capped — produces bit-for-bit the result a
// fresh Match call does every time.
func TestMatchIntoReusesAllocation(t *testing.T) {
	for _, policy := range []Policy{LocalityFirst{}, Random{}} {
		t.Run(policy.Name(), func(t *testing.T) {
			var reused Allocation
			sizes := []int{64, 7, 128, 2, 1, 31}
			for round, n := range sizes {
				peers, demands, caps := matchWorkload(n, int64(round+1))
				budget := -1.0
				if round%2 == 1 {
					var sumCaps float64
					for _, c := range caps {
						sumCaps += c
					}
					budget = sumCaps / 4 // force the trim path
				}
				want, err := policy.Match(peers, demands, caps, budget)
				if err != nil {
					t.Fatal(err)
				}
				if err := policy.MatchInto(&reused, peers, demands, caps, budget); err != nil {
					t.Fatal(err)
				}
				allocationsEqual(t, policy.Name(), &reused, want)
			}
		})
	}
}

// TestMatchIntoAllocs pins the recycled matching path at zero
// allocations at steady state, for both policies: once the Allocation's
// per-peer vectors and the pooled scratch have grown, an interval match
// must not touch the heap.
func TestMatchIntoAllocs(t *testing.T) {
	for _, policy := range []Policy{LocalityFirst{}, Random{}} {
		t.Run(policy.Name(), func(t *testing.T) {
			peers, demands, caps := matchWorkload(128, 1)
			var a Allocation
			if err := policy.MatchInto(&a, peers, demands, caps, -1); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := policy.MatchInto(&a, peers, demands, caps, -1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("MatchInto allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}

// BenchmarkMatchInto measures one interval's matching through the
// recycled-Allocation path, the hottest call in every engine.
func BenchmarkMatchInto(b *testing.B) {
	for _, policy := range []Policy{LocalityFirst{}, Random{}} {
		b.Run(policy.Name(), func(b *testing.B) {
			peers, demands, caps := matchWorkload(128, 1)
			var a Allocation
			if err := policy.MatchInto(&a, peers, demands, caps, -1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := policy.MatchInto(&a, peers, demands, caps, -1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(peers)), "peers/op")
		})
	}
}

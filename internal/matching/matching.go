// Package matching implements peer-matching policies for one swarm
// activity interval: given the set of concurrently active peers, their
// download demand and upload capacity, decide how many bits flow between
// peers and — crucially for the energy model — at which layer of the ISP
// metropolitan tree each peer-to-peer bit travels.
//
// Two policies are provided:
//
//   - LocalityFirst: the paper's managed-swarm policy. Demand is matched
//     against capacity as locally as possible: first within exchange
//     points, then across exchanges within a PoP, finally across PoPs
//     through the core. This mirrors a central swarm manager (AntFarm,
//     Akamai NetSession) matching each user with the closest peers.
//   - Random: an ablation baseline that matches peers uniformly at
//     random, pricing bits at the layer distribution implied by random
//     pairings. The difference between the two policies isolates how much
//     of the energy saving comes from *consuming local* rather than from
//     offloading alone.
//
// The paper's analytical cap on per-window peer traffic, (L−1)·q·Δτ
// (Eq. 2: one peer's worth of upload capacity is effectively spent
// fetching novel chunks from the server), is enforced through the budget
// argument. Trimming removes the least-local traffic first, preserving
// the locality preference under the cap.
package matching

import (
	"errors"

	"consumelocal/internal/energy"
)

// Peer is one active swarm member's matching endpoint.
type Peer struct {
	// User is the peer's user ID (for per-user accounting).
	User uint32
	// Exchange is the exchange point the peer attaches to.
	Exchange int
	// PoP is the point of presence aggregating the peer's exchange.
	PoP int
}

// Allocation is the outcome of matching one activity interval.
type Allocation struct {
	// LayerBits holds the peer-to-peer traffic per topology layer,
	// indexed by energy.Layer.Index().
	LayerBits [energy.NumLayers]float64
	// UploadedBits is each peer's contribution to the peer traffic,
	// parallel to the peers slice passed to Match.
	UploadedBits []float64
	// PeerReceivedBits is the share of each peer's demand served from
	// peers, parallel to the peers slice.
	PeerReceivedBits []float64
	// ServerBits is the demand remainder served by CDN servers.
	ServerBits float64
}

// PeerBits returns the total traffic served from peers across all layers.
func (a Allocation) PeerBits() float64 {
	var sum float64
	for _, b := range a.LayerBits {
		sum += b
	}
	return sum
}

// Policy matches demand to upload capacity within one activity interval.
//
// peers, demands and caps are parallel: demands[i] is the number of bits
// peer i must download during the interval, caps[i] the bits it can
// upload. budget caps the total peer-to-peer traffic (the paper's
// (L−1)·q·Δτ bound); a negative budget means unbounded.
type Policy interface {
	// Match computes an allocation. Implementations must conserve
	// traffic: sum(PeerReceivedBits) + ServerBits == sum(demands), and
	// sum(UploadedBits) == sum(LayerBits) == sum(PeerReceivedBits).
	Match(peers []Peer, demands, caps []float64, budget float64) (Allocation, error)
	// MatchInto is Match writing its result into a caller-owned
	// Allocation, reusing its per-peer vectors when they have capacity.
	// Matching runs once per activity interval — the hottest call in
	// every engine — so recycling one Allocation per engine (or per
	// worker) removes the last per-interval heap allocation from the
	// replay hot path. On error the Allocation's contents are
	// unspecified. The caller owns the result until its next MatchInto
	// call with the same Allocation; implementations must not retain it.
	MatchInto(a *Allocation, peers []Peer, demands, caps []float64, budget float64) error
	// Name identifies the policy in reports.
	Name() string
}

// errMismatchedInputs is returned when the parallel slices disagree.
var errMismatchedInputs = errors.New("matching: peers, demands and caps must have equal length")

// validate checks the common preconditions and returns the total demand.
func validate(peers []Peer, demands, caps []float64) (totalDemand float64, err error) {
	if len(peers) != len(demands) || len(peers) != len(caps) {
		return 0, errMismatchedInputs
	}
	for i := range demands {
		if demands[i] < 0 || caps[i] < 0 {
			return 0, errors.New("matching: demands and capacities must be non-negative")
		}
		totalDemand += demands[i]
	}
	return totalDemand, nil
}

// reset prepares a as the no-sharing allocation over n peers: zeroed
// layer and per-peer vectors, the whole demand on the server. The
// per-peer vectors are reused when they have capacity — the whole point
// of the MatchInto path — and otherwise grown as one shared backing
// allocation, so the legacy Match path still escapes a single slice per
// interval rather than two.
func (a *Allocation) reset(n int, totalDemand float64) {
	a.LayerBits = [energy.NumLayers]float64{}
	a.ServerBits = totalDemand
	if cap(a.UploadedBits) < n || cap(a.PeerReceivedBits) < n {
		buf := make([]float64, 2*n)
		a.UploadedBits = buf[:n:n]
		a.PeerReceivedBits = buf[n:]
		return
	}
	up := a.UploadedBits[:n]
	down := a.PeerReceivedBits[:n]
	for i := range up {
		up[i] = 0
		down[i] = 0
	}
	a.UploadedBits, a.PeerReceivedBits = up, down
}

// trimOrder is the order in which layers lose traffic when the budget
// binds: least local first.
var trimOrder = [energy.NumLayers]energy.Layer{
	energy.LayerCore, energy.LayerPoP, energy.LayerExchange,
}

// applyBudget scales an allocation down to the budget, removing
// least-local traffic first and shrinking the per-peer vectors
// proportionally to the overall reduction.
func applyBudget(a *Allocation, budget float64) {
	if budget < 0 {
		return
	}
	total := a.PeerBits()
	if total <= budget {
		return
	}
	excess := total - budget
	for _, layer := range trimOrder {
		idx := layer.Index()
		cut := a.LayerBits[idx]
		if cut > excess {
			cut = excess
		}
		a.LayerBits[idx] -= cut
		excess -= cut
		if excess <= 0 {
			break
		}
	}
	kept := a.PeerBits()
	scale := 0.0
	if total > 0 {
		scale = kept / total
	}
	for i := range a.UploadedBits {
		moved := a.PeerReceivedBits[i] * (1 - scale)
		a.UploadedBits[i] *= scale
		a.PeerReceivedBits[i] -= moved
		a.ServerBits += moved
	}
}

package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestScannerMatchesReadCSV(t *testing.T) {
	cfg := DefaultGeneratorConfig(0.0005)
	cfg.Days = 3
	original, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := original.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sc.Meta(), original.Meta(); got != want {
		t.Fatalf("meta mismatch: %+v vs %+v", got, want)
	}
	var i int
	for sc.Scan() {
		if i >= len(original.Sessions) {
			t.Fatalf("scanner yielded more than %d sessions", len(original.Sessions))
		}
		if sc.Session() != original.Sessions[i] {
			t.Fatalf("session %d differs: %+v vs %+v", i, sc.Session(), original.Sessions[i])
		}
		i++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if i != len(original.Sessions) {
		t.Fatalf("scanned %d sessions, want %d", i, len(original.Sessions))
	}
	if sc.Scanned() != int64(i) {
		t.Fatalf("Scanned() = %d, want %d", sc.Scanned(), i)
	}
}

func TestScannerNextEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := smallTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(smallTrace().Sessions) {
		t.Fatalf("Next yielded %d sessions, want %d", n, len(smallTrace().Sessions))
	}
	// EOF is sticky.
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestScannerRejectsOutOfOrder(t *testing.T) {
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=5 content=5 isps=2\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,100,60,1500\n" +
		"1,0,0,0,50,60,1500\n"
	sc, err := NewScanner(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("first session should scan")
	}
	if sc.Scan() {
		t.Fatal("out-of-order session should not scan")
	}
	if sc.Err() == nil {
		t.Fatal("expected out-of-order error")
	}
}

func TestScannerRejectsBadMeta(t *testing.T) {
	cases := []string{
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n",
		"#meta name=x epoch=2013-09-01T00:00:00Z horizon=0 users=1 content=1 isps=1\nuser,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n",
		"#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=0 content=1 isps=1\nuser,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n",
	}
	for i, input := range cases {
		if _, err := NewScanner(strings.NewReader(input)); err == nil {
			t.Errorf("case %d: expected meta error", i)
		}
	}
}

func TestScannerRejectsSessionOutOfRange(t *testing.T) {
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=1 content=1 isps=1\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"5,0,0,0,0,60,1500\n"
	sc, err := NewScanner(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatal("out-of-range user should not scan")
	}
	if sc.Err() == nil {
		t.Fatal("expected range error")
	}
}

func TestMetaDays(t *testing.T) {
	m := Meta{HorizonSec: 86400*3 + 1}
	if m.Days() != 4 {
		t.Fatalf("Days() = %d, want 4", m.Days())
	}
}

// Package trace defines the session-trace data model of the reproduction
// and a calibrated synthetic generator standing in for the proprietary BBC
// iPlayer dataset used by the paper (Section IV, Table I).
//
// A trace is a flat list of viewing sessions. Each session records who
// watched what, from when, for how long, at which bitrate, through which
// ISP, and where the user attaches to that ISP's metropolitan tree. These
// are exactly the fields the paper's simulator consumes; no
// personally-identifying detail beyond an opaque user ID is modelled.
//
// The generator reproduces the statistical structure the paper's analysis
// depends on:
//
//   - Zipf-distributed content popularity (a few very popular shows, a
//     long tail of niche items — Fig. 3 left).
//   - Poisson session arrivals per content item, modulated by a diurnal
//     profile peaking in TV prime time.
//   - Log-normal session durations with a catch-up-TV mean of ~30 minutes.
//   - A device/bitrate mix with 1.5 Mb/s as the most common bitrate
//     (Section IV.B.1).
//   - ISP market shares for the top five ISPs, as in Fig. 2/4.
//   - Users sharing public IP addresses (Table I reports ~2.2 users per
//     IP), modelled by hashing users onto a smaller IP space.
package trace

import (
	"fmt"
	"time"
)

// BitrateClass buckets sessions by the bitrate they stream at. The paper
// splits swarms by average bitrate because a large-screen client cannot
// stream from a peer fetching a lower-quality representation.
type BitrateClass int32

const (
	// BitrateMobile is a low-bitrate mobile representation.
	BitrateMobile BitrateClass = 800
	// BitrateSD is the standard-definition representation; 1.5 Mb/s is the
	// most common bitrate in BBC iPlayer (Nencioni et al., WWW 2013).
	BitrateSD BitrateClass = 1500
	// BitrateHD is a high-definition representation for large screens.
	BitrateHD BitrateClass = 3000
)

// Kbps returns the class bitrate in kilobits per second.
func (b BitrateClass) Kbps() int32 { return int32(b) }

// BitsPerSecond returns the class bitrate in bits per second.
func (b BitrateClass) BitsPerSecond() float64 { return float64(b) * 1000 }

// String returns a short label for the class.
func (b BitrateClass) String() string {
	switch b {
	case BitrateMobile:
		return "mobile-800k"
	case BitrateSD:
		return "sd-1500k"
	case BitrateHD:
		return "hd-3000k"
	default:
		return fmt.Sprintf("custom-%dk", int32(b))
	}
}

// Session is one playback session from the trace.
type Session struct {
	// UserID identifies the viewer. IDs are dense starting at 0.
	UserID uint32 `json:"user"`
	// ContentID identifies the content item. IDs are dense starting at 0,
	// ordered by decreasing popularity (0 is the most popular item).
	ContentID uint32 `json:"content"`
	// ISP is the index of the viewer's Internet service provider.
	ISP uint8 `json:"isp"`
	// Exchange is the exchange point the viewer attaches to within the
	// ISP's metropolitan tree.
	Exchange uint16 `json:"exchange"`
	// StartSec is the session start, in seconds since the trace epoch.
	StartSec int64 `json:"start_sec"`
	// DurationSec is the playback duration in seconds (always positive).
	DurationSec int32 `json:"duration_sec"`
	// Bitrate is the streaming bitrate class.
	Bitrate BitrateClass `json:"bitrate_kbps"`
}

// EndSec returns the session end, in seconds since the trace epoch.
func (s Session) EndSec() int64 { return s.StartSec + int64(s.DurationSec) }

// Bytes returns the number of bytes streamed over the whole session.
func (s Session) Bytes() float64 {
	return s.Bitrate.BitsPerSecond() * float64(s.DurationSec) / 8
}

// Validate checks the session invariants the simulator relies on.
func (s Session) Validate() error {
	if s.DurationSec <= 0 {
		return fmt.Errorf("trace: session duration must be positive, got %d", s.DurationSec)
	}
	if s.StartSec < 0 {
		return fmt.Errorf("trace: session start must be non-negative, got %d", s.StartSec)
	}
	if s.Bitrate <= 0 {
		return fmt.Errorf("trace: bitrate must be positive, got %d", s.Bitrate)
	}
	return nil
}

// Trace is a complete dataset: an epoch, a time horizon and the sessions
// within it.
type Trace struct {
	// Name labels the trace in reports, e.g. "sep-2013".
	Name string `json:"name"`
	// Epoch anchors StartSec = 0 in wall-clock time.
	Epoch time.Time `json:"epoch"`
	// HorizonSec is the trace length in seconds; all sessions start within
	// [0, HorizonSec).
	HorizonSec int64 `json:"horizon_sec"`
	// NumUsers is the size of the user population (user IDs are below it).
	NumUsers int `json:"num_users"`
	// NumContent is the catalogue size (content IDs are below it).
	NumContent int `json:"num_content"`
	// NumISPs is the number of ISPs (ISP indices are below it).
	NumISPs int `json:"num_isps"`
	// Sessions is the session list, sorted by StartSec.
	Sessions []Session `json:"sessions"`
}

// Days returns the horizon length in whole days (rounded up).
func (t *Trace) Days() int {
	const daySec = 24 * 60 * 60
	return int((t.HorizonSec + daySec - 1) / daySec)
}

// Validate checks the trace-wide invariants.
func (t *Trace) Validate() error {
	if t.HorizonSec <= 0 {
		return fmt.Errorf("trace: horizon must be positive, got %d", t.HorizonSec)
	}
	if t.NumUsers <= 0 || t.NumContent <= 0 || t.NumISPs <= 0 {
		return fmt.Errorf("trace: population sizes must be positive (users=%d content=%d isps=%d)",
			t.NumUsers, t.NumContent, t.NumISPs)
	}
	prev := int64(-1)
	for i, s := range t.Sessions {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("trace: session %d: %w", i, err)
		}
		if int(s.UserID) >= t.NumUsers {
			return fmt.Errorf("trace: session %d: user %d out of range", i, s.UserID)
		}
		if int(s.ContentID) >= t.NumContent {
			return fmt.Errorf("trace: session %d: content %d out of range", i, s.ContentID)
		}
		if int(s.ISP) >= t.NumISPs {
			return fmt.Errorf("trace: session %d: ISP %d out of range", i, s.ISP)
		}
		if s.StartSec >= t.HorizonSec {
			return fmt.Errorf("trace: session %d starts at %d beyond horizon %d", i, s.StartSec, t.HorizonSec)
		}
		if s.StartSec < prev {
			return fmt.Errorf("trace: session %d out of start order", i)
		}
		prev = s.StartSec
	}
	return nil
}

// TotalBytes returns the useful traffic Tu of the whole trace: the sum of
// bytes watched across all sessions.
func (t *Trace) TotalBytes() float64 {
	var sum float64
	for _, s := range t.Sessions {
		sum += s.Bytes()
	}
	return sum
}

// Summary describes a trace with the fields of the paper's Table I.
type Summary struct {
	// Name is the trace label.
	Name string
	// Users is the number of distinct users that appear in sessions.
	Users int
	// IPAddresses is the number of distinct public IP addresses the users
	// appear behind.
	IPAddresses int
	// Sessions is the total session count.
	Sessions int
	// TotalBytes is the useful traffic of the trace.
	TotalBytes float64
	// MeanSessionSec is the mean playback duration.
	MeanSessionSec float64
}

// UsersPerIP is the mean number of users sharing one public IP address.
func (s Summary) UsersPerIP() float64 {
	if s.IPAddresses == 0 {
		return 0
	}
	return float64(s.Users) / float64(s.IPAddresses)
}

// Summarize computes the Table I row for the trace. Distinct IP addresses
// are derived from user IDs through the same household-sharing model the
// generator uses (see IPOfUser).
func (t *Trace) Summarize() Summary {
	users := make(map[uint32]struct{}, t.NumUsers)
	ips := make(map[uint32]struct{}, t.NumUsers/2+1)
	var totalDuration float64
	for _, s := range t.Sessions {
		users[s.UserID] = struct{}{}
		ips[IPOfUser(s.UserID, t.NumUsers)] = struct{}{}
		totalDuration += float64(s.DurationSec)
	}
	mean := 0.0
	if len(t.Sessions) > 0 {
		mean = totalDuration / float64(len(t.Sessions))
	}
	return Summary{
		Name:           t.Name,
		Users:          len(users),
		IPAddresses:    len(ips),
		Sessions:       len(t.Sessions),
		TotalBytes:     t.TotalBytes(),
		MeanSessionSec: mean,
	}
}

// IPOfUser maps a user onto a shared public IP address. Table I reports
// roughly 2.2 users per IP address (3.3M users behind 1.5M IPs); the model
// hashes users into an IP space of ~45% the population size.
func IPOfUser(user uint32, population int) uint32 {
	ipSpace := uint32(float64(population) * 0.45)
	if ipSpace == 0 {
		ipSpace = 1
	}
	// SplitMix32-style finaliser for a well-spread stateless hash.
	z := user + 0x9e3779b9
	z ^= z >> 16
	z *= 0x85ebca6b
	z ^= z >> 13
	z *= 0xc2b2ae35
	z ^= z >> 16
	return z % ipSpace
}

// ViewCounts returns the number of sessions per content item, indexed by
// content ID.
func (t *Trace) ViewCounts() []int {
	counts := make([]int, t.NumContent)
	for _, s := range t.Sessions {
		counts[s.ContentID]++
	}
	return counts
}

// SessionsPerISP returns the number of sessions per ISP.
func (t *Trace) SessionsPerISP() []int {
	counts := make([]int, t.NumISPs)
	for _, s := range t.Sessions {
		counts[s.ISP]++
	}
	return counts
}

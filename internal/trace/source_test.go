package trace

import (
	"io"
	"math"
	"testing"
)

func testGenCfg() GeneratorConfig {
	cfg := DefaultGeneratorConfig(0.001)
	cfg.Days = 5
	return cfg
}

// drainGenerator consumes the full stream, checking per-session
// invariants along the way.
func drainGenerator(t *testing.T, g *Generator) []Session {
	t.Helper()
	meta := g.Meta()
	if err := meta.Validate(); err != nil {
		t.Fatal(err)
	}
	var (
		sessions  []Session
		prevStart int64 = -1
	)
	for {
		s, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := meta.ValidateSession(int64(len(sessions)), s); err != nil {
			t.Fatal(err)
		}
		if s.StartSec < prevStart {
			t.Fatalf("session %d out of start order: %d after %d", len(sessions), s.StartSec, prevStart)
		}
		prevStart = s.StartSec
		sessions = append(sessions, s)
	}
	return sessions
}

func TestGeneratorSourceStreamsValidOrderedSessions(t *testing.T) {
	cfg := testGenCfg()
	g, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sessions := drainGenerator(t, g)

	// The multinomial split partitions TargetSessions exactly; only
	// horizon-clipped sessions are dropped, as in Generate.
	if len(sessions) > cfg.TargetSessions {
		t.Fatalf("generated %d sessions, target %d", len(sessions), cfg.TargetSessions)
	}
	if len(sessions) < cfg.TargetSessions*95/100 {
		t.Fatalf("generated only %d of %d target sessions", len(sessions), cfg.TargetSessions)
	}
	if g.Emitted() != int64(len(sessions)) {
		t.Fatalf("Emitted() = %d, want %d", g.Emitted(), len(sessions))
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("Next after drain = %v, want io.EOF", err)
	}
}

func TestGeneratorSourceDeterministic(t *testing.T) {
	cfg := testGenCfg()
	g1, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := drainGenerator(t, g1)
	b := drainGenerator(t, g2)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestGeneratorSourceMatchesGenerateStatistics checks the stream follows
// the same laws as the materialised generator: identical metadata, a
// prime-time-heavy diurnal shape, and the popularity skew that puts item
// 0 far ahead of the catalogue tail.
func TestGeneratorSourceMatchesGenerateStatistics(t *testing.T) {
	cfg := testGenCfg()
	g, err := GeneratorSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Meta() != tr.Meta() {
		t.Fatalf("metadata differs: %+v vs %+v", g.Meta(), tr.Meta())
	}
	sessions := drainGenerator(t, g)

	// Session volume within a few percent of the materialised trace.
	ratio := float64(len(sessions)) / float64(len(tr.Sessions))
	if math.Abs(ratio-1) > 0.05 {
		t.Fatalf("streamed %d sessions vs %d materialised (ratio %.3f)", len(sessions), len(tr.Sessions), ratio)
	}

	// Evening prime time (18-23h) must dominate early morning (02-07h),
	// as the shared diurnal profile dictates.
	var evening, morning int
	for _, s := range sessions {
		switch h := s.StartSec / 3600 % 24; {
		case h >= 18:
			evening++
		case h >= 2 && h < 8:
			morning++
		}
	}
	if evening < 3*morning {
		t.Errorf("diurnal shape off: %d evening vs %d morning sessions", evening, morning)
	}

	// Zipf popularity: the most popular item beats the median item by a
	// wide margin.
	counts := make(map[uint32]int)
	for _, s := range sessions {
		counts[s.ContentID]++
	}
	if counts[0] < len(sessions)/20 {
		t.Errorf("item 0 drew only %d of %d sessions; expected a strong Zipf head", counts[0], len(sessions))
	}
}

func TestGeneratorSourceRejectsInvalidConfig(t *testing.T) {
	cfg := testGenCfg()
	cfg.Days = 0
	if _, err := GeneratorSource(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBinomialBounds(t *testing.T) {
	g, err := GeneratorSource(testGenCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := g.rng
	for _, n := range []int{0, 1, 50, 1000, 100000} {
		for _, p := range []float64{-0.1, 0, 0.01, 0.5, 0.99, 1, 1.5} {
			k := binomial(rng, n, p)
			if k < 0 || k > n {
				t.Fatalf("binomial(%d, %v) = %d out of range", n, p, k)
			}
		}
	}
	// Mean sanity on the approximated branch.
	const n, p, rounds = 10000, 0.3, 200
	sum := 0
	for i := 0; i < rounds; i++ {
		sum += binomial(rng, n, p)
	}
	mean := float64(sum) / rounds
	if math.Abs(mean-n*p) > 0.02*n*p {
		t.Fatalf("binomial mean = %.1f, want ~%v", mean, n*p)
	}
}

func TestGeneratorSourceRejectsZeroDiurnalProfile(t *testing.T) {
	cfg := testGenCfg()
	cfg.DiurnalProfile = [24]float64{}
	if _, err := GeneratorSource(cfg); err == nil {
		t.Fatal("GeneratorSource accepted a diurnal profile with no mass; Generate rejects it")
	}
}

func TestGeneratorSourceRejectsLowUserActivityExponent(t *testing.T) {
	cfg := testGenCfg()
	cfg.UserActivityExponent = 1.0 // rand.NewZipf would return nil
	if _, err := GeneratorSource(cfg); err == nil {
		t.Fatal("GeneratorSource accepted a user activity exponent <= 1")
	}
}

package trace

import (
	"fmt"
	"io"
	"time"
)

// Meta is the trace-level metadata carried by the CSV interchange
// format's leading "#meta" line: everything the simulator needs to know
// about a trace besides the sessions themselves. It is what a streaming
// consumer (trace.Scanner, internal/engine) has in hand before — and
// while — sessions flow past it.
type Meta struct {
	// Name labels the trace in reports.
	Name string `json:"name"`
	// Epoch anchors StartSec = 0 in wall-clock time.
	Epoch time.Time `json:"epoch"`
	// HorizonSec is the trace length in seconds.
	HorizonSec int64 `json:"horizon_sec"`
	// NumUsers is the user population size.
	NumUsers int `json:"num_users"`
	// NumContent is the catalogue size.
	NumContent int `json:"num_content"`
	// NumISPs is the number of ISPs.
	NumISPs int `json:"num_isps"`
}

// Validate checks the metadata invariants, mirroring the meta-level part
// of Trace.Validate.
func (m Meta) Validate() error {
	if m.HorizonSec <= 0 {
		return fmt.Errorf("trace: horizon must be positive, got %d", m.HorizonSec)
	}
	if m.NumUsers <= 0 || m.NumContent <= 0 || m.NumISPs <= 0 {
		return fmt.Errorf("trace: population sizes must be positive (users=%d content=%d isps=%d)",
			m.NumUsers, m.NumContent, m.NumISPs)
	}
	return nil
}

// Days returns the horizon length in whole days (rounded up).
func (m Meta) Days() int {
	const daySec = 24 * 60 * 60
	return int((m.HorizonSec + daySec - 1) / daySec)
}

// ValidateSession checks one session against the metadata, mirroring the
// per-session part of Trace.Validate. i is the session's ordinal for
// error messages.
func (m Meta) ValidateSession(i int64, s Session) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("trace: session %d: %w", i, err)
	}
	if int(s.UserID) >= m.NumUsers {
		return fmt.Errorf("trace: session %d: user %d out of range", i, s.UserID)
	}
	if int(s.ContentID) >= m.NumContent {
		return fmt.Errorf("trace: session %d: content %d out of range", i, s.ContentID)
	}
	if int(s.ISP) >= m.NumISPs {
		return fmt.Errorf("trace: session %d: ISP %d out of range", i, s.ISP)
	}
	if s.StartSec >= m.HorizonSec {
		return fmt.Errorf("trace: session %d starts at %d beyond horizon %d", i, s.StartSec, m.HorizonSec)
	}
	return nil
}

// Meta returns the trace's metadata view.
func (t *Trace) Meta() Meta {
	return Meta{
		Name:       t.Name,
		Epoch:      t.Epoch,
		HorizonSec: t.HorizonSec,
		NumUsers:   t.NumUsers,
		NumContent: t.NumContent,
		NumISPs:    t.NumISPs,
	}
}

// Scanner iterates a CSV trace one session at a time without ever
// materialising the full session list: the out-of-core entry point the
// streaming engine replays month-scale traces through. The metadata line
// and header are parsed eagerly by NewScanner; sessions are parsed and
// validated lazily as Scan advances, including the start-order invariant
// Trace.Validate enforces on whole traces.
//
// Scanning runs through the fast CSV lane (see fastcsv.go): unquoted
// records — the only kind WriteCSV emits — are split and parsed from
// one reusable byte buffer with zero allocations per session, pinned by
// an allocation regression test. Quoted records fall back to
// encoding/csv semantics.
type Scanner struct {
	meta      Meta
	rr        *recordReader
	cur       Session
	err       error
	scanned   int64
	prevStart int64
}

// NewScanner reads the "#meta" line and the CSV header from r and
// returns a scanner positioned before the first session.
func NewScanner(r io.Reader) (*Scanner, error) {
	rr := newRecordReader(r)
	metaLine, err := rr.ls.next()
	if err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	var meta Meta
	if err := parseMeta(string(metaLine), &meta); err != nil {
		return nil, err
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}

	header, err := rr.next()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != numFields {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), numFields)
	}
	return &Scanner{meta: meta, rr: rr, prevStart: -1}, nil
}

// Meta returns the trace metadata parsed from the leading comment line.
func (sc *Scanner) Meta() Meta { return sc.meta }

// Scan advances to the next session, returning false at end of stream or
// on error (distinguish with Err).
//
//consumelocal:hotpath
func (sc *Scanner) Scan() bool {
	if sc.err != nil {
		return false
	}
	fields, err := sc.rr.next()
	if err == io.EOF {
		return false
	}
	if err != nil {
		//consumelocal:ignore hotalloc cold error exit: formats once on the read failure that ends the scan
		sc.err = fmt.Errorf("trace: read session: %w", err)
		return false
	}
	s, err := parseSessionFields(fields)
	if err != nil {
		sc.err = err
		return false
	}
	if err := sc.meta.ValidateSession(sc.scanned, s); err != nil {
		sc.err = err
		return false
	}
	if s.StartSec < sc.prevStart {
		//consumelocal:ignore hotalloc cold error exit: formats once on the ordering violation that ends the scan
		sc.err = fmt.Errorf("trace: session %d out of start order", sc.scanned)
		return false
	}
	sc.prevStart = s.StartSec
	sc.cur = s
	sc.scanned++
	return true
}

// Session returns the session Scan last advanced to.
func (sc *Scanner) Session() Session { return sc.cur }

// Err returns the first error encountered, nil after a clean end of
// stream.
func (sc *Scanner) Err() error { return sc.err }

// Scanned returns the number of sessions successfully scanned so far.
func (sc *Scanner) Scanned() int64 { return sc.scanned }

// Next is the iterator form of Scan/Session: it returns the next session
// or io.EOF at a clean end of stream. It makes *Scanner satisfy the
// streaming engine's Source interface.
func (sc *Scanner) Next() (Session, error) {
	if sc.Scan() {
		return sc.cur, nil
	}
	if sc.err != nil {
		return Session{}, sc.err
	}
	return Session{}, io.EOF
}

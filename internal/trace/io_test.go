package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	original := smallTrace()
	var buf bytes.Buffer
	if err := original.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, original, restored)
}

func TestJSONRoundTrip(t *testing.T) {
	original := smallTrace()
	var buf bytes.Buffer
	if err := original.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, original, restored)
}

func TestCSVRoundTripGenerated(t *testing.T) {
	cfg := DefaultGeneratorConfig(0.0005)
	cfg.Days = 3
	original, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := original.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, original, restored)
}

func assertTracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("Name: %q vs %q", a.Name, b.Name)
	}
	if !a.Epoch.Equal(b.Epoch) {
		t.Errorf("Epoch: %v vs %v", a.Epoch, b.Epoch)
	}
	if a.HorizonSec != b.HorizonSec {
		t.Errorf("Horizon: %d vs %d", a.HorizonSec, b.HorizonSec)
	}
	if a.NumUsers != b.NumUsers || a.NumContent != b.NumContent || a.NumISPs != b.NumISPs {
		t.Errorf("population mismatch: %d/%d/%d vs %d/%d/%d",
			a.NumUsers, a.NumContent, a.NumISPs, b.NumUsers, b.NumContent, b.NumISPs)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs: %+v vs %+v", i, a.Sessions[i], b.Sessions[i])
		}
	}
}

func TestReadSessionsCSV(t *testing.T) {
	const batch = "user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"1,0,0,10,100,600,1500\n" +
		"2,1,1,20,200,300,3000\n"
	want := []Session{
		{UserID: 1, ContentID: 0, ISP: 0, Exchange: 10, StartSec: 100, DurationSec: 600, Bitrate: BitrateSD},
		{UserID: 2, ContentID: 1, ISP: 1, Exchange: 20, StartSec: 200, DurationSec: 300, Bitrate: BitrateHD},
	}
	got, err := ReadSessionsCSV(strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d sessions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("session %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// The header row is optional: bare rows parse identically.
	bare, err := ReadSessionsCSV(strings.NewReader("1,0,0,10,100,600,1500\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bare) != 1 || bare[0] != want[0] {
		t.Fatalf("headerless batch = %+v", bare)
	}

	if _, err := ReadSessionsCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := ReadSessionsCSV(strings.NewReader("x,0,0,10,100,600,1500\n")); err == nil {
		t.Fatal("malformed user column accepted")
	}
}

func TestReadCSVRejectsMissingMeta(t *testing.T) {
	input := "user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Error("expected error for missing #meta line")
	}
}

func TestReadCSVRejectsMalformedMeta(t *testing.T) {
	input := "#meta name=x epoch=not-a-time horizon=100 users=1 content=1 isps=1\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Error("expected error for malformed epoch")
	}
	input = "#meta horizon\n" + "a,b,c,d,e,f,g\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Error("expected error for field without '='")
	}
}

func TestReadCSVRejectsBadColumns(t *testing.T) {
	head := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=5 content=5 isps=2\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n"

	tests := []struct {
		name string
		row  string
	}{
		{"non-numeric user", "x,0,0,0,0,60,1500\n"},
		{"non-numeric content", "0,x,0,0,0,60,1500\n"},
		{"non-numeric isp", "0,0,x,0,0,60,1500\n"},
		{"non-numeric exchange", "0,0,0,x,0,60,1500\n"},
		{"non-numeric start", "0,0,0,0,x,60,1500\n"},
		{"non-numeric duration", "0,0,0,0,0,x,1500\n"},
		{"non-numeric bitrate", "0,0,0,0,0,60,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(head + tt.row)); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestReadCSVValidatesSemantics(t *testing.T) {
	// Parses fine but the user ID is outside the declared population.
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=1 content=1 isps=1\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"5,0,0,0,0,60,1500\n"
	if _, err := ReadCSV(strings.NewReader(input)); err == nil {
		t.Error("expected semantic validation error")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("expected error for truncated JSON")
	}
	if _, err := ReadJSON(strings.NewReader(`{"horizon_sec":0}`)); err == nil {
		t.Error("expected semantic validation error")
	}
}

func TestReadCSVIgnoresUnknownMetaKeys(t *testing.T) {
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=1 content=1 isps=1 future=42\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,0,60,1500\n"
	tr, err := ReadCSV(strings.NewReader(input))
	if err != nil {
		t.Fatalf("unknown meta keys should be ignored: %v", err)
	}
	if len(tr.Sessions) != 1 {
		t.Errorf("sessions = %d, want 1", len(tr.Sessions))
	}
}

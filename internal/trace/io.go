package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// csvHeader is the column layout of the CSV interchange format. It mirrors
// the per-session fields the paper's dataset exposes.
var csvHeader = []string{
	"user", "content", "isp", "exchange", "start_sec", "duration_sec", "bitrate_kbps",
}

// WriteCSV serialises the trace sessions as CSV with a header row. Trace
// metadata (horizon, population sizes) is carried in a leading comment
// line so that ReadCSV can reconstruct the full Trace.
func (t *Trace) WriteCSV(w io.Writer) error {
	meta := fmt.Sprintf("#meta name=%s epoch=%s horizon=%d users=%d content=%d isps=%d\n",
		t.Name, t.Epoch.Format(time.RFC3339), t.HorizonSec, t.NumUsers, t.NumContent, t.NumISPs)
	if _, err := io.WriteString(w, meta); err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	record := make([]string, len(csvHeader))
	for _, s := range t.Sessions {
		record[0] = strconv.FormatUint(uint64(s.UserID), 10)
		record[1] = strconv.FormatUint(uint64(s.ContentID), 10)
		record[2] = strconv.Itoa(int(s.ISP))
		record[3] = strconv.Itoa(int(s.Exchange))
		record[4] = strconv.FormatInt(s.StartSec, 10)
		record[5] = strconv.Itoa(int(s.DurationSec))
		record[6] = strconv.Itoa(int(s.Bitrate))
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("trace: write session: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// AppendSessionCSV appends one session as a bare interchange CSV row
// (the csvHeader columns, newline-terminated) to dst — the inverse of
// ReadSessionsCSV for a single row. No field needs quoting: every
// column is numeric.
func AppendSessionCSV(dst []byte, s Session) []byte {
	dst = strconv.AppendUint(dst, uint64(s.UserID), 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, uint64(s.ContentID), 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, uint64(s.ISP), 10)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, uint64(s.Exchange), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, s.StartSec, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(s.DurationSec), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(s.Bitrate), 10)
	return append(dst, '\n')
}

// ReadCSV parses a trace previously produced by WriteCSV. It is the
// materialising counterpart of NewScanner: the whole session list is
// loaded into memory and validated as a Trace.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	meta := sc.Meta()
	t := &Trace{
		Name:       meta.Name,
		Epoch:      meta.Epoch,
		HorizonSec: meta.HorizonSec,
		NumUsers:   meta.NumUsers,
		NumContent: meta.NumContent,
		NumISPs:    meta.NumISPs,
	}
	for sc.Scan() {
		t.Sessions = append(t.Sessions, sc.Session())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// No trailing t.Validate(): the scanner has already enforced every
	// invariant it checks — metadata, per-session ranges, start order —
	// row by row, and repeating it would double the cost on month-scale
	// traces.
	return t, nil
}

// parseMeta decodes the "#meta k=v ..." comment line.
func parseMeta(line string, t *Meta) error {
	const prefix = "#meta "
	if !strings.HasPrefix(line, prefix) {
		return fmt.Errorf("trace: missing #meta line, got %q", truncate(line, 40))
	}
	fields := strings.Fields(line[len(prefix):])
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			return fmt.Errorf("trace: malformed meta field %q", f)
		}
		key, value := f[:eq], f[eq+1:]
		var err error
		switch key {
		case "name":
			t.Name = value
		case "epoch":
			t.Epoch, err = time.Parse(time.RFC3339, value)
		case "horizon":
			t.HorizonSec, err = strconv.ParseInt(value, 10, 64)
		case "users":
			t.NumUsers, err = strconv.Atoi(value)
		case "content":
			t.NumContent, err = strconv.Atoi(value)
		case "isps":
			t.NumISPs, err = strconv.Atoi(value)
		default:
			// Unknown keys are ignored for forward compatibility.
		}
		if err != nil {
			return fmt.Errorf("trace: meta field %q: %w", key, err)
		}
	}
	return nil
}

// ReadSessionsCSV parses a bare batch of session rows — the CSV
// interchange columns without the leading #meta line, optionally
// preceded by the header row — as pushed to the live ingest endpoint in
// chunks. Sessions are parsed syntactically but not validated against
// any metadata: a live consumer (the ingest queue) owns that check,
// since only it knows the stream the batch lands in. Parsing runs
// through the same fast CSV lane as the Scanner.
func ReadSessionsCSV(r io.Reader) ([]Session, error) {
	rr := newRecordReader(r)
	var out []Session
	first := true
	for {
		fields, err := rr.next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read session batch: %w", err)
		}
		if first {
			first = false
			if len(fields) > 0 && string(fields[0]) == csvHeader[0] {
				continue
			}
		}
		s, err := parseSessionFields(fields)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// WriteJSON serialises the whole trace as one JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses a trace produced by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// truncate shortens s for error messages.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV reader and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := smallTrace().WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("#meta name=x\n")
	f.Add("#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=1 content=1 isps=1\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,0,60,1500\n")
	f.Add("#meta horizon=-1\nuser,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n")
	f.Add("#meta users=99999999999999999999\n")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		// Accepted traces must be valid and round-trippable.
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again.Sessions) != len(tr.Sessions) {
			t.Fatalf("round trip changed session count: %d vs %d",
				len(again.Sessions), len(tr.Sessions))
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON reader.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := smallTrace().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("{}")
	f.Add("{\"horizon_sec\": -1}")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", err)
		}
	})
}

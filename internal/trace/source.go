package trace

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Generator streams a synthetic workload session by session, in start
// order, without ever materialising the full trace: the live counterpart
// of Generate, and the simplest of the "live trace sources" the
// streaming engine is built to consume. It satisfies the engine's Source
// interface (Meta and Next) structurally.
//
// Where Generate draws every session independently and sorts the whole
// list afterwards, the Generator walks the horizon hour by hour: the
// per-hour session counts follow the same day-weight × diurnal-profile
// law (a sequential multinomial split of TargetSessions across hour
// buckets), and within each hour sessions are drawn from the identical
// per-session distributions and sorted locally. Memory is bounded by the
// per-user attribute tables plus one hour of sessions — for the paper's
// full-scale workload that is megabytes instead of the gigabytes the
// materialised session list costs.
//
// The stream is deterministic per seed, but it is a different (equally
// distributed) realisation than Generate with the same configuration:
// the two consume randomness in different orders.
type Generator struct {
	cfg  GeneratorConfig
	meta Meta
	rng  *rand.Rand

	contentZipf *rand.Zipf
	userZipf    *rand.Zipf

	users userAttributes

	// hourW holds the weight of every hour bucket of the horizon;
	// remaining/remW drive the sequential multinomial split.
	hourW     []float64
	bucket    int
	remaining int
	remW      float64

	pending []Session
	pos     int
	emitted int64
}

// GeneratorSource validates cfg and returns a Generator streaming the
// synthetic workload it describes.
func GeneratorSource(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg: cfg,
		meta: Meta{
			Name:       cfg.Name,
			Epoch:      cfg.Epoch,
			HorizonSec: int64(cfg.Days) * 24 * 3600,
			NumUsers:   cfg.NumUsers,
			NumContent: cfg.NumContent,
			NumISPs:    len(cfg.ISPShares),
		},
		rng:         rng,
		contentZipf: rand.NewZipf(rng, cfg.ZipfExponent, cfg.ZipfOffset, uint64(cfg.NumContent-1)),
		userZipf:    rand.NewZipf(rng, cfg.UserActivityExponent, 20, uint64(cfg.NumUsers-1)),
		remaining:   cfg.TargetSessions,
	}
	g.users = buildUserAttributes(cfg, rng)

	// Per-hour bucket weights: day weight (weekend uplift) × diurnal
	// profile, the same joint law Generate samples per session.
	g.hourW = make([]float64, cfg.Days*24)
	for d := 0; d < cfg.Days; d++ {
		dw := 1.0
		if cfg.WeekendMultiplier > 0 && isWeekend(cfg.Epoch, d) {
			dw = cfg.WeekendMultiplier
		}
		for h := 0; h < 24; h++ {
			hw := cfg.DiurnalProfile[h]
			if hw < 0 {
				hw = 0
			}
			w := dw * hw
			g.hourW[d*24+h] = w
			g.remW += w
		}
	}
	if g.remW <= 0 {
		// Mirrors Generate: without mass the multinomial split would dump
		// every session into the final hour instead of erroring.
		return nil, errors.New("trace: diurnal profile has no mass")
	}
	return g, nil
}

// Meta returns the trace-level metadata of the stream.
func (g *Generator) Meta() Meta { return g.meta }

// Emitted returns the number of sessions produced so far.
func (g *Generator) Emitted() int64 { return g.emitted }

// Next returns the next session in start order, or io.EOF once the
// horizon is exhausted.
func (g *Generator) Next() (Session, error) {
	for g.pos >= len(g.pending) {
		if g.bucket >= len(g.hourW) || g.remaining <= 0 {
			return Session{}, io.EOF
		}
		g.fillBucket()
	}
	s := g.pending[g.pos]
	g.pos++
	g.emitted++
	return s, nil
}

// fillBucket draws the next hour's share of the remaining sessions and
// materialises just that hour, sorted by (start, user).
func (g *Generator) fillBucket() {
	w := g.hourW[g.bucket]
	n := g.remaining
	if g.bucket < len(g.hourW)-1 {
		p := 0.0
		if g.remW > 0 {
			p = w / g.remW
		}
		n = binomial(g.rng, g.remaining, p)
	}
	g.remaining -= n
	g.remW -= w
	day := g.bucket / 24
	hour := g.bucket % 24
	g.bucket++

	g.pending = g.pending[:0]
	g.pos = 0
	for i := 0; i < n; i++ {
		user := uint32(g.userZipf.Uint64())
		content := uint32(g.contentZipf.Uint64())
		start := int64(day)*24*3600 + int64(hour)*3600 + int64(g.rng.Intn(3600))

		s, ok := drawSession(g.rng, g.cfg, g.users, user, content, start, g.meta.HorizonSec)
		if !ok {
			continue
		}
		g.pending = append(g.pending, s)
	}
	sort.Slice(g.pending, func(i, j int) bool {
		if g.pending[i].StartSec != g.pending[j].StartSec {
			return g.pending[i].StartSec < g.pending[j].StartSec
		}
		return g.pending[i].UserID < g.pending[j].UserID
	})
}

// binomial draws from Binomial(n, p): exactly for small n, by clamped
// normal approximation for large n — plenty for partitioning a synthetic
// workload across thousands of hour buckets, and deterministic per rng
// state either way.
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 128 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

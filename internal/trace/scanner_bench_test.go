package trace

import (
	"bytes"
	"testing"
)

// benchTraceCSV materialises a moderately sized trace in the CSV
// interchange format once, shared by the scanner benchmarks and the
// allocation guard.
func benchTraceCSV(tb testing.TB) []byte {
	tb.Helper()
	cfg := DefaultGeneratorConfig(0.002)
	cfg.Days = 2
	tr, err := Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		tb.Fatal(err)
	}
	if len(tr.Sessions) < 1000 {
		tb.Fatalf("bench trace too small: %d sessions", len(tr.Sessions))
	}
	return buf.Bytes()
}

// TestScannerScanAllocs pins the fast CSV lane at zero allocations per
// scanned session: once the scanner exists, stepping through unquoted
// records must not touch the heap.
func TestScannerScanAllocs(t *testing.T) {
	data := benchTraceCSV(t)
	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the first few records so the line buffer has settled.
	for i := 0; i < 16; i++ {
		if !sc.Scan() {
			t.Fatal("bench trace exhausted during warm-up")
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if !sc.Scan() {
			t.Fatal("bench trace exhausted mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("Scanner.Scan allocated %.2f times per session, want 0", allocs)
	}
	for sc.Scan() {
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
}

// BenchmarkScannerScan measures the fast CSV lane end to end: one full
// pass over the interchange format, reporting per-session cost.
func BenchmarkScannerScan(b *testing.B) {
	data := benchTraceCSV(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var sessions int64
	for i := 0; i < b.N; i++ {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for sc.Scan() {
			sessions++
		}
		if sc.Err() != nil {
			b.Fatal(sc.Err())
		}
	}
	b.ReportMetric(float64(sessions)/float64(b.N), "sessions/op")
}

package trace

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
)

// This file is the fast CSV lane: a byte-slice record reader with
// inlined unsigned-integer parsing for the unquoted common case — the
// only case WriteCSV ever produces — that scans sessions with zero heap
// allocations. Records containing a quote fall back to encoding/csv
// semantics (including quoted fields spanning lines), so the lane
// accepts the same inputs the previous csv.Reader-based scanner did.

// numFields is the CSV interchange column count.
const numFields = 7

// lineScanner iterates the lines of an io.Reader through one reusable
// buffer. Returned lines alias the buffer and are valid only until the
// next call.
type lineScanner struct {
	r    io.Reader
	buf  []byte
	pos  int   // start of unconsumed bytes
	end  int   // end of buffered bytes
	rerr error // deferred read error (io.EOF after the last line)
}

const lineBufSize = 64 * 1024

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{r: r, buf: make([]byte, lineBufSize)}
}

// next returns the next line without its trailing newline (a trailing
// carriage return is stripped, matching encoding/csv's line handling).
// At end of input it returns io.EOF; a final line without a newline is
// returned first.
func (ls *lineScanner) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(ls.buf[ls.pos:ls.end], '\n'); i >= 0 {
			line := ls.buf[ls.pos : ls.pos+i]
			ls.pos += i + 1
			return trimCR(line), nil
		}
		if ls.rerr != nil {
			// Only a clean end of input salvages a final unterminated
			// line; a mid-line read failure must not surface the
			// truncated prefix as a parseable record.
			if ls.rerr == io.EOF && ls.pos < ls.end {
				line := ls.buf[ls.pos:ls.end]
				ls.pos = ls.end
				return trimCR(line), nil
			}
			return nil, ls.rerr
		}
		ls.fill()
	}
}

// fill reads more input, compacting or growing the buffer as needed.
func (ls *lineScanner) fill() {
	if ls.pos > 0 {
		copy(ls.buf, ls.buf[ls.pos:ls.end])
		ls.end -= ls.pos
		ls.pos = 0
	}
	if ls.end == len(ls.buf) {
		// A line longer than the buffer: grow it.
		grown := make([]byte, 2*len(ls.buf))
		copy(grown, ls.buf[:ls.end])
		ls.buf = grown
	}
	n, err := ls.r.Read(ls.buf[ls.end:])
	ls.end += n
	if err != nil {
		ls.rerr = err
	}
}

func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// recordReader yields CSV records as field byte slices. Unquoted lines —
// the interchange format's only shape — are split in place with no
// allocation; lines containing a quote take the encoding/csv fallback.
type recordReader struct {
	ls     *lineScanner
	fields [numFields + 1][]byte
	rec    []byte // quote-fallback record accumulation buffer
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{ls: newLineScanner(r)}
}

// next returns the next record's fields, valid until the following
// call, or io.EOF at a clean end of stream. Like encoding/csv, entirely
// empty lines are skipped and records are not required to have the
// interchange column count — callers check.
func (rr *recordReader) next() ([][]byte, error) {
	for {
		line, err := rr.ls.next()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue // blank line, as encoding/csv skips them
		}
		if bytes.IndexByte(line, '"') < 0 {
			return rr.split(line), nil
		}
		return rr.quoted(line)
	}
}

// split breaks an unquoted line on commas in place. At most
// numFields+1 fields are retained — enough for callers to detect a
// column-count mismatch — but the true count is reflected in the
// returned slice length being capped there.
func (rr *recordReader) split(line []byte) [][]byte {
	n := 0
	start := 0
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ',' {
			if n < len(rr.fields) {
				rr.fields[n] = line[start:i]
				n++
			} else {
				// Over the cap: the record cannot be valid; stop splitting.
				break
			}
			start = i + 1
		}
	}
	return rr.fields[:n]
}

// quoted parses a record whose first line contains a quote character
// with encoding/csv semantics. The record's line span is found first by
// an incremental quote-state scan — each pulled line is examined once —
// and the accumulated record is then parsed exactly once, keeping
// multiline quoted input linear (a per-line reparse loop here would be
// quadratic, a denial-of-service lever on the daemon's upload and
// ingest endpoints).
func (rr *recordReader) quoted(first []byte) ([][]byte, error) {
	rr.rec = append(rr.rec[:0], first...)
	state := quoteScan(qsStart, first)
	for state == qsInQuote {
		line, lerr := rr.ls.next()
		if lerr == io.EOF {
			break // the quote never closes: let csv surface its error
		}
		if lerr != nil {
			return nil, lerr // a real I/O failure, not a syntax problem
		}
		rr.rec = append(rr.rec, '\n')
		rr.rec = append(rr.rec, line...)
		state = quoteScan(qsInQuote, line)
	}
	cr := csv.NewReader(bytes.NewReader(rr.rec))
	cr.FieldsPerRecord = -1
	record, err := cr.Read()
	if err != nil {
		return nil, err
	}
	n := len(record)
	if n > len(rr.fields) {
		n = len(rr.fields)
	}
	for i := 0; i < n; i++ {
		rr.fields[i] = []byte(record[i])
	}
	return rr.fields[:n], nil
}

// qstate tracks where a CSV record scan stands relative to quoting.
type qstate int

const (
	qsStart     qstate = iota // at a field boundary
	qsUnquoted                // inside an unquoted field
	qsInQuote                 // inside a quoted field (spans lines)
	qsPostQuote               // just after a closing quote
	qsBad                     // malformed; csv.Read will report it
)

// quoteScan advances the quote state across one line. Only qsInQuote
// continues a record onto the next line; every other terminal state
// means the record (or its error) is fully buffered.
func quoteScan(state qstate, line []byte) qstate {
	for _, c := range line {
		switch state {
		case qsStart:
			switch c {
			case '"':
				state = qsInQuote
			case ',':
				// next field, stay at boundary
			default:
				state = qsUnquoted
			}
		case qsUnquoted:
			switch c {
			case ',':
				state = qsStart
			case '"':
				return qsBad // bare quote in non-quoted field
			}
		case qsInQuote:
			if c == '"' {
				state = qsPostQuote
			}
		case qsPostQuote:
			switch c {
			case '"':
				state = qsInQuote // escaped ""
			case ',':
				state = qsStart
			default:
				return qsBad // extraneous data after closing quote
			}
		}
	}
	return state
}

// parseSessionFields decodes one record's fields into a Session. It is
// the byte-slice twin of the old strconv-based parseSession: strictly
// decimal digits per column (no signs, no spaces), which is exactly
// what WriteCSV emits.
func parseSessionFields(fields [][]byte) (Session, error) {
	var s Session
	if len(fields) > numFields {
		// Both record lanes retain at most numFields+1 fields, so the
		// exact surplus count is unknown here.
		return s, fmt.Errorf("trace: record has more than %d columns", numFields)
	}
	if len(fields) != numFields {
		return s, fmt.Errorf("trace: record has %d columns, want %d", len(fields), numFields)
	}
	user, err := parseUintField(fields[0], maxUint32, "user")
	if err != nil {
		return s, err
	}
	content, err := parseUintField(fields[1], maxUint32, "content")
	if err != nil {
		return s, err
	}
	isp, err := parseUintField(fields[2], maxUint8, "isp")
	if err != nil {
		return s, err
	}
	exchange, err := parseUintField(fields[3], maxUint16, "exchange")
	if err != nil {
		return s, err
	}
	start, err := parseUintField(fields[4], maxInt64, "start")
	if err != nil {
		return s, err
	}
	duration, err := parseUintField(fields[5], maxInt32, "duration")
	if err != nil {
		return s, err
	}
	bitrate, err := parseUintField(fields[6], maxInt32, "bitrate")
	if err != nil {
		return s, err
	}
	s.UserID = uint32(user)
	s.ContentID = uint32(content)
	s.ISP = uint8(isp)
	s.Exchange = uint16(exchange)
	s.StartSec = int64(start)
	s.DurationSec = int32(duration)
	s.Bitrate = BitrateClass(bitrate)
	return s, nil
}

// Per-column value ceilings, mirroring the bit widths the old
// strconv.Parse{Uint,Int} calls enforced.
const (
	maxUint8  = 1<<8 - 1
	maxUint16 = 1<<16 - 1
	maxUint32 = 1<<32 - 1
	maxInt32  = 1<<31 - 1
	maxInt64  = 1<<63 - 1
)

// parseUintField is the inlined hot-path integer parser: decimal digits
// only, bounded by max. Error construction is kept out of line so the
// digit loop stays allocation-free.
func parseUintField(b []byte, max uint64, col string) (uint64, error) {
	// Every column ceiling fits in int64, so more than 19 digits always
	// overflows — and 19 digits cannot overflow uint64 mid-loop.
	if len(b) == 0 || len(b) > 19 {
		return 0, fieldError(col, b)
	}
	var v uint64
	for _, c := range b {
		d := uint64(c) - '0'
		if d > 9 {
			return 0, fieldError(col, b)
		}
		v = v*10 + d
	}
	if v > max {
		return 0, fieldError(col, b)
	}
	return v, nil
}

func fieldError(col string, b []byte) error {
	return fmt.Errorf("trace: %s column: invalid value %q", col, b)
}

package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DefaultISPShares is the market-share split used for the top five ISPs in
// the considered city. The paper does not publish the shares; these follow
// the UK fixed-broadband market ordering (one dominant incumbent and four
// challengers), which is sufficient to reproduce the ISP ordering of
// Fig. 2 and Fig. 4.
var DefaultISPShares = []float64{0.34, 0.24, 0.19, 0.13, 0.10}

// DefaultDiurnalProfile is the relative arrival intensity per hour of day
// for a catch-up TV service: quiet overnight, a lunchtime bump, and a
// strong evening prime-time peak (cf. Karamshuk et al., JSAC 2016).
var DefaultDiurnalProfile = [24]float64{
	0.35, 0.20, 0.12, 0.08, 0.06, 0.08, // 00-05
	0.15, 0.30, 0.45, 0.55, 0.60, 0.70, // 06-11
	0.80, 0.85, 0.80, 0.75, 0.85, 1.00, // 12-17
	1.40, 1.80, 2.10, 2.00, 1.50, 0.80, // 18-23
}

// GeneratorConfig parameterises the synthetic trace generator. The zero
// value is not usable; start from DefaultGeneratorConfig.
type GeneratorConfig struct {
	// Name labels the generated trace.
	Name string
	// Seed makes generation deterministic; the same config always yields
	// the same trace.
	Seed int64
	// Days is the trace horizon in days.
	Days int
	// NumUsers is the user population size.
	NumUsers int
	// NumContent is the catalogue size.
	NumContent int
	// TargetSessions is the total number of sessions to generate.
	TargetSessions int
	// ZipfExponent is the popularity skew s of the content catalogue
	// (P(item k) ∝ (v+k)^-s). Catch-up TV catalogues are strongly skewed;
	// values near 1.2 reproduce the paper's "few popular items, large
	// majority of unpopular items" CCDF (Fig. 3 left).
	ZipfExponent float64
	// ZipfOffset is the Zipf v parameter.
	ZipfOffset float64
	// UserActivityExponent skews per-user session counts; per-user
	// consumption is "highly skewed towards a small share of very active
	// users" (Section II).
	UserActivityExponent float64
	// ISPShares are the per-ISP market shares; they must sum to ~1.
	ISPShares []float64
	// ExchangesPerISP is the number of exchange points in each ISP's
	// metropolitan tree (Table III: 345).
	ExchangesPerISP int
	// ExchangeSkew makes user placement across exchange points non-uniform:
	// 0 (the default) places users uniformly, matching the analytical
	// model's assumption; positive values draw exchanges from a Zipf
	// distribution with exponent 1+ExchangeSkew, concentrating users in
	// popular exchanges the way real metro populations do. Used to probe
	// the robustness of the paper's Eq. 7 approximation.
	ExchangeSkew float64
	// MeanDurationSec is the mean session duration. TV shows run much
	// longer than short-form video; the default models ~28 minutes.
	MeanDurationSec float64
	// DurationSigma is the σ of the log-normal duration distribution.
	DurationSigma float64
	// MinDurationSec truncates unrealistically short sessions.
	MinDurationSec int32
	// MaxDurationSec truncates unrealistically long sessions.
	MaxDurationSec int32
	// BitrateWeights gives the probability of each bitrate class.
	BitrateWeights map[BitrateClass]float64
	// DiurnalProfile is the relative arrival intensity per hour of day.
	DiurnalProfile [24]float64
	// WeekendMultiplier scales session arrivals on Saturdays and Sundays
	// relative to weekdays. Catch-up TV sees a weekend uplift; 1 disables
	// the effect.
	WeekendMultiplier float64
	// Epoch anchors the trace in wall-clock time.
	Epoch time.Time
}

// DefaultGeneratorConfig returns a configuration calibrated to the shape
// of the paper's dataset, scaled down by the given factor so that tests
// and examples run quickly. scale = 1.0 approximates the London subset of
// Table I (3.3M users, 23.5M sessions, 30 days); scale = 0.01 yields a
// trace that simulates in seconds while preserving per-swarm capacities
// for the popular items (both users and sessions shrink together, so
// arrival rates per item scale linearly and the popular-item capacities
// stay within the regime the paper analyses).
func DefaultGeneratorConfig(scale float64) GeneratorConfig {
	if scale <= 0 {
		scale = 1
	}
	round := func(x float64, min int) int {
		n := int(math.Round(x))
		if n < min {
			return min
		}
		return n
	}
	return GeneratorConfig{
		Name:                 "synthetic-london",
		Seed:                 1,
		Days:                 30,
		NumUsers:             round(3_300_000*scale, 100),
		NumContent:           round(60_000*scale, 50),
		TargetSessions:       round(23_500_000*scale, 1000),
		ZipfExponent:         1.2,
		ZipfOffset:           2,
		UserActivityExponent: 1.05,
		ISPShares:            append([]float64(nil), DefaultISPShares...),
		ExchangesPerISP:      345,
		MeanDurationSec:      1700,
		DurationSigma:        0.8,
		MinDurationSec:       60,
		MaxDurationSec:       3 * 3600,
		BitrateWeights: map[BitrateClass]float64{
			BitrateMobile: 0.22,
			BitrateSD:     0.56,
			BitrateHD:     0.22,
		},
		DiurnalProfile:    DefaultDiurnalProfile,
		WeekendMultiplier: 1.25,
		Epoch:             time.Date(2013, time.September, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.Days <= 0:
		return errors.New("trace: config needs a positive number of days")
	case c.NumUsers <= 0 || c.NumContent <= 0 || c.TargetSessions <= 0:
		return errors.New("trace: config needs positive population sizes")
	case c.ZipfExponent <= 1:
		return errors.New("trace: zipf exponent must exceed 1")
	case c.UserActivityExponent <= 1:
		// rand.NewZipf returns nil for s <= 1; catching it here turns a
		// would-be panic on the first draw into a validation error.
		return errors.New("trace: user activity exponent must exceed 1")
	case c.ZipfOffset < 1:
		return errors.New("trace: zipf offset must be >= 1")
	case len(c.ISPShares) == 0:
		return errors.New("trace: config needs at least one ISP share")
	case c.ExchangesPerISP <= 0:
		return errors.New("trace: config needs a positive exchange count")
	case c.MeanDurationSec <= 0 || c.DurationSigma <= 0:
		return errors.New("trace: config needs positive duration parameters")
	case c.MinDurationSec <= 0 || c.MaxDurationSec < c.MinDurationSec:
		return errors.New("trace: invalid duration bounds")
	case len(c.BitrateWeights) == 0:
		return errors.New("trace: config needs bitrate weights")
	case c.WeekendMultiplier < 0:
		return errors.New("trace: weekend multiplier must be non-negative")
	case c.ExchangeSkew < 0:
		return errors.New("trace: exchange skew must be non-negative")
	}
	var shareSum float64
	for _, s := range c.ISPShares {
		if s < 0 {
			return errors.New("trace: ISP shares must be non-negative")
		}
		shareSum += s
	}
	if math.Abs(shareSum-1) > 0.05 {
		return fmt.Errorf("trace: ISP shares sum to %v, want ~1", shareSum)
	}
	var weightSum float64
	for class, w := range c.BitrateWeights {
		if class <= 0 || w < 0 {
			return errors.New("trace: invalid bitrate weight entry")
		}
		weightSum += w
	}
	if weightSum <= 0 {
		return errors.New("trace: bitrate weights must have positive mass")
	}
	return nil
}

// Generate builds a deterministic synthetic trace from the configuration.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	contentZipf := rand.NewZipf(rng, cfg.ZipfExponent, cfg.ZipfOffset, uint64(cfg.NumContent-1))
	userZipf := rand.NewZipf(rng, cfg.UserActivityExponent, 20, uint64(cfg.NumUsers-1))

	// Precompute hourly sampling: cumulative diurnal weights.
	hourCum := make([]float64, 24)
	var total float64
	for h, w := range cfg.DiurnalProfile {
		if w < 0 {
			w = 0
		}
		total += w
		hourCum[h] = total
	}
	if total == 0 {
		return nil, errors.New("trace: diurnal profile has no mass")
	}

	users := buildUserAttributes(cfg, rng)

	// Cumulative day weights implementing the weekend uplift.
	dayCum := make([]float64, cfg.Days)
	var dayTotal float64
	for d := 0; d < cfg.Days; d++ {
		w := 1.0
		if cfg.WeekendMultiplier > 0 && isWeekend(cfg.Epoch, d) {
			w = cfg.WeekendMultiplier
		}
		dayTotal += w
		dayCum[d] = dayTotal
	}

	horizon := int64(cfg.Days) * 24 * 3600
	sessions := make([]Session, 0, cfg.TargetSessions)
	for i := 0; i < cfg.TargetSessions; i++ {
		user := uint32(userZipf.Uint64())
		content := uint32(contentZipf.Uint64())

		day := sampleCumulative(dayCum, dayTotal, rng)
		hour := sampleCumulative(hourCum, total, rng)
		sec := rng.Intn(3600)
		start := int64(day)*24*3600 + int64(hour)*3600 + int64(sec)

		s, ok := drawSession(rng, cfg, users, user, content, start, horizon)
		if !ok {
			continue
		}
		sessions = append(sessions, s)
	}

	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].StartSec != sessions[j].StartSec {
			return sessions[i].StartSec < sessions[j].StartSec
		}
		return sessions[i].UserID < sessions[j].UserID
	})

	return &Trace{
		Name:       cfg.Name,
		Epoch:      cfg.Epoch,
		HorizonSec: horizon,
		NumUsers:   cfg.NumUsers,
		NumContent: cfg.NumContent,
		NumISPs:    len(cfg.ISPShares),
		Sessions:   sessions,
	}, nil
}

// userAttributes are the fixed per-user draws shared by Generate and
// the streaming Generator: home ISP, home exchange and a preferred
// bitrate class (devices rarely change between sessions), plus the
// bitrate tables session draws re-sample from.
type userAttributes struct {
	isp        []uint8
	exchange   []uint16
	bitrate    []BitrateClass
	bitrates   []BitrateClass
	bitrateCum []float64
}

// buildUserAttributes draws the per-user tables. Both generators call
// it at the same point in their rng stream; the draw order in here is
// part of the seed-determinism contract.
func buildUserAttributes(cfg GeneratorConfig, rng *rand.Rand) userAttributes {
	bitrates, bitrateCum := cumulativeBitrates(cfg.BitrateWeights)
	ispCum := make([]float64, len(cfg.ISPShares))
	var ispTotal float64
	for i, s := range cfg.ISPShares {
		ispTotal += s
		ispCum[i] = ispTotal
	}
	var exchangeZipf *rand.Zipf
	if cfg.ExchangeSkew > 0 {
		exchangeZipf = rand.NewZipf(rng, 1+cfg.ExchangeSkew, 1, uint64(cfg.ExchangesPerISP-1))
	}
	users := userAttributes{
		isp:        make([]uint8, cfg.NumUsers),
		exchange:   make([]uint16, cfg.NumUsers),
		bitrate:    make([]BitrateClass, cfg.NumUsers),
		bitrates:   bitrates,
		bitrateCum: bitrateCum,
	}
	for u := 0; u < cfg.NumUsers; u++ {
		users.isp[u] = uint8(sampleCumulative(ispCum, ispTotal, rng))
		if exchangeZipf != nil {
			users.exchange[u] = uint16(exchangeZipf.Uint64())
		} else {
			users.exchange[u] = uint16(rng.Intn(cfg.ExchangesPerISP))
		}
		users.bitrate[u] = bitrates[sampleCumulative(bitrateCum, bitrateCum[len(bitrateCum)-1], rng)]
	}
	return users
}

// drawSession completes a session draw shared by Generate and the
// streaming Generator, given the (user, content, start) already chosen:
// a log-normal duration, horizon clipping (sessions clipped below the
// plausible minimum are dropped — ok is false), and the 15% chance a
// session streams at a different class than the user's usual device
// (e.g. on the move).
func drawSession(rng *rand.Rand, cfg GeneratorConfig, users userAttributes, user, content uint32, start, horizon int64) (Session, bool) {
	duration := sampleDuration(rng, cfg)
	if start+int64(duration) > horizon {
		duration = int32(horizon - start)
		if duration < cfg.MinDurationSec {
			return Session{}, false
		}
	}
	bitrate := users.bitrate[user]
	if rng.Float64() < 0.15 {
		bitrate = users.bitrates[sampleCumulative(users.bitrateCum, users.bitrateCum[len(users.bitrateCum)-1], rng)]
	}
	return Session{
		UserID:      user,
		ContentID:   content,
		ISP:         users.isp[user],
		Exchange:    users.exchange[user],
		StartSec:    start,
		DurationSec: duration,
		Bitrate:     bitrate,
	}, true
}

// isWeekend reports whether day offset d from the epoch falls on a
// Saturday or Sunday.
func isWeekend(epoch time.Time, d int) bool {
	wd := epoch.AddDate(0, 0, d).Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// sampleDuration draws a log-normal playback duration truncated to the
// configured bounds.
func sampleDuration(rng *rand.Rand, cfg GeneratorConfig) int32 {
	// For a log-normal with median m and shape σ, mean = m·exp(σ²/2); we
	// pick μ so the distribution mean matches MeanDurationSec.
	mu := math.Log(cfg.MeanDurationSec) - cfg.DurationSigma*cfg.DurationSigma/2
	d := math.Exp(mu + cfg.DurationSigma*rng.NormFloat64())
	if d < float64(cfg.MinDurationSec) {
		return cfg.MinDurationSec
	}
	if d > float64(cfg.MaxDurationSec) {
		return cfg.MaxDurationSec
	}
	return int32(d)
}

// cumulativeBitrates flattens the bitrate weight map into parallel slices
// with a deterministic order (ascending bitrate) and cumulative weights.
func cumulativeBitrates(weights map[BitrateClass]float64) ([]BitrateClass, []float64) {
	classes := make([]BitrateClass, 0, len(weights))
	for class := range weights {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	cum := make([]float64, len(classes))
	var total float64
	for i, class := range classes {
		total += weights[class]
		cum[i] = total
	}
	return classes, cum
}

// sampleCumulative draws an index from a cumulative weight vector.
func sampleCumulative(cum []float64, total float64, rng *rand.Rand) int {
	x := rng.Float64() * total
	// Linear scan: the vectors here have at most a couple of dozen
	// entries, where a scan beats binary search.
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

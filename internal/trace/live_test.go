package trace

import (
	"testing"
)

func liveConfig() LiveConfig {
	cfg := DefaultLiveConfig(0.001)
	return cfg
}

func TestDefaultLiveConfigValid(t *testing.T) {
	for _, scale := range []float64{1, 0.01, 0} {
		if err := DefaultLiveConfig(scale).Validate(); err != nil {
			t.Errorf("scale %v: %v", scale, err)
		}
	}
}

func TestLiveConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*LiveConfig)
	}{
		{"zero horizon", func(c *LiveConfig) { c.HorizonSec = 0 }},
		{"zero users", func(c *LiveConfig) { c.NumUsers = 0 }},
		{"no events", func(c *LiveConfig) { c.Events = nil }},
		{"negative jitter", func(c *LiveConfig) { c.JoinJitterSec = -1 }},
		{"bad leave fraction", func(c *LiveConfig) { c.EarlyLeaveFraction = 1.5 }},
		{"no isps", func(c *LiveConfig) { c.ISPShares = nil }},
		{"zero exchanges", func(c *LiveConfig) { c.ExchangesPerISP = 0 }},
		{"no bitrates", func(c *LiveConfig) { c.BitrateWeights = nil }},
		{"event beyond horizon", func(c *LiveConfig) { c.Events[0].StartSec = c.HorizonSec }},
		{"zero audience", func(c *LiveConfig) { c.Events[0].Viewers = 0 }},
		{"zero event duration", func(c *LiveConfig) { c.Events[0].DurationSec = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := liveConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateLiveProducesValidTrace(t *testing.T) {
	tr, err := GenerateLive(liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated live trace invalid: %v", err)
	}
	if len(tr.Sessions) < 1000 {
		t.Errorf("got %d sessions, expected four-digit audience at this scale", len(tr.Sessions))
	}
}

func TestGenerateLiveDeterministic(t *testing.T) {
	a, err := GenerateLive(liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateLive(liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ")
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs", i)
		}
	}
}

func TestGenerateLiveSessionsInsideEvents(t *testing.T) {
	cfg := liveConfig()
	tr, err := GenerateLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eventByContent := map[uint32]LiveEvent{}
	for _, ev := range cfg.Events {
		eventByContent[ev.ContentID] = ev
	}
	for _, s := range tr.Sessions {
		ev, ok := eventByContent[s.ContentID]
		if !ok {
			t.Fatalf("session for unknown event content %d", s.ContentID)
		}
		if s.StartSec < ev.StartSec {
			t.Fatalf("viewer joined at %d before broadcast start %d", s.StartSec, ev.StartSec)
		}
		if s.EndSec() > ev.StartSec+int64(ev.DurationSec) {
			t.Fatalf("viewer left at %d after broadcast end", s.EndSec())
		}
	}
}

func TestGenerateLiveHighConcurrency(t *testing.T) {
	// The defining property of live workloads: concurrency during the
	// event approaches the audience size, far beyond what a catch-up
	// workload of equal volume reaches.
	cfg := liveConfig()
	tr, err := GenerateLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample concurrency in the middle of the main event.
	mid := cfg.Events[1].StartSec + int64(cfg.Events[1].DurationSec)/2
	var live int
	for _, s := range tr.Sessions {
		if s.ContentID == 1 && s.StartSec <= mid && mid < s.EndSec() {
			live++
		}
	}
	if live < cfg.Events[1].Viewers/2 {
		t.Errorf("mid-event concurrency %d below half the audience %d", live, cfg.Events[1].Viewers)
	}
}

// TestGenerateLiveFullyOrdered pins the output order past (StartSec,
// UserID): with zero join jitter and a tiny population, the same user is
// sampled into one event many times at the same second, and the old
// two-field tiebreak left those duplicates in whatever permutation
// sort.Slice produced. The full comparator must leave the session list
// totally ordered, so the trace is bit-for-bit deterministic.
func TestGenerateLiveFullyOrdered(t *testing.T) {
	cfg := liveConfig()
	cfg.NumUsers = 5
	cfg.JoinJitterSec = 0
	cfg.Events = []LiveEvent{{ContentID: 0, StartSec: 3600, DurationSec: 1800, Viewers: 200}}

	tr, err := GenerateLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ties := 0
	for i := 1; i < len(tr.Sessions); i++ {
		a, b := tr.Sessions[i-1], tr.Sessions[i]
		if a.StartSec == b.StartSec && a.UserID == b.UserID {
			ties++
		}
		after := b.StartSec > a.StartSec ||
			(b.StartSec == a.StartSec && (b.UserID > a.UserID ||
				(b.UserID == a.UserID && (b.ContentID > a.ContentID ||
					(b.ContentID == a.ContentID && (b.DurationSec > a.DurationSec ||
						(b.DurationSec == a.DurationSec && (b.ISP > a.ISP ||
							(b.ISP == a.ISP && (b.Exchange > a.Exchange ||
								(b.Exchange == a.Exchange && b.Bitrate >= a.Bitrate)))))))))))
		if !after {
			t.Fatalf("sessions %d and %d out of full-tiebreak order: %+v then %+v", i-1, i, a, b)
		}
	}
	if ties == 0 {
		t.Fatal("test workload produced no (StartSec, UserID) ties; the tiebreak is not exercised")
	}
}

func TestGenerateLiveRejectsInvalid(t *testing.T) {
	cfg := liveConfig()
	cfg.Events = nil
	if _, err := GenerateLive(cfg); err == nil {
		t.Error("expected error")
	}
	cfg = liveConfig()
	cfg.ISPShares = []float64{-1}
	if _, err := GenerateLive(cfg); err == nil {
		t.Error("expected error for negative share")
	}
}

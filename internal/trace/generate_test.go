package trace

import (
	"math"
	"testing"
)

// testConfig returns a small but statistically meaningful generator
// configuration for tests.
func testConfig() GeneratorConfig {
	cfg := DefaultGeneratorConfig(0.002) // ~6600 users, ~47K sessions
	cfg.Days = 7
	return cfg
}

func TestDefaultGeneratorConfigValid(t *testing.T) {
	for _, scale := range []float64{1, 0.1, 0.001, 0} {
		cfg := DefaultGeneratorConfig(scale)
		if err := cfg.Validate(); err != nil {
			t.Errorf("scale %v: default config invalid: %v", scale, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{"zero days", func(c *GeneratorConfig) { c.Days = 0 }},
		{"zero users", func(c *GeneratorConfig) { c.NumUsers = 0 }},
		{"zero content", func(c *GeneratorConfig) { c.NumContent = 0 }},
		{"zipf exponent too low", func(c *GeneratorConfig) { c.ZipfExponent = 1 }},
		{"zipf offset too low", func(c *GeneratorConfig) { c.ZipfOffset = 0.5 }},
		{"no isps", func(c *GeneratorConfig) { c.ISPShares = nil }},
		{"negative share", func(c *GeneratorConfig) { c.ISPShares = []float64{1.2, -0.2} }},
		{"shares do not sum to one", func(c *GeneratorConfig) { c.ISPShares = []float64{0.2, 0.2} }},
		{"zero exchanges", func(c *GeneratorConfig) { c.ExchangesPerISP = 0 }},
		{"bad duration", func(c *GeneratorConfig) { c.MeanDurationSec = 0 }},
		{"bad duration bounds", func(c *GeneratorConfig) { c.MaxDurationSec = c.MinDurationSec - 1 }},
		{"no bitrates", func(c *GeneratorConfig) { c.BitrateWeights = nil }},
		{"zero weight mass", func(c *GeneratorConfig) { c.BitrateWeights = map[BitrateClass]float64{BitrateSD: 0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected config validation error")
			}
		})
	}
}

func TestGenerateProducesValidTrace(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Sessions) < 40000 {
		t.Errorf("generated %d sessions, want ~47K", len(tr.Sessions))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatalf("session %d differs between identical runs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfgA := testConfig()
	cfgB := testConfig()
	cfgB.Seed = 999
	a, err := Generate(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Sessions) == len(b.Sessions)
	if same {
		identical := true
		for i := range a.Sessions {
			if a.Sessions[i] != b.Sessions[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Days = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.ViewCounts()

	// Item 0 must dominate: Zipf ordering puts the most popular first.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if counts[0] < max/2 {
		t.Errorf("item 0 has %d views, max is %d; expected item 0 to be near the top", counts[0], max)
	}

	// Heavy tail: the top 10% of items should capture a large share of all
	// views (the paper's catalogue is strongly skewed, Fig. 3 left). At
	// full catalogue size the same parameters put ~79% of views in the
	// top 1%.
	topN := len(counts) / 10
	if topN < 1 {
		topN = 1
	}
	var topViews, allViews int
	for i, c := range counts {
		allViews += c
		if i < topN {
			topViews += c
		}
	}
	share := float64(topViews) / float64(allViews)
	if share < 0.4 {
		t.Errorf("top-10%% items capture only %.1f%% of views, want >= 40%%", 100*share)
	}
}

func TestGenerateISPShares(t *testing.T) {
	cfg := testConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perISP := tr.SessionsPerISP()
	total := 0
	for _, c := range perISP {
		total += c
	}
	// Session shares should roughly follow user-population shares. Heavy
	// per-user activity skew adds variance, so allow a generous band.
	for i, want := range cfg.ISPShares {
		got := float64(perISP[i]) / float64(total)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("ISP %d share = %.3f, configured %.3f", i, got, want)
		}
	}
	// ISP 0 is the largest by construction.
	for i := 1; i < len(perISP); i++ {
		if perISP[i] > perISP[0] {
			t.Errorf("ISP %d (%d sessions) exceeds ISP 0 (%d)", i, perISP[i], perISP[0])
		}
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hourCounts := make([]int, 24)
	for _, s := range tr.Sessions {
		hour := (s.StartSec / 3600) % 24
		hourCounts[hour]++
	}
	// Prime time (20:00) must be busier than early morning (04:00).
	if hourCounts[20] <= hourCounts[4]*3 {
		t.Errorf("prime time %d sessions vs 4am %d: expected strong prime-time peak",
			hourCounts[20], hourCounts[4])
	}
}

func TestGenerateWeekendUplift(t *testing.T) {
	cfg := testConfig()
	cfg.Days = 28 // exactly four weeks for a fair comparison
	cfg.WeekendMultiplier = 1.5
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var weekend, weekday int
	for _, s := range tr.Sessions {
		if isWeekend(cfg.Epoch, int(s.StartSec/86400)) {
			weekend++
		} else {
			weekday++
		}
	}
	perWeekendDay := float64(weekend) / 8
	perWeekday := float64(weekday) / 20
	ratio := perWeekendDay / perWeekday
	if ratio < 1.35 || ratio > 1.65 {
		t.Errorf("weekend/weekday arrival ratio = %v, want ~1.5", ratio)
	}
}

func TestGenerateWeekendMultiplierValidation(t *testing.T) {
	cfg := testConfig()
	cfg.WeekendMultiplier = -0.5
	if err := cfg.Validate(); err == nil {
		t.Error("negative weekend multiplier should be rejected")
	}
	// Zero disables the effect (treated as uniform), still valid.
	cfg.WeekendMultiplier = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero multiplier should be valid: %v", err)
	}
}

func TestIsWeekend(t *testing.T) {
	// The default epoch, 2013-09-01, is a Sunday.
	epoch := DefaultGeneratorConfig(0.01).Epoch
	if !isWeekend(epoch, 0) {
		t.Error("epoch day (Sunday) should be weekend")
	}
	if isWeekend(epoch, 1) {
		t.Error("day 1 (Monday) should be weekday")
	}
	if !isWeekend(epoch, 6) {
		t.Error("day 6 (Saturday) should be weekend")
	}
}

func TestGenerateExchangeSkew(t *testing.T) {
	uniform := testConfig()
	skewed := testConfig()
	skewed.ExchangeSkew = 0.5

	trU, err := Generate(uniform)
	if err != nil {
		t.Fatal(err)
	}
	trS, err := Generate(skewed)
	if err != nil {
		t.Fatal(err)
	}
	// Skewed placement concentrates users: the most popular exchange must
	// host a far larger share of users than under uniform placement.
	topShare := func(tr *Trace) float64 {
		counts := map[uint16]int{}
		users := map[uint32]bool{}
		for _, s := range tr.Sessions {
			if users[s.UserID] {
				continue
			}
			users[s.UserID] = true
			counts[s.Exchange]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(users))
	}
	u, s := topShare(trU), topShare(trS)
	if s < 2*u {
		t.Errorf("skewed top-exchange share %v should far exceed uniform %v", s, u)
	}
}

func TestGenerateExchangeSkewValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ExchangeSkew = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative exchange skew should be rejected")
	}
}

func TestGenerateDurations(t *testing.T) {
	cfg := testConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range tr.Sessions {
		if s.DurationSec < cfg.MinDurationSec || s.DurationSec > cfg.MaxDurationSec {
			t.Fatalf("duration %d outside configured bounds", s.DurationSec)
		}
		sum += float64(s.DurationSec)
	}
	mean := sum / float64(len(tr.Sessions))
	// Truncation pulls the realised mean below the configured mean; it
	// must stay in the right ballpark for capacity calibration.
	if mean < cfg.MeanDurationSec*0.55 || mean > cfg.MeanDurationSec*1.3 {
		t.Errorf("mean duration %v strays too far from configured %v", mean, cfg.MeanDurationSec)
	}
}

func TestGenerateBitrateMix(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[BitrateClass]int{}
	for _, s := range tr.Sessions {
		counts[s.Bitrate]++
	}
	// SD must be the most common bitrate (Section IV.B.1).
	if counts[BitrateSD] <= counts[BitrateMobile] || counts[BitrateSD] <= counts[BitrateHD] {
		t.Errorf("SD is not the most common bitrate: %v", counts)
	}
}

func TestGenerateUserActivitySkew(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	perUser := map[uint32]int{}
	for _, s := range tr.Sessions {
		perUser[s.UserID]++
	}
	max := 0
	for _, c := range perUser {
		if c > max {
			max = c
		}
	}
	mean := float64(len(tr.Sessions)) / float64(len(perUser))
	if float64(max) < 5*mean {
		t.Errorf("max per-user sessions %d vs mean %.1f: expected heavy activity skew", max, mean)
	}
}

func TestGenerateExchangeStability(t *testing.T) {
	// A user must always appear at the same exchange (home placement).
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]uint16{}
	for _, s := range tr.Sessions {
		if prev, ok := seen[s.UserID]; ok && prev != s.Exchange {
			t.Fatalf("user %d appears at exchanges %d and %d", s.UserID, prev, s.Exchange)
		}
		seen[s.UserID] = s.Exchange
	}
}

func TestGenerateScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale config sanity check only verifies arithmetic")
	}
	cfg := DefaultGeneratorConfig(1)
	if cfg.NumUsers != 3_300_000 {
		t.Errorf("full-scale users = %d, want 3.3M", cfg.NumUsers)
	}
	if cfg.TargetSessions != 23_500_000 {
		t.Errorf("full-scale sessions = %d, want 23.5M", cfg.TargetSessions)
	}
}

package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// LiveEvent is one scheduled live broadcast in a LiveConfig.
type LiveEvent struct {
	// ContentID identifies the broadcast.
	ContentID uint32
	// StartSec is the broadcast start in seconds since the trace epoch.
	StartSec int64
	// DurationSec is the broadcast length.
	DurationSec int32
	// Viewers is the expected audience size.
	Viewers int
}

// LiveConfig parameterises the live-streaming workload generator — the
// "live video streaming scenarios" the paper lists as future work
// (Section VI, citing Raman et al., WWW 2018). Live audiences join
// within a short window around the broadcast start and watch largely in
// lockstep, so live swarms reach far higher concurrency than catch-up
// swarms of equal volume.
type LiveConfig struct {
	// Name labels the generated trace.
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// HorizonSec is the trace length; all events must fit inside it.
	HorizonSec int64
	// NumUsers is the viewer population size.
	NumUsers int
	// Events is the broadcast schedule.
	Events []LiveEvent
	// JoinJitterSec spreads tune-in times around the broadcast start
	// (normal σ). Late joiners watch the remainder of the event.
	JoinJitterSec float64
	// EarlyLeaveFraction is the share of viewers who leave before the
	// event ends, uniformly during the broadcast.
	EarlyLeaveFraction float64
	// ISPShares are per-ISP market shares (must sum to ~1).
	ISPShares []float64
	// ExchangesPerISP sizes each ISP's metropolitan tree.
	ExchangesPerISP int
	// BitrateWeights gives the probability of each bitrate class.
	BitrateWeights map[BitrateClass]float64
	// Epoch anchors the trace in wall-clock time.
	Epoch time.Time
}

// DefaultLiveConfig returns an evening of live television: three
// broadcasts of growing audience, population scaled like the catch-up
// generator.
func DefaultLiveConfig(scale float64) LiveConfig {
	if scale <= 0 {
		scale = 1
	}
	base := DefaultGeneratorConfig(scale)
	audience := func(full int) int {
		n := int(float64(full) * scale)
		if n < 10 {
			n = 10
		}
		return n
	}
	return LiveConfig{
		Name:       "live-evening",
		Seed:       1,
		HorizonSec: 24 * 3600,
		NumUsers:   base.NumUsers,
		Events: []LiveEvent{
			{ContentID: 0, StartSec: 18 * 3600, DurationSec: 45 * 60, Viewers: audience(400_000)},
			{ContentID: 1, StartSec: 20 * 3600, DurationSec: 90 * 60, Viewers: audience(900_000)},
			{ContentID: 2, StartSec: 22 * 3600, DurationSec: 60 * 60, Viewers: audience(250_000)},
		},
		JoinJitterSec:      120,
		EarlyLeaveFraction: 0.25,
		ISPShares:          append([]float64(nil), DefaultISPShares...),
		ExchangesPerISP:    345,
		BitrateWeights:     base.BitrateWeights,
		Epoch:              base.Epoch,
	}
}

// Validate checks the configuration.
func (c LiveConfig) Validate() error {
	switch {
	case c.HorizonSec <= 0:
		return errors.New("trace: live config needs a positive horizon")
	case c.NumUsers <= 0:
		return errors.New("trace: live config needs a positive population")
	case len(c.Events) == 0:
		return errors.New("trace: live config needs at least one event")
	case c.JoinJitterSec < 0:
		return errors.New("trace: join jitter must be non-negative")
	case c.EarlyLeaveFraction < 0 || c.EarlyLeaveFraction > 1:
		return errors.New("trace: early-leave fraction must be in [0,1]")
	case len(c.ISPShares) == 0:
		return errors.New("trace: live config needs ISP shares")
	case c.ExchangesPerISP <= 0:
		return errors.New("trace: live config needs exchange points")
	case len(c.BitrateWeights) == 0:
		return errors.New("trace: live config needs bitrate weights")
	}
	maxContent := uint32(0)
	for i, e := range c.Events {
		if e.DurationSec <= 0 || e.Viewers <= 0 {
			return fmt.Errorf("trace: live event %d needs positive duration and audience", i)
		}
		if e.StartSec < 0 || e.StartSec+int64(e.DurationSec) > c.HorizonSec {
			return fmt.Errorf("trace: live event %d does not fit the horizon", i)
		}
		if e.ContentID > maxContent {
			maxContent = e.ContentID
		}
	}
	return nil
}

// GenerateLive builds a deterministic live-broadcast trace.
func GenerateLive(cfg LiveConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ispCum := make([]float64, len(cfg.ISPShares))
	var ispTotal float64
	for i, s := range cfg.ISPShares {
		if s < 0 {
			return nil, errors.New("trace: ISP shares must be non-negative")
		}
		ispTotal += s
		ispCum[i] = ispTotal
	}
	bitrates, bitrateCum := cumulativeBitrates(cfg.BitrateWeights)

	maxContent := uint32(0)
	var sessions []Session
	for _, ev := range cfg.Events {
		if ev.ContentID > maxContent {
			maxContent = ev.ContentID
		}
		end := ev.StartSec + int64(ev.DurationSec)
		for v := 0; v < ev.Viewers; v++ {
			user := uint32(rng.Intn(cfg.NumUsers))
			join := ev.StartSec + int64(rng.NormFloat64()*cfg.JoinJitterSec)
			if join < ev.StartSec {
				// Early tuners buffer until the broadcast starts.
				join = ev.StartSec
			}
			if join >= end {
				continue
			}
			leave := end
			if rng.Float64() < cfg.EarlyLeaveFraction {
				leave = join + int64(rng.Float64()*float64(end-join))
			}
			dur := int32(leave - join)
			if dur < 1 {
				continue
			}
			sessions = append(sessions, Session{
				UserID:      user,
				ContentID:   ev.ContentID,
				ISP:         uint8(sampleCumulative(ispCum, ispTotal, rng)),
				Exchange:    uint16(rng.Intn(cfg.ExchangesPerISP)),
				StartSec:    join,
				DurationSec: dur,
				Bitrate:     bitrates[sampleCumulative(bitrateCum, bitrateCum[len(bitrateCum)-1], rng)],
			})
		}
	}

	// Full tiebreak: the same user can be sampled into one event twice at
	// the same second, so (StartSec, UserID) alone leaves the output order
	// under-specified — and sort.Slice is free to emit either permutation.
	// Breaking ties all the way down to the remaining fields makes the
	// trace bit-for-bit deterministic regardless of sort internals.
	sort.Slice(sessions, func(i, j int) bool {
		a, b := sessions[i], sessions[j]
		if a.StartSec != b.StartSec {
			return a.StartSec < b.StartSec
		}
		if a.UserID != b.UserID {
			return a.UserID < b.UserID
		}
		if a.ContentID != b.ContentID {
			return a.ContentID < b.ContentID
		}
		if a.DurationSec != b.DurationSec {
			return a.DurationSec < b.DurationSec
		}
		if a.ISP != b.ISP {
			return a.ISP < b.ISP
		}
		if a.Exchange != b.Exchange {
			return a.Exchange < b.Exchange
		}
		return a.Bitrate < b.Bitrate
	})

	return &Trace{
		Name:       cfg.Name,
		Epoch:      cfg.Epoch,
		HorizonSec: cfg.HorizonSec,
		NumUsers:   cfg.NumUsers,
		NumContent: int(maxContent) + 1,
		NumISPs:    len(cfg.ISPShares),
		Sessions:   sessions,
	}, nil
}

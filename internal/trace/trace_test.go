package trace

import (
	"testing"
	"time"
)

func validSession() Session {
	return Session{
		UserID:      1,
		ContentID:   2,
		ISP:         0,
		Exchange:    10,
		StartSec:    100,
		DurationSec: 600,
		Bitrate:     BitrateSD,
	}
}

func smallTrace() *Trace {
	return &Trace{
		Name:       "test",
		Epoch:      time.Date(2013, 9, 1, 0, 0, 0, 0, time.UTC),
		HorizonSec: 86400,
		NumUsers:   10,
		NumContent: 5,
		NumISPs:    2,
		Sessions: []Session{
			{UserID: 0, ContentID: 0, ISP: 0, StartSec: 0, DurationSec: 100, Bitrate: BitrateSD},
			{UserID: 1, ContentID: 0, ISP: 1, StartSec: 50, DurationSec: 200, Bitrate: BitrateHD},
			{UserID: 2, ContentID: 3, ISP: 0, StartSec: 60, DurationSec: 60, Bitrate: BitrateMobile},
		},
	}
}

func TestBitrateClass(t *testing.T) {
	if BitrateSD.Kbps() != 1500 {
		t.Errorf("SD kbps = %d, want 1500", BitrateSD.Kbps())
	}
	if BitrateSD.BitsPerSecond() != 1.5e6 {
		t.Errorf("SD bps = %v, want 1.5e6", BitrateSD.BitsPerSecond())
	}
	if BitrateMobile.String() != "mobile-800k" {
		t.Errorf("mobile label = %q", BitrateMobile.String())
	}
	if BitrateClass(2500).String() != "custom-2500k" {
		t.Errorf("custom label = %q", BitrateClass(2500).String())
	}
}

func TestSessionDerivedFields(t *testing.T) {
	s := validSession()
	if got := s.EndSec(); got != 700 {
		t.Errorf("EndSec = %d, want 700", got)
	}
	// 1.5 Mb/s × 600 s / 8 = 112.5 MB
	if got := s.Bytes(); got != 112_500_000 {
		t.Errorf("Bytes = %v, want 1.125e8", got)
	}
}

func TestSessionValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Session)
		wantErr bool
	}{
		{"valid", func(*Session) {}, false},
		{"zero duration", func(s *Session) { s.DurationSec = 0 }, true},
		{"negative start", func(s *Session) { s.StartSec = -1 }, true},
		{"zero bitrate", func(s *Session) { s.Bitrate = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSession()
			tt.mutate(&s)
			if err := s.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTraceValidate(t *testing.T) {
	if err := smallTrace().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"zero horizon", func(tr *Trace) { tr.HorizonSec = 0 }},
		{"zero users", func(tr *Trace) { tr.NumUsers = 0 }},
		{"user out of range", func(tr *Trace) { tr.Sessions[0].UserID = 99 }},
		{"content out of range", func(tr *Trace) { tr.Sessions[0].ContentID = 99 }},
		{"isp out of range", func(tr *Trace) { tr.Sessions[0].ISP = 9 }},
		{"start beyond horizon", func(tr *Trace) { tr.Sessions[2].StartSec = 1 << 40 }},
		{"out of order", func(tr *Trace) { tr.Sessions[0].StartSec = 55 }},
		{"bad session", func(tr *Trace) { tr.Sessions[1].DurationSec = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := smallTrace()
			tt.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestTraceDays(t *testing.T) {
	tr := smallTrace()
	if got := tr.Days(); got != 1 {
		t.Errorf("Days = %d, want 1", got)
	}
	tr.HorizonSec = 86401
	if got := tr.Days(); got != 2 {
		t.Errorf("Days = %d, want 2 (rounded up)", got)
	}
}

func TestTotalBytes(t *testing.T) {
	tr := smallTrace()
	want := tr.Sessions[0].Bytes() + tr.Sessions[1].Bytes() + tr.Sessions[2].Bytes()
	if got := tr.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	tr := smallTrace()
	sum := tr.Summarize()
	if sum.Users != 3 {
		t.Errorf("Users = %d, want 3", sum.Users)
	}
	if sum.Sessions != 3 {
		t.Errorf("Sessions = %d, want 3", sum.Sessions)
	}
	if sum.IPAddresses < 1 || sum.IPAddresses > 3 {
		t.Errorf("IPAddresses = %d, want within [1,3]", sum.IPAddresses)
	}
	wantMean := (100.0 + 200.0 + 60.0) / 3
	if sum.MeanSessionSec != wantMean {
		t.Errorf("MeanSessionSec = %v, want %v", sum.MeanSessionSec, wantMean)
	}
	if sum.TotalBytes != tr.TotalBytes() {
		t.Errorf("TotalBytes mismatch")
	}
}

func TestSummaryUsersPerIP(t *testing.T) {
	s := Summary{Users: 33, IPAddresses: 15}
	if got := s.UsersPerIP(); got != 2.2 {
		t.Errorf("UsersPerIP = %v, want 2.2", got)
	}
	if got := (Summary{}).UsersPerIP(); got != 0 {
		t.Errorf("UsersPerIP on empty = %v, want 0", got)
	}
}

func TestIPOfUserStableAndBounded(t *testing.T) {
	const population = 1000
	ipSpace := uint32(450)
	for u := uint32(0); u < 200; u++ {
		a := IPOfUser(u, population)
		b := IPOfUser(u, population)
		if a != b {
			t.Fatalf("IPOfUser not deterministic for %d", u)
		}
		if a >= ipSpace {
			t.Fatalf("IPOfUser(%d) = %d beyond space %d", u, a, ipSpace)
		}
	}
	if got := IPOfUser(5, 1); got != 0 {
		t.Errorf("tiny population should map to IP 0, got %d", got)
	}
}

func TestIPSharingRatioNearTableI(t *testing.T) {
	// Table I: ~3.3M users behind ~1.5M IPs => ~2.2 users per IP. The hash
	// model should land near that for a full population.
	const population = 50000
	ips := make(map[uint32]struct{})
	for u := uint32(0); u < population; u++ {
		ips[IPOfUser(u, population)] = struct{}{}
	}
	ratio := float64(population) / float64(len(ips))
	if ratio < 1.8 || ratio > 2.8 {
		t.Errorf("users per IP = %v, want within [1.8, 2.8]", ratio)
	}
}

func TestViewCounts(t *testing.T) {
	tr := smallTrace()
	counts := tr.ViewCounts()
	if counts[0] != 2 || counts[3] != 1 {
		t.Errorf("ViewCounts = %v", counts)
	}
}

func TestSessionsPerISP(t *testing.T) {
	tr := smallTrace()
	counts := tr.SessionsPerISP()
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("SessionsPerISP = %v", counts)
	}
}

package trace

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

const fastCSVMeta = "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=10 content=10 isps=2\n"

// TestScannerQuotedFallback checks that the fast lane preserves
// encoding/csv semantics when records carry quotes: quoted fields,
// quoted fields spanning a comma, CRLF line endings and interleaved
// blank lines all parse exactly as before.
func TestScannerQuotedFallback(t *testing.T) {
	input := fastCSVMeta +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\r\n" +
		"\"0\",0,0,0,100,60,1500\n" +
		"\n" +
		"1,\"1\",1,2,200,120,3000\r\n" +
		"2,2,0,3,300,60,800\n"
	sc, err := NewScanner(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []Session{
		{UserID: 0, ContentID: 0, ISP: 0, Exchange: 0, StartSec: 100, DurationSec: 60, Bitrate: 1500},
		{UserID: 1, ContentID: 1, ISP: 1, Exchange: 2, StartSec: 200, DurationSec: 120, Bitrate: 3000},
		{UserID: 2, ContentID: 2, ISP: 0, Exchange: 3, StartSec: 300, DurationSec: 60, Bitrate: 800},
	}
	for i, w := range want {
		if !sc.Scan() {
			t.Fatalf("session %d did not scan: %v", i, sc.Err())
		}
		if sc.Session() != w {
			t.Fatalf("session %d = %+v, want %+v", i, sc.Session(), w)
		}
	}
	if sc.Scan() {
		t.Fatal("unexpected extra session")
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
}

// TestScannerRejectsMalformedFields checks the fast parser is at least
// as strict as the strconv-based one it replaced.
func TestScannerRejectsMalformedFields(t *testing.T) {
	rows := []string{
		"x,0,0,0,100,60,1500\n",                   // non-digit
		"0,0,0,0,100,,1500\n",                     // empty field
		"0,0,0,0,100,60\n",                        // too few columns
		"0,0,0,0,100,60,1500,9\n",                 // too many columns
		"0,0,999,0,100,60,1500\n",                 // isp over 8-bit ceiling
		"0,0,0,0,100,99999999999999999999,1500\n", // overflow
		"0,0,0,0,100, 60,1500\n",                  // embedded space
		"0,0,0,0,-100,60,1500\n",                  // sign not accepted
		"\"0x\",0,0,0,100,60,1500\n",              // quoted junk via fallback
		"\"0,0,0,0,100,60,1500\n",                 // unterminated quote
	}
	header := "user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n"
	for i, row := range rows {
		sc, err := NewScanner(strings.NewReader(fastCSVMeta + header + row))
		if err != nil {
			t.Fatal(err)
		}
		if sc.Scan() {
			t.Fatalf("case %d: malformed row %q scanned as %+v", i, row, sc.Session())
		}
		if sc.Err() == nil {
			t.Fatalf("case %d: expected parse error for %q", i, row)
		}
	}
}

// TestRecordReaderMultilineQuoted drives the record reader directly
// over a quoted field spanning lines: the record must absorb exactly
// its own lines (joined with \n, per encoding/csv) and hand the stream
// back so the following record still parses.
func TestRecordReaderMultilineQuoted(t *testing.T) {
	rr := newRecordReader(strings.NewReader("\"ab\ncd\",2,3\n7,8,9\n"))
	first, err := rr.next()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 || string(first[0]) != "ab\ncd" || string(first[2]) != "3" {
		t.Fatalf("multiline record = %q", first)
	}
	second, err := rr.next()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 3 || string(second[0]) != "7" {
		t.Fatalf("following record = %q", second)
	}
	if _, err := rr.next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestRecordReaderUnterminatedQuoteLinear feeds an unterminated quote
// followed by tens of thousands of lines. The boundary scan examines
// each line once and parses once, so this completes in milliseconds;
// the pre-fix per-line reparse loop was quadratic (~seconds to hours),
// a DoS lever on the daemon's upload endpoints.
func TestRecordReaderUnterminatedQuoteLinear(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("\"start\n")
	for i := 0; i < 50000; i++ {
		sb.WriteString("0,0,0,0,100,60,1500\n")
	}
	start := time.Now()
	rr := newRecordReader(strings.NewReader(sb.String()))
	if _, err := rr.next(); err == nil {
		t.Fatal("expected an unterminated-quote error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("unterminated-quote parse took %v; boundary scan has gone super-linear", elapsed)
	}
}

// failingReader yields its payload and then a non-EOF read error, like
// an HTTP body cut mid-line by a disconnecting client.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestScannerDropsTruncatedLineOnReadError checks that a mid-line read
// failure surfaces the error instead of parsing the truncated prefix
// as a (numerically wrong) session — only a clean EOF salvages a final
// unterminated line.
func TestScannerDropsTruncatedLineOnReadError(t *testing.T) {
	payload := fastCSVMeta +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,100,60,15" // truncated: the full row ended in 1500
	sc, err := NewScanner(&failingReader{data: []byte(payload), err: errors.New("connection reset")})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatalf("truncated row scanned as %+v", sc.Session())
	}
	if sc.Err() == nil || !strings.Contains(sc.Err().Error(), "connection reset") {
		t.Fatalf("expected the read error, got %v", sc.Err())
	}
}

// TestRecordReaderQuotedReadError checks that a non-EOF read failure
// inside a multiline quoted record surfaces the I/O error itself, not
// an encoding/csv quote-syntax error for the partial buffered record —
// the daemon must classify a transport failure as such, not as
// client-fault malformed data.
func TestRecordReaderQuotedReadError(t *testing.T) {
	payload := "\"open quote\nstill inside" // reader dies before the quote closes
	rr := newRecordReader(&failingReader{data: []byte(payload), err: errors.New("connection reset")})
	_, err := rr.next()
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("expected the read error, got %v", err)
	}
}

// TestReadSessionsCSVQuoted mirrors the fallback check for the bare
// batch parser used by the live ingest endpoint.
func TestReadSessionsCSVQuoted(t *testing.T) {
	input := "\"user\",content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,100,60,1500\n" +
		"\"1\",0,1,1,160,30,800\n"
	sessions, err := ReadSessionsCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("parsed %d sessions, want 2", len(sessions))
	}
	if sessions[1].UserID != 1 || sessions[1].Bitrate != 800 {
		t.Fatalf("session 1 = %+v", sessions[1])
	}
}

package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"consumelocal/internal/energy"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name      string
		exchanges int
		pops      int
		wantErr   bool
	}{
		{"valid", 345, 9, false},
		{"minimal", 1, 1, false},
		{"zero exchanges", 0, 1, true},
		{"zero pops", 10, 0, true},
		{"more pops than exchanges", 3, 5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New("test", tt.exchanges, tt.pops)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d,%d) error = %v, wantErr %v", tt.exchanges, tt.pops, err, tt.wantErr)
			}
		})
	}
}

func TestDefaultLondonMatchesTableIII(t *testing.T) {
	tr := DefaultLondon()
	if tr.Exchanges() != 345 {
		t.Errorf("exchanges = %d, want 345", tr.Exchanges())
	}
	if tr.PoPs() != 9 {
		t.Errorf("pops = %d, want 9", tr.PoPs())
	}
	if tr.Name() != "london" {
		t.Errorf("name = %q, want london", tr.Name())
	}

	p := tr.Probabilities()
	// Table III: pexp = 0.29%, ppop = 11.11%, pcore = 100%.
	if math.Abs(p.Exchange-0.0029) > 0.0001 {
		t.Errorf("pexp = %v, want ~0.0029", p.Exchange)
	}
	if math.Abs(p.PoP-0.1111) > 0.0001 {
		t.Errorf("ppop = %v, want ~0.1111", p.PoP)
	}
	if p.Core != 1 {
		t.Errorf("pcore = %v, want 1", p.Core)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default probabilities must validate: %v", err)
	}
}

func TestPoPOfRoundRobin(t *testing.T) {
	tr, err := New("t", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for e := 0; e < 10; e++ {
		pop := tr.PoPOf(e)
		if pop < 0 || pop >= 3 {
			t.Fatalf("PoPOf(%d) = %d out of range", e, pop)
		}
		counts[pop]++
	}
	// Round-robin: sizes differ by at most one.
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("round-robin imbalance: %v", counts)
	}
}

func TestPlaceUniform(t *testing.T) {
	tr, err := New("t", 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 20)
	const n = 40000
	for i := 0; i < n; i++ {
		loc := tr.Place(rng)
		if loc.Exchange < 0 || loc.Exchange >= 20 {
			t.Fatalf("exchange out of range: %d", loc.Exchange)
		}
		if loc.PoP != tr.PoPOf(loc.Exchange) {
			t.Fatalf("PoP inconsistent with exchange: %+v", loc)
		}
		counts[loc.Exchange]++
	}
	want := float64(n) / 20
	for e, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("exchange %d count %d deviates >15%% from uniform %v", e, c, want)
		}
	}
}

func TestPlaceDeterministicStable(t *testing.T) {
	tr := DefaultLondon()
	for id := uint64(0); id < 100; id++ {
		a := tr.PlaceDeterministic(id)
		b := tr.PlaceDeterministic(id)
		if a != b {
			t.Fatalf("placement for id %d not stable: %+v vs %+v", id, a, b)
		}
		if a.PoP != tr.PoPOf(a.Exchange) {
			t.Fatalf("PoP inconsistent for id %d: %+v", id, a)
		}
	}
}

func TestPlaceDeterministicSpread(t *testing.T) {
	// Hash placement should spread sequential IDs over many exchanges.
	tr := DefaultLondon()
	seen := make(map[int]bool)
	for id := uint64(0); id < 1000; id++ {
		seen[tr.PlaceDeterministic(id).Exchange] = true
	}
	if len(seen) < 300 {
		t.Errorf("1000 sequential ids hit only %d distinct exchanges", len(seen))
	}
}

func TestLayerClassification(t *testing.T) {
	tr, err := New("t", 6, 3) // exchanges 0..5, pops = e % 3
	if err != nil {
		t.Fatal(err)
	}
	locOf := func(e int) Location { return Location{Exchange: e, PoP: tr.PoPOf(e)} }

	tests := []struct {
		name string
		a, b int
		want energy.Layer
	}{
		{"same exchange", 2, 2, energy.LayerExchange},
		{"same pop different exchange", 0, 3, energy.LayerPoP}, // 0%3 == 3%3
		{"different pop", 0, 1, energy.LayerCore},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tr.Layer(locOf(tt.a), locOf(tt.b)); got != tt.want {
				t.Errorf("Layer(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLayerSymmetric(t *testing.T) {
	tr := DefaultLondon()
	f := func(idA, idB uint64) bool {
		a := tr.PlaceDeterministic(idA)
		b := tr.PlaceDeterministic(idB)
		return tr.Layer(a, b) == tr.Layer(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbabilitiesForLayer(t *testing.T) {
	p := DefaultLondon().Probabilities()
	if got := p.ForLayer(energy.LayerExchange); got != p.Exchange {
		t.Errorf("ForLayer(exchange) = %v", got)
	}
	if got := p.ForLayer(energy.LayerPoP); got != p.PoP {
		t.Errorf("ForLayer(pop) = %v", got)
	}
	if got := p.ForLayer(energy.LayerCore); got != 1 {
		t.Errorf("ForLayer(core) = %v", got)
	}
}

func TestProbabilitiesValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Probabilities
		wantErr bool
	}{
		{"default", Probabilities{Exchange: 1.0 / 345, PoP: 1.0 / 9, Core: 1}, false},
		{"zero exchange", Probabilities{Exchange: 0, PoP: 0.1, Core: 1}, true},
		{"pop below exchange", Probabilities{Exchange: 0.5, PoP: 0.1, Core: 1}, true},
		{"core not one", Probabilities{Exchange: 0.1, PoP: 0.2, Core: 0.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMatchProbability(t *testing.T) {
	p := DefaultLondon().Probabilities()
	// With one user there is nobody to match with.
	if got := p.MatchProbability(energy.LayerExchange, 1); got != 0 {
		t.Errorf("MatchProbability(L=1) = %v, want 0", got)
	}
	// With two users, the chance of an exchange-local peer is pexp itself.
	if got := p.MatchProbability(energy.LayerExchange, 2); math.Abs(got-p.Exchange) > 1e-12 {
		t.Errorf("MatchProbability(L=2) = %v, want %v", got, p.Exchange)
	}
	// The core always contains everybody.
	if got := p.MatchProbability(energy.LayerCore, 2); got != 1 {
		t.Errorf("MatchProbability(core, 2) = %v, want 1", got)
	}
	// Large swarms localise with near certainty even at exchanges.
	if got := p.MatchProbability(energy.LayerExchange, 5000); got < 0.99 {
		t.Errorf("MatchProbability(exchange, 5000) = %v, want > 0.99", got)
	}
}

func TestMatchProbabilityMonotoneInSwarmSize(t *testing.T) {
	p := DefaultLondon().Probabilities()
	prev := -1.0
	for _, l := range []int{1, 2, 5, 10, 100, 1000} {
		got := p.MatchProbability(energy.LayerPoP, l)
		if got < prev {
			t.Errorf("MatchProbability not monotone at L=%d: %v < %v", l, got, prev)
		}
		prev = got
	}
}

// Empirical check: random placement reproduces the Table III localisation
// probabilities, tying Place/Layer to Probabilities.
func TestPlacementReproducesLocalisationProbabilities(t *testing.T) {
	tr := DefaultLondon()
	probs := tr.Probabilities()
	rng := rand.New(rand.NewSource(99))

	const n = 200000
	ref := tr.Place(rng)
	var sameExchange, samePoP int
	for i := 0; i < n; i++ {
		other := tr.Place(rng)
		switch tr.Layer(ref, other) {
		case energy.LayerExchange:
			sameExchange++
			samePoP++ // same exchange implies same PoP
		case energy.LayerPoP:
			samePoP++
		}
	}
	gotExp := float64(sameExchange) / n
	gotPoP := float64(samePoP) / n
	if math.Abs(gotExp-probs.Exchange)/probs.Exchange > 0.2 {
		t.Errorf("empirical pexp = %v, want ~%v", gotExp, probs.Exchange)
	}
	if math.Abs(gotPoP-probs.PoP)/probs.PoP > 0.1 {
		t.Errorf("empirical ppop = %v, want ~%v", gotPoP, probs.PoP)
	}
}

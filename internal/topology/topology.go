// Package topology models the metropolitan access network of an ISP as the
// three-level tree the paper describes (Fig. 1 and Table III): end users
// attach to exchange points, exchange points aggregate into points of
// presence (PoPs), and PoPs hang off a single metropolitan core router.
//
// The package answers the two questions the energy model needs:
//
//  1. Where is a user attached? (Placement of users onto exchange points.)
//  2. Given two users, what is the lowest layer of the tree containing
//     both? (The layer determines the per-bit network energy of a P2P
//     transfer between them.)
//
// It also exposes the per-layer localisation probabilities of Table III,
// which feed the closed-form model in internal/core.
package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"consumelocal/internal/energy"
)

// Default counts for the London deployment of the large national ISP the
// paper consulted (Table III).
const (
	// DefaultExchangePoints is the number of exchange points in the
	// metropolitan network.
	DefaultExchangePoints = 345
	// DefaultPoPs is the number of points of presence.
	DefaultPoPs = 9
	// DefaultCoreRouters is the number of metropolitan core routers.
	DefaultCoreRouters = 1
)

// Tree is an ISP metropolitan tree with a fixed number of exchange points
// and PoPs under a single core. Exchange points are assigned to PoPs
// round-robin so that every PoP aggregates an (almost) equal share of
// exchanges, matching the uniform-placement assumption of the analytical
// model.
type Tree struct {
	name      string
	exchanges int
	pops      int
}

// New creates a Tree with the given number of exchange points and PoPs.
func New(name string, exchanges, pops int) (*Tree, error) {
	if exchanges < 1 {
		return nil, errors.New("topology: need at least one exchange point")
	}
	if pops < 1 {
		return nil, errors.New("topology: need at least one PoP")
	}
	if pops > exchanges {
		return nil, errors.New("topology: cannot have more PoPs than exchange points")
	}
	return &Tree{name: name, exchanges: exchanges, pops: pops}, nil
}

// DefaultLondon returns the topology with the counts of Table III
// (345 exchange points, 9 PoPs, 1 core router).
func DefaultLondon() *Tree {
	t, err := New("london", DefaultExchangePoints, DefaultPoPs)
	if err != nil {
		// The default constants are valid by construction; reaching this
		// indicates programmer error, which is the one place panicking at
		// initialisation is acceptable.
		panic(fmt.Sprintf("topology: invalid defaults: %v", err))
	}
	return t
}

// Name returns the human-readable name of the topology.
func (t *Tree) Name() string { return t.name }

// Exchanges returns the number of exchange points.
func (t *Tree) Exchanges() int { return t.exchanges }

// PoPs returns the number of points of presence.
func (t *Tree) PoPs() int { return t.pops }

// Location is the attachment point of one user in a Tree: the exchange
// point it hangs off and, derived from it, the PoP that aggregates the
// exchange.
type Location struct {
	// Exchange is the zero-based exchange point index.
	Exchange int
	// PoP is the zero-based point-of-presence index.
	PoP int
}

// PoPOf returns the PoP that aggregates the given exchange point.
// Exchanges are distributed round-robin across PoPs.
func (t *Tree) PoPOf(exchange int) int {
	return exchange % t.pops
}

// Place assigns a uniformly random attachment location using rng.
// Placement is uniform across exchange points, which is the assumption
// behind the Table III localisation probabilities.
func (t *Tree) Place(rng *rand.Rand) Location {
	e := rng.Intn(t.exchanges)
	return Location{Exchange: e, PoP: t.PoPOf(e)}
}

// PlaceDeterministic maps an arbitrary identifier (e.g. a user ID) onto a
// location by modular hashing. It gives stable placements without carrying
// a random stream, used when the same user must land on the same exchange
// across simulations.
func (t *Tree) PlaceDeterministic(id uint64) Location {
	// SplitMix64 finaliser: cheap, well-distributed stateless hash.
	z := id + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	e := int(z % uint64(t.exchanges))
	return Location{Exchange: e, PoP: t.PoPOf(e)}
}

// Layer returns the lowest tree layer that contains both locations: the
// exchange layer when the users share an exchange point, the PoP layer
// when they share only a PoP, and the core layer otherwise.
func (t *Tree) Layer(a, b Location) energy.Layer {
	switch {
	case a.Exchange == b.Exchange:
		return energy.LayerExchange
	case a.PoP == b.PoP:
		return energy.LayerPoP
	default:
		return energy.LayerCore
	}
}

// Probabilities are the per-layer localisation probabilities of Table III:
// the probability that one specific peer falls under the same exchange
// point (resp. PoP, core) as a given user.
type Probabilities struct {
	// Exchange is pexp = 1/nexp.
	Exchange float64
	// PoP is ppop = 1/npop.
	PoP float64
	// Core is pcore = 1/ncore = 1 for a single metropolitan core.
	Core float64
}

// Probabilities returns the localisation probabilities implied by the
// tree's node counts.
func (t *Tree) Probabilities() Probabilities {
	return Probabilities{
		Exchange: 1 / float64(t.exchanges),
		PoP:      1 / float64(t.pops),
		Core:     1,
	}
}

// ForLayer returns the localisation probability for the given layer.
func (p Probabilities) ForLayer(l energy.Layer) float64 {
	switch l {
	case energy.LayerExchange:
		return p.Exchange
	case energy.LayerPoP:
		return p.PoP
	default:
		return p.Core
	}
}

// Validate checks the probabilities are a monotone chain in (0, 1] ending
// at 1 for the core.
func (p Probabilities) Validate() error {
	switch {
	case p.Exchange <= 0 || p.Exchange > 1:
		return errors.New("topology: exchange probability must be in (0,1]")
	case p.PoP < p.Exchange || p.PoP > 1:
		return errors.New("topology: pop probability must be in [exchange,1]")
	case p.Core < p.PoP || p.Core > 1:
		return errors.New("topology: core probability must be in [pop,1]")
	case p.Core != 1:
		return errors.New("topology: core probability must be 1 for a single metropolitan core")
	}
	return nil
}

// MatchProbability returns the probability that a user in a swarm with L
// online users finds at least one of the other L−1 peers within the given
// layer: P_layer(L) = 1 − (1 − p_layer)^(L−1) (Section III.D).
func (p Probabilities) MatchProbability(l energy.Layer, swarmSize int) float64 {
	if swarmSize <= 1 {
		return 0
	}
	pl := p.ForLayer(l)
	return 1 - pow(1-pl, swarmSize-1)
}

// pow computes base^exp for non-negative integer exponents with exact
// integer exponentiation-by-squaring, avoiding math.Pow edge cases.
func pow(base float64, exp int) float64 {
	result := 1.0
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/core"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
	"consumelocal/internal/swarm"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// AblationPlacement probes the robustness of the paper's uniform-placement
// approximation (Section III.D: "this is an approximation based on the
// expected distance between pairs of users... our empirical analyses
// suggest that this approach gives a good approximation"). Real metro
// populations concentrate in popular exchanges; this experiment skews user
// placement and compares simulated savings against the uniform-placement
// closed form.
func AblationPlacement(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()

	table := &Table{
		Title:   "Ablation: user placement skew vs the uniform-placement theory",
		Columns: []string{"placement", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, "sim "+p.Name, "theory "+p.Name)
	}

	probs := topology.DefaultLondon().Probabilities()
	for _, skew := range []float64{0, 0.5, 1.0} {
		gc := cfg.generatorConfig(fmt.Sprintf("placement-skew-%g", skew), cfg.Seed)
		gc.ExchangeSkew = skew
		tr, err := trace.Generate(gc)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation placement: %w", err)
		}
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation placement: %w", err)
		}

		label := "uniform (paper)"
		if skew > 0 {
			label = fmt.Sprintf("zipf skew %.1f", skew)
		}
		row := []string{label, formatPercent(result.Total.Offload())}
		swarms := swarm.Group(tr, simCfg.Swarm)
		for _, params := range cfg.Models {
			model, err := core.New(params, probs)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation placement: %w", err)
			}
			simS := sim.Evaluate(result.Total, params).Savings
			theoS := theoreticalSwarmSavings(model, swarms, tr.HorizonSec, cfg.UploadRatio)
			row = append(row, formatPercent(simS), formatPercent(theoS))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// PlacementGap summarises, for tests, the absolute gap between simulated
// and theoretical savings at a given skew under the first configured
// model.
func PlacementGap(cfg Config, skew float64) (float64, error) {
	cfg = cfg.withDefaults()
	gc := cfg.generatorConfig("placement-gap", cfg.Seed)
	gc.ExchangeSkew = skew
	tr, err := trace.Generate(gc)
	if err != nil {
		return 0, err
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	simCfg.TrackUsers = false
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return 0, err
	}
	model, err := core.New(cfg.Models[0], topology.DefaultLondon().Probabilities())
	if err != nil {
		return 0, err
	}
	simS := sim.Evaluate(result.Total, cfg.Models[0]).Savings
	theoS := theoreticalSwarmSavings(model, swarm.Group(tr, simCfg.Swarm), tr.HorizonSec, cfg.UploadRatio)
	return stats.Clamp(simS-theoS, -1, 1), nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own substrates: the synthetic trace
// generator, the trace-driven simulator and the closed-form model.
//
// Each experiment returns structured data (Table for tabular results,
// Dataset for plottable series) that renders both as human-readable text
// and as gnuplot-compatible TSV. The mapping from experiment to paper
// artefact is:
//
//	Table1  — dataset description (users / IP addresses / sessions)
//	Table3  — per-layer localisation probabilities
//	Table4  — energy parameters of both models
//	Fig2    — energy savings vs capacity: theory curves + simulation dots
//	Fig3    — CCDF of per-swarm capacity and per-swarm savings
//	Fig4    — daily aggregate savings per ISP, simulation vs theory
//	Fig5    — savings decomposition vs capacity (end-to-end/CDN/user/CCT)
//	Fig6    — CDF of per-user carbon credit transfer
//
// plus the ablations DESIGN.md calls out (matching policy, ISP
// restriction, bitrate split, topology sensitivity).
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"consumelocal/internal/energy"
	"consumelocal/internal/stats"
	"consumelocal/internal/trace"
)

// Config carries the shared knobs of the trace-driven experiments.
type Config struct {
	// Scale is the trace scale relative to the paper's London dataset
	// (1.0 = 3.3M users / 23.5M sessions).
	Scale float64
	// Days is the trace horizon in days.
	Days int
	// Seed drives the deterministic trace generator.
	Seed int64
	// UploadRatio is the default q/β for experiments that do not sweep it.
	UploadRatio float64
	// Models are the energy parameter sets to evaluate (defaults to both
	// published ones).
	Models []energy.Params
}

// DefaultConfig returns an experiment configuration that runs the full
// suite in well under a minute on a laptop while preserving the regimes
// the paper analyses.
func DefaultConfig() Config {
	return Config{
		Scale:       0.01,
		Days:        30,
		Seed:        1,
		UploadRatio: 1.0,
		Models:      energy.BothModels(),
	}
}

// withDefaults fills zero fields of a config.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.UploadRatio <= 0 {
		c.UploadRatio = d.UploadRatio
	}
	if len(c.Models) == 0 {
		c.Models = d.Models
	}
	return c
}

// generatorConfig builds the trace generator configuration for the
// experiment config.
func (c Config) generatorConfig(name string, seed int64) trace.GeneratorConfig {
	gc := trace.DefaultGeneratorConfig(c.Scale)
	gc.Name = name
	gc.Seed = seed
	gc.Days = c.Days
	return gc
}

// Table is a titled rectangular result.
type Table struct {
	// Title labels the table (e.g. "Table I: dataset description").
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the cells, one slice per row.
	Rows [][]string
}

// WriteTSV writes the table as tab-separated values with a header row.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// RenderText writes the table with aligned columns for terminals.
func (t *Table) RenderText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named curve or point cloud.
type Series struct {
	// Name labels the series (e.g. "theory q/β=0.6" or "sim ISP-1").
	Name string
	// Points are the (x, y) samples.
	Points []stats.Point
}

// Dataset is a titled collection of series sharing axes.
type Dataset struct {
	// Title labels the dataset (e.g. "Fig. 2: energy savings vs capacity").
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series are the member curves/point clouds.
	Series []Series
}

// WriteTSV writes every series as (series, x, y) rows.
func (d *Dataset) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", d.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "series\t%s\t%s\n", d.XLabel, d.YLabel); err != nil {
		return err
	}
	for _, s := range d.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n",
				s.Name, formatFloat(p.X), formatFloat(p.Y)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderText writes a compact summary of the dataset: per series, the
// sample count and the y-range.
func (d *Dataset) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s  [%s vs %s]\n", d.Title, d.YLabel, d.XLabel); err != nil {
		return err
	}
	for _, s := range d.Series {
		if len(s.Points) == 0 {
			if _, err := fmt.Fprintf(w, "  %-28s (empty)\n", s.Name); err != nil {
				return err
			}
			continue
		}
		minY, maxY := s.Points[0].Y, s.Points[0].Y
		for _, p := range s.Points {
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		last := s.Points[len(s.Points)-1]
		if _, err := fmt.Fprintf(w, "  %-28s n=%-4d y∈[%s, %s] last=(%s, %s)\n",
			s.Name, len(s.Points), formatFloat(minY), formatFloat(maxY),
			formatFloat(last.X), formatFloat(last.Y)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders floats compactly for reports.
func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 6, 64)
}

// formatPercent renders a fraction as a percentage with one decimal.
func formatPercent(x float64) string {
	return strconv.FormatFloat(100*x, 'f', 1, 64) + "%"
}

// formatCount renders an integer with thousands separators for Table I
// style readability.
func formatCount(n int) string {
	s := strconv.Itoa(n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/core"
	"consumelocal/internal/matching"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
	"consumelocal/internal/swarm"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// AblationMatching compares the locality-first matching policy against
// random matching: how much of the saving comes from consuming *local*
// rather than from offloading per se.
func AblationMatching(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("ablation-matching", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation matching: %w", err)
	}

	table := &Table{
		Title:   "Ablation: peer matching policy (system-wide savings)",
		Columns: []string{"policy", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	for _, policy := range []matching.Policy{matching.LocalityFirst{}, matching.Random{}} {
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.Policy = policy
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation matching: %w", err)
		}
		row := []string{policy.Name(), formatPercent(result.Total.Offload())}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(result.Total, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// AblationSwarmScope quantifies the two swarm-restriction obstacle factors
// of Section IV.B.1: ISP-friendliness and bitrate splitting. The paper
// treats ISP-restricted, bitrate-split swarms as the lower bound on
// savings; lifting either restriction grows swarms and savings.
func AblationSwarmScope(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("ablation-scope", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation scope: %w", err)
	}

	table := &Table{
		Title:   "Ablation: swarm scope (system-wide savings)",
		Columns: []string{"swarm scope", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	cases := []struct {
		name string
		opts swarm.Options
	}{
		{"per-ISP, per-bitrate (paper)", swarm.Options{RestrictISP: true, SplitBitrate: true}},
		{"per-ISP, mixed bitrates", swarm.Options{RestrictISP: true, SplitBitrate: false}},
		{"city-wide, per-bitrate", swarm.Options{RestrictISP: false, SplitBitrate: true}},
		{"city-wide, mixed bitrates", swarm.Options{RestrictISP: false, SplitBitrate: false}},
	}
	for _, tc := range cases {
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.Swarm = tc.opts
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation scope: %w", err)
		}
		row := []string{tc.name, formatPercent(result.Total.Offload())}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(result.Total, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// AblationBudget quantifies the paper's Eq. 2 assumption that one peer's
// worth of upload capacity is lost to fetching novel chunks from the
// server: with the (L−1)·q cap versus without it.
func AblationBudget(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("ablation-budget", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation budget: %w", err)
	}

	table := &Table{
		Title:   "Ablation: per-window peer capacity budget (Eq. 2)",
		Columns: []string{"budget", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	for _, disabled := range []bool{false, true} {
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.DisablePaperBudget = disabled
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation budget: %w", err)
		}
		name := "(L-1)q cap (paper)"
		if disabled {
			name = "uncapped L·q"
		}
		row := []string{name, formatPercent(result.Total.Offload())}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(result.Total, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// AblationTopology evaluates the closed form under alternative metro tree
// shapes: how sensitive the savings are to the published 345/9 node
// counts.
func AblationTopology(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	shapes := []struct {
		name      string
		exchanges int
		pops      int
	}{
		{"london 345/9 (paper)", 345, 9},
		{"dense edge 1000/20", 1000, 20},
		{"sparse edge 100/5", 100, 5},
		{"flat metro 50/2", 50, 2},
	}

	// Topology affects only locality, which the Valancius parameters
	// weight most heavily; use the first configured model.
	params := cfg.Models[0]
	ds := &Dataset{
		Title:  fmt.Sprintf("Ablation: topology sensitivity of S(c) (%s, q/b=%.1f)", params.Name, cfg.UploadRatio),
		XLabel: "capacity",
		YLabel: "energy savings",
	}
	grid := stats.LogSpace(0.01, 1000, 100)
	for _, shape := range shapes {
		topo, err := topology.New(shape.name, shape.exchanges, shape.pops)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation topology: %w", err)
		}
		model, err := core.New(params, topo.Probabilities())
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation topology: %w", err)
		}
		s := Series{Name: shape.name}
		for _, c := range grid {
			s.Points = append(s.Points, stats.Point{X: c, Y: model.Savings(c, cfg.UploadRatio)})
		}
		ds.Series = append(ds.Series, s)
	}
	return ds, nil
}

package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// ScaleSweep quantifies how the aggregate savings depend on the trace
// scale. Downscaling the workload shrinks every swarm's capacity (fewer
// sessions per item), pushing the mid-tail of the catalogue below the
// c ≈ 1 sharing threshold; the aggregate savings therefore converge to
// the paper's full-scale levels (≈30% Valancius / ≈18% Baliga for the
// biggest ISP) from below as the scale grows. This experiment makes that
// convergence explicit so that reduced-scale results can be read
// correctly.
func ScaleSweep(cfg Config, scales []float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(scales) == 0 {
		scales = []float64{0.005, 0.01, 0.02, 0.05}
	}

	table := &Table{
		Title:   "Scale sweep: aggregate savings vs trace scale",
		Columns: []string{"scale", "sessions", "offload", "ISP-1 valancius", "ISP-1 baliga"},
	}
	for _, scale := range scales {
		gc := trace.DefaultGeneratorConfig(scale)
		gc.Name = fmt.Sprintf("scale-%g", scale)
		gc.Seed = cfg.Seed
		gc.Days = cfg.Days
		tr, err := trace.Generate(gc)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale sweep: %w", err)
		}
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: scale sweep: %w", err)
		}
		isp1 := result.ISPTotals()[0]
		row := []string{
			fmt.Sprintf("%g", scale),
			formatCount(len(tr.Sessions)),
			formatPercent(result.Total.Offload()),
		}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(isp1, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

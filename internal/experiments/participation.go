package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// ParticipationRates are the upload-participation levels swept by the
// participation ablation. The 0.3 point is the Akamai NetSession
// participation level the paper's conclusion quotes (Zhao et al.,
// IMC 2013).
var ParticipationRates = []float64{1.0, 0.6, 0.3, 0.1}

// AblationParticipation sweeps the fraction of users who contribute
// upload capacity. The paper assumes full participation and motivates
// carbon credits precisely as the incentive to raise real-world
// participation from the ~30% Akamai observes; this ablation quantifies
// what is at stake.
func AblationParticipation(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("ablation-participation", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation participation: %w", err)
	}

	table := &Table{
		Title:   "Ablation: upload participation rate (system-wide savings)",
		Columns: []string{"participation", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	for _, rate := range ParticipationRates {
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.ParticipationRate = rate
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation participation: %w", err)
		}
		label := formatPercent(rate)
		if rate == 0.3 {
			label += " (Akamai, Zhao et al.)"
		}
		if rate == 1.0 {
			label += " (paper assumption)"
		}
		row := []string{label, formatPercent(result.Total.Offload())}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(result.Total, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/cdn"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// Provisioning quantifies the CDN-operator benefit the paper's
// introduction motivates but does not measure: the reduction in the
// server capacity that must be provisioned for peak load once peers
// absorb part of the demand. Peak reductions typically exceed mean
// traffic reductions because sharing clips the popular-content peaks
// hardest.
func Provisioning(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("provisioning", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: provisioning: %w", err)
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	simCfg.TrackUsers = false
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: provisioning: %w", err)
	}

	table := &Table{
		Title: "CDN peak provisioning with peer assistance",
		Columns: []string{
			"scope", "peak baseline (Gb/s)", "peak hybrid (Gb/s)",
			"peak reduction", "mean reduction",
		},
	}

	system, err := cdn.Provisioning(result)
	if err != nil {
		return nil, fmt.Errorf("experiments: provisioning: %w", err)
	}
	table.Rows = append(table.Rows, provisioningRow("system", system))
	for isp, rep := range cdn.PerISP(result) {
		if rep.PeakBaselineBps <= 0 {
			continue
		}
		table.Rows = append(table.Rows, provisioningRow(fmt.Sprintf("ISP-%d", isp+1), rep))
	}
	return table, nil
}

// provisioningRow renders one report as a table row.
func provisioningRow(scope string, rep cdn.ProvisioningReport) []string {
	const gbps = 1e9
	return []string{
		scope,
		fmt.Sprintf("%.3f", rep.PeakBaselineBps/gbps),
		fmt.Sprintf("%.3f", rep.PeakHybridBps/gbps),
		formatPercent(rep.PeakReduction),
		formatPercent(rep.MeanReduction),
	}
}

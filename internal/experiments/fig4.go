package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/core"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
	"consumelocal/internal/swarm"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Fig4ISPs are the ISP indices plotted by the paper's Fig. 4 (labelled
// ISP-1, ISP-4 and ISP-5 there; zero-based here).
var Fig4ISPs = []int{0, 3, 4}

// Fig4Result holds the daily aggregate savings comparison of Fig. 4.
type Fig4Result struct {
	// Datasets holds one dataset per energy model; each has a "sim" and a
	// "theo" series per ISP, with day number on the x axis.
	Datasets []Dataset
	// Summary reports the month-average savings per model and ISP.
	Summary *Table
}

// Fig4 regenerates Fig. 4: the aggregate energy savings across all
// requests to all items of the catalogue, per day of the month and per
// ISP, from data-driven simulation and from the closed form (swarm-by-
// swarm, traffic weighted).
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("fig4", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	simCfg.TrackUsers = false
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}

	probs := topology.DefaultLondon().Probabilities()
	res := &Fig4Result{
		Summary: &Table{
			Title:   "Fig. 4 month-average aggregate savings",
			Columns: []string{"model", "isp", "sim", "theory"},
		},
	}

	for _, params := range cfg.Models {
		model, err := core.New(params, probs)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4: %w", err)
		}
		ds := Dataset{
			Title:  fmt.Sprintf("Fig. 4 daily aggregate savings (%s)", params.Name),
			XLabel: "day",
			YLabel: "energy savings",
		}
		for _, isp := range Fig4ISPs {
			simSeries := Series{Name: fmt.Sprintf("ISP-%d sim", isp+1)}
			theoSeries := Series{Name: fmt.Sprintf("ISP-%d theo", isp+1)}
			var simVals, theoVals []float64
			for day := 0; day < len(result.Days); day++ {
				tally := result.Days[day][isp]
				if tally.TotalBits <= 0 {
					continue
				}
				simS := sim.Evaluate(tally, params).Savings
				theoS := theoreticalDailySavings(tr, model, simCfg.Swarm, day, isp, cfg.UploadRatio)
				simSeries.Points = append(simSeries.Points, stats.Point{X: float64(day + 1), Y: simS})
				theoSeries.Points = append(theoSeries.Points, stats.Point{X: float64(day + 1), Y: theoS})
				simVals = append(simVals, simS)
				theoVals = append(theoVals, theoS)
			}
			ds.Series = append(ds.Series, simSeries, theoSeries)
			res.Summary.Rows = append(res.Summary.Rows, []string{
				params.Name,
				fmt.Sprintf("ISP-%d", isp+1),
				formatPercent(stats.Mean(simVals)),
				formatPercent(stats.Mean(theoVals)),
			})
		}
		res.Datasets = append(res.Datasets, ds)
	}
	return res, nil
}

// theoreticalDailySavings evaluates the closed form for one day and ISP:
// sessions overlapping the day are clipped to it, grouped into swarms, and
// each swarm contributes S(c_day) weighted by its traffic within the day.
func theoreticalDailySavings(tr *trace.Trace, model *core.Model, opts swarm.Options,
	day, isp int, ratio float64) float64 {
	const daySec = int64(24 * 3600)
	dayStart := int64(day) * daySec
	dayEnd := dayStart + daySec

	clipped := &trace.Trace{
		Name:       tr.Name,
		Epoch:      tr.Epoch,
		HorizonSec: daySec,
		NumUsers:   tr.NumUsers,
		NumContent: tr.NumContent,
		NumISPs:    tr.NumISPs,
	}
	for _, s := range tr.Sessions {
		if int(s.ISP) != isp {
			continue
		}
		start, end := s.StartSec, s.EndSec()
		if end <= dayStart || start >= dayEnd {
			continue
		}
		if start < dayStart {
			start = dayStart
		}
		if end > dayEnd {
			end = dayEnd
		}
		s.StartSec = start - dayStart
		s.DurationSec = int32(end - start)
		if s.DurationSec <= 0 {
			continue
		}
		clipped.Sessions = append(clipped.Sessions, s)
	}
	swarms := swarm.Group(clipped, opts)
	return theoreticalSwarmSavings(model, swarms, daySec, ratio)
}

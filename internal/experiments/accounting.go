package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// Accounting contrasts the two energy-accounting schools the paper's
// related work debates (Section II): the per-bit approach the paper
// adopts versus the per-subscriber approach of the access-network
// literature. It computes, from a simulated month:
//
//   - each quartile user's amortised per-subscriber cost per bit, showing
//     why per-user skew makes per-subscriber accounting misleading for
//     streaming studies;
//   - the marginal cost a sharing user pays per uploaded bit under each
//     accounting (2·l·γm per-bit vs 0 per-subscriber — the Nano Data
//     Centers argument for why online peers share "for free").
func Accounting(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("accounting", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: accounting: %w", err)
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: accounting: %w", err)
	}

	// Per-user monthly volumes, for the skew argument.
	volumes := make([]float64, 0, len(result.Users))
	for _, u := range result.Users {
		volumes = append(volumes, u.DownloadedBits/8)
	}
	sort.Float64s(volumes)
	quartile := func(q float64) float64 {
		if len(volumes) == 0 {
			return 0
		}
		idx := int(q * float64(len(volumes)-1))
		return volumes[idx]
	}

	subscriber := energy.DefaultSubscriberModel()
	perBit := energy.Valancius()

	table := &Table{
		Title:   "Energy accounting: per-bit (paper) vs per-subscriber (related work)",
		Columns: []string{"metric", "per-bit", "per-subscriber"},
	}

	amortised := func(bytes float64) string {
		v, err := subscriber.AmortizedPerBit(bytes)
		if err != nil {
			return "n/a"
		}
		return fmt.Sprintf("%.0f nJ/bit", v)
	}
	table.Rows = append(table.Rows,
		[]string{
			"marginal cost per uploaded bit",
			fmt.Sprintf("%.0f nJ/bit (2lγm)", perBit.PeerModemPerBit()),
			"0 nJ/bit (modem already on)",
		},
		[]string{
			"p25 user's effective access cost",
			fmt.Sprintf("%.0f nJ/bit (ψs)", perBit.ServerPerBit()),
			amortised(quartile(0.25)),
		},
		[]string{
			"median user's effective access cost",
			fmt.Sprintf("%.0f nJ/bit (ψs)", perBit.ServerPerBit()),
			amortised(quartile(0.5)),
		},
		[]string{
			"p99 user's effective access cost",
			fmt.Sprintf("%.0f nJ/bit (ψs)", perBit.ServerPerBit()),
			amortised(quartile(0.99)),
		},
	)

	// Under per-subscriber accounting, hybrid delivery saves the server
	// side for free: savings equal the offload fraction of server-side
	// energy with no modem penalty at all.
	g := result.Total.Offload()
	perBitSavings := sim.Evaluate(result.Total, perBit).Savings
	table.Rows = append(table.Rows, []string{
		"system savings verdict",
		formatPercent(perBitSavings),
		formatPercent(g*perBit.PUE*(perBit.Server+perBit.CDNNetwork)/perBit.ServerPerBit()) + " (upload is free)",
	})
	return table, nil
}

package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/carbon"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// Fig6Result holds the per-user carbon credit transfer distribution of
// Fig. 6.
type Fig6Result struct {
	// CDF holds one per-user CCT CDF series per energy model.
	CDF Dataset
	// Summary quotes the carbon positive population share per model.
	Summary *Table
}

// Fig6 regenerates Fig. 6: the distribution of per-user carbon footprints
// after the CDN's savings are transferred to uploading users as carbon
// credits.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("fig6", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}

	res := &Fig6Result{
		CDF: Dataset{
			Title:  "Fig. 6: CDF of per-user carbon credit transfer",
			XLabel: "per user carbon credit transfer",
			YLabel: "cdf",
		},
		Summary: &Table{
			Title:   "Fig. 6 summary",
			Columns: []string{"metric"},
		},
	}

	positiveRow := []string{"carbon positive users"}
	medianRow := []string{"median per-user CCT"}
	systemRow := []string{"collective CCT (all users)"}
	for _, params := range cfg.Models {
		dist := carbon.Distribute(result.Users, params)
		res.CDF.Series = append(res.CDF.Series, Series{Name: params.Name, Points: dist.CDF})

		res.Summary.Columns = append(res.Summary.Columns, params.Name)
		positiveRow = append(positiveRow, formatPercent(dist.CarbonPositive))
		medianRow = append(medianRow, fmt.Sprintf("%.3f", dist.Median))
		systemRow = append(systemRow, fmt.Sprintf("%.3f",
			carbon.Transfer(result.Users, params).NetNormalized))
	}
	res.Summary.Rows = append(res.Summary.Rows, positiveRow, medianRow, systemRow)
	return res, nil
}

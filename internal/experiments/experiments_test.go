package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"consumelocal/internal/stats"
)

// failingWriter errors after a fixed number of successful writes,
// exercising the writers' error propagation.
type failingWriter struct {
	remaining int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errors.New("sink full")
	}
	w.remaining--
	return len(p), nil
}

// testConfig is a fast experiment configuration for unit tests.
func testConfig() Config {
	return Config{Scale: 0.002, Days: 10, Seed: 3, UploadRatio: 1.0}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale <= 0 || cfg.Days <= 0 || cfg.UploadRatio <= 0 {
		t.Errorf("default config has zero knobs: %+v", cfg)
	}
	if len(cfg.Models) != 2 {
		t.Errorf("default config should evaluate both models, got %d", len(cfg.Models))
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != DefaultConfig().Scale || len(cfg.Models) != 2 {
		t.Errorf("withDefaults did not fill: %+v", cfg)
	}
	// Explicit values survive.
	cfg = Config{Scale: 0.5, Days: 3}.withDefaults()
	if cfg.Scale != 0.5 || cfg.Days != 3 {
		t.Errorf("withDefaults overwrote explicit values: %+v", cfg)
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var tsv bytes.Buffer
	if err := table.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "a\tlong-column") {
		t.Errorf("TSV missing header: %q", tsv.String())
	}
	if !strings.Contains(tsv.String(), "333\t4") {
		t.Errorf("TSV missing row: %q", tsv.String())
	}

	var txt bytes.Buffer
	if err := table.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "T") || !strings.Contains(txt.String(), "333") {
		t.Errorf("text rendering incomplete: %q", txt.String())
	}
}

func TestDatasetRendering(t *testing.T) {
	ds := &Dataset{
		Title:  "D",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "s1", Points: []stats.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
			{Name: "empty"},
		},
	}
	var tsv bytes.Buffer
	if err := ds.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "s1\t1\t2") {
		t.Errorf("TSV missing point: %q", tsv.String())
	}
	var txt bytes.Buffer
	if err := ds.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "(empty)") {
		t.Errorf("text rendering should mark empty series: %q", txt.String())
	}
}

func TestWritersPropagateErrors(t *testing.T) {
	table := &Table{
		Title:   "T",
		Columns: []string{"a"},
		Rows:    [][]string{{"1"}, {"2"}},
	}
	ds := &Dataset{
		Title:  "D",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "s1", Points: []stats.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}},
			{Name: "s2", Points: []stats.Point{{X: 5, Y: 6}, {X: 7, Y: 8}}},
		},
	}
	// Every prefix length of successful writes (below the smallest
	// artifact's write count) must still surface the eventual failure.
	for failAt := 0; failAt < 3; failAt++ {
		if err := table.WriteTSV(&failingWriter{remaining: failAt}); err == nil {
			t.Errorf("table WriteTSV with failure at %d: expected error", failAt)
		}
		if err := table.RenderText(&failingWriter{remaining: failAt}); err == nil {
			t.Errorf("table RenderText with failure at %d: expected error", failAt)
		}
		if err := ds.WriteTSV(&failingWriter{remaining: failAt}); err == nil {
			t.Errorf("dataset WriteTSV with failure at %d: expected error", failAt)
		}
		if err := ds.RenderText(&failingWriter{remaining: failAt}); err == nil {
			t.Errorf("dataset RenderText with failure at %d: expected error", failAt)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := formatCount(1234567); got != "1,234,567" {
		t.Errorf("formatCount = %q", got)
	}
	if got := formatCount(999); got != "999" {
		t.Errorf("formatCount = %q", got)
	}
	if got := formatCount(1000); got != "1,000" {
		t.Errorf("formatCount = %q", got)
	}
	if got := formatPercent(0.247); got != "24.7%" {
		t.Errorf("formatPercent = %q", got)
	}
	if got := formatFloat(0.5); got != "0.5" {
		t.Errorf("formatFloat = %q", got)
	}
}

func TestTable1(t *testing.T) {
	table, err := Table1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("Table1 has %d rows, want 5", len(table.Rows))
	}
	if len(table.Columns) != 3 {
		t.Fatalf("Table1 has %d columns, want 3 (metric + two months)", len(table.Columns))
	}
	// Users < IP-sharing users? The IP count must be below the user count
	// (Table I: users share public IPs).
	users := table.Rows[0]
	ips := table.Rows[1]
	for col := 1; col <= 2; col++ {
		if parseCount(t, ips[col]) >= parseCount(t, users[col]) {
			t.Errorf("column %d: IPs (%s) should be fewer than users (%s)", col, ips[col], users[col])
		}
	}
	// The second month models service growth: more users.
	if parseCount(t, users[2]) <= parseCount(t, users[1]) {
		t.Errorf("jul-2014 users (%s) should exceed sep-2013 (%s)", users[2], users[1])
	}
}

func parseCount(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r == ',' {
			continue
		}
		if r < '0' || r > '9' {
			t.Fatalf("not a count: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func TestTable3MatchesPaper(t *testing.T) {
	table := Table3()
	if len(table.Rows) != 3 {
		t.Fatalf("Table3 has %d rows", len(table.Rows))
	}
	if table.Rows[0][1] != "345" || table.Rows[1][1] != "9" || table.Rows[2][1] != "1" {
		t.Errorf("Table3 counts wrong: %+v", table.Rows)
	}
	if table.Rows[0][2] != "0.3%" { // 1/345 = 0.29% rounds to 0.3%
		t.Errorf("exchange probability cell = %q", table.Rows[0][2])
	}
	if table.Rows[1][2] != "11.1%" {
		t.Errorf("pop probability cell = %q", table.Rows[1][2])
	}
	if table.Rows[2][2] != "100.0%" {
		t.Errorf("core probability cell = %q", table.Rows[2][2])
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	table := Table4(Config{})
	if len(table.Columns) != 3 {
		t.Fatalf("Table4 columns = %v", table.Columns)
	}
	// Spot-check the γs row: 211.1 (Valancius) and 281.3 (Baliga).
	if table.Rows[0][1] != "211.1" || table.Rows[0][2] != "281.3" {
		t.Errorf("server row = %v", table.Rows[0])
	}
	// γcdn row.
	if table.Rows[2][1] != "1050.0" || table.Rows[2][2] != "142.5" {
		t.Errorf("cdn row = %v", table.Rows[2])
	}
}

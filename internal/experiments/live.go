package experiments

import (
	"fmt"
	"runtime"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// Live contrasts the paper's catch-up workload with the live-streaming
// scenario it lists as future work: the same delivery volume, but
// synchronised around broadcast schedules. Live swarms reach audience-
// sized concurrency, pushing savings toward the asymptotic bound, while a
// catch-up workload of equal volume spreads the same sessions across a
// day and a catalogue.
func Live(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()

	liveCfg := trace.DefaultLiveConfig(cfg.Scale)
	liveCfg.Seed = cfg.Seed
	live, err := trace.GenerateLive(liveCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live: %w", err)
	}

	cuCfg := cfg.generatorConfig("live-vs-catchup", cfg.Seed)
	cuCfg.Days = 1
	cuCfg.TargetSessions = len(live.Sessions)
	catchup, err := trace.Generate(cuCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: live: %w", err)
	}

	table := &Table{
		Title:   "Live broadcasts vs catch-up viewing (equal session volume)",
		Columns: []string{"workload", "sessions", "offload"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"live evening", live},
		{"catch-up day", catchup},
	} {
		simCfg := sim.DefaultConfig(cfg.UploadRatio)
		simCfg.TrackUsers = false
		result, err := sim.RunParallel(tc.tr, simCfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, fmt.Errorf("experiments: live: %s: %w", tc.name, err)
		}
		row := []string{tc.name, formatCount(len(tc.tr.Sessions)), formatPercent(result.Total.Offload())}
		for _, params := range cfg.Models {
			row = append(row, formatPercent(sim.Evaluate(result.Total, params).Savings))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

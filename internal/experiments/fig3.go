package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
	"consumelocal/internal/trace"
)

// Fig3Result bundles the distributions of Fig. 3 plus the headline
// skewness numbers quoted in Section IV.B.2.
type Fig3Result struct {
	// Capacities is the CCDF of per-swarm capacities (Fig. 3 left).
	Capacities Dataset
	// Savings is the CCDF of per-swarm energy savings, one series per
	// energy model (Fig. 3 right).
	Savings Dataset
	// Summary quotes median per-item savings and the share of total saved
	// energy captured by the top-1% most popular items.
	Summary *Table
}

// Fig3 regenerates Fig. 3: how swarm capacity and energy savings
// distribute across the content catalogue.
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("fig3", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	simCfg := sim.DefaultConfig(cfg.UploadRatio)
	simCfg.TrackUsers = false
	result, err := sim.RunParallel(tr, simCfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}

	res := &Fig3Result{
		Capacities: Dataset{
			Title:  "Fig. 3 (left): CCDF of per-swarm capacity",
			XLabel: "capacity",
			YLabel: "ccdf",
		},
		Savings: Dataset{
			Title:  "Fig. 3 (right): CCDF of per-swarm energy savings",
			XLabel: "energy savings",
			YLabel: "ccdf",
		},
		Summary: &Table{
			Title:   "Fig. 3 summary statistics",
			Columns: []string{"metric"},
		},
	}

	capacities := make([]float64, 0, len(result.Swarms))
	for _, sw := range result.Swarms {
		if sw.Tally.TotalBits <= 0 {
			continue
		}
		capacities = append(capacities, sw.Capacity)
	}
	res.Capacities.Series = []Series{{Name: "swarm capacity", Points: stats.CCDF(capacities)}}

	for _, params := range cfg.Models {
		res.Summary.Columns = append(res.Summary.Columns, params.Name)
	}

	medians := make([]string, 0, len(cfg.Models))
	topShares := make([]string, 0, len(cfg.Models))
	positives := make([]string, 0, len(cfg.Models))
	for _, params := range cfg.Models {
		savings := make([]float64, 0, len(result.Swarms))
		for _, saving := range result.SwarmSavings(params) {
			savings = append(savings, saving.Savings)
		}
		res.Savings.Series = append(res.Savings.Series, Series{
			Name:   params.Name,
			Points: stats.CCDF(savings),
		})

		median, err := stats.Median(savings)
		if err != nil {
			median = 0
		}
		medians = append(medians, formatPercent(median))
		topShares = append(topShares, formatPercent(topItemSavingsShare(tr, result, params, 0.01)))
		positives = append(positives, formatPercent(stats.FractionAbove(savings, 0)))
	}
	res.Summary.Rows = append(res.Summary.Rows,
		append([]string{"median per-swarm savings"}, medians...),
		append([]string{"top-1% items' share of saved energy"}, topShares...),
		append([]string{"swarms with positive savings"}, positives...),
	)
	return res, nil
}

// topItemSavingsShare computes the fraction of total saved energy captured
// by the `frac` most-viewed share of content items ("the Top-1% of the
// popular items obtain over 21% (33%) of energy savings", Section IV.B.2).
func topItemSavingsShare(tr *trace.Trace, result *sim.Result, params energy.Params, frac float64) float64 {
	items := itemSavings(tr, result, params)
	if len(items) == 0 {
		return 0
	}
	topN := int(float64(len(items)) * frac)
	if topN < 1 {
		topN = 1
	}
	var top, total float64
	for i, it := range items {
		// Only positive contributions count as "savings obtained".
		if it.savedJ <= 0 {
			continue
		}
		total += it.savedJ
		if i < topN {
			top += it.savedJ
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// itemSaving is the saved energy of one content item under one model.
type itemSaving struct {
	content uint32
	views   int
	savedJ  float64
}

// itemSavings aggregates saved joules per content item, ordered by
// decreasing popularity.
func itemSavings(tr *trace.Trace, result *sim.Result, params energy.Params) []itemSaving {
	views := tr.ViewCounts()
	byItem := make(map[uint32]float64)
	for _, sw := range result.Swarms {
		rep := sim.Evaluate(sw.Tally, params)
		byItem[sw.Key.Content] += rep.BaselineJoules - rep.HybridJoules
	}
	out := make([]itemSaving, 0, len(byItem))
	for content, saved := range byItem {
		out = append(out, itemSaving{content: content, views: views[content], savedJ: saved})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].views != out[j].views {
			return out[i].views > out[j].views
		}
		return out[i].content < out[j].content
	})
	return out
}

package experiments

import (
	"math"
	"testing"

	"consumelocal/internal/stats"
)

func TestFig2ShapeAndBands(t *testing.T) {
	res, err := Fig2(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theory) != 2 || len(res.Simulation) != 2 {
		t.Fatalf("expected datasets for both models: theory %d, sim %d",
			len(res.Theory), len(res.Simulation))
	}
	if len(res.Tiers.Rows) != 3 {
		t.Fatalf("expected 3 popularity tiers, got %d", len(res.Tiers.Rows))
	}

	// Theory: one curve per ratio, each monotone in capacity.
	for _, ds := range res.Theory {
		if len(ds.Series) != len(Fig2Ratios) {
			t.Fatalf("%s: %d theory series, want %d", ds.Title, len(ds.Series), len(Fig2Ratios))
		}
		for _, s := range ds.Series {
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].Y < s.Points[i-1].Y-1e-9 {
					t.Errorf("%s %s: savings not monotone in capacity", ds.Title, s.Name)
					break
				}
			}
		}
		// Higher q/β dominates at fixed capacity.
		lastLow := ds.Series[0].Points[len(ds.Series[0].Points)-1].Y
		lastHigh := ds.Series[len(ds.Series)-1].Points[len(ds.Series[0].Points)-1].Y
		if lastHigh <= lastLow {
			t.Errorf("%s: q/β=1.0 savings (%v) should exceed q/β=0.2 (%v)", ds.Title, lastHigh, lastLow)
		}
	}

	// Simulation points exist for every tier and stay within sane bounds.
	for _, ds := range res.Simulation {
		if len(ds.Series) == 0 {
			t.Fatalf("%s: no simulation series", ds.Title)
		}
		var nPopular int
		for _, s := range ds.Series {
			for _, p := range s.Points {
				if p.Y < -1 || p.Y > 1 {
					t.Errorf("%s %s: savings %v out of range", ds.Title, s.Name, p.Y)
				}
			}
			if len(s.Points) > 0 && hasPrefix(s.Name, "sim popular") {
				nPopular += len(s.Points)
			}
		}
		if nPopular == 0 {
			t.Errorf("%s: no popular-tier simulation points", ds.Title)
		}
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// The central claim of Fig. 2: for the popular item at q/β = 1, theory and
// simulation agree, and the savings land in the paper's reported bands
// (higher for Valancius than Baliga).
func TestFig2TheorySimulationAgreement(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.005 // larger swarms for tighter statistics
	res, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range res.Simulation {
		theory := res.Theory[m]
		// Top-ratio series (q/β = 1.0) is the last one.
		theoryCurve := theory.Series[len(theory.Series)-1]

		for _, s := range res.Simulation[m].Series {
			if !hasPrefix(s.Name, "sim popular") {
				continue
			}
			for _, p := range s.Points {
				// Only compare the q/β=1.0 points: they are the last
				// fifth of the series points, but easier is to compare
				// against interpolated theory at the same capacity and
				// accept the envelope of all ratios.
				theo := interpolate(theoryCurve.Points, p.X)
				if p.Y > theo+0.08 {
					t.Errorf("%s %s: sim %v far above q/β=1 theory %v at c=%v",
						res.Simulation[m].Title, s.Name, p.Y, theo, p.X)
				}
			}
		}
	}
}

// interpolate evaluates a piecewise-linear curve at x (clamped to ends).
func interpolate(points []stats.Point, x float64) float64 {
	if len(points) == 0 {
		return 0
	}
	if x <= points[0].X {
		return points[0].Y
	}
	for i := 1; i < len(points); i++ {
		if x <= points[i].X {
			frac := (x - points[i-1].X) / (points[i].X - points[i-1].X)
			return points[i-1].Y + frac*(points[i].Y-points[i-1].Y)
		}
	}
	return points[len(points)-1].Y
}

func TestFig3Distributions(t *testing.T) {
	res, err := Fig3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacities.Series) != 1 || len(res.Capacities.Series[0].Points) == 0 {
		t.Fatal("missing capacity CCDF")
	}
	if len(res.Savings.Series) != 2 {
		t.Fatalf("savings CCDF series = %d, want 2", len(res.Savings.Series))
	}
	// CCDF starts at 1 and decreases.
	ccdf := res.Capacities.Series[0].Points
	if math.Abs(ccdf[0].Y-1) > 1e-9 {
		t.Errorf("CCDF starts at %v, want 1", ccdf[0].Y)
	}
	// Heavy tail: the maximum capacity should dominate the median by a
	// large factor (the paper's catalogue spans ~5 orders of magnitude).
	minCap, maxCap := ccdf[0].X, ccdf[len(ccdf)-1].X
	if maxCap < 100*minCap {
		t.Errorf("capacity range [%v, %v] not heavy-tailed", minCap, maxCap)
	}
	if len(res.Summary.Rows) != 3 {
		t.Errorf("summary rows = %d, want 3", len(res.Summary.Rows))
	}
}

func TestFig4DailySavings(t *testing.T) {
	res, err := Fig4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets = %d, want 2", len(res.Datasets))
	}
	for _, ds := range res.Datasets {
		if len(ds.Series) != 2*len(Fig4ISPs) {
			t.Fatalf("%s: series = %d, want %d", ds.Title, len(ds.Series), 2*len(Fig4ISPs))
		}
		// Sim and theory must broadly agree day by day (the paper's
		// "simulation results match the theory").
		for i := 0; i < len(ds.Series); i += 2 {
			simS, theoS := ds.Series[i], ds.Series[i+1]
			if len(simS.Points) == 0 {
				t.Fatalf("%s: empty sim series %s", ds.Title, simS.Name)
			}
			var maxGap float64
			for j := range simS.Points {
				gap := math.Abs(simS.Points[j].Y - theoS.Points[j].Y)
				if gap > maxGap {
					maxGap = gap
				}
			}
			if maxGap > 0.12 {
				t.Errorf("%s: sim vs theory gap %.3f too large for %s", ds.Title, maxGap, simS.Name)
			}
		}
	}
	// Valancius savings exceed Baliga (dataset order follows config).
	simMean := func(ds Dataset) float64 {
		var vals []float64
		for i := 0; i < len(ds.Series); i += 2 {
			for _, p := range ds.Series[i].Points {
				vals = append(vals, p.Y)
			}
		}
		return stats.Mean(vals)
	}
	if simMean(res.Datasets[0]) <= simMean(res.Datasets[1]) {
		t.Errorf("valancius mean savings (%v) should exceed baliga (%v)",
			simMean(res.Datasets[0]), simMean(res.Datasets[1]))
	}
}

func TestFig5Decomposition(t *testing.T) {
	res, err := Fig5(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets = %d, want 2", len(res.Datasets))
	}
	for _, ds := range res.Datasets {
		if len(ds.Series) != 4 {
			t.Fatalf("%s: series = %d, want 4", ds.Title, len(ds.Series))
		}
		endToEnd, cdn, user, cct := ds.Series[0], ds.Series[1], ds.Series[2], ds.Series[3]
		n := len(endToEnd.Points)
		// CDN and User are mirror images.
		for i := 0; i < n; i++ {
			if math.Abs(cdn.Points[i].Y+user.Points[i].Y) > 1e-12 {
				t.Errorf("%s: CDN and User curves not mirrored at %v", ds.Title, cdn.Points[i].X)
				break
			}
		}
		// CCT starts at −1 (tiny swarms) and ends positive.
		if math.Abs(cct.Points[0].Y - -1) > 0.01 {
			t.Errorf("%s: CCT at c→0 = %v, want ≈ −1", ds.Title, cct.Points[0].Y)
		}
		if cct.Points[n-1].Y <= 0 {
			t.Errorf("%s: asymptotic CCT = %v, want positive", ds.Title, cct.Points[n-1].Y)
		}
		// End-to-end savings stay within (0, 1) and grow.
		if endToEnd.Points[n-1].Y <= endToEnd.Points[0].Y {
			t.Errorf("%s: end-to-end savings do not grow", ds.Title)
		}
	}
	if len(res.Summary.Rows) != 3 {
		t.Errorf("summary rows = %d", len(res.Summary.Rows))
	}
	// Paper: asymptotic CCT ≈ +18% (Valancius) and +58% (Baliga).
	asymptote := res.Summary.Rows[1]
	if asymptote[1] != "18.4%" {
		t.Errorf("valancius asymptote = %q, want 18.4%%", asymptote[1])
	}
	if asymptote[2] != "57.7%" {
		t.Errorf("baliga asymptote = %q, want 57.7%%", asymptote[2])
	}
}

func TestFig6CCTDistribution(t *testing.T) {
	res, err := Fig6(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDF.Series) != 2 {
		t.Fatalf("CDF series = %d, want 2", len(res.CDF.Series))
	}
	for _, s := range res.CDF.Series {
		if len(s.Points) == 0 {
			t.Fatalf("empty CDF for %s", s.Name)
		}
		last := s.Points[len(s.Points)-1]
		if math.Abs(last.Y-1) > 1e-9 {
			t.Errorf("%s: CDF ends at %v", s.Name, last.Y)
		}
		// CCT values live in [−1, asymptote ≈ 0.6).
		for _, p := range s.Points {
			if p.X < -1-1e-9 || p.X > 1 {
				t.Errorf("%s: CCT value %v out of range", s.Name, p.X)
			}
		}
	}
	// Baliga must turn more users carbon positive than Valancius.
	positives := res.Summary.Rows[0]
	if positives[0] != "carbon positive users" {
		t.Fatalf("unexpected summary layout: %v", positives)
	}
	v := parsePercent(t, positives[1])
	b := parsePercent(t, positives[2])
	if b <= v {
		t.Errorf("baliga positive share %v should exceed valancius %v", b, v)
	}
	if b == 0 {
		t.Error("no carbon positive users at all")
	}
}

func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	var x float64
	if _, err := fmtSscanf(s, &x); err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return x
}

// fmtSscanf parses "12.3%" without importing fmt in multiple spots.
func fmtSscanf(s string, out *float64) (int, error) {
	var x float64
	var frac, div float64 = 0, 1
	seenDot := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			if seenDot {
				div *= 10
				frac = frac*10 + float64(r-'0')
			} else {
				x = x*10 + float64(r-'0')
			}
		case r == '.':
			seenDot = true
		case r == '%':
			*out = x + frac/div
			return 1, nil
		}
	}
	*out = x + frac/div
	return 1, nil
}

func TestAblationMatching(t *testing.T) {
	table, err := AblationMatching(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	// Identical offload (matching does not change volume)...
	if table.Rows[0][1] != table.Rows[1][1] {
		t.Errorf("offload should not depend on matching policy: %v vs %v",
			table.Rows[0][1], table.Rows[1][1])
	}
	// ...but locality-first must save at least as much energy.
	for col := 2; col < 4; col++ {
		local := parsePercent(t, table.Rows[0][col])
		random := parsePercent(t, table.Rows[1][col])
		if local < random {
			t.Errorf("column %d: locality %v%% < random %v%%", col, local, random)
		}
	}
}

func TestAblationSwarmScope(t *testing.T) {
	table, err := AblationSwarmScope(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	// The paper configuration (row 0) is the lower bound on offload;
	// city-wide mixed-bitrate swarms (row 3) the upper bound.
	lower := parsePercent(t, table.Rows[0][1])
	upper := parsePercent(t, table.Rows[3][1])
	if upper < lower {
		t.Errorf("city-wide offload %v%% below restricted %v%%", upper, lower)
	}
}

func TestAblationBudget(t *testing.T) {
	table, err := AblationBudget(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	capped := parsePercent(t, table.Rows[0][1])
	uncapped := parsePercent(t, table.Rows[1][1])
	if uncapped < capped {
		t.Errorf("uncapped offload %v%% below capped %v%%", uncapped, capped)
	}
}

func TestAblationPlacement(t *testing.T) {
	table, err := AblationPlacement(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	// Under skewed placement the simulation must save at least as much as
	// the uniform-placement closed form: peers co-locate more often than
	// the theory assumes, never less.
	for _, row := range table.Rows[1:] {
		simS := parsePercent(t, row[2])
		theoS := parsePercent(t, row[3])
		if simS < theoS-1.5 {
			t.Errorf("%s: sim %v%% below theory %v%%", row[0], simS, theoS)
		}
	}
}

func TestPlacementGapGrowsWithSkew(t *testing.T) {
	cfg := testConfig()
	flat, err := PlacementGap(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PlacementGap(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if skewed <= flat {
		t.Errorf("sim-theory gap should grow with skew: %v vs %v", skewed, flat)
	}
}

func TestAblationParticipation(t *testing.T) {
	table, err := AblationParticipation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(ParticipationRates) {
		t.Fatalf("rows = %d, want %d", len(table.Rows), len(ParticipationRates))
	}
	// Offload must fall monotonically as participation drops.
	prev := 101.0
	for i, row := range table.Rows {
		got := parsePercent(t, row[1])
		if got > prev+1e-9 {
			t.Errorf("row %d: offload %v%% above previous %v%%", i, got, prev)
		}
		prev = got
	}
}

func TestLiveBeatsCatchUp(t *testing.T) {
	table, err := Live(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	liveOffload := parsePercent(t, table.Rows[0][2])
	cuOffload := parsePercent(t, table.Rows[1][2])
	if liveOffload <= cuOffload {
		t.Errorf("live offload %v%% should exceed catch-up %v%%", liveOffload, cuOffload)
	}
	// Live synchronisation approaches the asymptotic bound: savings in
	// the paper's popular-item band for Valancius.
	liveSavings := parsePercent(t, table.Rows[0][3])
	if liveSavings < 35 {
		t.Errorf("live savings %v%% should reach the paper's 35-48%% band", liveSavings)
	}
}

func TestAccounting(t *testing.T) {
	table, err := Accounting(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(table.Rows))
	}
	if table.Rows[0][2] != "0 nJ/bit (modem already on)" {
		t.Errorf("marginal upload row = %v", table.Rows[0])
	}
	// Skew argument: the p25 user's amortised per-subscriber cost must
	// far exceed the p99 user's.
	light := parseLeadingNumber(t, table.Rows[1][2])
	heavy := parseLeadingNumber(t, table.Rows[3][2])
	if light <= heavy {
		t.Errorf("light-user amortised cost %v should exceed heavy-user %v", light, heavy)
	}
}

// parseLeadingNumber extracts the leading float of a cell like
// "12345 nJ/bit".
func parseLeadingNumber(t *testing.T, s string) float64 {
	t.Helper()
	var x float64
	seen := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			x = x*10 + float64(r-'0')
			seen = true
			continue
		}
		break
	}
	if !seen {
		t.Fatalf("no leading number in %q", s)
	}
	return x
}

func TestProvisioning(t *testing.T) {
	table, err := Provisioning(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 2 {
		t.Fatalf("rows = %d, want system + per-ISP", len(table.Rows))
	}
	if table.Rows[0][0] != "system" {
		t.Errorf("first row should be the system scope: %v", table.Rows[0])
	}
	// Peak reduction positive for the system.
	if got := parsePercent(t, table.Rows[0][3]); got <= 0 {
		t.Errorf("system peak reduction = %v%%, want positive", got)
	}
}

func TestScaleSweep(t *testing.T) {
	table, err := ScaleSweep(testConfig(), []float64{0.001, 0.003})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	// Aggregate offload grows with scale: bigger traces, bigger swarms.
	small := parsePercent(t, table.Rows[0][2])
	large := parsePercent(t, table.Rows[1][2])
	if large <= small {
		t.Errorf("offload should grow with scale: %v%% at 0.001 vs %v%% at 0.003", small, large)
	}
}

func TestScaleSweepDefaultScales(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep is slow")
	}
	cfg := testConfig()
	cfg.Days = 5
	table, err := ScaleSweep(cfg, []float64{0.002, 0.008})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestAblationTopology(t *testing.T) {
	ds, err := AblationTopology(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(ds.Series))
	}
	// A flatter metro (fewer exchanges) localises more easily at small
	// capacities: at c = 1 the 50/2 shape should save at least as much as
	// the 1000/20 shape.
	var flat, dense float64
	for _, s := range ds.Series {
		y := interpolate(s.Points, 1.0)
		switch s.Name {
		case "flat metro 50/2":
			flat = y
		case "dense edge 1000/20":
			dense = y
		}
	}
	if flat < dense {
		t.Errorf("flat metro savings %v below dense edge %v at c=1", flat, dense)
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"consumelocal/internal/core"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
	"consumelocal/internal/swarm"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Fig2Ratios are the q/β values the paper sweeps in Fig. 2.
var Fig2Ratios = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Fig2Result bundles the theory curves and simulation points of Fig. 2.
type Fig2Result struct {
	// Theory holds one dataset per energy model; each dataset has one
	// S(c) curve per q/β ratio.
	Theory []Dataset
	// Simulation holds one dataset per energy model; each dataset has one
	// point cloud per popularity tier, with one point per (ISP, q/β)
	// combination at the swarm's empirical capacity.
	Simulation []Dataset
	// Tiers documents which content items were selected per tier.
	Tiers *Table
}

// fig2Tier is one of the three popularity columns of Fig. 2.
type fig2Tier struct {
	name    string
	content uint32
	views   int
}

// Fig2 regenerates Fig. 2: per-content-item energy savings against swarm
// capacity — closed-form curves for each q/β, and simulation points for
// exemplar items of high, medium and low popularity across the top five
// ISPs, under both energy models.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	tr, err := trace.Generate(cfg.generatorConfig("fig2", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2: %w", err)
	}

	tiers := selectTiers(tr)
	probs := topology.DefaultLondon().Probabilities()

	res := &Fig2Result{
		Tiers: &Table{
			Title:   "Fig. 2 exemplar content items",
			Columns: []string{"tier", "content id", "views"},
		},
	}
	for _, tier := range tiers {
		res.Tiers.Rows = append(res.Tiers.Rows, []string{
			tier.name, fmt.Sprintf("%d", tier.content), formatCount(tier.views),
		})
	}

	// Theory curves per model and ratio.
	capGrid := stats.LogSpace(0.01, 100, 120)
	for _, params := range cfg.Models {
		model, err := core.New(params, probs)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2: %w", err)
		}
		ds := Dataset{
			Title:  fmt.Sprintf("Fig. 2 theory (%s)", params.Name),
			XLabel: "capacity",
			YLabel: "energy savings",
		}
		for _, ratio := range Fig2Ratios {
			s := Series{Name: fmt.Sprintf("theory q/b=%.1f", ratio)}
			for _, c := range capGrid {
				s.Points = append(s.Points, stats.Point{X: c, Y: model.Savings(c, ratio)})
			}
			ds.Series = append(ds.Series, s)
		}
		res.Theory = append(res.Theory, ds)
	}

	// Simulation points: per tier, run the item's sub-trace for each
	// ratio, then extract the SD-class swarm of every ISP (the dominant
	// bitrate class, matching the single-β theory curves).
	type simPoint struct {
		tier  string
		isp   int16
		ratio float64
		cap_  float64
		tally sim.Tally
	}
	var points []simPoint
	for _, tier := range tiers {
		sub := filterContent(tr, tier.content)
		for _, ratio := range Fig2Ratios {
			simCfg := sim.DefaultConfig(ratio)
			simCfg.TrackUsers = false
			result, err := sim.RunParallel(sub, simCfg, runtime.GOMAXPROCS(0))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2: tier %s: %w", tier.name, err)
			}
			for _, sw := range result.Swarms {
				if sw.Key.Bitrate != int32(trace.BitrateSD) || sw.Tally.TotalBits <= 0 {
					continue
				}
				points = append(points, simPoint{
					tier:  tier.name,
					isp:   sw.Key.ISP,
					ratio: ratio,
					cap_:  sw.Capacity,
					tally: sw.Tally,
				})
			}
		}
	}

	for _, params := range cfg.Models {
		ds := Dataset{
			Title:  fmt.Sprintf("Fig. 2 simulation (%s)", params.Name),
			XLabel: "capacity",
			YLabel: "energy savings",
		}
		bySeries := make(map[string]*Series)
		var order []string
		for _, p := range points {
			name := fmt.Sprintf("sim %s ISP-%d", p.tier, p.isp+1)
			s, ok := bySeries[name]
			if !ok {
				s = &Series{Name: name}
				bySeries[name] = s
				order = append(order, name)
			}
			s.Points = append(s.Points, stats.Point{
				X: p.cap_,
				Y: sim.Evaluate(p.tally, params).Savings,
			})
		}
		sort.Strings(order)
		for _, name := range order {
			ds.Series = append(ds.Series, *bySeries[name])
		}
		res.Simulation = append(res.Simulation, ds)
	}
	return res, nil
}

// selectTiers picks the three exemplar items of Fig. 2: the most popular
// item, one with roughly a tenth of its views, and one with roughly a
// hundredth (the paper's 100K / 10K / 1K split).
func selectTiers(tr *trace.Trace) []fig2Tier {
	counts := tr.ViewCounts()
	popular := 0
	for id, c := range counts {
		if c > counts[popular] {
			popular = id
		}
	}
	medium := closestViews(counts, counts[popular]/10)
	niche := closestViews(counts, counts[popular]/100)
	return []fig2Tier{
		{name: "popular", content: uint32(popular), views: counts[popular]},
		{name: "medium", content: uint32(medium), views: counts[medium]},
		{name: "niche", content: uint32(niche), views: counts[niche]},
	}
}

// closestViews returns the item whose view count is closest to target
// (but at least 1 view).
func closestViews(counts []int, target int) int {
	best := -1
	for id, c := range counts {
		if c < 1 {
			continue
		}
		if best < 0 || abs(c-target) < abs(counts[best]-target) {
			best = id
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// filterContent builds the sub-trace holding only the sessions of one
// content item.
func filterContent(tr *trace.Trace, content uint32) *trace.Trace {
	sub := &trace.Trace{
		Name:       fmt.Sprintf("%s-item%d", tr.Name, content),
		Epoch:      tr.Epoch,
		HorizonSec: tr.HorizonSec,
		NumUsers:   tr.NumUsers,
		NumContent: tr.NumContent,
		NumISPs:    tr.NumISPs,
	}
	for _, s := range tr.Sessions {
		if s.ContentID == content {
			sub.Sessions = append(sub.Sessions, s)
		}
	}
	return sub
}

// theoreticalSwarmSavings computes the traffic-weighted closed-form
// savings over a set of swarms — the "theo." curves of Fig. 4 and the
// aggregate comparisons. Each swarm contributes S(c_swarm) weighted by its
// useful traffic.
func theoreticalSwarmSavings(model *core.Model, swarms []*swarm.Swarm, horizon int64, ratio float64) float64 {
	var values, weights []float64
	for _, sw := range swarms {
		values = append(values, model.Savings(sw.Capacity(horizon), ratio))
		weights = append(weights, sw.Bytes())
	}
	return stats.WeightedMean(values, weights)
}

package experiments

import (
	"fmt"

	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Table1 regenerates the paper's Table I: dataset description for two
// month-long traces (the paper uses Sep 2013 and Jul 2014; we generate two
// independent synthetic months with slightly different populations, as the
// real service grew between the two samples).
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()

	gcSep := cfg.generatorConfig("sep-2013", cfg.Seed)
	gcJul := cfg.generatorConfig("jul-2014", cfg.Seed+1)
	// The service grew ~9% in users and ~3% in sessions between samples.
	gcJul.NumUsers = int(float64(gcJul.NumUsers) * 1.09)
	gcJul.TargetSessions = int(float64(gcJul.TargetSessions) * 1.03)

	table := &Table{
		Title:   "Table I: Description of the dataset",
		Columns: []string{"metric", gcSep.Name, gcJul.Name},
	}

	summaries := make([]trace.Summary, 0, 2)
	for _, gc := range []trace.GeneratorConfig{gcSep, gcJul} {
		tr, err := trace.Generate(gc)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1: %w", err)
		}
		summaries = append(summaries, tr.Summarize())
	}

	table.Rows = [][]string{
		{"Number of Users", formatCount(summaries[0].Users), formatCount(summaries[1].Users)},
		{"Number of IP addresses", formatCount(summaries[0].IPAddresses), formatCount(summaries[1].IPAddresses)},
		{"Number of Sessions", formatCount(summaries[0].Sessions), formatCount(summaries[1].Sessions)},
		{"Users per IP", fmt.Sprintf("%.2f", summaries[0].UsersPerIP()), fmt.Sprintf("%.2f", summaries[1].UsersPerIP())},
		{"Mean session (s)", fmt.Sprintf("%.0f", summaries[0].MeanSessionSec), fmt.Sprintf("%.0f", summaries[1].MeanSessionSec)},
	}
	return table, nil
}

// Table3 regenerates the paper's Table III: the number of nodes and the
// localisation probability at each layer of the ISP metropolitan tree.
func Table3() *Table {
	topo := topology.DefaultLondon()
	probs := topo.Probabilities()
	return &Table{
		Title:   "Table III: Probability of localising peers within a given layer",
		Columns: []string{"layer", "count", "localisation probability"},
		Rows: [][]string{
			{"Exchange Point", formatCount(topo.Exchanges()), formatPercent(probs.Exchange)},
			{"Point of Presence", formatCount(topo.PoPs()), formatPercent(probs.PoP)},
			{"Core Router", "1", formatPercent(probs.Core)},
		},
	}
}

// Table4 regenerates the paper's Table IV: the per-bit energy parameters
// of the Valancius et al. and Baliga et al. models.
func Table4(cfg Config) *Table {
	cfg = cfg.withDefaults()
	table := &Table{
		Title:   "Table IV: Energy parameters (nJ/bit)",
		Columns: []string{"variable"},
	}
	for _, p := range cfg.Models {
		table.Columns = append(table.Columns, p.Name)
	}

	rows := []struct {
		label string
		value func(pIdx int) string
	}{
		{"Content Server (γs)", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].Server) }},
		{"End User Modem (γm)", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].Modem) }},
		{"Traditional CDN Network (γcdn)", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].CDNNetwork) }},
		{"P2P Network within ExP (γexp)", func(i int) string { return fmt.Sprintf("%.2f", cfg.Models[i].ExchangeNetwork) }},
		{"P2P Network within PoP (γpop)", func(i int) string { return fmt.Sprintf("%.2f", cfg.Models[i].PoPNetwork) }},
		{"P2P Network within Core (γcore)", func(i int) string { return fmt.Sprintf("%.2f", cfg.Models[i].CoreNetwork) }},
		{"Power Efficiency (PUE)", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].PUE) }},
		{"End-user energy loss (l)", func(i int) string { return fmt.Sprintf("%.2f", cfg.Models[i].Loss) }},
		{"ψs = PUE(γs+γcdn)+lγm", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].ServerPerBit()) }},
		{"ψm_p = 2lγm", func(i int) string { return fmt.Sprintf("%.1f", cfg.Models[i].PeerModemPerBit()) }},
	}
	for _, r := range rows {
		row := []string{r.label}
		for i := range cfg.Models {
			row = append(row, r.value(i))
		}
		table.Rows = append(table.Rows, row)
	}
	return table
}

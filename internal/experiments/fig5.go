package experiments

import (
	"fmt"

	"consumelocal/internal/core"
	"consumelocal/internal/stats"
	"consumelocal/internal/topology"
)

// Fig5Result holds the savings decomposition of Fig. 5.
type Fig5Result struct {
	// Datasets holds one dataset per energy model with the four curves
	// End-to-End, CDN, User and CC Transfer against swarm capacity.
	Datasets []Dataset
	// Summary quotes the carbon-neutral offload point G* and the
	// asymptotic carbon positivity per model.
	Summary *Table
}

// Fig5 regenerates Fig. 5: how the system's energy savings decompose
// between the CDN and the users as swarm capacity grows, and where carbon
// credit transfer turns users carbon positive. This experiment is purely
// analytical (no trace or simulation), exactly as in the paper.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	probs := topology.DefaultLondon().Probabilities()
	grid := stats.LogSpace(0.001, 10000, 200)

	res := &Fig5Result{
		Summary: &Table{
			Title:   "Fig. 5 carbon credit transfer summary",
			Columns: []string{"metric"},
		},
	}
	neutralRow := []string{"carbon-neutral offload G*"}
	asymptoteRow := []string{"asymptotic CCT (G=1)"}
	crossoverRow := []string{"capacity where users turn carbon positive"}

	for _, params := range cfg.Models {
		model, err := core.New(params, probs)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5: %w", err)
		}
		ds := Dataset{
			Title:  fmt.Sprintf("Fig. 5 savings decomposition (%s)", params.Name),
			XLabel: "capacity",
			YLabel: "energy savings",
		}
		endToEnd := Series{Name: "End-to-End"}
		cdn := Series{Name: "CDN"}
		user := Series{Name: "User"}
		cct := Series{Name: "CC Transfer"}
		crossover := -1.0
		for _, c := range grid {
			b := model.Breakdown(c, cfg.UploadRatio)
			endToEnd.Points = append(endToEnd.Points, stats.Point{X: c, Y: b.EndToEnd})
			cdn.Points = append(cdn.Points, stats.Point{X: c, Y: b.CDN})
			user.Points = append(user.Points, stats.Point{X: c, Y: b.User})
			cct.Points = append(cct.Points, stats.Point{X: c, Y: b.CCTransfer})
			if crossover < 0 && b.CCTransfer >= 0 {
				crossover = c
			}
		}
		ds.Series = []Series{endToEnd, cdn, user, cct}
		res.Datasets = append(res.Datasets, ds)

		res.Summary.Columns = append(res.Summary.Columns, params.Name)
		if g, ok := model.CarbonNeutralOffload(); ok {
			neutralRow = append(neutralRow, fmt.Sprintf("%.3f", g))
		} else {
			neutralRow = append(neutralRow, "unreachable")
		}
		asymptoteRow = append(asymptoteRow, formatPercent(model.AsymptoticCCT()))
		if crossover >= 0 {
			crossoverRow = append(crossoverRow, fmt.Sprintf("%.2f", crossover))
		} else {
			crossoverRow = append(crossoverRow, "never")
		}
	}
	res.Summary.Rows = append(res.Summary.Rows, neutralRow, asymptoteRow, crossoverRow)
	return res, nil
}

package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"consumelocal/internal/matching"
	"consumelocal/internal/trace"
)

// cancellingPolicy wraps a real matching policy and cancels the run's
// context on its first Match call, counting every call so tests can
// verify the run stopped early instead of sweeping the whole trace.
type cancellingPolicy struct {
	inner  matching.Policy
	cancel context.CancelFunc
	calls  atomic.Int64
}

func (p *cancellingPolicy) Name() string { return p.inner.Name() }

func (p *cancellingPolicy) Match(peers []matching.Peer, demands, caps []float64, budget float64) (matching.Allocation, error) {
	p.calls.Add(1)
	p.cancel()
	return p.inner.Match(peers, demands, caps, budget)
}

func (p *cancellingPolicy) MatchInto(a *matching.Allocation, peers []matching.Peer, demands, caps []float64, budget float64) error {
	p.calls.Add(1)
	p.cancel()
	return p.inner.MatchInto(a, peers, demands, caps, budget)
}

// countingPolicy counts matching calls without interfering.
type countingPolicy struct {
	inner matching.Policy
	calls atomic.Int64
}

func (p *countingPolicy) Name() string { return p.inner.Name() }

func (p *countingPolicy) Match(peers []matching.Peer, demands, caps []float64, budget float64) (matching.Allocation, error) {
	p.calls.Add(1)
	return p.inner.Match(peers, demands, caps, budget)
}

func (p *countingPolicy) MatchInto(a *matching.Allocation, peers []matching.Peer, demands, caps []float64, budget float64) error {
	p.calls.Add(1)
	return p.inner.MatchInto(a, peers, demands, caps, budget)
}

func cancelTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 3
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunContextPreCancelled(t *testing.T) {
	tr := cancelTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, tr, DefaultConfig(1.0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run produced a result")
	}
}

// TestRunContextCancelsBetweenSweeps: cancellation raised mid-run (here
// from inside the very first interval's Match) must abort the run after
// the current swarm instead of sweeping the remaining thousands — the
// batch engine's cancellation-depth guarantee.
func TestRunContextCancelsBetweenSweeps(t *testing.T) {
	tr := cancelTestTrace(t)

	// Reference: how many Match calls does the full trace cost?
	full := DefaultConfig(1.0)
	counter := &countingPolicy{inner: full.Policy}
	full.Policy = counter
	if _, err := Run(tr, full); err != nil {
		t.Fatal(err)
	}
	totalCalls := counter.calls.Load()
	if totalCalls < 100 {
		t.Fatalf("test trace settled only %d intervals; too small to detect early abort", totalCalls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig(1.0)
	cp := &cancellingPolicy{inner: cfg.Policy, cancel: cancel}
	cfg.Policy = cp

	res, err := RunContext(ctx, tr, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run produced a result")
	}
	if got := cp.calls.Load(); got >= totalCalls/2 {
		t.Fatalf("cancelled run still settled %d of %d intervals; cancellation not observed between sweeps", got, totalCalls)
	}
}

func TestRunParallelContextPreCancelled(t *testing.T) {
	tr := cancelTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunParallelContext(ctx, tr, DefaultConfig(1.0), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallelContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run produced a result")
	}
}

// TestRunParallelContextCancelsBetweenSweeps: every pool worker must
// observe cancellation between its swarm sweeps.
func TestRunParallelContextCancelsBetweenSweeps(t *testing.T) {
	tr := cancelTestTrace(t)

	full := DefaultConfig(1.0)
	counter := &countingPolicy{inner: full.Policy}
	full.Policy = counter
	if _, err := RunParallel(tr, full, 4); err != nil {
		t.Fatal(err)
	}
	totalCalls := counter.calls.Load()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig(1.0)
	cp := &cancellingPolicy{inner: cfg.Policy, cancel: cancel}
	cfg.Policy = cp

	res, err := RunParallelContext(ctx, tr, cfg, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallelContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run produced a result")
	}
	if got := cp.calls.Load(); got >= totalCalls/2 {
		t.Fatalf("cancelled run still settled %d of %d intervals; cancellation not observed between sweeps", got, totalCalls)
	}
}

package sim

import (
	"math"
	"testing"

	"consumelocal/internal/energy"
)

func TestTallyPeerBitsAndOffload(t *testing.T) {
	tally := Tally{
		TotalBits:  1000,
		ServerBits: 400,
		LayerBits:  [energy.NumLayers]float64{300, 200, 100},
	}
	if got := tally.PeerBits(); got != 600 {
		t.Errorf("PeerBits = %v, want 600", got)
	}
	if got := tally.Offload(); got != 0.6 {
		t.Errorf("Offload = %v, want 0.6", got)
	}
	if got := (Tally{}).Offload(); got != 0 {
		t.Errorf("empty Offload = %v, want 0", got)
	}
}

func TestTallyAdd(t *testing.T) {
	a := Tally{TotalBits: 10, ServerBits: 5, LayerBits: [energy.NumLayers]float64{1, 2, 2}}
	b := Tally{TotalBits: 20, ServerBits: 10, LayerBits: [energy.NumLayers]float64{4, 3, 3}}
	a.Add(b)
	if a.TotalBits != 30 || a.ServerBits != 15 {
		t.Errorf("Add result = %+v", a)
	}
	if a.LayerBits != [energy.NumLayers]float64{5, 5, 5} {
		t.Errorf("layer bits = %v", a.LayerBits)
	}
}

func TestEvaluateServerOnlyHasNoSavings(t *testing.T) {
	tally := Tally{TotalBits: 1e9, ServerBits: 1e9}
	for _, p := range energy.BothModels() {
		rep := Evaluate(tally, p)
		if math.Abs(rep.Savings) > 1e-12 {
			t.Errorf("%s: server-only savings = %v, want 0", p.Name, rep.Savings)
		}
		if rep.BaselineJoules != rep.HybridJoules {
			t.Errorf("%s: baseline %v != hybrid %v", p.Name, rep.BaselineJoules, rep.HybridJoules)
		}
		if rep.Model != p.Name {
			t.Errorf("model label = %q", rep.Model)
		}
	}
}

func TestEvaluateExchangeLocalSharingSaves(t *testing.T) {
	// All traffic shared at exchange points: maximal saving.
	tally := Tally{TotalBits: 1e9}
	tally.LayerBits[energy.LayerExchange.Index()] = 1e9
	for _, p := range energy.BothModels() {
		rep := Evaluate(tally, p)
		want := 1 - (p.PeerModemPerBit()+p.PUE*p.ExchangeNetwork)/p.ServerPerBit()
		if math.Abs(rep.Savings-want) > 1e-12 {
			t.Errorf("%s: savings = %v, want %v", p.Name, rep.Savings, want)
		}
		if rep.Savings <= 0 {
			t.Errorf("%s: exchange-local sharing should save energy", p.Name)
		}
	}
}

func TestEvaluateCoreSharingSavesLessThanLocal(t *testing.T) {
	// In both published models even core-level sharing beats server
	// delivery per bit, but by far less than exchange-local sharing —
	// the gradient that makes "consume local" matter.
	core := Tally{TotalBits: 1e9}
	core.LayerBits[energy.LayerCore.Index()] = 1e9
	local := Tally{TotalBits: 1e9}
	local.LayerBits[energy.LayerExchange.Index()] = 1e9
	for _, p := range energy.BothModels() {
		coreRep := Evaluate(core, p)
		localRep := Evaluate(local, p)
		if coreRep.Savings <= 0 {
			t.Errorf("%s: core sharing savings = %v, want positive", p.Name, coreRep.Savings)
		}
		if coreRep.Savings >= localRep.Savings {
			t.Errorf("%s: core savings %v should be below local savings %v",
				p.Name, coreRep.Savings, localRep.Savings)
		}
	}
}

func TestEvaluateSharingCanLoseWithCheapCDN(t *testing.T) {
	// The paper notes savings can be negative (Section III.A). Construct a
	// parameter set with a cheap CDN path and an expensive edge: sharing
	// through the core then costs more than server delivery.
	p := energy.Params{
		Name:            "cheap-cdn",
		Server:          200,
		Modem:           100,
		CDNNetwork:      50,
		ExchangeNetwork: 100,
		PoPNetwork:      180,
		CoreNetwork:     245,
		PUE:             1.2,
		Loss:            1.07,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("constructed params invalid: %v", err)
	}
	tally := Tally{TotalBits: 1e9}
	tally.LayerBits[energy.LayerCore.Index()] = 1e9
	if rep := Evaluate(tally, p); rep.Savings >= 0 {
		t.Errorf("core sharing against a cheap CDN should lose energy, got savings %v", rep.Savings)
	}
}

func TestEvaluateEmptyTally(t *testing.T) {
	rep := Evaluate(Tally{}, energy.Valancius())
	if rep.Savings != 0 || rep.BaselineJoules != 0 || rep.HybridJoules != 0 {
		t.Errorf("empty tally report = %+v", rep)
	}
}

func TestEvaluateJoulesScale(t *testing.T) {
	// 1e9 bits at ψs nJ/bit = ψs joules.
	p := energy.Valancius()
	rep := Evaluate(Tally{TotalBits: 1e9, ServerBits: 1e9}, p)
	if math.Abs(rep.BaselineJoules-p.ServerPerBit()) > 1e-9 {
		t.Errorf("baseline = %v J, want %v J", rep.BaselineJoules, p.ServerPerBit())
	}
}

func TestPriceUser(t *testing.T) {
	p := energy.Valancius()
	stats := UserStats{DownloadedBits: 8e9, FromPeersBits: 4e9, UploadedBits: 2e9}
	ue := PriceUser(stats, p)
	wantConsumption := p.UserPerBit() * (8e9 + 2e9) * 1e-9
	wantCredit := p.ServerCreditPerBit() * 2e9 * 1e-9
	if math.Abs(ue.ConsumptionJoules-wantConsumption) > 1e-9 {
		t.Errorf("consumption = %v, want %v", ue.ConsumptionJoules, wantConsumption)
	}
	if math.Abs(ue.CreditJoules-wantCredit) > 1e-9 {
		t.Errorf("credit = %v, want %v", ue.CreditJoules, wantCredit)
	}
}

func TestNetNormalized(t *testing.T) {
	if got := (UserEnergy{ConsumptionJoules: 10, CreditJoules: 15}).NetNormalized(); got != 0.5 {
		t.Errorf("NetNormalized = %v, want 0.5", got)
	}
	if got := (UserEnergy{ConsumptionJoules: 10, CreditJoules: 0}).NetNormalized(); got != -1 {
		t.Errorf("no-credit NetNormalized = %v, want -1", got)
	}
	if got := (UserEnergy{}).NetNormalized(); got != -1 {
		t.Errorf("zero-consumption NetNormalized = %v, want -1", got)
	}
}

func TestNonSharingUserIsFullyCarbonNegative(t *testing.T) {
	stats := UserStats{DownloadedBits: 1e9}
	for _, p := range energy.BothModels() {
		if got := PriceUser(stats, p).NetNormalized(); got != -1 {
			t.Errorf("%s: non-sharing user CCT = %v, want -1", p.Name, got)
		}
	}
}

package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"consumelocal/internal/core"
	"consumelocal/internal/energy"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// poissonSwarmTrace builds a single-swarm trace with Poisson arrivals at
// rate r and exponential session durations with mean u, exactly the M/M/∞
// dynamics behind the closed form. Users are placed uniformly over the
// ISP's exchange points.
func poissonSwarmTrace(t *testing.T, seed int64, rate, meanDuration float64, horizon int64) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := topology.DefaultLondon()

	var sessions []trace.Session
	now := 0.0
	user := uint32(0)
	for {
		now += rng.ExpFloat64() / rate
		start := int64(now)
		if start >= horizon {
			break
		}
		dur := int32(rng.ExpFloat64() * meanDuration)
		if dur < 1 {
			dur = 1
		}
		if start+int64(dur) > horizon {
			dur = int32(horizon - start)
			if dur < 1 {
				continue
			}
		}
		sessions = append(sessions, trace.Session{
			UserID:      user,
			ContentID:   0,
			ISP:         0,
			Exchange:    uint16(rng.Intn(topo.Exchanges())),
			StartSec:    start,
			DurationSec: dur,
			Bitrate:     trace.BitrateSD,
		})
		user++
	}
	return &trace.Trace{
		Name:       "poisson",
		Epoch:      time.Unix(0, 0).UTC(),
		HorizonSec: horizon,
		NumUsers:   int(user) + 1,
		NumContent: 1,
		NumISPs:    1,
		Sessions:   sessions,
	}
}

// TestTheoryMatchesSimulation is the reproduction of the paper's own
// validation (Fig. 2): the closed-form savings S(c) must agree with the
// trace-driven simulation across capacities, q/β ratios and both energy
// models. The simulation is an independent code path (event sweep, greedy
// matching, byte accounting), so agreement here validates Eq. 12 end to
// end.
func TestTheoryMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration simulation")
	}
	probs := topology.DefaultLondon().Probabilities()

	cases := []struct {
		name         string
		rate         float64 // arrivals per second
		meanDuration float64 // seconds
		ratio        float64
		tolerance    float64 // absolute savings tolerance
	}{
		{"tiny swarm", 0.0004, 1000, 1.0, 0.02},
		{"unit capacity", 0.001, 1000, 1.0, 0.03},
		{"medium swarm", 0.005, 1500, 1.0, 0.03},
		{"large swarm", 0.03, 1800, 1.0, 0.03},
		{"large swarm low upload", 0.03, 1800, 0.4, 0.03},
		{"medium swarm mid upload", 0.005, 1500, 0.6, 0.03},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const horizon = 40 * 86400 // long horizon for tight statistics
			tr := poissonSwarmTrace(t, 42, tc.rate, tc.meanDuration, horizon)

			cfg := DefaultConfig(tc.ratio)
			cfg.TrackUsers = false
			res, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Swarms) != 1 {
				t.Fatalf("expected a single swarm, got %d", len(res.Swarms))
			}
			cEmp := res.Swarms[0].Capacity

			for _, params := range energy.BothModels() {
				model := core.MustNew(params, probs)
				theo := model.Savings(cEmp, tc.ratio)
				simRep := Evaluate(res.Swarms[0].Tally, params)
				if math.Abs(simRep.Savings-theo) > tc.tolerance {
					t.Errorf("%s: sim savings %.4f vs theory %.4f at c=%.3f (|Δ| > %.3f)",
						params.Name, simRep.Savings, theo, cEmp, tc.tolerance)
				}
			}
		})
	}
}

// TestTheoryMatchesSimulationOffload checks the traffic component alone:
// the empirical offload fraction must match Eq. 3.
func TestTheoryMatchesSimulationOffload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed statistical test")
	}
	const horizon = 40 * 86400
	for _, tc := range []struct {
		rate, meanDuration, ratio float64
	}{
		{0.001, 1000, 1.0},
		{0.005, 1500, 0.8},
		{0.03, 1800, 0.4},
	} {
		tr := poissonSwarmTrace(t, 7, tc.rate, tc.meanDuration, horizon)
		cfg := DefaultConfig(tc.ratio)
		cfg.TrackUsers = false
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cEmp := res.Swarms[0].Capacity
		theoG := core.MustNew(energy.Valancius(), topology.DefaultLondon().Probabilities()).
			Offload(cEmp, tc.ratio)
		simG := res.Total.Offload()
		if math.Abs(simG-theoG) > 0.02 {
			t.Errorf("rate=%v: sim offload %.4f vs theory %.4f (c=%.3f)",
				tc.rate, simG, theoG, cEmp)
		}
	}
}

package sim

import (
	"math"
	"testing"

	"consumelocal/internal/trace"
)

func TestQuantizeAlignedSessionsUnchanged(t *testing.T) {
	// Sessions already on 10 s ticks: quantized run equals exact run.
	mk := func() *trace.Trace {
		return makeTrace(3600,
			session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
			session(1, 0, 0, 7, 300, 600, trace.BitrateSD),
		)
	}
	exact, err := Run(mk(), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.QuantizeTickSec = 10
	quantized, err := Run(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Total != quantized.Total {
		t.Errorf("aligned sessions must be unaffected: %+v vs %+v", exact.Total, quantized.Total)
	}
}

func TestQuantizeSnapsOutward(t *testing.T) {
	// A session [3, 17) on 10 s ticks becomes [0, 20): the user counts as
	// active — and downloads full buffers — for both windows, as in the
	// paper's simulator.
	tr := makeTrace(3600, session(0, 0, 0, 7, 3, 14, trace.BitrateSD))
	cfg := DefaultConfig(1)
	cfg.QuantizeTickSec = 10
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBits := 1.5e6 * 20 // two full windows
	if math.Abs(res.Total.TotalBits-wantBits) > eps {
		t.Errorf("quantized total = %v, want %v", res.Total.TotalBits, wantBits)
	}
}

func TestQuantizeCreatesWindowOverlap(t *testing.T) {
	// Sessions [0, 9) and [9, 18) never overlap exactly, but in 10 s
	// windows both are active in window [0, 10) — the quantized run
	// shares where the exact run cannot. This is the footnote-3 effect:
	// within Δτ even a capacity-1 swarm finds sharing opportunities.
	mk := func() *trace.Trace {
		return makeTrace(3600,
			session(0, 0, 0, 7, 0, 9, trace.BitrateSD),
			session(1, 0, 0, 7, 9, 9, trace.BitrateSD),
		)
	}
	exact, err := Run(mk(), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Total.PeerBits() != 0 {
		t.Fatalf("exact run should not share: %v", exact.Total.PeerBits())
	}
	cfg := DefaultConfig(1)
	cfg.QuantizeTickSec = 10
	quantized, err := Run(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quantized.Total.PeerBits() <= 0 {
		t.Error("quantized run should find the within-window sharing opportunity")
	}
}

func TestQuantizeInflatesBoundedByOneTickPerEdge(t *testing.T) {
	// On a generated trace, quantization inflates useful traffic by at
	// most bitrate × 2 ticks per session.
	gen := trace.DefaultGeneratorConfig(0.0005)
	gen.Days = 3
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.QuantizeTickSec = 10
	quantized, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quantized.Total.TotalBits < exact.Total.TotalBits {
		t.Error("quantization must not reduce accounted traffic")
	}
	maxInflation := float64(len(tr.Sessions)) * 2 * 10 * 3000e3 // 2 ticks at HD rate
	if quantized.Total.TotalBits-exact.Total.TotalBits > maxInflation {
		t.Errorf("inflation %v exceeds bound %v",
			quantized.Total.TotalBits-exact.Total.TotalBits, maxInflation)
	}
}

func TestQuantizedAgreesWithExactOnAggregate(t *testing.T) {
	// The two modes must agree closely on aggregate offload: Δτ = 10 s is
	// small against mean session durations (~28 min).
	gen := trace.DefaultGeneratorConfig(0.001)
	gen.Days = 5
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.QuantizeTickSec = 10
	quantized, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Total.Offload()-quantized.Total.Offload()) > 0.01 {
		t.Errorf("offload differs between modes: exact %v vs Δτ=10s %v",
			exact.Total.Offload(), quantized.Total.Offload())
	}
}

package sim

import (
	"testing"

	"consumelocal/internal/trace"
)

// TestRunAllocsCeiling mirrors swarm.TestTrackerAdvanceAllocs for the
// batch engine: after one warm-up run has populated the grouper and
// matching pools, a full sim.Run over ~47k sessions must stay under a
// small fixed allocation ceiling. Before the reusable Sweeper /
// MatchInto / Grouper work the same run cost ~200k allocations (one
// keysSorted plus one Allocation per activity interval); a warm run now
// costs ~220 (the escaping Result, its day grid and per-swarm stats), so
// the ceiling below is an order of magnitude of headroom while still
// failing loudly if any per-interval allocation creeps back in.
func TestRunAllocsCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts far past the ceiling")
	}
	gcfg := trace.DefaultGeneratorConfig(0.002)
	gcfg.Days = 3
	tr, err := trace.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1.0)
	cfg.TrackUsers = false

	run := func() {
		if _, err := Run(tr, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: populate grouper/matching pools

	const ceiling = 2500
	allocs := testing.AllocsPerRun(5, run)
	if allocs > ceiling {
		t.Fatalf("batch run allocated %.0f times over %d sessions, want <= %d",
			allocs, len(tr.Sessions), ceiling)
	}
}

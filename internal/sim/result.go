package sim

import (
	"consumelocal/internal/energy"
)

// ISPTotals aggregates the run per ISP across all days.
func (r *Result) ISPTotals() []Tally {
	if len(r.Days) == 0 {
		return nil
	}
	out := make([]Tally, len(r.Days[0]))
	for _, day := range r.Days {
		for isp, t := range day {
			out[isp].Add(t)
		}
	}
	return out
}

// DayTotals aggregates the run per day across all ISPs.
func (r *Result) DayTotals() []Tally {
	out := make([]Tally, len(r.Days))
	for d, day := range r.Days {
		for _, t := range day {
			out[d].Add(t)
		}
	}
	return out
}

// SwarmSavings evaluates every swarm's empirical energy savings under the
// given parameters, returning per-swarm (capacity, savings, traffic)
// triples in the same order as Swarms. Swarms with no traffic are skipped.
type SwarmSaving struct {
	// Capacity is the swarm's empirical capacity.
	Capacity float64
	// Savings is the fractional energy saving of the swarm's delivery.
	Savings float64
	// TotalBits is the swarm's useful traffic, for weighting aggregates.
	TotalBits float64
}

// SwarmSavings prices every swarm under params.
func (r *Result) SwarmSavings(params energy.Params) []SwarmSaving {
	out := make([]SwarmSaving, 0, len(r.Swarms))
	for _, sw := range r.Swarms {
		if sw.Tally.TotalBits <= 0 {
			continue
		}
		report := Evaluate(sw.Tally, params)
		out = append(out, SwarmSaving{
			Capacity:  sw.Capacity,
			Savings:   report.Savings,
			TotalBits: sw.Tally.TotalBits,
		})
	}
	return out
}

// UserEnergy is one user's energy ledger priced under a parameter set, the
// input to the carbon credit transfer analysis.
type UserEnergy struct {
	// ConsumptionJoules is the user's premises energy: l·γm per bit for
	// everything downloaded plus everything uploaded (paper Section V).
	ConsumptionJoules float64
	// CreditJoules is the CDN-side energy saved thanks to this user's
	// uploads, PUE·γs per uploaded bit, transferred as carbon credit.
	CreditJoules float64
}

// NetNormalized returns the user's net carbon balance normalised by its
// own consumption — the per-user CCT of paper Eq. 13. It returns -1 for a
// user who uploaded nothing (fully carbon negative).
func (u UserEnergy) NetNormalized() float64 {
	if u.ConsumptionJoules <= 0 {
		return -1
	}
	return (u.CreditJoules - u.ConsumptionJoules) / u.ConsumptionJoules
}

// PriceUser evaluates one user ledger under the given parameters.
func PriceUser(stats UserStats, p energy.Params) UserEnergy {
	const bitsToJoules = 1e-9
	consumption := p.UserPerBit() * (stats.DownloadedBits + stats.UploadedBits) * bitsToJoules
	credit := p.ServerCreditPerBit() * stats.UploadedBits * bitsToJoules
	return UserEnergy{ConsumptionJoules: consumption, CreditJoules: credit}
}

// Package sim implements the trace-driven simulator of the paper
// (Section IV.A): it replays a session trace, forms content swarms,
// matches concurrently active peers with a pluggable policy, and accounts
// delivered bits by source (CDN server vs peer) and by topology layer.
//
// Where the paper steps through fixed Δτ = 10 s windows, this simulator
// sweeps each swarm's piecewise-constant activity intervals (see package
// swarm): within an interval the active set — and therefore the matching —
// is constant, so processing the interval in one step is exact and far
// cheaper than ticking. The paper's per-window peer-capacity bound
// ∆Tp ≤ (L−1)·q·∆τ (Eq. 2) translates directly to the interval: the
// (L−1)/L share of the active set's total upload capacity.
//
// Energy is not computed during simulation; the simulator records traffic
// tallies that are priced afterwards under any energy parameter set (see
// Evaluate), keeping a single simulation reusable across energy models.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"consumelocal/internal/matching"
	"consumelocal/internal/swarm"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Config parameterises a simulation run.
type Config struct {
	// Policy matches peers within activity intervals. Defaults to
	// matching.LocalityFirst.
	Policy matching.Policy
	// Swarm controls swarm formation (ISP restriction, bitrate split).
	// Defaults to the paper's configuration.
	Swarm swarm.Options
	// Topology is the ISP metropolitan tree used to map session exchange
	// points onto PoPs. Defaults to topology.DefaultLondon().
	Topology *topology.Tree
	// UploadRatio is q/β: each session's upload bandwidth as a fraction of
	// its own streaming bitrate. Ignored when UploadBps > 0.
	UploadRatio float64
	// UploadBps, when positive, gives every user the same absolute upload
	// bandwidth in bits/s regardless of bitrate.
	UploadBps float64
	// DisablePaperBudget lifts the paper's (L−1)·q per-window cap on peer
	// traffic (Eq. 2). The default (false) applies the cap.
	DisablePaperBudget bool
	// TrackUsers enables per-user byte accounting (needed for the carbon
	// credit analysis, Fig. 6) at the cost of extra memory.
	TrackUsers bool
	// SeedRetentionSec extends every session with a post-playback seeding
	// window: for this many seconds after a user finishes watching, its
	// upload capacity stays available to the swarm while it demands
	// nothing. This models the cache-and-seed schemes the paper lists as
	// future work (AntFarm-style managed seeding, Wi-Stitch edge caches).
	// Zero (the default) reproduces the paper's watch-while-share model.
	SeedRetentionSec int64
	// QuantizeTickSec reproduces the paper's fixed time stepping exactly:
	// session boundaries are snapped outward to multiples of Δτ (the
	// paper uses Δτ = 10 s), so a user present for any part of a window
	// counts as active — and downloading a full window buffer — for the
	// whole window, as in the paper's simulator. Zero (the default) keeps
	// exact session boundaries, which is equivalent in the limit Δτ → 0.
	QuantizeTickSec int64
	// ParticipationRate is the fraction of users who contribute upload
	// capacity. The paper's conclusion notes that as little as 30% of
	// Akamai NetSession users participate by uploading; non-participants
	// here still download from peers but never upload (their q is 0).
	// Participation is assigned per user by a deterministic hash, so the
	// same users participate across runs and configurations. Zero or
	// values >= 1 mean full participation (the paper's assumption).
	ParticipationRate float64
	// UploadTiers, when non-empty, draws each user's absolute upload
	// bandwidth from a weighted access-technology mix (e.g. ADSL / FTTC /
	// FTTP) instead of the uniform UploadRatio/UploadBps. Assignment is
	// per user by deterministic hash. Overrides UploadRatio and UploadBps.
	UploadTiers []UploadTier
}

// UploadTier is one access technology class in a heterogeneous upload
// bandwidth mix.
type UploadTier struct {
	// Name labels the tier in reports (e.g. "adsl").
	Name string
	// Bps is the tier's upload bandwidth in bits per second.
	Bps float64
	// Weight is the tier's share of the user population.
	Weight float64
}

// UKBroadbandTiers returns an upload mix shaped like the UK fixed
// broadband market around the paper's study period: a large ADSL base
// (~1 Mb/s up), a growing FTTC share (~8 Mb/s up) and an FTTP minority
// (~30 Mb/s up). The mean (~4.3 Mb/s) matches the Ofcom average upload
// speed the paper quotes in Section IV.B.1.
func UKBroadbandTiers() []UploadTier {
	return []UploadTier{
		{Name: "adsl", Bps: 1.0e6, Weight: 0.62},
		{Name: "fttc", Bps: 8.0e6, Weight: 0.35},
		{Name: "fttp", Bps: 30.0e6, Weight: 0.03},
	}
}

// DefaultConfig returns the paper's simulation configuration with the
// given q/β ratio.
func DefaultConfig(uploadRatio float64) Config {
	return Config{
		Policy:      matching.LocalityFirst{},
		Swarm:       swarm.DefaultOptions(),
		Topology:    topology.DefaultLondon(),
		UploadRatio: uploadRatio,
		TrackUsers:  true,
	}
}

// withDefaults fills zero-value fields.
func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = matching.LocalityFirst{}
	}
	if c.Topology == nil {
		c.Topology = topology.DefaultLondon()
	}
	return c
}

// WithDefaults returns a copy of the configuration with zero-valued
// optional fields (policy, topology) filled in exactly as Run does
// internally. The streaming engine (internal/engine) applies it so a
// Config means the same thing replayed out-of-core as it does in batch.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate rejects configurations the simulator cannot run; exported for
// the streaming engine, which shares Run's acceptance rules.
func (c Config) Validate() error { return c.validate() }

// PeerEndpoint maps a session onto its matching endpoint under the
// configuration's topology. Exchange identifiers are namespaced per ISP:
// when a swarm spans ISPs (ablation mode), peers from different ISPs can
// never share an exchange or PoP — their traffic meets at the core,
// modelling inter-ISP exchange through the metro core / peering fabric.
// The topology must be set (use WithDefaults).
func (c Config) PeerEndpoint(s trace.Session, key swarm.Key) matching.Peer {
	exchange := int(s.Exchange)
	pop := c.Topology.PoPOf(exchange)
	if key.ISP == swarm.AnyISP {
		stride := c.Topology.Exchanges()
		popStride := c.Topology.PoPs()
		exchange += int(s.ISP) * stride
		pop += int(s.ISP) * popStride
	}
	return matching.Peer{User: s.UserID, Exchange: exchange, PoP: pop}
}

// UploadBpsOf returns a session's upload bandwidth in bits/s under the
// configuration — zero for users who do not participate in uploading,
// the tier bandwidth under an UploadTiers mix, otherwise the absolute or
// bitrate-relative setting.
func (c Config) UploadBpsOf(s trace.Session) float64 {
	if !c.participates(s.UserID) {
		return 0
	}
	if tier := c.tierOf(s.UserID); tier >= 0 {
		return c.UploadTiers[tier].Bps
	}
	if c.UploadBps > 0 {
		return c.UploadBps
	}
	return c.UploadRatio * s.Bitrate.BitsPerSecond()
}

// PeerBudget returns the paper's Eq. 2 cap on an interval's peer-to-peer
// traffic: the (L−1)/L share of the active set's total upload capacity
// (sumCaps, in bits over the interval; n is the active set size). A
// negative return means unbounded — the DisablePaperBudget ablation or an
// empty interval.
func (c Config) PeerBudget(sumCaps float64, n int) float64 {
	if c.DisablePaperBudget || n == 0 {
		return -1
	}
	return sumCaps * float64(n-1) / float64(n)
}

// validate rejects configurations the simulator cannot run.
func (c Config) validate() error {
	if c.UploadBps < 0 {
		return errors.New("sim: upload bandwidth must be non-negative")
	}
	if c.UploadBps == 0 && c.UploadRatio <= 0 && len(c.UploadTiers) == 0 {
		return errors.New("sim: need a positive upload ratio, absolute bandwidth, or upload tiers")
	}
	if c.ParticipationRate < 0 {
		return errors.New("sim: participation rate must be non-negative")
	}
	var tierWeight float64
	for _, tier := range c.UploadTiers {
		if tier.Bps < 0 || tier.Weight < 0 {
			return errors.New("sim: upload tiers must have non-negative bandwidth and weight")
		}
		tierWeight += tier.Weight
	}
	if len(c.UploadTiers) > 0 && tierWeight <= 0 {
		return errors.New("sim: upload tiers need positive total weight")
	}
	return nil
}

// tierOf assigns a user to an upload tier by deterministic hash,
// proportionally to tier weights. It returns -1 when no tiers are
// configured.
func (c Config) tierOf(user uint32) int {
	if len(c.UploadTiers) == 0 {
		return -1
	}
	var total float64
	for _, t := range c.UploadTiers {
		total += t.Weight
	}
	// Reuse the participation hash family with a different stream salt.
	z := user ^ 0x51ed2701
	z += 0x9e3779b9
	z ^= z >> 16
	z *= 0x85ebca6b
	z ^= z >> 13
	z *= 0xc2b2ae35
	z ^= z >> 16
	x := float64(z) / float64(1<<32) * total
	var cum float64
	for i, t := range c.UploadTiers {
		cum += t.Weight
		if x < cum {
			return i
		}
	}
	return len(c.UploadTiers) - 1
}

// participates reports whether a user contributes upload capacity under
// the configured participation rate, by stateless hash: stable across
// runs, independent of session order.
func (c Config) participates(user uint32) bool {
	if c.ParticipationRate <= 0 || c.ParticipationRate >= 1 {
		return true
	}
	// SplitMix32-style finaliser onto [0, 1).
	z := user + 0x9e3779b9
	z ^= z >> 16
	z *= 0x85ebca6b
	z ^= z >> 13
	z *= 0xc2b2ae35
	z ^= z >> 16
	return float64(z)/float64(1<<32) < c.ParticipationRate
}

// SwarmStats is the per-swarm outcome of a run.
type SwarmStats struct {
	// Key identifies the swarm.
	Key swarm.Key `json:"key"`
	// Capacity is the swarm's empirical capacity (average concurrent
	// users over the trace horizon).
	Capacity float64 `json:"capacity"`
	// Sessions is the number of member sessions.
	Sessions int `json:"sessions"`
	// Tally is the swarm's delivered-traffic accounting.
	Tally Tally `json:"tally"`
}

// UserStats is the per-user byte ledger used by the carbon credit
// analysis.
type UserStats struct {
	// DownloadedBits is everything the user watched.
	DownloadedBits float64 `json:"downloaded_bits"`
	// FromPeersBits is the share of DownloadedBits served by peers.
	FromPeersBits float64 `json:"from_peers_bits"`
	// UploadedBits is what the user contributed to other peers.
	UploadedBits float64 `json:"uploaded_bits"`
}

// Result is the complete outcome of one simulation run.
type Result struct {
	// Swarms holds per-swarm statistics in deterministic key order.
	Swarms []SwarmStats `json:"swarms"`
	// Days holds per-day, per-ISP tallies: Days[d][isp]. The ISP index of
	// ISP-unrestricted swarms is each downloading session's own ISP.
	Days [][]Tally `json:"days"`
	// Users maps user ID to its byte ledger; nil unless Config.TrackUsers.
	Users map[uint32]*UserStats `json:"users,omitempty"`
	// Total aggregates the whole run.
	Total Tally `json:"total"`
	// PolicyName records the matching policy used.
	PolicyName string `json:"policy"`
}

// Run simulates the trace under the configuration.
func Run(t *trace.Trace, cfg Config) (*Result, error) {
	return RunContext(context.Background(), t, cfg)
}

// RunContext is Run under a context: cancellation is observed between
// swarm sweeps, so a very large in-memory run aborts after at most one
// more swarm instead of completing the whole trace. A cancelled run
// returns ctx.Err() and no result.
func RunContext(ctx context.Context, t *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	grouper := grouperPool.Get().(*swarm.Grouper)
	defer grouperPool.Put(grouper)
	swarms := grouper.Group(t, cfg.Swarm)
	days := t.Days()

	res := &Result{
		Swarms:     make([]SwarmStats, 0, len(swarms)),
		Days:       newDayGrid(days, t.NumISPs),
		PolicyName: cfg.Policy.Name(),
	}
	if cfg.TrackUsers {
		res.Users = make(map[uint32]*UserStats)
	}

	eng := &engine{cfg: cfg, trace: t, result: res, booker: Booker{Days: res.Days, Users: res.Users}}
	for _, sw := range swarms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := eng.runSwarm(sw); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// newDayGrid allocates the [day][isp] tally grid.
func newDayGrid(days, isps int) [][]Tally {
	grid := make([][]Tally, days)
	for d := range grid {
		grid[d] = make([]Tally, isps)
	}
	return grid
}

// grouperPool recycles swarm-grouping arenas across runs: a run groups
// once, but benchmark loops and long-lived services replay many traces,
// and the grouping map, headers and session arena are the largest
// per-run allocations left after the sweep and matching scratch became
// reusable.
var grouperPool = sync.Pool{New: func() any { return new(swarm.Grouper) }}

// engine carries the per-run state through swarm processing.
type engine struct {
	cfg    Config
	trace  *trace.Trace
	result *Result
	booker Booker

	// sweeper holds the per-swarm sweep scratch (event slice, active
	// set, interval buffer and arena), reused across every swarm of the
	// run — per worker in the parallel engine.
	sweeper swarm.Sweeper
	// alloc is the engine-owned matching result, recycled through
	// Policy.MatchInto each interval.
	alloc matching.Allocation
	// src is the engine-owned SessionSource, repointed at the current
	// swarm's sessions so booking never boxes a slice header.
	src SliceSource

	// scratch buffers reused across intervals to avoid churn.
	peers   []matching.Peer
	demands []float64
	caps    []float64

	// augment/quantize scratch, reused across swarms: rewritten member
	// lists and the swarm headers wrapping them.
	members   []trace.Session
	seeding   []bool
	quantized []trace.Session
	augSwarm  swarm.Swarm
	quantSw   swarm.Swarm
}

// runSwarm sweeps one swarm and accumulates its intervals.
func (e *engine) runSwarm(sw *swarm.Swarm) error {
	stats := SwarmStats{
		Key:      sw.Key,
		Capacity: sw.Capacity(e.trace.HorizonSec),
		Sessions: len(sw.Sessions),
	}

	sweepSwarm, seeding := e.augment(sw)
	for _, iv := range e.sweeper.Sweep(sweepSwarm) {
		if err := e.runInterval(sweepSwarm, seeding, iv, &stats); err != nil {
			return err
		}
	}

	e.result.Swarms = append(e.result.Swarms, stats)
	e.result.Total.Add(stats.Tally)
	return nil
}

// augment prepares the swarm the engine actually sweeps: session
// boundaries are optionally snapped to Δτ ticks (QuantizeTickSec) and
// post-playback seeding members are appended (SeedRetentionSec). The
// returned bool slice marks, per member of the returned swarm, whether it
// is a demand-free seeder; it is nil when no seeders were added.
func (e *engine) augment(sw *swarm.Swarm) (*swarm.Swarm, []bool) {
	sw = e.quantize(sw)
	if e.cfg.SeedRetentionSec <= 0 {
		return sw, nil
	}
	members := e.members[:0]
	seeding := e.seeding[:0]
	for _, s := range sw.Sessions {
		members = append(members, s)
		seeding = append(seeding, false)

		seeder := s
		seeder.StartSec = s.EndSec()
		retention := e.cfg.SeedRetentionSec
		if seeder.StartSec+retention > e.trace.HorizonSec {
			retention = e.trace.HorizonSec - seeder.StartSec
		}
		if retention <= 0 {
			continue
		}
		seeder.DurationSec = int32(retention)
		members = append(members, seeder)
		seeding = append(seeding, true)
	}
	e.members, e.seeding = members, seeding
	e.augSwarm = swarm.Swarm{Key: sw.Key, Sessions: members}
	return &e.augSwarm, seeding
}

// quantize snaps session boundaries outward to QuantizeTickSec ticks,
// reproducing the paper's per-window occupancy counting. Sessions already
// aligned to ticks are returned unchanged (same backing array).
func (e *engine) quantize(sw *swarm.Swarm) *swarm.Swarm {
	tick := e.cfg.QuantizeTickSec
	if tick <= 0 {
		return sw
	}
	aligned := true
	for _, s := range sw.Sessions {
		if s.StartSec%tick != 0 || s.EndSec()%tick != 0 {
			aligned = false
			break
		}
	}
	if aligned {
		return sw
	}
	if cap(e.quantized) < len(sw.Sessions) {
		e.quantized = make([]trace.Session, len(sw.Sessions))
	}
	members := e.quantized[:len(sw.Sessions)]
	for i, s := range sw.Sessions {
		start := s.StartSec / tick * tick
		end := (s.EndSec() + tick - 1) / tick * tick
		s.StartSec = start
		s.DurationSec = int32(end - start)
		members[i] = s
	}
	e.quantSw = swarm.Swarm{Key: sw.Key, Sessions: members}
	return &e.quantSw
}

// runInterval matches one activity interval and books the outcome.
func (e *engine) runInterval(sw *swarm.Swarm, seeding []bool, iv swarm.Interval, stats *SwarmStats) error {
	n := len(iv.Active)
	w := iv.Seconds()
	e.resize(n)

	var sumCaps float64
	for slot, idx := range iv.Active {
		s := sw.Sessions[idx]
		e.peers[slot] = e.cfg.PeerEndpoint(s, sw.Key)
		if seeding != nil && seeding[idx] {
			e.demands[slot] = 0
		} else {
			e.demands[slot] = s.Bitrate.BitsPerSecond() * w
		}
		cap := e.cfg.UploadBpsOf(s) * w
		e.caps[slot] = cap
		sumCaps += cap
	}
	// Eq. 2: one peer's share of the swarm's upload capacity is spent
	// pulling novel chunks from the server, leaving the (L−1)/L share
	// for sharing — exactly (L−1)·q for uniform per-peer capacity q,
	// and its natural generalisation when capacities differ (e.g.
	// partial upload participation).
	budget := e.cfg.PeerBudget(sumCaps, n)

	if err := e.cfg.Policy.MatchInto(&e.alloc, e.peers[:n], e.demands[:n], e.caps[:n], budget); err != nil {
		return fmt.Errorf("sim: match swarm %+v interval [%d,%d): %w", sw.Key, iv.From, iv.To, err)
	}

	e.book(sw, iv, stats)
	return nil
}

// book accumulates the interval allocation into the swarm stats, the
// per-day/per-ISP grid and the per-user ledgers.
func (e *engine) book(sw *swarm.Swarm, iv swarm.Interval, stats *SwarmStats) {
	e.src.Sessions = sw.Sessions
	ivTally := e.booker.BookInterval(iv, &e.alloc, e.demands, &e.src)
	stats.Tally.Add(ivTally)
}

// resize grows the scratch buffers to hold n entries.
func (e *engine) resize(n int) {
	if cap(e.peers) < n {
		e.peers = make([]matching.Peer, n)
		e.demands = make([]float64, n)
		e.caps = make([]float64, n)
	}
	e.peers = e.peers[:n]
	e.demands = e.demands[:n]
	e.caps = e.caps[:n]
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package sim

import (
	"math"
	"testing"

	"consumelocal/internal/trace"
)

func TestSeedingDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.SeedRetentionSec != 0 {
		t.Errorf("paper model must not seed by default, got %d", cfg.SeedRetentionSec)
	}
}

func TestSeederServesLaterViewer(t *testing.T) {
	// Viewer A watches [0, 600); viewer B watches [700, 1300): no overlap,
	// so the paper model shares nothing. With 200 s of seed retention, A
	// still shares nothing (gap is 100 s... retention covers [600, 800)),
	// so B's first 100 s are served by A's seeding window.
	mk := func() *trace.Trace {
		return makeTrace(3600,
			session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
			session(1, 0, 0, 7, 700, 600, trace.BitrateSD),
		)
	}

	base, err := Run(mk(), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Total.PeerBits() != 0 {
		t.Fatalf("non-overlapping sessions must not share in the paper model: %v",
			base.Total.PeerBits())
	}

	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 200
	seeded, err := Run(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A seeds during [600, 800); B watches from 700: 100 s of B's demand
	// can come from A's seeding window.
	wantPeer := 1.5e6 * 100.0
	if math.Abs(seeded.Total.PeerBits()-wantPeer) > eps*wantPeer {
		t.Errorf("seeded peer bits = %v, want %v", seeded.Total.PeerBits(), wantPeer)
	}
	// Total useful traffic is unchanged: seeders demand nothing.
	if math.Abs(seeded.Total.TotalBits-base.Total.TotalBits) > eps {
		t.Errorf("seeding changed total traffic: %v vs %v",
			seeded.Total.TotalBits, base.Total.TotalBits)
	}
}

func TestSeedingIncreasesOffloadOnRealWorkload(t *testing.T) {
	gen := trace.DefaultGeneratorConfig(0.001)
	gen.Days = 5
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	base, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 3600
	seeded, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Total.Offload() <= base.Total.Offload() {
		t.Errorf("seed retention should raise offload: %v vs %v",
			seeded.Total.Offload(), base.Total.Offload())
	}
	if math.Abs(seeded.Total.TotalBits-base.Total.TotalBits) > base.Total.TotalBits*1e-9 {
		t.Errorf("seeding must not change useful traffic")
	}
}

func TestSeedingUploadsAccountedToUsers(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 700, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 200
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// User 0 uploaded during its seeding window; user 1 received.
	u0 := res.Users[0]
	u1 := res.Users[1]
	if u0.UploadedBits <= 0 {
		t.Error("seeder's uploads not accounted")
	}
	if u1.FromPeersBits <= 0 {
		t.Error("receiver's peer downloads not accounted")
	}
	if u0.FromPeersBits != 0 {
		t.Errorf("user 0 watched alone, cannot have peer downloads: %v", u0.FromPeersBits)
	}
}

func TestSeedingClippedAtHorizon(t *testing.T) {
	// A session ending at the horizon: seeding must not run past it (and
	// must not produce an invalid zero-length member).
	tr := makeTrace(1000,
		session(0, 0, 0, 7, 0, 1000, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 500
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.TotalBits != 1.5e6*1000 {
		t.Errorf("total bits = %v", res.Total.TotalBits)
	}
}

func TestSeedingDayGridStillConserves(t *testing.T) {
	gen := trace.DefaultGeneratorConfig(0.0005)
	gen.Days = 3
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 1800
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dayTotal Tally
	for _, d := range res.DayTotals() {
		dayTotal.Add(d)
	}
	if math.Abs(dayTotal.TotalBits-res.Total.TotalBits) > res.Total.TotalBits*1e-9 {
		t.Errorf("day grid %v != total %v with seeding", dayTotal.TotalBits, res.Total.TotalBits)
	}
	if math.Abs(res.Total.TotalBits-res.Total.ServerBits-res.Total.PeerBits()) > 1 {
		t.Errorf("tally not conserved with seeding")
	}
}

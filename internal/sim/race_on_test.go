//go:build race

package sim

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation defeats the pool/arena reuse the
// allocation-ceiling guard pins.
const raceEnabled = true

package sim

import (
	"math"
	"testing"

	"consumelocal/internal/trace"
)

func TestUKBroadbandTiersMeanMatchesOfcom(t *testing.T) {
	// The paper quotes ~4.3 Mb/s average UK upload speed (Section IV.B.1).
	tiers := UKBroadbandTiers()
	var mean, weight float64
	for _, tier := range tiers {
		mean += tier.Bps * tier.Weight
		weight += tier.Weight
	}
	mean /= weight
	if mean < 3.8e6 || mean > 4.8e6 {
		t.Errorf("tier mix mean = %v bps, want ~4.3 Mb/s", mean)
	}
}

func TestUploadTiersValidation(t *testing.T) {
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, 60, trace.BitrateSD))

	cfg := DefaultConfig(0)
	cfg.UploadRatio = 0
	cfg.UploadTiers = UKBroadbandTiers()
	if _, err := Run(tr, cfg); err != nil {
		t.Errorf("tiers alone should satisfy the bandwidth requirement: %v", err)
	}

	cfg.UploadTiers = []UploadTier{{Name: "bad", Bps: -1, Weight: 1}}
	if _, err := Run(tr, cfg); err == nil {
		t.Error("negative tier bandwidth should be rejected")
	}
	cfg.UploadTiers = []UploadTier{{Name: "zero", Bps: 1e6, Weight: 0}}
	if _, err := Run(tr, cfg); err == nil {
		t.Error("zero total tier weight should be rejected")
	}
}

func TestTierAssignmentDeterministicAndProportional(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.UploadTiers = UKBroadbandTiers()
	counts := make([]int, len(cfg.UploadTiers))
	const n = 100000
	for u := uint32(0); u < n; u++ {
		tier := cfg.tierOf(u)
		if tier != cfg.tierOf(u) {
			t.Fatalf("tier assignment not deterministic for %d", u)
		}
		counts[tier]++
	}
	for i, tier := range cfg.UploadTiers {
		got := float64(counts[i]) / n
		if math.Abs(got-tier.Weight) > 0.01 {
			t.Errorf("tier %s share = %v, want %v", tier.Name, got, tier.Weight)
		}
	}
}

func TestTierOfWithoutTiers(t *testing.T) {
	cfg := DefaultConfig(1)
	if got := cfg.tierOf(7); got != -1 {
		t.Errorf("tierOf without tiers = %d, want -1", got)
	}
}

func TestTiersOverrideRatio(t *testing.T) {
	// Two co-located viewers; a single 750 kb/s tier must behave exactly
	// like UploadBps = 750e3 regardless of the configured ratio.
	mk := func() *trace.Trace {
		return makeTrace(3600,
			session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
			session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
		)
	}
	tierCfg := DefaultConfig(1)
	tierCfg.UploadTiers = []UploadTier{{Name: "only", Bps: 750e3, Weight: 1}}
	tierRes, err := Run(mk(), tierCfg)
	if err != nil {
		t.Fatal(err)
	}
	bpsCfg := DefaultConfig(0)
	bpsCfg.UploadBps = 750e3
	bpsRes, err := Run(mk(), bpsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if tierRes.Total != bpsRes.Total {
		t.Errorf("single tier should equal absolute bandwidth: %+v vs %+v",
			tierRes.Total, bpsRes.Total)
	}
}

func TestHeterogeneousUploadsOnWorkload(t *testing.T) {
	// The UK mix's mean upload (~4.3 Mb/s) is far above the SD bitrate,
	// so tiered uploads should offload at least as much as q/β = 1 for
	// most swarms — heterogeneity concentrates capacity in few peers but
	// the (L−1)/L budget still binds.
	gen := trace.DefaultGeneratorConfig(0.001)
	gen.Days = 5
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0)
	cfg.UploadTiers = UKBroadbandTiers()
	tiered, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Total.Offload() < uniform.Total.Offload()-0.02 {
		t.Errorf("UK-mix offload %v unexpectedly below q/β=1 offload %v",
			tiered.Total.Offload(), uniform.Total.Offload())
	}
	if tiered.Total.Offload() <= 0 {
		t.Error("tiered run shared nothing")
	}
}

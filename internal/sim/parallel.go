package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// RunParallel simulates the trace like Run but processes swarms on a pool
// of workers. Swarms are independent (peers never match across swarms),
// so the partition is embarrassingly parallel. Results merge in a fixed
// order, making repeated runs with the same worker count bit-for-bit
// identical. Per-swarm statistics are bit-for-bit identical to the serial
// Run as well (each swarm is processed by exactly one worker in sweep
// order); cross-swarm aggregates (the day grid and user ledgers) sum the
// same contributions in a different order and therefore agree with the
// serial run only up to floating-point associativity (relative ~1e-15).
//
// workers <= 1 falls back to the serial Run.
func RunParallel(t *trace.Trace, cfg Config, workers int) (*Result, error) {
	return RunParallelContext(context.Background(), t, cfg, workers)
}

// RunParallelContext is RunParallel under a context: every pool worker
// observes cancellation between swarm sweeps, so a very large in-memory
// run aborts after at most one more swarm per worker. A cancelled run
// returns ctx.Err() and no result.
func RunParallelContext(ctx context.Context, t *trace.Trace, cfg Config, workers int) (*Result, error) {
	if workers <= 1 {
		return RunContext(ctx, t, cfg)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if max := runtime.GOMAXPROCS(0) * 4; workers > max {
		workers = max
	}

	grouper := grouperPool.Get().(*swarm.Grouper)
	defer grouperPool.Put(grouper)
	swarms := grouper.Group(t, cfg.Swarm)
	days := t.Days()

	// Each worker accumulates into a private shard; shards are merged in
	// worker order afterwards.
	type shard struct {
		result *Result
		err    error
	}
	shards := make([]shard, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := &Result{
				Days:       newDayGrid(days, t.NumISPs),
				PolicyName: cfg.Policy.Name(),
			}
			if cfg.TrackUsers {
				res.Users = make(map[uint32]*UserStats)
			}
			eng := &engine{cfg: cfg, trace: t, result: res, booker: Booker{Days: res.Days, Users: res.Users}}
			// Strided assignment: worker w owns swarms w, w+workers, ...
			// — deterministic and balanced, since swarm.Group returns
			// swarms in key order with sizes spread across the catalogue.
			for i := w; i < len(swarms); i += workers {
				if err := ctx.Err(); err != nil {
					shards[w].err = err
					return
				}
				if err := eng.runSwarm(swarms[i]); err != nil {
					shards[w].err = err
					return
				}
			}
			shards[w].result = res
		}()
	}
	wg.Wait()

	merged := &Result{
		Swarms:     make([]SwarmStats, 0, len(swarms)),
		Days:       newDayGrid(days, t.NumISPs),
		PolicyName: cfg.Policy.Name(),
	}
	if cfg.TrackUsers {
		merged.Users = make(map[uint32]*UserStats, t.NumUsers/2)
	}
	// Reassemble per-swarm stats in the original key order: worker w's
	// j-th swarm is the (w + j*workers)-th overall.
	ordered := make([]SwarmStats, len(swarms))
	for w := range shards {
		if shards[w].err != nil {
			return nil, shards[w].err
		}
		for j, st := range shards[w].result.Swarms {
			ordered[w+j*workers] = st
		}
	}
	for _, st := range ordered {
		merged.Swarms = append(merged.Swarms, st)
		merged.Total.Add(st.Tally)
	}
	for w := range shards {
		res := shards[w].result
		for d := range res.Days {
			for isp := range res.Days[d] {
				merged.Days[d][isp].Add(res.Days[d][isp])
			}
		}
		if merged.Users == nil {
			continue
		}
		for id, u := range res.Users {
			dst := merged.Users[id]
			if dst == nil {
				dst = &UserStats{}
				merged.Users[id] = dst
			}
			dst.DownloadedBits += u.DownloadedBits
			dst.FromPeersBits += u.FromPeersBits
			dst.UploadedBits += u.UploadedBits
		}
	}
	return merged, nil
}

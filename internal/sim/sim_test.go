package sim

import (
	"math"
	"testing"
	"time"

	"consumelocal/internal/energy"
	"consumelocal/internal/matching"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

const eps = 1e-6

func session(user, content uint32, isp uint8, exchange uint16, start int64, dur int32, br trace.BitrateClass) trace.Session {
	return trace.Session{
		UserID:      user,
		ContentID:   content,
		ISP:         isp,
		Exchange:    exchange,
		StartSec:    start,
		DurationSec: dur,
		Bitrate:     br,
	}
}

func makeTrace(horizon int64, sessions ...trace.Session) *trace.Trace {
	return &trace.Trace{
		Name:       "test",
		Epoch:      time.Unix(0, 0).UTC(),
		HorizonSec: horizon,
		NumUsers:   1000,
		NumContent: 100,
		NumISPs:    5,
		Sessions:   sessions,
	}
}

func TestConfigValidation(t *testing.T) {
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, 60, trace.BitrateSD))
	if _, err := Run(tr, Config{}); err == nil {
		t.Error("config without upload bandwidth should be rejected")
	}
	if _, err := Run(tr, Config{UploadBps: -5}); err == nil {
		t.Error("negative upload bandwidth should be rejected")
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, -60, trace.BitrateSD))
	if _, err := Run(tr, DefaultConfig(1)); err == nil {
		t.Error("invalid trace should be rejected")
	}
}

func TestLoneViewerAllServer(t *testing.T) {
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, 600, trace.BitrateSD))
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	wantBits := 1.5e6 * 600
	if math.Abs(res.Total.TotalBits-wantBits) > eps {
		t.Errorf("total bits = %v, want %v", res.Total.TotalBits, wantBits)
	}
	if res.Total.PeerBits() != 0 {
		t.Errorf("lone viewer shared %v bits, want 0", res.Total.PeerBits())
	}
	if math.Abs(res.Total.ServerBits-wantBits) > eps {
		t.Errorf("server bits = %v, want all", res.Total.ServerBits)
	}
}

func TestTwoOverlappingViewersShare(t *testing.T) {
	// Same content, ISP, bitrate, exchange; fully overlapping for 600 s.
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper budget: (L−1)·q·w = 1 × 1.5 Mb/s × 600 s.
	wantPeer := 1.5e6 * 600.0
	if math.Abs(res.Total.PeerBits()-wantPeer) > eps*wantPeer {
		t.Errorf("peer bits = %v, want %v", res.Total.PeerBits(), wantPeer)
	}
	// All shared traffic is exchange-local.
	if math.Abs(res.Total.LayerBits[energy.LayerExchange.Index()]-wantPeer) > eps*wantPeer {
		t.Errorf("exchange bits = %v, want %v", res.Total.LayerBits[0], wantPeer)
	}
	// Offload = half the total demand.
	if math.Abs(res.Total.Offload()-0.5) > 1e-9 {
		t.Errorf("offload = %v, want 0.5", res.Total.Offload())
	}
}

func TestPaperBudgetCanBeDisabled(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	cfg.DisablePaperBudget = true
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without the (L−1) cap both peers serve each other fully.
	if math.Abs(res.Total.Offload()-1.0) > 1e-9 {
		t.Errorf("offload = %v, want 1.0 without the paper budget", res.Total.Offload())
	}
}

func TestNoSharingAcrossContent(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 1, 0, 7, 0, 600, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.PeerBits() != 0 {
		t.Errorf("different content items should not share: %v", res.Total.PeerBits())
	}
}

func TestNoSharingAcrossISPsWhenRestricted(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 1, 7, 0, 600, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.PeerBits() != 0 {
		t.Errorf("ISP-friendly swarms must not cross ISPs: %v", res.Total.PeerBits())
	}
}

func TestCrossISPSharingInCityWideMode(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 1, 7, 0, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	cfg.Swarm = swarm.Options{RestrictISP: false, SplitBitrate: true}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.PeerBits() == 0 {
		t.Fatal("city-wide swarms should share across ISPs")
	}
	// Cross-ISP pairs must be priced at the core layer even though both
	// sessions use the same exchange index (namespaced per ISP).
	if got := res.Total.LayerBits[energy.LayerCore.Index()]; got != res.Total.PeerBits() {
		t.Errorf("cross-ISP traffic priced at %v core bits of %v total peer bits",
			got, res.Total.PeerBits())
	}
}

func TestNoSharingAcrossBitratesWhenSplit(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 600, trace.BitrateHD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.PeerBits() != 0 {
		t.Errorf("bitrate-split swarms must not mix bitrates: %v", res.Total.PeerBits())
	}
}

func TestUploadRatioScalesSharing(t *testing.T) {
	mk := func() *trace.Trace {
		return makeTrace(3600,
			session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
			session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
			session(2, 0, 0, 7, 0, 600, trace.BitrateSD),
		)
	}
	lo, err := Run(mk(), DefaultConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(mk(), DefaultConfig(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Total.Offload() >= hi.Total.Offload() {
		t.Errorf("offload should grow with q/β: %v vs %v", lo.Total.Offload(), hi.Total.Offload())
	}
	// With ratio 0.2 and L=3: peer traffic = 2·(0.2β)·w, demand 3β·w.
	wantLo := 2.0 * 0.2 / 3.0
	if math.Abs(lo.Total.Offload()-wantLo) > 1e-9 {
		t.Errorf("offload at 0.2 = %v, want %v", lo.Total.Offload(), wantLo)
	}
}

func TestAbsoluteUploadBandwidth(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(0)
	cfg.UploadBps = 750e3 // half of SD bitrate
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPeer := 750e3 * 600.0 // (L−1)·q·w
	if math.Abs(res.Total.PeerBits()-wantPeer) > eps*wantPeer {
		t.Errorf("peer bits = %v, want %v", res.Total.PeerBits(), wantPeer)
	}
}

func TestPartialOverlapAccounting(t *testing.T) {
	// Sessions overlap for 300 of their 600 seconds.
	tr := makeTrace(7200,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 300, 600, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 1.5e6 * 1200.0
	if math.Abs(res.Total.TotalBits-wantTotal) > eps*wantTotal {
		t.Errorf("total bits = %v, want %v", res.Total.TotalBits, wantTotal)
	}
	wantPeer := 1.5e6 * 300.0 // sharing only during the overlap
	if math.Abs(res.Total.PeerBits()-wantPeer) > eps*wantPeer {
		t.Errorf("peer bits = %v, want %v", res.Total.PeerBits(), wantPeer)
	}
}

func TestConservationOnGeneratedTrace(t *testing.T) {
	cfg := trace.DefaultGeneratorConfig(0.001)
	cfg.Days = 5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}

	// Total = server + peers.
	if math.Abs(res.Total.TotalBits-res.Total.ServerBits-res.Total.PeerBits()) > 1 {
		t.Errorf("tally not conserved: %v != %v + %v",
			res.Total.TotalBits, res.Total.ServerBits, res.Total.PeerBits())
	}
	// Trace bytes == simulated bits / 8.
	if math.Abs(res.Total.TotalBits/8-tr.TotalBytes()) > tr.TotalBytes()*1e-9 {
		t.Errorf("simulated traffic %v bytes != trace %v bytes",
			res.Total.TotalBits/8, tr.TotalBytes())
	}
	// Day grid sums to the total.
	var dayTotal Tally
	for _, d := range res.DayTotals() {
		dayTotal.Add(d)
	}
	if math.Abs(dayTotal.TotalBits-res.Total.TotalBits) > res.Total.TotalBits*1e-9 {
		t.Errorf("day grid total %v != run total %v", dayTotal.TotalBits, res.Total.TotalBits)
	}
	// ISP totals sum to the total.
	var ispTotal Tally
	for _, d := range res.ISPTotals() {
		ispTotal.Add(d)
	}
	if math.Abs(ispTotal.TotalBits-res.Total.TotalBits) > res.Total.TotalBits*1e-9 {
		t.Errorf("ISP total %v != run total %v", ispTotal.TotalBits, res.Total.TotalBits)
	}
	// Swarm tallies sum to the total.
	var swTotal Tally
	for _, sw := range res.Swarms {
		swTotal.Add(sw.Tally)
	}
	if math.Abs(swTotal.TotalBits-res.Total.TotalBits) > res.Total.TotalBits*1e-9 {
		t.Errorf("swarm total %v != run total %v", swTotal.TotalBits, res.Total.TotalBits)
	}
	// User ledgers: downloads equal total traffic; uploads equal peer
	// traffic.
	var userDown, userUp, userFromPeers float64
	for _, u := range res.Users {
		userDown += u.DownloadedBits
		userUp += u.UploadedBits
		userFromPeers += u.FromPeersBits
	}
	if math.Abs(userDown-res.Total.TotalBits) > res.Total.TotalBits*1e-6 {
		t.Errorf("user downloads %v != total %v", userDown, res.Total.TotalBits)
	}
	if math.Abs(userUp-res.Total.PeerBits()) > res.Total.PeerBits()*1e-6 {
		t.Errorf("user uploads %v != peer bits %v", userUp, res.Total.PeerBits())
	}
	if math.Abs(userFromPeers-res.Total.PeerBits()) > res.Total.PeerBits()*1e-6 {
		t.Errorf("user peer downloads %v != peer bits %v", userFromPeers, res.Total.PeerBits())
	}
}

func TestDayAttributionSplitsAcrossMidnight(t *testing.T) {
	// A two-hour session crossing midnight: bits must split between days.
	tr := makeTrace(2*86400,
		session(0, 0, 0, 7, 86400-3600, 7200, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	days := res.DayTotals()
	if len(days) != 2 {
		t.Fatalf("got %d days, want 2", len(days))
	}
	if math.Abs(days[0].TotalBits-days[1].TotalBits) > eps {
		t.Errorf("midnight split uneven: %v vs %v", days[0].TotalBits, days[1].TotalBits)
	}
}

func TestRandomPolicyPlumbing(t *testing.T) {
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 8, 0, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	cfg.Policy = matching.Random{}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "random" {
		t.Errorf("policy name = %q", res.PolicyName)
	}
	if res.Total.PeerBits() == 0 {
		t.Error("random policy should still offload")
	}
}

func TestTrackUsersOff(t *testing.T) {
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, 600, trace.BitrateSD))
	cfg := DefaultConfig(1)
	cfg.TrackUsers = false
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Users != nil {
		t.Error("user tracking should be disabled")
	}
}

func TestSwarmStatsCapacity(t *testing.T) {
	tr := makeTrace(7200,
		session(0, 0, 0, 7, 0, 3600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 3600, trace.BitrateSD),
	)
	res, err := Run(tr, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swarms) != 1 {
		t.Fatalf("got %d swarms, want 1", len(res.Swarms))
	}
	if got := res.Swarms[0].Capacity; math.Abs(got-1.0) > 1e-9 {
		t.Errorf("capacity = %v, want 1.0 (7200 user-seconds / 7200 s)", got)
	}
	if res.Swarms[0].Sessions != 2 {
		t.Errorf("sessions = %d, want 2", res.Swarms[0].Sessions)
	}
}

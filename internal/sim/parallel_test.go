package sim

import (
	"math"
	"testing"

	"consumelocal/internal/trace"
)

func generatedTrace(t *testing.T, scale float64, days int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGeneratorConfig(scale)
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunParallelMatchesSerial(t *testing.T) {
	tr := generatedTrace(t, 0.001, 7)
	cfg := DefaultConfig(1)

	serial, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		parallel, err := RunParallel(tr, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, serial, parallel, workers)
	}
}

// assertResultsEqual compares serial and parallel outcomes. Per-swarm
// tallies must match exactly (each swarm is processed by exactly one
// worker, in sweep order). Cross-swarm aggregates (day grid, user
// ledgers) merge contributions in a different order, so they are compared
// within floating-point associativity tolerance.
func assertResultsEqual(t *testing.T, a, b *Result, workers int) {
	t.Helper()
	const relTol = 1e-9
	closeEnough := func(x, y float64) bool {
		return math.Abs(x-y) <= relTol*(1+math.Max(math.Abs(x), math.Abs(y)))
	}
	tallyClose := func(x, y Tally) bool {
		if !closeEnough(x.TotalBits, y.TotalBits) || !closeEnough(x.ServerBits, y.ServerBits) {
			return false
		}
		for i := range x.LayerBits {
			if !closeEnough(x.LayerBits[i], y.LayerBits[i]) {
				return false
			}
		}
		return true
	}

	if !tallyClose(a.Total, b.Total) {
		t.Errorf("workers=%d: totals differ: %+v vs %+v", workers, a.Total, b.Total)
	}
	if len(a.Swarms) != len(b.Swarms) {
		t.Fatalf("workers=%d: swarm counts differ: %d vs %d", workers, len(a.Swarms), len(b.Swarms))
	}
	for i := range a.Swarms {
		if a.Swarms[i].Key != b.Swarms[i].Key {
			t.Fatalf("workers=%d: swarm order differs at %d", workers, i)
		}
		if a.Swarms[i].Tally != b.Swarms[i].Tally {
			t.Errorf("workers=%d: swarm %d tallies differ (must be exact)", workers, i)
		}
	}
	for d := range a.Days {
		for isp := range a.Days[d] {
			if !tallyClose(a.Days[d][isp], b.Days[d][isp]) {
				t.Errorf("workers=%d: day %d ISP %d tallies differ", workers, d, isp)
			}
		}
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("workers=%d: user counts differ: %d vs %d", workers, len(a.Users), len(b.Users))
	}
	for id, ua := range a.Users {
		ub := b.Users[id]
		if ub == nil {
			t.Fatalf("workers=%d: user %d missing", workers, id)
		}
		if !closeEnough(ua.DownloadedBits, ub.DownloadedBits) ||
			!closeEnough(ua.UploadedBits, ub.UploadedBits) ||
			!closeEnough(ua.FromPeersBits, ub.FromPeersBits) {
			t.Errorf("workers=%d: user %d ledger differs: %+v vs %+v", workers, id, ua, ub)
		}
	}
}

func TestRunParallelDeterministicAcrossRuns(t *testing.T) {
	tr := generatedTrace(t, 0.0005, 5)
	cfg := DefaultConfig(0.8)
	first, err := RunParallel(tr, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := RunParallel(tr, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if first.Total != again.Total {
			t.Fatalf("run %d: parallel results not deterministic", run)
		}
	}
}

func TestRunParallelSingleWorkerIsSerial(t *testing.T) {
	tr := generatedTrace(t, 0.0005, 3)
	cfg := DefaultConfig(1)
	a, err := RunParallel(tr, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Error("workers=1 should be exactly the serial path")
	}
}

func TestRunParallelPropagatesValidationErrors(t *testing.T) {
	tr := generatedTrace(t, 0.0005, 3)
	if _, err := RunParallel(tr, Config{}, 4); err == nil {
		t.Error("invalid config should be rejected")
	}
	bad := makeTrace(3600, session(0, 0, 0, 0, 0, -1, trace.BitrateSD))
	if _, err := RunParallel(bad, DefaultConfig(1), 4); err == nil {
		t.Error("invalid trace should be rejected")
	}
}

func TestRunParallelClampsWorkerCount(t *testing.T) {
	tr := generatedTrace(t, 0.0005, 3)
	// An absurd worker count must still work (clamped internally).
	res, err := RunParallel(tr, DefaultConfig(1), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.TotalBits <= 0 {
		t.Error("no traffic simulated")
	}
}

func TestRunParallelWithSeeding(t *testing.T) {
	tr := generatedTrace(t, 0.0005, 5)
	cfg := DefaultConfig(1)
	cfg.SeedRetentionSec = 1800
	serial, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunParallel(tr, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, serial, parallel, 3)
}

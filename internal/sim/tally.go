package sim

import (
	"consumelocal/internal/energy"
)

// Tally accumulates traffic volumes, in bits, split by how they were
// delivered. It is the unit of aggregation for swarms, days, ISPs and the
// whole system; energy is evaluated from a Tally under any parameter set.
type Tally struct {
	// TotalBits is the useful traffic (all bits watched by users).
	TotalBits float64 `json:"total_bits"`
	// ServerBits is the share of TotalBits served by CDN servers.
	ServerBits float64 `json:"server_bits"`
	// LayerBits is the share served from peers, per topology layer
	// (indexed by energy.Layer.Index()).
	LayerBits [energy.NumLayers]float64 `json:"layer_bits"`
}

// PeerBits returns the total traffic served from peers.
func (t Tally) PeerBits() float64 {
	var sum float64
	for _, b := range t.LayerBits {
		sum += b
	}
	return sum
}

// Offload returns the empirical traffic offload fraction G of the tally.
func (t Tally) Offload() float64 {
	if t.TotalBits <= 0 {
		return 0
	}
	return t.PeerBits() / t.TotalBits
}

// Add merges another tally into t.
func (t *Tally) Add(other Tally) {
	t.TotalBits += other.TotalBits
	t.ServerBits += other.ServerBits
	for i := range t.LayerBits {
		t.LayerBits[i] += other.LayerBits[i]
	}
}

// EnergyReport is the energy evaluation of a Tally under one parameter
// set.
type EnergyReport struct {
	// Model names the parameter set used.
	Model string
	// BaselineJoules is the energy of serving all traffic from CDN
	// servers (no peer assistance).
	BaselineJoules float64
	// HybridJoules is the energy of the hybrid delivery recorded in the
	// tally.
	HybridJoules float64
	// Savings is the fractional saving 1 − Hybrid/Baseline (paper Eq. 1).
	Savings float64
}

// Evaluate prices a tally under the given energy parameters. Server bits
// cost ψs; peer bits cost the double modem term plus the PUE-weighted
// network term of the layer they were matched at (paper Eq. 4–6).
func Evaluate(t Tally, p energy.Params) EnergyReport {
	const bitsToJoules = 1e-9 // per-bit figures are nJ/bit

	baseline := p.ServerPerBit() * t.TotalBits * bitsToJoules

	hybrid := p.ServerPerBit() * t.ServerBits * bitsToJoules
	hybrid += p.PeerModemPerBit() * t.PeerBits() * bitsToJoules
	for _, layer := range energy.Layers() {
		hybrid += p.PeerNetworkPerBit(layer) * t.LayerBits[layer.Index()] * bitsToJoules
	}

	savings := 0.0
	if baseline > 0 {
		savings = 1 - hybrid/baseline
	}
	return EnergyReport{
		Model:          p.Name,
		BaselineJoules: baseline,
		HybridJoules:   hybrid,
		Savings:        savings,
	}
}

package sim

import (
	"consumelocal/internal/matching"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// Booker accumulates matched interval allocations into the result grids
// shared by the batch simulator and the streaming engine: the per-day /
// per-ISP tally grid and the per-user byte ledgers. Both execution modes
// book through this one implementation so their floating-point operation
// sequences cannot drift apart — the property the engine's bit-for-bit
// equivalence contract rests on.
type Booker struct {
	// Days is the [day][isp] tally grid.
	Days [][]Tally
	// Users maps user ID to its byte ledger; nil disables user tracking.
	Users map[uint32]*UserStats
}

// SessionSource resolves a swept member index to its session. Both
// execution modes implement it without closures: the batch simulator
// over the swarm's session slice, the streaming engine over a worker's
// live member table.
type SessionSource interface {
	SessionAt(idx int) trace.Session
}

// SessionSlice adapts a plain session list into a SessionSource: member
// index i is sessions[i], the batch sweep's indexing. Convert through a
// pointer (or reuse one SliceSource) on hot paths: boxing the slice
// header itself into the interface heap-allocates per conversion.
type SessionSlice []trace.Session

// SessionAt returns the idx-th session.
func (s SessionSlice) SessionAt(idx int) trace.Session { return s[idx] }

// SliceSource is a re-pointable SessionSource over a session list. The
// batch engine holds one and repoints it at each swarm's sessions, so
// booking an interval converts a pointer into the interface — one word,
// no per-interval boxing allocation.
type SliceSource struct {
	Sessions []trace.Session
}

// SessionAt returns the idx-th session.
func (s *SliceSource) SessionAt(idx int) trace.Session { return s.Sessions[idx] }

// BookInterval books one matched activity interval: it builds the
// interval tally from the allocation, attributes each downloader's share
// to the day grid (peer bits split across layers proportionally to the
// interval's overall layer mix) and to its user ledger, and returns the
// interval tally for the caller to accumulate into swarm and run totals.
// demands is parallel to iv.Active; sessions resolves a member index to
// its session. The allocation is read-only and only for the duration of
// the call, so both engines can recycle one Allocation per interval.
func (b *Booker) BookInterval(iv swarm.Interval, alloc *matching.Allocation, demands []float64, sessions SessionSource) Tally {
	var ivTally Tally
	ivTally.ServerBits = alloc.ServerBits
	ivTally.LayerBits = alloc.LayerBits
	ivTally.TotalBits = alloc.ServerBits
	for _, bits := range alloc.LayerBits {
		ivTally.TotalBits += bits
	}

	peerTotal := ivTally.PeerBits()
	for slot, idx := range iv.Active {
		s := sessions.SessionAt(idx)
		demand := demands[slot]
		received := alloc.PeerReceivedBits[slot]
		server := demand - received
		if server < 0 {
			server = 0
		}

		var perUser Tally
		perUser.TotalBits = demand
		perUser.ServerBits = server
		if peerTotal > 0 {
			frac := received / peerTotal
			for l := range alloc.LayerBits {
				perUser.LayerBits[l] = alloc.LayerBits[l] * frac
			}
		}
		b.bookDays(iv, int(s.ISP), perUser)

		if b.Users != nil {
			u := b.Users[s.UserID]
			if u == nil {
				u = &UserStats{}
				b.Users[s.UserID] = u
			}
			u.DownloadedBits += demand
			u.FromPeersBits += received
			u.UploadedBits += alloc.UploadedBits[slot]
		}
	}
	return ivTally
}

// bookDays splits a tally across the days an interval overlaps,
// proportionally to the overlap. Days beyond the grid (session tails
// past the trace horizon) are dropped.
func (b *Booker) bookDays(iv swarm.Interval, isp int, t Tally) {
	const daySec = 24 * 3600
	total := iv.Seconds()
	if total <= 0 {
		return
	}
	for day := int(iv.From / daySec); day <= int((iv.To-1)/daySec); day++ {
		if day < 0 || day >= len(b.Days) {
			continue
		}
		dayStart := int64(day) * daySec
		dayEnd := dayStart + daySec
		overlap := minInt64(iv.To, dayEnd) - maxInt64(iv.From, dayStart)
		if overlap <= 0 {
			continue
		}
		frac := float64(overlap) / total
		scaled := Tally{
			TotalBits:  t.TotalBits * frac,
			ServerBits: t.ServerBits * frac,
		}
		for l := range t.LayerBits {
			scaled.LayerBits[l] = t.LayerBits[l] * frac
		}
		b.Days[day][isp].Add(scaled)
	}
}

package sim

import (
	"testing"

	"consumelocal/internal/trace"
)

func TestParticipationDefaultIsFull(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.ParticipationRate != 0 {
		t.Fatalf("default participation should be unset, got %v", cfg.ParticipationRate)
	}
	for _, u := range []uint32{0, 1, 999999} {
		if !cfg.participates(u) {
			t.Errorf("user %d should participate under full participation", u)
		}
	}
	cfg.ParticipationRate = 1
	if !cfg.participates(42) {
		t.Error("rate 1 should mean everyone participates")
	}
}

func TestParticipationValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ParticipationRate = -0.1
	tr := makeTrace(3600, session(0, 0, 0, 0, 0, 60, trace.BitrateSD))
	if _, err := Run(tr, cfg); err == nil {
		t.Error("negative participation rate should be rejected")
	}
}

func TestParticipationDeterministicAndProportional(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ParticipationRate = 0.3
	var count int
	const n = 100000
	for u := uint32(0); u < n; u++ {
		a := cfg.participates(u)
		if a != cfg.participates(u) {
			t.Fatalf("participation not deterministic for user %d", u)
		}
		if a {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.29 || frac > 0.31 {
		t.Errorf("participating fraction = %v, want ~0.30", frac)
	}
}

func TestParticipationReducesOffload(t *testing.T) {
	gen := trace.DefaultGeneratorConfig(0.001)
	gen.Days = 5
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	prev := 1.0
	for _, rate := range []float64{1.0, 0.6, 0.3, 0.1} {
		cfg := DefaultConfig(1)
		cfg.ParticipationRate = rate
		cfg.TrackUsers = false
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Total.Offload()
		if got > prev+1e-9 {
			t.Errorf("offload should fall with participation: rate %v gives %v > previous %v",
				rate, got, prev)
		}
		prev = got
	}
}

func TestNonParticipantsStillDownloadFromPeers(t *testing.T) {
	// Two overlapping viewers; only user 1 participates. User 0 must
	// still receive peer bits (from user 1) while uploading nothing.
	tr := makeTrace(3600,
		session(0, 0, 0, 7, 0, 600, trace.BitrateSD),
		session(1, 0, 0, 7, 0, 600, trace.BitrateSD),
	)
	cfg := DefaultConfig(1)
	// Pick a rate that splits exactly these two users; probe the hash.
	lo, hi := 0.0, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		probe := cfg
		probe.ParticipationRate = mid
		p0, p1 := probe.participates(0), probe.participates(1)
		if p0 != p1 {
			cfg.ParticipationRate = mid
			break
		}
		if !p0 && !p1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	p0, p1 := cfg.participates(0), cfg.participates(1)
	if p0 == p1 {
		t.Skip("hash split not found at this population; covered statistically elsewhere")
	}

	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	participant, freeRider := uint32(0), uint32(1)
	if p1 {
		participant, freeRider = 1, 0
	}
	if res.Users[freeRider].UploadedBits != 0 {
		t.Errorf("free rider uploaded %v bits", res.Users[freeRider].UploadedBits)
	}
	if res.Users[freeRider].FromPeersBits <= 0 {
		t.Error("free rider should still download from the participating peer")
	}
	if res.Users[participant].UploadedBits <= 0 {
		t.Error("participant should upload")
	}
}

// Package chunksim is a chunk-level micro-simulator of one content swarm:
// the managed-swarm mechanics the paper assumes away behind footnote 2
// ("managed swarming similar to AntFarm or Akamai NetSession, where a
// central server efficiently manages which peer is matched with which
// other peer"), made explicit.
//
// Where the flow-level simulator (package sim) treats peer capacity as a
// fluid, this simulator tracks *which chunks each viewer holds*: content
// is split into Δτ-sized chunks, a viewer at playback position p holds
// every chunk below p, and can therefore only upload to viewers behind it
// in the stream. The swarm manager assigns, tick by tick, each viewer's
// next chunk to the closest peer ahead of it with spare upload capacity,
// falling back to the CDN server.
//
// The package exists for validation: the precedence constraint (only
// peers ahead can serve) is the physical reason behind the paper's Eq. 2
// bound ∆Tp ≤ (L−1)·q·∆τ — in a swarm of L staggered viewers, the viewer
// furthest ahead has nobody to fetch from and must use the server. Tests
// in this package and the flow-level comparisons verify that the fluid
// matcher and the paper's closed form agree with true chunk mechanics.
package chunksim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"consumelocal/internal/energy"
	"consumelocal/internal/topology"
	"consumelocal/internal/trace"
)

// Config parameterises a chunk-level swarm run.
type Config struct {
	// ChunkSec is the chunk duration Δτ (the paper uses 10 s).
	ChunkSec int64
	// UploadBps is each viewer's upload bandwidth q in bits/s.
	UploadBps float64
	// Topology maps exchanges onto PoPs for locality decisions. Defaults
	// to topology.DefaultLondon().
	Topology *topology.Tree
}

// DefaultConfig returns the paper's chunk configuration at the given
// upload bandwidth.
func DefaultConfig(uploadBps float64) Config {
	return Config{
		ChunkSec:  10,
		UploadBps: uploadBps,
		Topology:  topology.DefaultLondon(),
	}
}

// Result is the delivered-traffic accounting of a chunk-level run.
type Result struct {
	// TotalBits is all bits delivered to viewers.
	TotalBits float64
	// ServerBits is the share delivered by the CDN server.
	ServerBits float64
	// LayerBits is the share delivered from peers, per topology layer.
	LayerBits [energy.NumLayers]float64
	// Chunks is the number of chunk deliveries performed.
	Chunks int
}

// PeerBits returns the peer-delivered traffic.
func (r Result) PeerBits() float64 {
	var sum float64
	for _, b := range r.LayerBits {
		sum += b
	}
	return sum
}

// Offload returns the fraction of traffic delivered from peers.
func (r Result) Offload() float64 {
	if r.TotalBits <= 0 {
		return 0
	}
	return r.PeerBits() / r.TotalBits
}

// viewer is the per-session state of the tick loop.
type viewer struct {
	session trace.Session
	loc     topology.Location
	// position is the number of chunks already delivered to this viewer:
	// it holds chunks [0, position) of the content.
	position int
	// chunks is the total number of chunks this viewer will consume.
	chunks int
	// uploadBudget is the remaining upload capacity in the current tick,
	// in bits.
	uploadBudget float64
	// remaining is the unmet share of this tick's chunk, in bits.
	remaining float64
}

// Run replays one swarm's sessions at chunk granularity. All sessions are
// assumed to belong to one swarm (same content item and bitrate class);
// an error is returned otherwise.
func Run(sessions []trace.Session, cfg Config) (Result, error) {
	var res Result
	if len(sessions) == 0 {
		return res, nil
	}
	if cfg.ChunkSec <= 0 {
		return res, errors.New("chunksim: chunk duration must be positive")
	}
	if cfg.UploadBps < 0 {
		return res, errors.New("chunksim: upload bandwidth must be non-negative")
	}
	if cfg.Topology == nil {
		cfg.Topology = topology.DefaultLondon()
	}
	content, bitrate := sessions[0].ContentID, sessions[0].Bitrate
	for _, s := range sessions {
		if s.ContentID != content || s.Bitrate != bitrate {
			return res, fmt.Errorf("chunksim: sessions span swarms (content %d/%d, bitrate %d/%d)",
				content, s.ContentID, bitrate, s.Bitrate)
		}
		if err := s.Validate(); err != nil {
			return res, fmt.Errorf("chunksim: %w", err)
		}
	}

	chunkBits := bitrate.BitsPerSecond() * float64(cfg.ChunkSec)
	uploadPerTick := cfg.UploadBps * float64(cfg.ChunkSec)

	viewers := make([]*viewer, len(sessions))
	var firstTick, lastTick int64
	for i, s := range sessions {
		start := s.StartSec / cfg.ChunkSec
		chunks := int((int64(s.DurationSec) + cfg.ChunkSec - 1) / cfg.ChunkSec)
		viewers[i] = &viewer{
			session: s,
			loc: topology.Location{
				Exchange: int(s.Exchange),
				PoP:      cfg.Topology.PoPOf(int(s.Exchange)),
			},
			chunks: chunks,
		}
		if i == 0 || start < firstTick {
			firstTick = start
		}
		if end := start + int64(chunks); end > lastTick {
			lastTick = end
		}
	}

	// Tick loop. Active viewers are those whose playback window covers
	// the tick and who still need chunks. Each tick runs three phases:
	//
	//  1. Locality-first matching: per layer (exchange, PoP, core), each
	//     downloader pulls from the closest peers strictly ahead of it in
	//     the stream, as a managed swarm would assign.
	//  2. Server fetch + within-window relay (the paper's footnote 3):
	//     unserved downloaders at the same playback position elect one
	//     fetcher, which pulls the chunk from the server and relays it to
	//     its position-mates, closest first.
	//  3. Any remainder falls back to the server.
	active := make([]*viewer, 0, len(viewers))
	for tick := firstTick; tick < lastTick; tick++ {
		active = active[:0]
		for _, v := range viewers {
			startTick := v.session.StartSec / cfg.ChunkSec
			if tick >= startTick && v.position < v.chunks && tick-startTick >= int64(v.position) {
				v.uploadBudget = uploadPerTick
				v.remaining = chunkBits
				active = append(active, v)
				res.TotalBits += chunkBits
				res.Chunks++
			}
		}
		if len(active) == 0 {
			continue
		}
		// Deterministic processing order: furthest ahead first (fewest
		// potential suppliers), user ID as tiebreak.
		sort.Slice(active, func(i, j int) bool {
			if active[i].position != active[j].position {
				return active[i].position > active[j].position
			}
			return active[i].session.UserID < active[j].session.UserID
		})

		// Phase 1: matching against peers strictly ahead. Downloaders are
		// processed furthest-ahead first; each takes from its closest
		// available suppliers. Candidate sets are nested (a downloader
		// further behind can use every supplier a downloader ahead of it
		// can, plus more), so by Hall's theorem this order maximises the
		// total peer-served volume — the hybrid CDN's primary objective —
		// while the inner layer loop keeps each downloader's own transfers
		// as local as possible.
		for _, v := range active {
			if v.remaining <= 0 {
				continue
			}
			for _, layer := range energy.Layers() {
				if v.remaining <= 0 {
					break
				}
				for _, supplier := range active {
					if v.remaining <= 0 {
						break
					}
					if supplier == v || supplier.position <= v.position || supplier.uploadBudget <= 0 {
						continue
					}
					if cfg.Topology.Layer(v.loc, supplier.loc) != layer {
						continue
					}
					take := math.Min(v.remaining, supplier.uploadBudget)
					supplier.uploadBudget -= take
					v.remaining -= take
					res.LayerBits[layer.Index()] += take
				}
			}
		}

		// Phase 2: per position group, elect a fetcher that pulls from
		// the server and relays within the window.
		for i := 0; i < len(active); {
			j := i
			for j < len(active) && active[j].position == active[i].position {
				j++
			}
			group := active[i:j]
			i = j

			var fetcher *viewer
			for _, v := range group {
				if v.remaining > 0 {
					fetcher = v
					break
				}
			}
			if fetcher == nil {
				continue
			}
			res.ServerBits += fetcher.remaining
			fetcher.remaining = 0
			for _, layer := range energy.Layers() {
				for _, v := range group {
					if v == fetcher || v.remaining <= 0 || fetcher.uploadBudget <= 0 {
						continue
					}
					if cfg.Topology.Layer(v.loc, fetcher.loc) != layer {
						continue
					}
					take := math.Min(v.remaining, fetcher.uploadBudget)
					fetcher.uploadBudget -= take
					v.remaining -= take
					res.LayerBits[layer.Index()] += take
				}
			}
		}

		// Phase 3: server fallback for whatever is left, then advance.
		for _, v := range active {
			if v.remaining > 0 {
				res.ServerBits += v.remaining
				v.remaining = 0
			}
			v.position++
		}
	}
	return res, nil
}

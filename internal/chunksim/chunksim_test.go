package chunksim

import (
	"math"
	"math/rand"
	"testing"

	"consumelocal/internal/energy"
	"consumelocal/internal/trace"
)

func session(user uint32, exchange uint16, start int64, dur int32) trace.Session {
	return trace.Session{
		UserID:      user,
		ContentID:   0,
		ISP:         0,
		Exchange:    exchange,
		StartSec:    start,
		DurationSec: dur,
		Bitrate:     trace.BitrateSD,
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(nil, DefaultConfig(1.5e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits != 0 || res.Chunks != 0 {
		t.Errorf("empty run produced traffic: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	ss := []trace.Session{session(0, 0, 0, 100)}
	cfg := DefaultConfig(1.5e6)
	cfg.ChunkSec = 0
	if _, err := Run(ss, cfg); err == nil {
		t.Error("zero chunk duration should be rejected")
	}
	cfg = DefaultConfig(-1)
	if _, err := Run(ss, cfg); err == nil {
		t.Error("negative upload should be rejected")
	}
	mixed := []trace.Session{session(0, 0, 0, 100), session(1, 0, 0, 100)}
	mixed[1].ContentID = 9
	if _, err := Run(mixed, DefaultConfig(1.5e6)); err == nil {
		t.Error("cross-content sessions should be rejected")
	}
	bad := []trace.Session{session(0, 0, 0, -5)}
	if _, err := Run(bad, DefaultConfig(1.5e6)); err == nil {
		t.Error("invalid session should be rejected")
	}
}

func TestLoneViewerAllServer(t *testing.T) {
	res, err := Run([]trace.Session{session(0, 5, 0, 600)}, DefaultConfig(1.5e6))
	if err != nil {
		t.Fatal(err)
	}
	wantBits := 1.5e6 * 600.0
	if math.Abs(res.TotalBits-wantBits) > 1 {
		t.Errorf("total = %v, want %v", res.TotalBits, wantBits)
	}
	if res.PeerBits() != 0 {
		t.Errorf("lone viewer got %v peer bits", res.PeerBits())
	}
	if res.Chunks != 60 {
		t.Errorf("chunks = %d, want 60", res.Chunks)
	}
}

// The core emergent property: in a swarm of L staggered viewers with
// q = β, the furthest-ahead viewer fetches from the server and everyone
// else from peers — the paper's Eq. 2 (L−1)·q budget from first
// principles.
func TestStaggeredViewersEmergeLMinusOneBound(t *testing.T) {
	const l = 5
	sessions := make([]trace.Session, l)
	for i := range sessions {
		// Stagger starts by one chunk; same exchange for pure locality.
		sessions[i] = session(uint32(i), 7, int64(i*10), 600)
	}
	res, err := Run(sessions, DefaultConfig(1.5e6))
	if err != nil {
		t.Fatal(err)
	}
	// During full overlap, each tick delivers L chunks of which exactly
	// one (the leader's) comes from the server. Early/late edge ticks
	// deviate, so compare against the interior expectation loosely.
	serverShare := res.ServerBits / res.TotalBits
	wantShare := 1.0 / l
	if math.Abs(serverShare-wantShare) > 0.05 {
		t.Errorf("server share = %v, want ~%v", serverShare, wantShare)
	}
	// All peer traffic is exchange-local here.
	if res.LayerBits[energy.LayerPoP.Index()] != 0 || res.LayerBits[energy.LayerCore.Index()] != 0 {
		t.Errorf("same-exchange swarm produced non-local traffic: %v", res.LayerBits)
	}
}

func TestLockstepViewersRelayWithinWindow(t *testing.T) {
	// Two viewers starting at the same tick are always at the same
	// position, so neither is ever strictly ahead — but per the paper's
	// footnote 3, one of them fetches each chunk from the server and
	// relays it to the other within the window: the server share is 1/2.
	sessions := []trace.Session{
		session(0, 7, 0, 300),
		session(1, 7, 0, 300),
	}
	res, err := Run(sessions, DefaultConfig(1.5e6))
	if err != nil {
		t.Fatal(err)
	}
	serverShare := res.ServerBits / res.TotalBits
	if math.Abs(serverShare-0.5) > 1e-9 {
		t.Errorf("lockstep server share = %v, want 0.5 (fetch-and-relay)", serverShare)
	}
	if got := res.LayerBits[energy.LayerExchange.Index()]; got != res.PeerBits() {
		t.Errorf("relay between co-located viewers should be exchange-local: %v", res.LayerBits)
	}
}

func TestUploadBandwidthLimitsSharing(t *testing.T) {
	// Leader + one follower with q = β/2: the follower can only get half
	// its demand from the leader.
	sessions := []trace.Session{
		session(0, 7, 0, 600),
		session(1, 7, 100, 500),
	}
	res, err := Run(sessions, DefaultConfig(0.75e6))
	if err != nil {
		t.Fatal(err)
	}
	// Follower demand during overlap: 500 s × 1.5 Mb/s; leader can supply
	// at 0.75 Mb/s for those ticks => peer bits = 0.75e6 × 500.
	wantPeer := 0.75e6 * 500.0
	if math.Abs(res.PeerBits()-wantPeer) > wantPeer*0.05 {
		t.Errorf("peer bits = %v, want ~%v", res.PeerBits(), wantPeer)
	}
}

func TestLocalityPreferredAcrossExchanges(t *testing.T) {
	// A leader with spare capacity (q = 2β) sits on the follower's own
	// exchange; a second viewer sits across the metro. The cross-metro
	// viewer must fetch from the leader at the core layer (its only
	// option), while the follower's traffic stays exchange-local — the
	// leader's remaining capacity serves the closest peer first.
	sessions := []trace.Session{
		session(0, 7, 0, 600),  // leader, same exchange as the follower
		session(1, 8, 10, 590), // cross-PoP viewer (8 % 9 != 7 % 9)
		session(2, 7, 50, 500), // follower
	}
	cfg := DefaultConfig(3e6) // q = 2β: the leader can serve both
	res, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exchange := res.LayerBits[energy.LayerExchange.Index()]
	core := res.LayerBits[energy.LayerCore.Index()]
	// Follower overlap: 500 s of demand, all of it exchange-local.
	wantLocal := 1.5e6 * 500.0
	if math.Abs(exchange-wantLocal) > wantLocal*0.05 {
		t.Errorf("exchange bits = %v, want ~%v", exchange, wantLocal)
	}
	if core <= 0 {
		t.Error("cross-metro viewer should fetch at the core layer")
	}
}

// The chunk-level mechanics must agree with the paper's offload formula
// on Poisson swarms: G ≈ (q/β)·(c + e^{-c} − 1)/c.
func TestChunkOffloadMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const (
		rate         = 0.004  // arrivals/s
		meanDuration = 1500.0 // s
		horizon      = int64(20 * 86400)
	)
	var sessions []trace.Session
	now := 0.0
	for user := uint32(0); ; user++ {
		now += rng.ExpFloat64() / rate
		start := int64(now) / 10 * 10
		if start >= horizon {
			break
		}
		dur := int32(rng.ExpFloat64()*meanDuration/10) * 10
		if dur < 10 {
			dur = 10
		}
		if start+int64(dur) > horizon {
			continue
		}
		sessions = append(sessions, trace.Session{
			UserID:      user,
			ContentID:   0,
			ISP:         0,
			Exchange:    uint16(rng.Intn(345)),
			StartSec:    start,
			DurationSec: dur,
			Bitrate:     trace.BitrateSD,
		})
	}

	res, err := Run(sessions, DefaultConfig(1.5e6))
	if err != nil {
		t.Fatal(err)
	}
	var userSeconds float64
	for _, s := range sessions {
		userSeconds += float64(s.DurationSec)
	}
	c := userSeconds / float64(horizon)
	wantG := (c + math.Exp(-c) - 1) / c
	if math.Abs(res.Offload()-wantG) > 0.05 {
		t.Errorf("chunk-level offload %v vs closed form %v at c=%v", res.Offload(), wantG, c)
	}
}

func TestOffloadZeroForEmptyResult(t *testing.T) {
	if got := (Result{}).Offload(); got != 0 {
		t.Errorf("Offload on empty result = %v", got)
	}
}

package chunksim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// poissonSessions builds one M/M/∞ swarm's sessions, tick-aligned.
func poissonSessions(seed int64, rate, meanDuration float64, horizon int64) []trace.Session {
	rng := rand.New(rand.NewSource(seed))
	var sessions []trace.Session
	now := 0.0
	for user := uint32(0); ; user++ {
		now += rng.ExpFloat64() / rate
		start := int64(now) / 10 * 10
		if start >= horizon {
			break
		}
		dur := int32(rng.ExpFloat64()*meanDuration/10) * 10
		if dur < 10 {
			dur = 10
		}
		if start+int64(dur) > horizon {
			continue
		}
		sessions = append(sessions, trace.Session{
			UserID:      user,
			ContentID:   0,
			ISP:         0,
			Exchange:    uint16(rng.Intn(345)),
			StartSec:    start,
			DurationSec: dur,
			Bitrate:     trace.BitrateSD,
		})
	}
	return sessions
}

// runBoth replays the same sessions through the chunk-level and the
// flow-level simulators and returns both outcomes.
func runBoth(t *testing.T, sessions []trace.Session, uploadBps, flowRatio float64,
	horizon int64) (Result, sim.Tally) {
	t.Helper()
	chunkRes, err := Run(sessions, DefaultConfig(uploadBps))
	if err != nil {
		t.Fatal(err)
	}
	maxUser := uint32(0)
	for _, s := range sessions {
		if s.UserID > maxUser {
			maxUser = s.UserID
		}
	}
	tr := &trace.Trace{
		Name:       "crosscheck",
		Epoch:      time.Unix(0, 0).UTC(),
		HorizonSec: horizon,
		NumUsers:   int(maxUser) + 1,
		NumContent: 1,
		NumISPs:    1,
		Sessions:   sessions,
	}
	simCfg := sim.DefaultConfig(flowRatio)
	simCfg.TrackUsers = false
	flowRes, err := sim.Run(tr, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	return chunkRes, flowRes.Total
}

// savings prices a chunk result under the given parameters.
func chunkSavings(res Result, params energy.Params) float64 {
	return sim.Evaluate(sim.Tally{
		TotalBits:  res.TotalBits,
		ServerBits: res.ServerBits,
		LayerBits:  res.LayerBits,
	}, params).Savings
}

// TestChunkAgreesWithFlowSimulator is the deepest consistency check of
// the reproduction, run inside the paper's q/β <= 1 envelope: the
// chunk-level mechanics (which-chunk-who-holds, managed per-tick
// assignment) and the flow-level simulator (fluid capacities,
// locality-first matching, Eq. 2 budget) must agree on the traffic
// offload when replaying the same swarm, and the fluid model may only be
// modestly optimistic on energy (see TestChunkPrecedenceChainAtUnitRatio
// for why a gap exists at all).
func TestChunkAgreesWithFlowSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day chunk simulation")
	}
	const horizon = int64(15 * 86400)
	for _, tc := range []struct {
		name  string
		rate  float64
		ratio float64
	}{
		{"small swarm q=b", 0.0008, 1.0},
		{"small swarm low upload", 0.0008, 0.4},
		{"medium swarm low upload", 0.004, 0.4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sessions := poissonSessions(11, tc.rate, 1500, horizon)
			chunkRes, flowTally := runBoth(t, sessions, tc.ratio*1.5e6, tc.ratio, horizon)

			if gap := math.Abs(chunkRes.Offload() - flowTally.Offload()); gap > 0.03 {
				t.Errorf("offload gap %v: chunk %v vs flow %v",
					gap, chunkRes.Offload(), flowTally.Offload())
			}
			for _, params := range energy.BothModels() {
				cS := chunkSavings(chunkRes, params)
				fS := sim.Evaluate(flowTally, params).Savings
				if cS > fS+0.01 {
					t.Errorf("%s: chunk savings %v should not exceed fluid %v", params.Name, cS, fS)
				}
				if fS-cS > 0.10 {
					t.Errorf("%s: fluid optimism %v exceeds documented bound (chunk %v, fluid %v)",
						params.Name, fS-cS, cS, fS)
				}
			}
		})
	}
}

// TestChunkPrecedenceChainAtUnitRatio documents the fidelity finding the
// chunk simulator exposes: at q = β every supplier's capacity is exactly
// one viewer's demand, so the maximum-offload assignment is a forced
// chain along stream positions — the swarm manager has no locality
// freedom, and the locality mix degrades to the probability that
// *adjacent* viewers in the chain happen to be co-located. The fluid
// model (and the paper's Eq. 7, which assumes any peer can serve any
// other) is therefore optimistic at q = β; the savings overstatement is
// bounded and vanishes with upload headroom.
func TestChunkPrecedenceChainAtUnitRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day chunk simulation")
	}
	const horizon = int64(15 * 86400)
	sessions := poissonSessions(11, 0.004, 1500, horizon)
	chunkRes, flowTally := runBoth(t, sessions, 1.5e6, 1.0, horizon)

	// Offload itself still agrees: the chain achieves the same volume.
	if gap := math.Abs(chunkRes.Offload() - flowTally.Offload()); gap > 0.03 {
		t.Errorf("offload gap %v: chunk %v vs flow %v",
			gap, chunkRes.Offload(), flowTally.Offload())
	}
	// The fluid model must be the optimistic side, and the gap bounded.
	for _, params := range energy.BothModels() {
		cS := chunkSavings(chunkRes, params)
		fS := sim.Evaluate(flowTally, params).Savings
		if cS > fS+0.01 {
			t.Errorf("%s: chunk savings %v should not exceed fluid %v", params.Name, cS, fS)
		}
		if fS-cS > 0.10 {
			t.Errorf("%s: fluid optimism %v exceeds documented bound", params.Name, fS-cS)
		}
	}
}

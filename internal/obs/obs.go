// Package obs is the repo's dependency-free observability kit: a
// zero-allocation metrics registry (atomic counters, gauges and
// fixed-bucket histograms) with Prometheus text exposition, plus the
// shared instrumentation sets the replay pipeline and the consumelocald
// daemon register on it.
//
// The design follows the repo's scratch-buffer discipline: hot-path
// updates (Counter.Inc, Gauge.Set, Histogram.Observe, resolved vec
// children) are plain atomic operations that allocate nothing — pinned
// by TestObsCounterAllocs — while everything that needs memory (metric
// registration, vec child creation, exposition rendering) happens at
// setup or scrape time. Scrapes render into a reusable buffer owned by
// the registry, so a daemon scraped every few seconds reaches a steady
// state where even exposition allocates nothing.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metric type names as they appear on TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// maxVecLabels bounds a vec's label arity. Two covers every series in
// the repo (route×code); the fixed-size array key is what keeps child
// lookup allocation-free.
const maxVecLabels = 2

// metric is one registered family: its metadata plus an appender that
// renders the current sample values. Appenders run under the registry
// lock at scrape time and may allocate (sorting vec children, growing
// the buffer) — never on the update path.
type metric struct {
	name string
	help string
	typ  string
	// collect appends the family's sample lines (no HELP/TYPE) to buf.
	collect func(buf []byte) []byte
}

// Registry holds a fixed set of metric families registered at setup
// time and renders them in registration order. Registration panics on
// invalid or duplicate names — both are programmer errors a daemon
// should fail loudly on at startup, not at scrape time.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
	buf     []byte // reusable exposition buffer, guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name, help, typ string, collect func([]byte) []byte) {
	if err := CheckName(name); err != nil {
		panic("obs: " + err.Error())
	}
	if help == "" {
		panic("obs: metric " + name + " registered without help text")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.metrics = append(r.metrics, metric{name: name, help: help, typ: typ, collect: collect})
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, func(buf []byte) []byte {
		return AppendSample(buf, name, "", c.Value())
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, func(buf []byte) []byte {
		return AppendSample(buf, name, "", g.Value())
	})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time, under the registry lock — fn must not scrape the same registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, func(buf []byte) []byte {
		return AppendSample(buf, name, "", fn())
	})
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time. fn must be monotonically non-decreasing for the series
// to honour counter semantics — typically a sum over per-object
// cumulative totals plus a retired-objects accumulator.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, func(buf []byte) []byte {
		return AppendSample(buf, name, "", fn())
	})
}

// Info registers a constant gauge with value 1 carrying its payload in
// labels — the conventional shape for build/version metadata.
func (r *Registry) Info(name, help string, labels ...[2]string) {
	rendered := renderLabels(labels)
	r.register(name, help, TypeGauge, func(buf []byte) []byte {
		return AppendSample(buf, name, rendered, 1)
	})
}

// Histogram registers a fixed-bucket histogram of the given upper
// bounds (ascending, +Inf implicit). Latency histograms should use
// LatencyBuckets unless the workload says otherwise.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets not strictly ascending")
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, TypeHistogram, h.collect(name))
	return h
}

// CounterVec registers a counter family with one or two fixed label
// names. Children are created on first use; resolving an existing child
// is an allocation-free map lookup, so hot paths may call With per
// event — though resolving once at setup is cheaper still.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 || len(labels) > maxVecLabels {
		panic(fmt.Sprintf("obs: counter vec %s needs 1..%d labels, got %d", name, maxVecLabels, len(labels)))
	}
	v := &CounterVec{name: name, labels: labels, children: make(map[[maxVecLabels]string]*vecChild)}
	r.register(name, help, TypeCounter, v.collectInto)
	return v
}

// WritePrometheus renders every registered family in registration order
// in Prometheus text exposition format (version 0.0.4). The rendering
// buffer is reused across scrapes.
func (r *Registry) WritePrometheus(w interface{ Write([]byte) (int, error) }) error {
	r.mu.Lock()
	buf := r.buf[:0]
	for i := range r.metrics {
		m := &r.metrics[i]
		buf = AppendHelp(buf, m.name, m.help)
		buf = AppendType(buf, m.name, m.typ)
		buf = m.collect(buf)
	}
	r.buf = buf
	_, err := w.Write(buf)
	r.mu.Unlock()
	return err
}

// Handler returns the registry as a /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// atomicFloat is a float64 updated with atomic bit operations: Set is a
// store, Add a CAS loop — both allocation-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing float64. Integer counts and
// accumulated seconds share the one type; exposition renders whole
// numbers without a fraction.
type Counter struct{ v atomicFloat }

// Inc adds one.
//
//consumelocal:hotpath
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter by delta, which must be non-negative.
//
//consumelocal:hotpath
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decreased")
	}
	c.v.add(delta)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a float64 that may go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
//
//consumelocal:hotpath
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by delta (negative deltas allowed).
//
//consumelocal:hotpath
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (peak queue depth, widest window).
//
//consumelocal:hotpath
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.v.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.v.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a fixed-bucket histogram: cumulative bucket counts, a
// total count and a sum, all updated atomically. Observe is wait-free
// modulo the sum's CAS and allocates nothing.
type Histogram struct {
	upper  []float64       // ascending upper bounds; +Inf is counts[len(upper)]
	counts []atomic.Uint64 // len(upper)+1
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
//
//consumelocal:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile estimates the q-quantile of the observed distribution by
// linear interpolation inside the bucket where the cumulative count
// crosses q×total — the same estimator Prometheus's histogram_quantile
// applies server-side, available here for in-process reports (the
// loadtest harness) and test assertions. The first bucket interpolates
// from zero, so the estimate assumes non-negative observations (true of
// every latency series in the repo); a quantile landing in the +Inf
// bucket returns the largest finite bound, the histogram's resolution
// ceiling. q is clamped to [0, 1]; with no observations the result is
// NaN. Allocation-free and safe under concurrent Observe — concurrent
// updates can skew the estimate by at most the in-flight observations.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.upper) {
			// The +Inf bucket has no finite width to interpolate in.
			return h.upper[len(h.upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.upper[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (h.upper[i]-lower)*frac
	}
	// Counts grew between the two passes; the quantile is in the last
	// occupied bucket's upper reaches.
	return h.upper[len(h.upper)-1]
}

// collect returns the appender rendering _bucket/_sum/_count lines,
// with the per-line prefixes precomputed so steady-state scrapes only
// append into the registry's reusable buffer.
func (h *Histogram) collect(name string) func([]byte) []byte {
	bucketPrefix := name + `_bucket{le="`
	sumName, countName := name+"_sum", name+"_count"
	return func(buf []byte) []byte {
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			buf = append(buf, bucketPrefix...)
			if i < len(h.upper) {
				buf = strconv.AppendFloat(buf, h.upper[i], 'g', -1, 64)
			} else {
				buf = append(buf, "+Inf"...)
			}
			buf = append(buf, `"} `...)
			buf = strconv.AppendUint(buf, cum, 10)
			buf = append(buf, '\n')
		}
		buf = AppendSample(buf, sumName, "", h.sum.load())
		buf = AppendSample(buf, countName, "", float64(h.count.Load()))
		return buf
	}
}

// LatencyBuckets is the default latency bucket ladder, in seconds: 1 ms
// to 60 s, covering an HTTP handler and a multi-second window settle on
// one scale.
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// vecChild is one labelled counter of a CounterVec, carrying its
// pre-rendered label string so scrapes don't re-escape per sample.
type vecChild struct {
	Counter
	rendered string
	key      [maxVecLabels]string
}

// CounterVec is a counter family over one or two fixed label names.
type CounterVec struct {
	name   string
	labels []string

	mu       sync.RWMutex
	children map[[maxVecLabels]string]*vecChild
	ordered  []*vecChild // sorted by key for deterministic exposition
}

// With1 resolves the child for a one-label vec. The fast path (child
// exists) is a read-locked map lookup with no allocation.
func (v *CounterVec) With1(value string) *Counter {
	if len(v.labels) != 1 {
		panic("obs: With1 on vec " + v.name + " with " + strconv.Itoa(len(v.labels)) + " labels")
	}
	return v.child([maxVecLabels]string{value})
}

// With2 resolves the child for a two-label vec.
func (v *CounterVec) With2(v1, v2 string) *Counter {
	if len(v.labels) != 2 {
		panic("obs: With2 on vec " + v.name + " with " + strconv.Itoa(len(v.labels)) + " labels")
	}
	return v.child([maxVecLabels]string{v1, v2})
}

func (v *CounterVec) child(key [maxVecLabels]string) *Counter {
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return &c.Counter
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return &c.Counter
	}
	labels := make([][2]string, len(v.labels))
	for i, name := range v.labels {
		labels[i] = [2]string{name, key[i]}
	}
	c = &vecChild{rendered: renderLabels(labels), key: key}
	v.children[key] = c
	// Insert sorted so exposition is deterministic without re-sorting
	// (child creation is rare; scrapes are not).
	at := sort.Search(len(v.ordered), func(i int) bool {
		o := v.ordered[i]
		if o.key[0] != key[0] {
			return o.key[0] > key[0]
		}
		return o.key[1] > key[1]
	})
	v.ordered = append(v.ordered, nil)
	copy(v.ordered[at+1:], v.ordered[at:])
	v.ordered[at] = c
	return &c.Counter
}

func (v *CounterVec) collectInto(buf []byte) []byte {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, c := range v.ordered {
		buf = AppendSample(buf, v.name, c.rendered, c.Value())
	}
	return buf
}

// CheckName validates a metric or label name against the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// renderLabels renders a label set as `{k="v",...}`, escaping values.
func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	out := []byte{'{'}
	for i, kv := range labels {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, kv[0]...)
		out = append(out, '=', '"')
		out = appendEscaped(out, kv[1])
		out = append(out, '"')
	}
	return string(append(out, '}'))
}

// appendEscaped escapes a label value per the exposition format.
func appendEscaped(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// AppendHelp appends a `# HELP` line. Newlines in help are escaped.
func AppendHelp(buf []byte, name, help string) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	for i := 0; i < len(help); i++ {
		switch c := help[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '\n')
}

// AppendType appends a `# TYPE` line.
func AppendType(buf []byte, name, typ string) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, typ...)
	return append(buf, '\n')
}

// AppendSample appends one sample line: name, pre-rendered labels
// (`{k="v"}` or empty) and the value. Shared by the registry and by
// MetricsSink's reusable-buffer exposition, so the format lives in one
// place.
func AppendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	return append(buf, '\n')
}

// appendValue renders a sample value: whole numbers without a mantissa,
// everything else in Go's shortest 'g' form, NaN/Inf spelled as the
// exposition format expects.
func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

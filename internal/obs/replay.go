package obs

// ReplayMetrics is the replay pipeline's instrumentation set,
// registered on one Registry by NewReplayMetrics and threaded through
// consumelocal.WithInstrumentation: per-stage wall-clock totals (source
// read, engine settle, sink emit), per-job throughput counters, and the
// live-ingest backpressure set. Counters aggregate correctly when many
// jobs share one set (the consumelocald daemon registers exactly one);
// the ingest gauges describe a single stream and are meaningful when
// one ingest job runs per set (the CLI's -stats path) — a daemon
// exposes aggregate gauges of its own instead.
type ReplayMetrics struct {
	// SourceReadSeconds accumulates wall-clock time spent reading the
	// Source (Next/NextEvent), including time blocked waiting for a live
	// producer.
	SourceReadSeconds *Counter
	// SourceSessions counts sessions read from the Source.
	SourceSessions *Counter
	// SettleSeconds accumulates wall-clock time the engine spends
	// settling activity intervals: window marks on the streaming
	// engine's workers (summed across workers, so it can exceed
	// wall-clock), the whole simulation on the batch engines.
	SettleSeconds *Counter
	// SinkEmitSeconds accumulates wall-clock time spent delivering
	// snapshots to attached sinks and the Job channel.
	SinkEmitSeconds *Counter
	// WindowsSettled counts snapshots emitted.
	WindowsSettled *Counter

	Ingest *IngestMetrics
}

// IngestMetrics is the live-ingest backpressure set: where pushes
// actually block, how deep the queue runs, and how far sessions run
// ahead of the watermark. Attach to a stream with
// IngestSource.Instrument.
type IngestMetrics struct {
	// PushBlockSeconds accumulates time producers spent blocked in
	// Push/Advance waiting for queue space — the backpressure stall
	// total.
	PushBlockSeconds *Counter
	// QueueDepth is the stream's current queued-event count.
	QueueDepth *Gauge
	// QueuePeak is the high-water mark of QueueDepth.
	QueuePeak *Gauge
	// WatermarkLagSeconds is the trace-time gap between the newest
	// pushed session and the watermark: how far the producer's sessions
	// run ahead of its progress promises.
	WatermarkLagSeconds *Gauge
}

// NewReplayMetrics registers the pipeline series on r under the
// consumelocal_replay_ prefix and returns the set.
func NewReplayMetrics(r *Registry) *ReplayMetrics {
	m := NewStageMetrics(r)
	m.Ingest = NewIngestMetrics(r)
	return m
}

// NewStageMetrics registers only the per-stage counters — the subset
// that aggregates correctly when many concurrent jobs share one set —
// and leaves Ingest nil. A daemon sharing a set across jobs uses this
// and derives its ingest figures per stream instead.
func NewStageMetrics(r *Registry) *ReplayMetrics {
	return &ReplayMetrics{
		SourceReadSeconds: r.Counter("consumelocal_replay_source_read_seconds_total",
			"Wall-clock seconds spent reading the replay source, including waits on a live producer."),
		SourceSessions: r.Counter("consumelocal_replay_source_sessions_total",
			"Sessions read from the replay source."),
		SettleSeconds: r.Counter("consumelocal_replay_settle_seconds_total",
			"Seconds spent settling activity intervals, summed across engine workers."),
		SinkEmitSeconds: r.Counter("consumelocal_replay_sink_emit_seconds_total",
			"Wall-clock seconds spent delivering snapshots to sinks and the job channel."),
		WindowsSettled: r.Counter("consumelocal_replay_windows_settled_total",
			"Windowed snapshots emitted by the replay pipeline."),
	}
}

// NewIngestMetrics registers the live-ingest series on r under the
// consumelocal_replay_ingest_ prefix and returns the set.
func NewIngestMetrics(r *Registry) *IngestMetrics {
	return &IngestMetrics{
		PushBlockSeconds: r.Counter("consumelocal_replay_ingest_push_block_seconds_total",
			"Seconds producers spent blocked in Push/Advance waiting for ingest queue space (backpressure stalls)."),
		QueueDepth: r.Gauge("consumelocal_replay_ingest_queue_depth",
			"Events currently queued in the ingest stream."),
		QueuePeak: r.Gauge("consumelocal_replay_ingest_queue_peak",
			"High-water mark of the ingest queue depth."),
		WatermarkLagSeconds: r.Gauge("consumelocal_replay_ingest_watermark_lag_seconds",
			"Trace-time gap between the newest pushed session start and the watermark."),
	}
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.")
	g := r.Gauge("test_depth", "Depth.")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})

	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %g, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %g", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %g, want 9", got)
	}

	for _, v := range []float64{0.05, 0.5, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-3.05) > 1e-12 {
		t.Fatalf("histogram sum = %g, want 3.05", h.Sum())
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	for series, want := range map[string]float64{
		"test_events_total":                      3.5,
		"test_depth":                             9,
		`test_latency_seconds_bucket{le="0.1"}`:  1,
		`test_latency_seconds_bucket{le="1"}`:    3,
		`test_latency_seconds_bucket{le="+Inf"}`: 4,
		"test_latency_seconds_count":             4,
	} {
		got, ok := exp.Value(series)
		if !ok {
			t.Fatalf("missing series %s in:\n%s", series, buf.String())
		}
		if got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	v.With2("/v1/jobs", "202").Add(3)
	v.With2("/v1/jobs", "400").Inc()
	v.With2("/healthz", "200").Inc()
	// Resolving twice yields the same child.
	v.With2("/v1/jobs", "202").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	exp, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if got, _ := exp.Value(`test_requests_total{route="/v1/jobs",code="202"}`); got != 4 {
		t.Fatalf("child = %g, want 4\n%s", got, out)
	}
	// Exposition order is sorted by label values, deterministically.
	first := strings.Index(out, `route="/healthz"`)
	second := strings.Index(out, `route="/v1/jobs",code="202"`)
	third := strings.Index(out, `route="/v1/jobs",code="400"`)
	if !(first >= 0 && first < second && second < third) {
		t.Fatalf("vec children out of order:\n%s", out)
	}
}

func TestGaugeFuncAndInfo(t *testing.T) {
	r := NewRegistry()
	val := 41.0
	r.GaugeFunc("test_dynamic", "Dynamic.", func() float64 { return val })
	r.CounterFunc("test_running_total", "Running.", func() float64 { return 12 })
	r.Info("test_build_info", "Build.", [2]string{"go_version", "go1.24"})
	val = 42

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := exp.Value("test_dynamic"); got != 42 {
		t.Fatalf("gauge func = %g, want 42", got)
	}
	if got, _ := exp.Value("test_running_total"); got != 12 {
		t.Fatalf("counter func = %g, want 12", got)
	}
	if got, ok := exp.Value(`test_build_info{go_version="go1.24"}`); !ok || got != 1 {
		t.Fatalf("info metric = %g (present %v), want 1", got, ok)
	}
	if exp.Types["test_running_total"] != TypeCounter {
		t.Fatalf("counter func TYPE = %q", exp.Types["test_running_total"])
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	for name, reg := range map[string]func(r *Registry){
		"duplicate":    func(r *Registry) { r.Counter("dup_total", "A."); r.Counter("dup_total", "B.") },
		"bad name":     func(r *Registry) { r.Counter("1leading_digit", "A.") },
		"empty help":   func(r *Registry) { r.Counter("fine_total", "") },
		"no buckets":   func(r *Registry) { r.Histogram("h", "H.", nil) },
		"descending":   func(r *Registry) { r.Histogram("h", "H.", []float64{1, 0.5}) },
		"vec 0 labels": func(r *Registry) { r.CounterVec("v_total", "V.") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			reg(NewRegistry())
		}()
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_escaped_total", "Escaped.", "path")
	v.With1(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `test_escaped_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped sample missing; got:\n%s", buf.String())
	}
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped exposition does not parse: %v", err)
	}
}

func TestParseExpositionRejectsDrift(t *testing.T) {
	for name, text := range map[string]string{
		"sample without metadata": "orphan_total 1\n",
		"type only":               "# TYPE t_total counter\nt_total 1\n",
		"help only":               "# HELP t_total T.\nt_total 1\n",
		"bad value":               "# HELP t_total T.\n# TYPE t_total counter\nt_total x\n",
		"duplicate series":        "# HELP t_total T.\n# TYPE t_total counter\nt_total 1\nt_total 2\n",
		"unknown type":            "# HELP t_total T.\n# TYPE t_total widget\nt_total 1\n",
		"bare histogram sample":   "# HELP h H.\n# TYPE h histogram\nh 1\n",
		"unterminated labels":     "# HELP t_total T.\n# TYPE t_total counter\nt_total{a=\"b\" 1\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted invalid exposition", name)
		}
	}
}

// TestObsCounterAllocs pins the hot-path update operations at zero
// allocations per op: counters, gauges, histogram observations and
// resolved vec children are what pipeline stages and HTTP handlers
// touch per event, and they must stay free under the same discipline as
// the tracker and scanner guards.
func TestObsCounterAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_events_total", "A.")
	g := r.Gauge("alloc_depth", "A.")
	h := r.Histogram("alloc_latency_seconds", "A.", LatencyBuckets)
	v := r.CounterVec("alloc_requests_total", "A.", "route", "code")
	v.With2("/v1/jobs", "202").Inc() // create the child outside the measurement

	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(0.5) },
		"Gauge.Set":         func() { g.Set(3) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Gauge.SetMax":      func() { g.SetMax(1e9) },
		"Histogram.Observe": func() { h.Observe(0.042) },
		"Vec.With2 hit":     func() { v.With2("/v1/jobs", "202").Inc() },
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f allocs/op, want 0", name, allocs)
		}
	}
}

// TestScrapeSteadyStateAllocs checks that repeated scrapes reuse the
// registry's buffer: after a warm-up scrape, rendering a static metric
// set stays allocation-free.
func TestScrapeSteadyStateAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steady_total", "S.")
	r.Gauge("steady_depth", "S.").Set(4)
	h := r.Histogram("steady_seconds", "S.", LatencyBuckets)
	h.Observe(0.2)
	var sink countWriter
	_ = r.WritePrometheus(&sink) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		_ = r.WritePrometheus(&sink)
	})
	if allocs != 0 {
		t.Errorf("steady-state scrape allocates %.1f allocs/op, want 0", allocs)
	}
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func TestConcurrentUpdatesRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "R.")
	h := r.Histogram("race_seconds", "R.", []float64{1})
	v := r.CounterVec("race_vec_total", "R.", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				c.Inc()
				h.Observe(float64(n))
				v.With1("abcdefgh"[i : i+1]).Inc()
			}
		}(i)
	}
	var buf bytes.Buffer
	for i := 0; i < 50; i++ {
		buf.Reset()
		_ = r.WritePrometheus(&buf)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %g, want 8000", got)
	}
}

func TestReplayMetricsRegister(t *testing.T) {
	r := NewRegistry()
	m := NewReplayMetrics(r)
	m.SourceSessions.Add(10)
	m.Ingest.QueueDepth.Set(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := exp.Value("consumelocal_replay_source_sessions_total"); got != 10 {
		t.Fatalf("sessions = %g, want 10", got)
	}
	if got, _ := exp.Value("consumelocal_replay_ingest_queue_depth"); got != 3 {
		t.Fatalf("queue depth = %g, want 3", got)
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimator: exact
// interpolation inside a uniformly filled bucket, clamping at the
// edges, the +Inf ceiling, and the empty-histogram NaN.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "test histogram", []float64{1, 2, 4})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile = %g, want NaN", h.Quantile(0.5))
	}

	// 100 observations spread uniformly through (1, 2]: every quantile
	// interpolates linearly inside that one bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1 + (float64(i)+0.5)/100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1.5},
		{0.95, 1.95},
		{0.99, 1.99},
		{1, 2},
		{0, 1}, // rank 0 resolves to the occupied bucket's lower bound
		{-1, 1},
		{2, 2},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// Fill the lowest bucket too: the median must move below 1 and
	// interpolate from zero (non-negative observations assumed).
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.25); got <= 0 || got > 1 {
		t.Fatalf("Quantile(0.25) = %g, want inside (0, 1]", got)
	}
	if got := h.Quantile(0.75); got <= 1 || got > 2 {
		t.Fatalf("Quantile(0.75) = %g, want inside (1, 2]", got)
	}

	// An observation beyond every bound lands in +Inf; the top quantile
	// reports the histogram's resolution ceiling, not infinity.
	h.Observe(1000)
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) with +Inf occupancy = %g, want the last finite bound 4", got)
	}
	if math.IsNaN(h.Quantile(math.NaN())) != true {
		t.Fatal("Quantile(NaN) should be NaN")
	}
}

// TestHistogramQuantileAllocs pins Quantile as allocation-free: the
// loadtest report calls it while client pools are still recording.
func TestHistogramQuantileAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qa_seconds", "test histogram", LatencyBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 997)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
	}); allocs != 0 {
		t.Fatalf("Quantile allocates %v per call, want 0", allocs)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exposition is a parsed Prometheus text scrape: every sample keyed by
// its full series name (labels included, as rendered), plus the HELP
// and TYPE metadata seen per family.
type Exposition struct {
	// Samples maps the full series (e.g. `foo_total{kind="ingest"}` or
	// `bar_bucket{le="+Inf"}`) to its value.
	Samples map[string]float64
	// Help and Types map family names to their metadata lines.
	Help  map[string]string
	Types map[string]string
	// order retains first-appearance family order for Families.
	order []string
}

// Families returns the family names in exposition order.
func (e *Exposition) Families() []string { return e.order }

// Value returns the sample for the exact series name, and whether it
// was present.
func (e *Exposition) Value(series string) (float64, bool) {
	v, ok := e.Samples[series]
	return v, ok
}

// ParseExposition parses and validates Prometheus text exposition
// format (version 0.0.4) as this package writes it. Beyond syntax, it
// enforces the lint rules the CI metrics gate relies on: every sample
// must belong to a family with both a preceding HELP and TYPE line,
// family metadata must precede its samples, histogram samples must use
// the _bucket/_sum/_count suffixes consistent with their declared type,
// and no series may appear twice.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Samples: make(map[string]float64),
		Help:    make(map[string]string),
		Types:   make(map[string]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseMeta(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := exp.parseSample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseMeta(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		// A bare comment is legal exposition; this package never writes
		// one, so flag it as drift.
		return fmt.Errorf("unrecognised comment %q", line)
	}
	name := fields[2]
	if err := CheckName(name); err != nil {
		return err
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("metric %s: empty HELP text", name)
		}
		if _, dup := e.Help[name]; dup {
			return fmt.Errorf("metric %s: duplicate HELP", name)
		}
		e.Help[name] = fields[3]
		e.order = append(e.order, name)
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("metric %s: missing TYPE", name)
		}
		switch fields[3] {
		case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
		default:
			return fmt.Errorf("metric %s: unknown type %q", name, fields[3])
		}
		if _, dup := e.Types[name]; dup {
			return fmt.Errorf("metric %s: duplicate TYPE", name)
		}
		e.Types[name] = fields[3]
	default:
		return fmt.Errorf("unrecognised comment %q", line)
	}
	return nil
}

func (e *Exposition) parseSample(line string) error {
	// Split the series (name + optional label set) from the value. The
	// value separator is the first space outside braces — label values
	// may themselves contain spaces.
	depth := 0
	split := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '{':
			depth++
		case '}':
			depth--
		case ' ':
			if depth == 0 {
				split = i
			}
		}
		if split >= 0 {
			break
		}
	}
	if split <= 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	series, rawVal := line[:split], strings.TrimSpace(line[split+1:])
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
		if !strings.HasSuffix(series, "}") {
			return fmt.Errorf("series %s: unterminated label set", name)
		}
		if err := checkLabels(series[i+1 : len(series)-1]); err != nil {
			return fmt.Errorf("series %s: %w", name, err)
		}
	}
	if err := CheckName(name); err != nil {
		return err
	}
	family := e.familyOf(name)
	if family == "" {
		return fmt.Errorf("series %s: no preceding HELP/TYPE for its family", series)
	}
	if e.Types[family] == TypeHistogram && family == name {
		return fmt.Errorf("series %s: histogram family exposes bare samples (want _bucket/_sum/_count)", series)
	}
	v, err := parseValue(rawVal)
	if err != nil {
		return fmt.Errorf("series %s: bad value %q", series, rawVal)
	}
	if _, dup := e.Samples[series]; dup {
		return fmt.Errorf("series %s: duplicate sample", series)
	}
	e.Samples[series] = v
	return nil
}

// familyOf resolves a sample name to its declared family: the name
// itself, or — for histogram component samples — the name with its
// _bucket/_sum/_count suffix stripped. Empty when no family with both
// HELP and TYPE precedes it.
func (e *Exposition) familyOf(name string) string {
	if e.declared(name) {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if ok && e.declared(base) && e.Types[base] == TypeHistogram {
			return base
		}
	}
	return ""
}

func (e *Exposition) declared(name string) bool {
	_, hasHelp := e.Help[name]
	_, hasType := e.Types[name]
	return hasHelp && hasType
}

// checkLabels validates the inside of a rendered label set.
func checkLabels(s string) error {
	if s == "" {
		return fmt.Errorf("empty label set")
	}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed labels %q", s)
		}
		if err := CheckName(s[:eq]); err != nil {
			return fmt.Errorf("bad label name: %w", err)
		}
		rest := s[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		// Scan the quoted value, honouring escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		s = rest[end+1:]
		if s == "" {
			break
		}
		if s[0] != ',' {
			return fmt.Errorf("malformed labels %q", s)
		}
		s = s[1:]
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"consumelocal/internal/energy"
)

// quickCfg returns a deterministic quick.Check configuration.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// clampInputs maps arbitrary float pairs onto the model's domain.
func clampInputs(rawC, rawRatio float64) (c, ratio float64) {
	c = math.Abs(math.Mod(rawC, 1e4))
	ratio = math.Abs(math.Mod(rawRatio, 1))
	if ratio == 0 {
		ratio = 0.5
	}
	return c, ratio
}

// Property: savings are bounded by the asymptote and never below the
// "all traffic at core pricing" floor.
func TestPropertySavingsBounded(t *testing.T) {
	for _, params := range energy.BothModels() {
		m := MustNew(params, london())
		f := func(rawC, rawRatio float64) bool {
			c, ratio := clampInputs(rawC, rawRatio)
			s := m.Savings(c, ratio)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
			upper := m.AsymptoticSavings(ratio)
			// Floor: even if every shared bit crossed the core, the loss
			// is bounded by the core-layer per-bit delta.
			psiS := params.ServerPerBit()
			floor := -math.Min(ratio, 1) * (params.PeerModemPerBit() + params.PUE*params.CoreNetwork) / psiS
			return s <= upper+1e-9 && s >= floor-1e-9
		}
		if err := quick.Check(f, quickCfg(1)); err != nil {
			t.Errorf("%s: %v", params.Name, err)
		}
	}
}

// Property: savings are monotone in capacity for fixed ratio.
func TestPropertySavingsMonotoneInCapacity(t *testing.T) {
	m := MustNew(energy.Valancius(), london())
	f := func(rawA, rawB, rawRatio float64) bool {
		a, ratio := clampInputs(rawA, rawRatio)
		b, _ := clampInputs(rawB, rawRatio)
		if a > b {
			a, b = b, a
		}
		return m.Savings(a, ratio) <= m.Savings(b, ratio)+1e-9
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

// Property: savings are monotone in the upload ratio for fixed capacity.
func TestPropertySavingsMonotoneInRatio(t *testing.T) {
	m := MustNew(energy.Baliga(), london())
	f := func(rawC, rawA, rawB float64) bool {
		c, a := clampInputs(rawC, rawA)
		_, b := clampInputs(rawC, rawB)
		if a > b {
			a, b = b, a
		}
		return m.Savings(c, a) <= m.Savings(c, b)+1e-9
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

// Property: CCT stays within [-1, AsymptoticCCT] for any offload in [0,1].
func TestPropertyCCTBounded(t *testing.T) {
	for _, params := range energy.BothModels() {
		m := MustNew(params, london())
		limit := m.AsymptoticCCT()
		f := func(rawG float64) bool {
			g := math.Abs(math.Mod(rawG, 1))
			cct := m.CarbonCreditTransfer(g)
			return cct >= -1-1e-12 && cct <= limit+1e-12
		}
		if err := quick.Check(f, quickCfg(4)); err != nil {
			t.Errorf("%s: %v", params.Name, err)
		}
	}
}

// Property: the breakdown is internally consistent for arbitrary inputs.
func TestPropertyBreakdownConsistent(t *testing.T) {
	m := MustNew(energy.Valancius(), london())
	f := func(rawC, rawRatio float64) bool {
		c, ratio := clampInputs(rawC, rawRatio)
		b := m.Breakdown(c, ratio)
		if b.CDN != -b.User {
			return false
		}
		if math.Abs(b.EndToEnd-m.Savings(c, ratio)) > 1e-12 {
			return false
		}
		terms := m.Decompose(c, ratio)
		return math.Abs(terms.Net-b.EndToEnd) < 1e-12
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

// Property: the offload fraction equals the expected-sharers form and is
// in [0, 1].
func TestPropertyOffloadForm(t *testing.T) {
	m := MustNew(energy.Baliga(), london())
	f := func(rawC, rawRatio float64) bool {
		c, ratio := clampInputs(rawC, rawRatio)
		g := m.Offload(c, ratio)
		if g < 0 || g > 1 {
			return false
		}
		if c == 0 {
			return g == 0
		}
		want := math.Min(1, ratio*(c+math.Expm1(-c))/c)
		return math.Abs(g-want) < 1e-9
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Error(err)
	}
}

package core

import (
	"consumelocal/internal/mminf"
)

// SavingsTerms splits Eq. 12 into its two opposing components, making the
// paper's fundamental trade-off explicit: offloading saves the expensive
// server path, but peer traffic must still pay the edge twice plus a
// network path whose length depends on how local the matching is.
type SavingsTerms struct {
	// OffloadGain is G·(ψs − ψm_p)/ψs: the gross saving of moving traffic
	// from servers to peers, before any P2P network cost.
	OffloadGain float64
	// NetworkCost is the swarm-size-dependent P2P network term
	// (q/β)·PUE·Γ(c)/(c·ψs) subtracted by Eq. 12.
	NetworkCost float64
	// Net is OffloadGain − NetworkCost = S(c).
	Net float64
}

// Decompose evaluates both Eq. 12 terms at capacity c and ratio q/β.
func (m *Model) Decompose(c, ratio float64) SavingsTerms {
	if c <= 0 || ratio <= 0 {
		return SavingsTerms{}
	}
	psiS := m.params.ServerPerBit()
	g := m.Offload(c, ratio)
	gain := g * (psiS - m.params.PeerModemPerBit()) / psiS
	cost := ratio * m.params.PUE * m.PeerNetworkExpectation(c) / (c * psiS)
	return SavingsTerms{
		OffloadGain: gain,
		NetworkCost: cost,
		Net:         gain - cost,
	}
}

// BreakEvenNetworkGamma returns the per-bit P2P network cost (nJ/bit,
// before PUE) at which hybrid delivery would exactly break even with
// server delivery for fully offloaded traffic:
//
//	ψs = ψm_p + PUE·γ*  ⇒  γ* = (ψs − ψm_p)/PUE.
//
// If the metro tree cannot match peers below γ*, peer assistance loses
// energy no matter how large the swarm (the "savings can be negative"
// caveat of Section III.A).
func (m *Model) BreakEvenNetworkGamma() float64 {
	return (m.params.ServerPerBit() - m.params.PeerModemPerBit()) / m.params.PUE
}

// SharingProbability returns p = 1 − e^(−c), the probability the swarm
// can serve an arriving user at all (at least one peer online).
func (m *Model) SharingProbability(c float64) float64 {
	return mminf.OnlineProbability(c)
}

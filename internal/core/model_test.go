package core

import (
	"math"
	"testing"

	"consumelocal/internal/energy"
	"consumelocal/internal/mminf"
	"consumelocal/internal/topology"
)

func london() topology.Probabilities {
	return topology.DefaultLondon().Probabilities()
}

func valanciusModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(energy.Valancius(), london())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baligaModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(energy.Baliga(), london())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	bad := energy.Valancius()
	bad.PUE = 0.1
	if _, err := New(bad, london()); err == nil {
		t.Error("invalid energy params should be rejected")
	}
	badProbs := london()
	badProbs.Core = 0.4
	if _, err := New(energy.Valancius(), badProbs); err == nil {
		t.Error("invalid probabilities should be rejected")
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	bad := energy.Valancius()
	bad.Loss = 0
	MustNew(bad, london())
}

func TestAccessors(t *testing.T) {
	m := valanciusModel(t)
	if m.Params().Name != "valancius" {
		t.Errorf("Params().Name = %q", m.Params().Name)
	}
	if m.Probabilities().PoP != london().PoP {
		t.Errorf("Probabilities() not preserved")
	}
}

func TestOffloadDelegates(t *testing.T) {
	m := valanciusModel(t)
	if got, want := m.Offload(1, 1), mminf.OffloadFraction(1, 1); got != want {
		t.Errorf("Offload = %v, want %v", got, want)
	}
}

func TestSavingsZeroForEmptySwarm(t *testing.T) {
	m := valanciusModel(t)
	if got := m.Savings(0, 1); got != 0 {
		t.Errorf("S(0) = %v, want 0", got)
	}
	if got := m.Savings(-1, 1); got != 0 {
		t.Errorf("S(-1) = %v, want 0", got)
	}
	if got := m.Savings(10, 0); got != 0 {
		t.Errorf("S(c, ratio=0) = %v, want 0", got)
	}
}

func TestSavingsIncreaseWithCapacity(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		prev := math.Inf(-1)
		for _, c := range []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 50, 200} {
			s := m.Savings(c, 1)
			if s < prev {
				t.Errorf("%s: S(%v) = %v < previous %v", m.Params().Name, c, s, prev)
			}
			prev = s
		}
	}
}

func TestSavingsIncreaseWithUploadRatio(t *testing.T) {
	m := baligaModel(t)
	prev := math.Inf(-1)
	for _, r := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		s := m.Savings(20, r)
		if s < prev {
			t.Errorf("S(ratio=%v) = %v < previous %v", r, s, prev)
		}
		prev = s
	}
}

// The headline result of the paper: for popular content (large swarms) and
// q/β = 1, savings land in the 35–48% band for Valancius et al. and the
// 24–29% band for Baliga et al. (Section IV.B.2).
func TestSavingsMatchPaperHeadlineBands(t *testing.T) {
	// A swarm of a highly popular item: ~100K monthly views, ~30 min
	// sessions => capacity in the tens.
	const capacity = 70.0

	sv := valanciusModel(t).Savings(capacity, 1)
	if sv < 0.35 || sv > 0.50 {
		t.Errorf("valancius popular-item savings = %v, want within [0.35, 0.50]", sv)
	}
	sb := baligaModel(t).Savings(capacity, 1)
	if sb < 0.22 || sb > 0.31 {
		t.Errorf("baliga popular-item savings = %v, want within [0.22, 0.31]", sb)
	}
	// The Valancius parameters must show larger savings than Baliga:
	// its CDN network path is far more expensive per bit.
	if sv <= sb {
		t.Errorf("valancius savings (%v) should exceed baliga (%v)", sv, sb)
	}
}

// At q/β = 0.4 the paper reports savings above 10% in both models for
// popular items.
func TestSavingsAtLowUploadBandwidth(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		if got := m.Savings(70, 0.4); got <= 0.10 {
			t.Errorf("%s: S(70, 0.4) = %v, want > 0.10", m.Params().Name, got)
		}
	}
}

// Unpopular items (capacity well below 1) must save less than 10%.
func TestSavingsSmallForNicheContent(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		if got := m.Savings(0.05, 1); got >= 0.10 {
			t.Errorf("%s: niche-content savings = %v, want < 0.10", m.Params().Name, got)
		}
	}
}

func TestAsymptoticSavings(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		limit := m.AsymptoticSavings(1)
		// S(c) must approach the asymptote from below.
		s := m.Savings(1e5, 1)
		if math.Abs(s-limit) > 0.01 {
			t.Errorf("%s: S(1e5) = %v, asymptote %v", m.Params().Name, s, limit)
		}
		if s > limit+1e-9 {
			t.Errorf("%s: savings exceeded asymptote", m.Params().Name)
		}
	}
	if got := valanciusModel(t).AsymptoticSavings(0); got != 0 {
		t.Errorf("AsymptoticSavings(0) = %v, want 0", got)
	}
}

func TestPeerNetworkExpectationBounds(t *testing.T) {
	m := valanciusModel(t)
	p := m.Params()
	for _, c := range []float64{0.1, 1, 10, 100} {
		sharers := mminf.ExpectedSharers(c)
		gamma := m.PeerNetworkExpectation(c)
		// Bounded between all-exchange and all-core pricing.
		if gamma < p.ExchangeNetwork*sharers-1e-9 {
			t.Errorf("Γ(%v) = %v below exchange-only bound %v", c, gamma, p.ExchangeNetwork*sharers)
		}
		if gamma > p.CoreNetwork*sharers+1e-9 {
			t.Errorf("Γ(%v) = %v above core-only bound %v", c, gamma, p.CoreNetwork*sharers)
		}
	}
}

func TestEffectivePeerNetworkPerBit(t *testing.T) {
	m := valanciusModel(t)
	p := m.Params()
	// Tiny swarms: the rare pairs that form are matched anywhere in the
	// metro area, so the effective γ is near core pricing.
	small := m.EffectivePeerNetworkPerBit(0.01)
	if small < p.PoPNetwork {
		t.Errorf("effective γ at c=0.01 = %v, want >= %v", small, p.PoPNetwork)
	}
	// Huge swarms: everyone finds an exchange-local peer.
	big := m.EffectivePeerNetworkPerBit(1e5)
	if math.Abs(big-p.ExchangeNetwork) > 1 {
		t.Errorf("effective γ at c=1e5 = %v, want ~%v", big, p.ExchangeNetwork)
	}
	// Monotone decreasing in capacity.
	prev := math.Inf(1)
	for _, c := range []float64{0.01, 0.1, 1, 10, 100, 1000} {
		g := m.EffectivePeerNetworkPerBit(c)
		if g > prev+1e-9 {
			t.Errorf("effective γ not decreasing at c=%v: %v > %v", c, g, prev)
		}
		prev = g
	}
	// Empty swarm sentinel.
	if got := m.EffectivePeerNetworkPerBit(0); got != p.CoreNetwork {
		t.Errorf("effective γ at c=0 = %v, want %v", got, p.CoreNetwork)
	}
}

func TestCDNAndUserSavingsAreOffloadFraction(t *testing.T) {
	m := baligaModel(t)
	for _, c := range []float64{0.5, 5, 50} {
		g := m.Offload(c, 0.8)
		if got := m.CDNSavings(c, 0.8); got != g {
			t.Errorf("CDNSavings(%v) = %v, want %v", c, got, g)
		}
		if got := m.UserSavings(c, 0.8); got != -g {
			t.Errorf("UserSavings(%v) = %v, want %v", c, got, -g)
		}
	}
}

func TestBreakdownConsistent(t *testing.T) {
	m := valanciusModel(t)
	b := m.Breakdown(10, 1)
	if b.Capacity != 10 {
		t.Errorf("Capacity = %v", b.Capacity)
	}
	if b.CDN != -b.User {
		t.Errorf("CDN (%v) and User (%v) must be mirror images", b.CDN, b.User)
	}
	if b.EndToEnd != m.Savings(10, 1) {
		t.Errorf("EndToEnd inconsistent with Savings")
	}
	if b.CCTransfer != m.CarbonCreditTransferAtCapacity(10, 1) {
		t.Errorf("CCTransfer inconsistent")
	}
}

func TestCarbonCreditTransferNoSharing(t *testing.T) {
	// When nothing is shared, users bear their full footprint: CCT = -1.
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		if got := m.CarbonCreditTransfer(0); got != -1 {
			t.Errorf("%s: CCT(0) = %v, want -1", m.Params().Name, got)
		}
	}
}

// Section V: in the asymptotic case G = 1 users are carbon positive by 18%
// (Valancius) and 58% (Baliga).
func TestAsymptoticCCTMatchesPaper(t *testing.T) {
	if got := valanciusModel(t).AsymptoticCCT(); math.Abs(got-0.18) > 0.01 {
		t.Errorf("valancius asymptotic CCT = %v, want ~0.18", got)
	}
	if got := baligaModel(t).AsymptoticCCT(); math.Abs(got-0.58) > 0.01 {
		t.Errorf("baliga asymptotic CCT = %v, want ~0.58", got)
	}
}

func TestCarbonNeutralOffload(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		g, ok := m.CarbonNeutralOffload()
		if !ok {
			t.Fatalf("%s: expected a feasible neutral point", m.Params().Name)
		}
		if g <= 0 || g >= 1 {
			t.Errorf("%s: G* = %v, want within (0,1)", m.Params().Name, g)
		}
		// At G* the CCT must be exactly zero.
		if got := m.CarbonCreditTransfer(g); math.Abs(got) > 1e-9 {
			t.Errorf("%s: CCT(G*) = %v, want 0", m.Params().Name, got)
		}
	}
	// Baliga's more expensive servers mean users break even earlier.
	gv, _ := valanciusModel(t).CarbonNeutralOffload()
	gb, _ := baligaModel(t).CarbonNeutralOffload()
	if gb >= gv {
		t.Errorf("baliga G* (%v) should be below valancius G* (%v)", gb, gv)
	}
}

func TestCarbonNeutralInfeasibleForWeakServers(t *testing.T) {
	// If the server credit per bit cannot exceed the user cost per bit,
	// neutrality is unreachable.
	params := energy.Valancius()
	params.Server = 10 // credit 12 nJ/bit << user 107 nJ/bit
	m := MustNew(params, london())
	if _, ok := m.CarbonNeutralOffload(); ok {
		t.Error("neutral point should be infeasible for weak servers")
	}
}

func TestCCTMonotoneInOffload(t *testing.T) {
	m := baligaModel(t)
	prev := math.Inf(-1)
	for _, g := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		got := m.CarbonCreditTransfer(g)
		if got < prev {
			t.Errorf("CCT not monotone at G=%v: %v < %v", g, got, prev)
		}
		prev = got
	}
}

// The closed form S(c) must agree with a direct Monte-Carlo evaluation of
// the same quantities over the Poisson occupancy distribution. This is an
// independent numerical check of Eq. 12's algebra.
func TestSavingsAgainstDirectExpectation(t *testing.T) {
	m := valanciusModel(t)
	probs := london()
	p := m.Params()
	const ratio = 0.7

	for _, c := range []float64{0.2, 1, 5, 30} {
		// Direct computation over the occupancy pmf.
		var offBits, gammaSum float64
		for l := 2; l < 600; l++ {
			pmf := mminf.OccupancyPMF(l, c)
			sharers := float64(l - 1)
			offBits += sharers * pmf
			pe := probs.MatchProbability(energy.LayerExchange, l)
			pp := probs.MatchProbability(energy.LayerPoP, l)
			gamma := p.ExchangeNetwork*pe + p.PoPNetwork*(pp-pe) + p.CoreNetwork*(1-pp)
			gammaSum += sharers * gamma * pmf
		}
		psiS := p.ServerPerBit()
		direct := ratio*offBits/c*(psiS-p.PeerModemPerBit())/psiS -
			ratio*p.PUE*gammaSum/(c*psiS)

		got := m.Savings(c, ratio)
		if math.Abs(got-direct) > 1e-6 {
			t.Errorf("c=%v: closed form %v != direct expectation %v", c, got, direct)
		}
	}
}

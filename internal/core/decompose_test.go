package core

import (
	"math"
	"testing"

	"consumelocal/internal/energy"
)

func TestDecomposeSumsToSavings(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		for _, c := range []float64{0.1, 1, 10, 100} {
			for _, ratio := range []float64{0.4, 1.0} {
				terms := m.Decompose(c, ratio)
				if math.Abs(terms.Net-m.Savings(c, ratio)) > 1e-12 {
					t.Errorf("%s c=%v: Net %v != Savings %v",
						m.Params().Name, c, terms.Net, m.Savings(c, ratio))
				}
				if math.Abs(terms.OffloadGain-terms.NetworkCost-terms.Net) > 1e-12 {
					t.Errorf("terms do not add up: %+v", terms)
				}
				if terms.OffloadGain < 0 || terms.NetworkCost < 0 {
					t.Errorf("terms must be non-negative: %+v", terms)
				}
			}
		}
	}
}

func TestDecomposeZeroCases(t *testing.T) {
	m := valanciusModel(t)
	if terms := m.Decompose(0, 1); terms != (SavingsTerms{}) {
		t.Errorf("empty swarm terms = %+v, want zero", terms)
	}
	if terms := m.Decompose(5, 0); terms != (SavingsTerms{}) {
		t.Errorf("zero ratio terms = %+v, want zero", terms)
	}
}

func TestNetworkCostShareShrinksWithCapacity(t *testing.T) {
	// As swarms grow, matching localises and the network cost per unit of
	// gain falls — the "consume local" effect in one number.
	m := baligaModel(t)
	prev := math.Inf(1)
	for _, c := range []float64{0.5, 2, 10, 50, 500} {
		terms := m.Decompose(c, 1)
		share := terms.NetworkCost / terms.OffloadGain
		if share > prev+1e-12 {
			t.Errorf("network-cost share not shrinking at c=%v: %v > %v", c, share, prev)
		}
		prev = share
	}
}

func TestBreakEvenNetworkGamma(t *testing.T) {
	for _, m := range []*Model{valanciusModel(t), baligaModel(t)} {
		gamma := m.BreakEvenNetworkGamma()
		p := m.Params()
		// Definition check.
		want := (p.ServerPerBit() - p.PeerModemPerBit()) / p.PUE
		if math.Abs(gamma-want) > 1e-12 {
			t.Errorf("%s: break-even γ = %v, want %v", p.Name, gamma, want)
		}
		// In both published models even core-level matching stays below
		// break-even, so sharing is always per-bit profitable.
		if p.CoreNetwork >= gamma {
			t.Errorf("%s: core γ %v should be below break-even %v", p.Name, p.CoreNetwork, gamma)
		}
	}
}

func TestBreakEvenDetectsLosingConfigurations(t *testing.T) {
	params := energy.Params{
		Name:            "cheap-cdn",
		Server:          200,
		Modem:           100,
		CDNNetwork:      50,
		ExchangeNetwork: 100,
		PoPNetwork:      180,
		CoreNetwork:     245,
		PUE:             1.2,
		Loss:            1.07,
	}
	m := MustNew(params, london())
	gamma := m.BreakEvenNetworkGamma()
	if params.CoreNetwork <= gamma {
		t.Fatalf("setup: expected core above break-even (γ*=%v)", gamma)
	}
	// With core matching above break-even, tiny swarms (which match at
	// the core) must lose energy.
	if s := m.Savings(0.2, 1); s >= 0 {
		t.Errorf("tiny-swarm savings = %v, want negative for cheap-CDN params", s)
	}
}

func TestSharingProbability(t *testing.T) {
	m := valanciusModel(t)
	if got := m.SharingProbability(0); got != 0 {
		t.Errorf("p(0) = %v", got)
	}
	if got := m.SharingProbability(1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("p(1) = %v", got)
	}
}

// Package core implements the paper's primary contribution: the
// closed-form analytical model of energy savings in peer-assisted CDNs
// (Raman et al., "Consume Local: Towards Carbon Free Content Delivery",
// ICDCS 2018, Section III), together with the carbon-credit transfer
// scheme of Section V.
//
// The model links the end-to-end energy savings S of enabling peer
// assistance to the capacity c of a content swarm (the average number of
// concurrent users, M/M/∞), the ratio q/β between user upload bandwidth
// and content bitrate, a set of per-bit energy parameters (Table IV) and
// the localisation probabilities of the ISP metropolitan tree (Table III):
//
//	S(c) = G·(ψs − ψm_p)/ψs − (q/β)·PUE·Γ(c) / (c·ψs)        (Eq. 8/12)
//
// where G is the offloaded traffic fraction (Eq. 3) and Γ(c) is the
// expected per-window network energy of peer transfers,
//
//	Γ(c) = γexp·f(pexp,c) + γpop·(f(ppop,c) − f(pexp,c))
//	     + γcore·(f(pcore,c) − f(ppop,c)),
//
// the Poisson expectation of Eq. 7 with f as documented in package mminf.
package core

import (
	"fmt"
	"math"

	"consumelocal/internal/energy"
	"consumelocal/internal/mminf"
	"consumelocal/internal/topology"
)

// Model is the closed-form savings model for one energy parameter set and
// one ISP topology. The zero value is not usable; construct with New.
type Model struct {
	params energy.Params
	probs  topology.Probabilities
}

// New builds a Model from validated energy parameters and localisation
// probabilities.
func New(params energy.Params, probs topology.Probabilities) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := probs.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Model{params: params, probs: probs}, nil
}

// MustNew is New for statically known-good inputs (the published parameter
// sets); it panics on error and is intended for package-level defaults,
// examples and tests.
func MustNew(params energy.Params, probs topology.Probabilities) *Model {
	m, err := New(params, probs)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the energy parameter set the model was built with.
func (m *Model) Params() energy.Params { return m.params }

// Probabilities returns the topology localisation probabilities the model
// was built with.
func (m *Model) Probabilities() topology.Probabilities { return m.probs }

// Offload returns G, the fraction of swarm traffic served by peers
// (Eq. 3), for swarm capacity c and upload-to-bitrate ratio q/β.
func (m *Model) Offload(c, ratio float64) float64 {
	return mminf.OffloadFraction(c, ratio)
}

// PeerNetworkExpectation returns Γ(c): the Poisson expectation of
// (L−1)⁺ · γp2p(L) over the swarm occupancy L, in nJ/bit. Multiplied by
// PUE·q·Δτ it gives the expected per-window network energy of peer
// transfers (Eq. 9–10).
func (m *Model) PeerNetworkExpectation(c float64) float64 {
	fExp := mustLayerExpectation(m.probs.Exchange, c)
	fPoP := mustLayerExpectation(m.probs.PoP, c)
	fCore := mustLayerExpectation(m.probs.Core, c)

	return m.params.ExchangeNetwork*fExp +
		m.params.PoPNetwork*(fPoP-fExp) +
		m.params.CoreNetwork*(fCore-fPoP)
}

// mustLayerExpectation wraps mminf.LayerExpectation for inputs already
// validated at model construction (p in [0,1]) and call time (c clamped).
func mustLayerExpectation(p, c float64) float64 {
	if c < 0 {
		c = 0
	}
	v, err := mminf.LayerExpectation(p, c)
	if err != nil {
		panic(fmt.Sprintf("core: layer expectation: %v", err))
	}
	return v
}

// EffectivePeerNetworkPerBit returns the average per-bit network energy of
// peer traffic (nJ/bit, before PUE) implied by swarm capacity c: Γ(c)
// normalised by the expected volume of peer transfers E[(L−1)⁺]. As c
// grows, more transfers localise at exchange points and this average
// tends to γexp; for tiny swarms it approaches γcore.
func (m *Model) EffectivePeerNetworkPerBit(c float64) float64 {
	sharers := mminf.ExpectedSharers(c)
	if sharers <= 0 {
		return m.params.CoreNetwork
	}
	return m.PeerNetworkExpectation(c) / sharers
}

// Savings returns S(c), the end-to-end fractional energy savings of the
// hybrid peer-assisted CDN over pure server delivery (Eq. 12). A negative
// value means the hybrid system consumes more energy than the baseline.
//
// ratio is q/β. For c <= 0 (empty swarm) savings are 0: all traffic is
// served by the CDN exactly as in the baseline.
func (m *Model) Savings(c, ratio float64) float64 {
	if c <= 0 || ratio <= 0 {
		return 0
	}
	psiS := m.params.ServerPerBit()
	psiMP := m.params.PeerModemPerBit()

	g := m.Offload(c, ratio)
	gross := g * (psiS - psiMP) / psiS
	network := ratio * m.params.PUE * m.PeerNetworkExpectation(c) / (c * psiS)
	return gross - network
}

// AsymptoticSavings returns the limit of S(c) as the swarm capacity grows
// without bound: every bit is offloaded (G → q/β capped at 1) and every
// peer pair is matched within an exchange point.
func (m *Model) AsymptoticSavings(ratio float64) float64 {
	if ratio <= 0 {
		return 0
	}
	g := math.Min(ratio, 1)
	psiS := m.params.ServerPerBit()
	return g * (psiS - m.params.PeerModemPerBit() - m.params.PUE*m.params.ExchangeNetwork) / psiS
}

// CDNSavings returns the CDN-side energy savings, normalised by the CDN's
// cost with peer assistance disabled (the "CDN" curve of Fig. 5). The CDN
// serves only the (1−G) remainder, so its normalised saving equals the
// offloaded fraction G.
func (m *Model) CDNSavings(c, ratio float64) float64 {
	return m.Offload(c, ratio)
}

// UserSavings returns the user-side energy savings, normalised by the
// users' cost with peer assistance disabled (the "User" curve of Fig. 5).
// Users pay l·γm per downloaded bit regardless of source and additionally
// l·γm per uploaded bit, so sharing fraction G costs them −G.
func (m *Model) UserSavings(c, ratio float64) float64 {
	return -m.Offload(c, ratio)
}

// SavingsBreakdown bundles the four curves of Fig. 5 at one capacity.
type SavingsBreakdown struct {
	// Capacity is the swarm capacity c the breakdown was evaluated at.
	Capacity float64
	// EndToEnd is the whole-system savings S(c) (Eq. 12).
	EndToEnd float64
	// CDN is the CDN-side savings normalised by CDN-only costs (= G).
	CDN float64
	// User is the user-side savings normalised by user-only costs (= −G).
	User float64
	// CCTransfer is the users' net normalised carbon balance after the
	// CDN's savings are transferred to them as credits (Eq. 13).
	CCTransfer float64
}

// Breakdown evaluates all Fig. 5 curves at capacity c and ratio q/β.
func (m *Model) Breakdown(c, ratio float64) SavingsBreakdown {
	g := m.Offload(c, ratio)
	return SavingsBreakdown{
		Capacity:   c,
		EndToEnd:   m.Savings(c, ratio),
		CDN:        g,
		User:       -g,
		CCTransfer: m.CarbonCreditTransfer(g),
	}
}

// CarbonCreditTransfer returns the users' normalised net carbon balance
// after carbon credit transfer for an offload fraction G (Eq. 13):
//
//	CCT = (PUE·γs·G − l·γm·(1+G)) / (l·γm·(1+G))
//
// CCT = −1 when nothing is shared (G = 0): users bear their full streaming
// footprint. CCT > 0 means users are carbon positive: the transferred CDN
// savings more than offset their own consumption.
func (m *Model) CarbonCreditTransfer(g float64) float64 {
	userCost := m.params.UserPerBit() * (1 + g)
	credit := m.params.ServerCreditPerBit() * g
	return (credit - userCost) / userCost
}

// CarbonCreditTransferAtCapacity evaluates Eq. 13 at the offload fraction
// implied by swarm capacity c and ratio q/β.
func (m *Model) CarbonCreditTransferAtCapacity(c, ratio float64) float64 {
	return m.CarbonCreditTransfer(m.Offload(c, ratio))
}

// CarbonNeutralOffload returns G*, the offload fraction at which users
// become exactly carbon neutral under credit transfer (CCT = 0). Solving
// Eq. 13 for CCT = 0 gives
//
//	G* = l·γm / (PUE·γs − l·γm).
//
// The second return value is false when no finite positive G achieves
// neutrality (the server credit per bit does not exceed the user cost per
// bit, or G* would exceed 1).
func (m *Model) CarbonNeutralOffload() (float64, bool) {
	denom := m.params.ServerCreditPerBit() - m.params.UserPerBit()
	if denom <= 0 {
		return 0, false
	}
	g := m.params.UserPerBit() / denom
	if g > 1 {
		return g, false
	}
	return g, true
}

// AsymptoticCCT returns the carbon positivity users reach in the limiting
// case G = 1 (Section V: +18% for Valancius et al., +58% for Baliga et
// al.).
func (m *Model) AsymptoticCCT() float64 {
	return m.CarbonCreditTransfer(1)
}

package swarm

import (
	"slices"

	"consumelocal/internal/trace"
)

// Grouper partitions traces into swarms from caller-owned scratch: the
// key map, swarm headers, pointer slice and one session arena are all
// reused across calls, so repeated grouping — one call per simulation
// run — stops allocating once the buffers have grown to the workload.
//
// Ownership: the []*Swarm returned by Group, the Swarm values it points
// to and their Sessions slices are owned by the Grouper and remain valid
// only until the next Group call on the same Grouper. The zero value is
// ready to use; a Grouper must not be used from multiple goroutines
// concurrently.
type Grouper struct {
	ids    map[Key]int32
	counts []int32
	swarms []Swarm
	out    []*Swarm
	arena  []trace.Session
}

// Group partitions the trace's sessions into swarms under the given
// options, exactly as the package-level Group: sorted by key, members in
// trace order. See the type comment for the ownership rules.
func (g *Grouper) Group(t *trace.Trace, opts Options) []*Swarm {
	if g.ids == nil {
		g.ids = make(map[Key]int32)
	} else {
		clear(g.ids)
	}

	// Pass 1: assign each distinct key an id and count its sessions.
	counts := g.counts[:0]
	for _, s := range t.Sessions {
		k := KeyOf(s, opts)
		id, ok := g.ids[k]
		if !ok {
			id = int32(len(counts))
			g.ids[k] = id
			counts = append(counts, 0)
		}
		counts[id]++
	}
	g.counts = counts
	n := len(counts)

	if cap(g.swarms) < n {
		g.swarms = make([]Swarm, n)
	}
	swarms := g.swarms[:n]
	if cap(g.arena) < len(t.Sessions) {
		g.arena = make([]trace.Session, len(t.Sessions))
	}
	arena := g.arena[:len(t.Sessions)]

	// Carve the arena into one capacity-bounded slice per swarm, so the
	// appends of pass 2 fill it in place without ever reallocating.
	off := 0
	for id, c := range counts {
		end := off + int(c)
		swarms[id] = Swarm{Sessions: arena[off:off:end]}
		off = end
	}

	// Pass 2: place each session into its swarm, preserving trace order.
	for _, s := range t.Sessions {
		k := KeyOf(s, opts)
		id := g.ids[k]
		swarms[id].Key = k
		swarms[id].Sessions = append(swarms[id].Sessions, s)
	}

	if cap(g.out) < n {
		g.out = make([]*Swarm, n)
	}
	out := g.out[:n]
	for i := range swarms {
		out[i] = &swarms[i]
	}
	slices.SortFunc(out, cmpSwarmKey)
	g.out = out
	return out
}

// cmpSwarmKey orders swarms by key, the package's deterministic
// iteration order.
func cmpSwarmKey(a, b *Swarm) int {
	if a.Key.Less(b.Key) {
		return -1
	}
	if b.Key.Less(a.Key) {
		return 1
	}
	return 0
}

package swarm

import (
	"math/rand"
	"sort"
	"testing"

	"consumelocal/internal/trace"
)

// nullSink consumes settled output without retaining it, so benchmarks
// and allocation guards measure only the tracker itself.
type nullSink struct {
	intervals int
	members   int
}

func (s *nullSink) Emit(iv Interval) {
	s.intervals++
	s.members += len(iv.Active)
}

func (s *nullSink) Closed(int) {}

// trackerWorkload builds a start-ordered synthetic session list with
// heavy overlap, the shape the streaming engine feeds per swarm.
func trackerWorkload(n int) []trace.Session {
	rng := rand.New(rand.NewSource(42))
	sessions := make([]trace.Session, n)
	for i := range sessions {
		sessions[i] = trace.Session{
			UserID:      uint32(i),
			StartSec:    int64(rng.Intn(10 * n)),
			DurationSec: int32(1 + rng.Intn(3600)),
			Bitrate:     trace.BitrateSD,
		}
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].StartSec < sessions[j].StartSec })
	return sessions
}

// replayTracker drives one full schedule/advance/finish cycle, the
// engine's per-swarm hot loop.
func replayTracker(tr *Tracker, sessions []trace.Session, sink Sink) {
	for i, s := range sessions {
		tr.Advance(s.StartSec, sink)
		tr.Schedule(s.StartSec, s.EndSec(), i)
	}
	tr.Finish(sink)
}

// TestTrackerAdvanceAllocs pins the settlement fast path at zero
// allocations per emitted interval: after one warm-up replay has grown
// the tracker's event heap, active slice and scratch buffer, further
// replays of the same workload must not allocate at all.
func TestTrackerAdvanceAllocs(t *testing.T) {
	sessions := trackerWorkload(512)
	tr := NewTracker()
	sink := &nullSink{}
	replayTracker(tr, sessions, sink) // warm-up: grow internal buffers

	allocs := testing.AllocsPerRun(10, func() {
		replayTracker(tr, sessions, sink)
	})
	if allocs != 0 {
		t.Fatalf("tracker replay allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkTrackerAdvance measures the tracker's event settlement:
// sessions scheduled and settled through one reused tracker, reporting
// per-session cost over heavily overlapping membership.
func BenchmarkTrackerAdvance(b *testing.B) {
	sessions := trackerWorkload(2048)
	tr := NewTracker()
	sink := &nullSink{}
	replayTracker(tr, sessions, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayTracker(tr, sessions, sink)
	}
	b.ReportMetric(float64(len(sessions)), "sessions/op")
}

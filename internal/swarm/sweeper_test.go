package swarm

import (
	"testing"

	"consumelocal/internal/trace"
)

// sweepWorkloadSwarm wraps the shared synthetic session workload in a
// Swarm, the batch engine's sweep input.
func sweepWorkloadSwarm(n int) *Swarm {
	return &Swarm{Key: Key{Content: 1}, Sessions: trackerWorkload(n)}
}

// TestSweeperMatchesSweep pins the Sweeper to the deprecated
// (*Swarm).Sweep contract on a heavily overlapping workload: identical
// interval boundaries and identical ascending active sets, and identical
// output when the same Sweeper is reused across sweeps.
func TestSweeperMatchesSweep(t *testing.T) {
	sw := sweepWorkloadSwarm(256)
	want := sw.Sweep()

	var sp Sweeper
	for round := 0; round < 3; round++ {
		got := sp.Sweep(sw)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d intervals, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].From != want[i].From || got[i].To != want[i].To {
				t.Fatalf("round %d: interval %d = [%d,%d), want [%d,%d)",
					round, i, got[i].From, got[i].To, want[i].From, want[i].To)
			}
			if len(got[i].Active) != len(want[i].Active) {
				t.Fatalf("round %d: interval %d has %d active, want %d",
					round, i, len(got[i].Active), len(want[i].Active))
			}
			for j := range want[i].Active {
				if got[i].Active[j] != want[i].Active[j] {
					t.Fatalf("round %d: interval %d active[%d] = %d, want %d",
						round, i, j, got[i].Active[j], want[i].Active[j])
				}
			}
		}
	}
}

// TestSweeperAllocs pins the batch sweep fast path at zero allocations
// at steady state: after one warm-up sweep has grown the event slice,
// interval buffer and active-set arena, further sweeps of the same
// workload must not allocate at all.
func TestSweeperAllocs(t *testing.T) {
	sw := sweepWorkloadSwarm(512)
	var sp Sweeper
	sp.Sweep(sw) // warm-up: grow internal buffers

	allocs := testing.AllocsPerRun(10, func() {
		sp.Sweep(sw)
	})
	if allocs != 0 {
		t.Fatalf("sweeper allocated %.1f times per run, want 0", allocs)
	}
}

// TestGrouperMatchesGroup pins the Grouper to the package-level Group
// contract: same key order, same members in trace order, stable across
// arena reuse.
func TestGrouperMatchesGroup(t *testing.T) {
	sessions := trackerWorkload(256)
	for i := range sessions {
		sessions[i].ContentID = uint32(i % 7)
		sessions[i].ISP = uint8(i % 3)
		sessions[i].Bitrate = trace.BitrateSD
	}
	tr := &trace.Trace{Sessions: sessions}
	opts := DefaultOptions()
	want := Group(tr, opts)

	var g Grouper
	for round := 0; round < 3; round++ {
		got := g.Group(tr, opts)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d swarms, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key {
				t.Fatalf("round %d: swarm %d key = %+v, want %+v", round, i, got[i].Key, want[i].Key)
			}
			if len(got[i].Sessions) != len(want[i].Sessions) {
				t.Fatalf("round %d: swarm %d has %d sessions, want %d",
					round, i, len(got[i].Sessions), len(want[i].Sessions))
			}
			for j := range want[i].Sessions {
				if got[i].Sessions[j] != want[i].Sessions[j] {
					t.Fatalf("round %d: swarm %d session %d differs", round, i, j)
				}
			}
		}
	}
}

// TestGrouperAllocs pins grouping at near-zero steady-state allocation:
// after a warm-up call has grown the key map and arenas, regrouping the
// same trace must not allocate.
func TestGrouperAllocs(t *testing.T) {
	sessions := trackerWorkload(512)
	for i := range sessions {
		sessions[i].ContentID = uint32(i % 17)
	}
	tr := &trace.Trace{Sessions: sessions}
	opts := DefaultOptions()
	var g Grouper
	g.Group(tr, opts) // warm-up

	allocs := testing.AllocsPerRun(10, func() {
		g.Group(tr, opts)
	})
	if allocs != 0 {
		t.Fatalf("grouper allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkSweeper measures the reusable batch sweep over heavily
// overlapping membership, the per-swarm hot loop of sim.Run.
func BenchmarkSweeper(b *testing.B) {
	sw := sweepWorkloadSwarm(2048)
	var sp Sweeper
	sp.Sweep(sw)
	b.ReportAllocs()
	b.ResetTimer()
	var intervals int
	for i := 0; i < b.N; i++ {
		intervals = len(sp.Sweep(sw))
	}
	_ = intervals
	b.ReportMetric(float64(len(sw.Sessions)), "sessions/op")
}

package swarm

import "math"

// Sink consumes a Tracker's settled output: completed activity intervals
// and member-end notifications. It replaces the per-callback closures of
// the original Tracker API so hot-path settlement runs through direct
// method dispatch with no per-swarm closure state.
type Sink interface {
	// Emit receives one completed activity interval. The Interval's
	// Active slice is owned by the tracker and reused across emissions:
	// it is valid only until Emit returns and must be copied if retained.
	//
	//consumelocal:borrowed iv
	Emit(iv Interval)
	// Closed is invoked for every settled member end after the last
	// interval containing that member was emitted — the hook the
	// streaming engine uses to release per-member state.
	Closed(index int)
}

// Tracker maintains one swarm's activity incrementally: member
// open/close events are scheduled as sessions arrive, and completed
// activity intervals are settled on demand as the event-time watermark
// advances. Fed the same membership, a Tracker reproduces Sweep exactly —
// the same interval boundaries, the same active sets in the same order —
// without ever holding the swarm's full session list. It is the
// incremental core of the streaming engine (internal/engine), where whole
// traces are too large to group up front.
//
// The contract mirrors Sweep's event ordering: at any instant, member
// ends settle before member starts, so back-to-back sessions never
// appear concurrent. Emitted Active sets list members in Schedule-call
// order — identical to Sweep's index order when members are scheduled in
// session order, but independent of the caller's index values, so the
// engine can reuse member indices through a free list without perturbing
// the batch simulator's floating-point operation sequence.
//
// Callers must advance the watermark monotonically and must Advance to a
// member's open time before scheduling it, so that earlier ends settle
// first.
//
// The implementation is allocation-free at steady state: events live in
// a typed min-heap (no container/heap interface boxing), the active set
// is an incrementally maintained slice sorted by schedule order, and
// emitted intervals borrow one reusable scratch buffer.
type Tracker struct {
	events  []trackerEvent // typed binary min-heap
	active  []activeMember // sorted ascending by seq (schedule order)
	scratch []int          // reusable Interval.Active backing buffer
	prevAt  int64
	seq     uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{}
}

// Schedule adds one member active over [from, to): an open event at from
// and a close event at to. index identifies the member in emitted Active
// sets and Closed callbacks; Active ordering follows Schedule-call order,
// so indices may be reused once Closed has released them.
func (t *Tracker) Schedule(from, to int64, index int) {
	seq := t.seq
	t.seq++
	t.push(trackerEvent{at: from, seq: seq, index: index, open: true})
	t.push(trackerEvent{at: to, seq: seq, index: index, open: false})
}

// Advance settles every event strictly before until, plus member-end
// events at exactly until (Sweep's ends-before-starts tie-break), and
// emits each completed interval to sink in time order. until must not
// decrease across calls.
//
//consumelocal:hotpath
func (t *Tracker) Advance(until int64, sink Sink) {
	for len(t.events) > 0 {
		head := t.events[0]
		if head.at > until || (head.at == until && head.open) {
			break
		}
		at := head.at
		if len(t.active) > 0 && at > t.prevAt {
			sink.Emit(Interval{From: t.prevAt, To: at, Active: t.activeIndices()})
		}
		// Apply every settleable event at this instant before moving on,
		// so the next emitted interval sees the fully updated active set.
		for len(t.events) > 0 {
			e := t.events[0]
			if e.at != at || (e.at == until && e.open) {
				break
			}
			t.pop()
			if e.open {
				t.insertActive(e.seq, e.index)
			} else {
				t.removeActive(e.seq)
				sink.Closed(e.index)
			}
		}
		t.prevAt = at
	}
}

// Finish settles everything still pending, closing out the swarm.
func (t *Tracker) Finish(sink Sink) {
	t.Advance(math.MaxInt64, sink)
}

// ActiveCount returns the number of currently active members.
func (t *Tracker) ActiveCount() int { return len(t.active) }

// Idle reports whether the tracker has neither active members nor
// pending events.
func (t *Tracker) Idle() bool { return len(t.active) == 0 && len(t.events) == 0 }

// activeIndices fills the scratch buffer with the active member indices
// in schedule order. The returned slice is reused by the next emission.
//
//consumelocal:borrowed return
func (t *Tracker) activeIndices() []int {
	if cap(t.scratch) < len(t.active) {
		t.scratch = make([]int, len(t.active), 2*len(t.active))
	}
	s := t.scratch[:len(t.active)]
	for i := range t.active {
		s[i] = t.active[i].index
	}
	return s
}

// insertActive adds a member to the active slice, keeping it sorted by
// seq. Opens usually settle in schedule order, so the common case is a
// plain append; out-of-order settlement (a seeding appendix scheduled
// early but opening late) binary-searches its slot.
func (t *Tracker) insertActive(seq uint64, index int) {
	a := t.active
	if n := len(a); n == 0 || a[n-1].seq < seq {
		t.active = append(a, activeMember{seq: seq, index: index})
		return
	}
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a = append(a, activeMember{})
	copy(a[lo+1:], a[lo:])
	a[lo] = activeMember{seq: seq, index: index}
	t.active = a
}

// removeActive deletes the member with the given seq, preserving order.
// A missing seq is a no-op, mirroring the map-delete semantics of the
// original implementation.
func (t *Tracker) removeActive(seq uint64) {
	a := t.active
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(a) || a[lo].seq != seq {
		return
	}
	copy(a[lo:], a[lo+1:])
	t.active = a[:len(a)-1]
}

// trackerEvent is one scheduled membership change.
type trackerEvent struct {
	at    int64
	seq   uint64
	index int
	open  bool
}

// before orders events by time, with ends before starts at the same
// instant — the same tie-break Sweep applies — and by schedule order
// within a tie, making settlement fully deterministic.
func (e trackerEvent) before(o trackerEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.open != o.open {
		return !e.open
	}
	return e.seq < o.seq
}

// activeMember is one entry of the sorted active slice.
type activeMember struct {
	seq   uint64
	index int
}

// push adds an event to the min-heap (manual sift-up: no container/heap,
// no interface boxing, no per-event allocation).
func (t *Tracker) push(e trackerEvent) {
	t.events = append(t.events, e)
	h := t.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes the minimum event (manual sift-down).
func (t *Tracker) pop() trackerEvent {
	h := t.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	t.events = h[:n]
	h = t.events
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			m = r
		}
		if !h[m].before(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

package swarm

import (
	"container/heap"
	"math"
)

// Tracker maintains one swarm's activity incrementally: session-start and
// session-end events are scheduled as sessions arrive, and completed
// activity intervals are settled on demand as the event-time watermark
// advances. Fed the same membership, a Tracker reproduces Sweep exactly —
// the same interval boundaries, the same sorted active sets, in the same
// order — without ever holding the swarm's full session list. It is the
// incremental core of the streaming engine (internal/engine), where whole
// traces are too large to group up front.
//
// The contract mirrors Sweep's event ordering: at any instant, session
// ends settle before session starts, so back-to-back sessions never
// appear concurrent. Callers must advance the watermark monotonically and
// must Advance to a session's start time before scheduling its Open, so
// that earlier ends settle first.
type Tracker struct {
	events eventHeap
	active map[int]struct{}
	prevAt int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{active: make(map[int]struct{})}
}

// Open schedules a session-start event for member index at time at.
func (t *Tracker) Open(at int64, index int) {
	heap.Push(&t.events, trackerEvent{at: at, open: true, index: index})
}

// Close schedules a session-end event for member index at time at.
func (t *Tracker) Close(at int64, index int) {
	heap.Push(&t.events, trackerEvent{at: at, open: false, index: index})
}

// Advance settles every event strictly before until, plus session-end
// events at exactly until (Sweep's ends-before-starts tie-break), and
// emits each completed interval in time order. closed, when non-nil, is
// invoked for every settled session-end after the last interval
// containing that member was emitted — the hook the streaming engine uses
// to release per-member state. until must not decrease across calls.
func (t *Tracker) Advance(until int64, emit func(Interval), closed func(index int)) {
	for len(t.events) > 0 {
		head := t.events[0]
		if head.at > until || (head.at == until && head.open) {
			break
		}
		at := head.at
		if len(t.active) > 0 && at > t.prevAt {
			emit(Interval{From: t.prevAt, To: at, Active: keysSorted(t.active)})
		}
		// Apply every settleable event at this instant before moving on,
		// so the next emitted interval sees the fully updated active set.
		for len(t.events) > 0 {
			e := t.events[0]
			if e.at != at || (e.at == until && e.open) {
				break
			}
			heap.Pop(&t.events)
			if e.open {
				t.active[e.index] = struct{}{}
			} else {
				delete(t.active, e.index)
				if closed != nil {
					closed(e.index)
				}
			}
		}
		t.prevAt = at
	}
}

// Finish settles everything still pending, closing out the swarm.
func (t *Tracker) Finish(emit func(Interval), closed func(index int)) {
	t.Advance(math.MaxInt64, emit, closed)
}

// ActiveCount returns the number of currently active members.
func (t *Tracker) ActiveCount() int { return len(t.active) }

// Idle reports whether the tracker has neither active members nor
// pending events.
func (t *Tracker) Idle() bool { return len(t.active) == 0 && len(t.events) == 0 }

// trackerEvent is one scheduled membership change.
type trackerEvent struct {
	at    int64
	open  bool
	index int
}

// eventHeap is a min-heap of events ordered by time, with ends sorting
// before starts at the same instant — the same tie-break Sweep applies.
type eventHeap []trackerEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return !h[i].open && h[j].open
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(trackerEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

package swarm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"consumelocal/internal/trace"
)

// collector is the test Sink: it snapshots each emitted interval
// (copying the borrowed Active slice, which the tracker reuses) and
// records close order.
type collector struct {
	intervals []Interval
	closes    []int
}

func (c *collector) Emit(iv Interval) {
	active := make([]int, len(iv.Active))
	copy(active, iv.Active)
	iv.Active = active
	c.intervals = append(c.intervals, iv)
}

func (c *collector) Closed(index int) { c.closes = append(c.closes, index) }

// feedTracker replays a session list through a Tracker the way the
// streaming engine does — advance to each start, then schedule the
// session — and collects the emitted intervals and close order.
func feedTracker(sessions []trace.Session) (intervals []Interval, closes []int) {
	tr := NewTracker()
	var c collector
	for i, s := range sessions {
		tr.Advance(s.StartSec, &c)
		tr.Schedule(s.StartSec, s.EndSec(), i)
	}
	tr.Finish(&c)
	return c.intervals, c.closes
}

func assertIntervalsEqual(t *testing.T, got, want []Interval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("interval counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("interval %d spans differ: [%d,%d) vs [%d,%d)",
				i, got[i].From, got[i].To, want[i].From, want[i].To)
		}
		if !reflect.DeepEqual(got[i].Active, want[i].Active) {
			t.Fatalf("interval %d active sets differ: %v vs %v", i, got[i].Active, want[i].Active)
		}
	}
}

func TestTrackerMatchesSweepRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		sessions := make([]trace.Session, n)
		for i := range sessions {
			sessions[i] = trace.Session{
				UserID:      uint32(i),
				StartSec:    int64(rng.Intn(200)),
				DurationSec: int32(1 + rng.Intn(100)),
				Bitrate:     trace.BitrateSD,
			}
		}
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].StartSec < sessions[j].StartSec })

		sw := &Swarm{Sessions: sessions}
		want := sw.Sweep()
		got, closes := feedTracker(sessions)
		assertIntervalsEqual(t, got, want)
		if len(closes) != n {
			t.Fatalf("trial %d: %d closes, want %d", trial, len(closes), n)
		}
	}
}

func TestTrackerBackToBackSessionsNotConcurrent(t *testing.T) {
	// Second session starts exactly when the first ends: Sweep's
	// ends-before-starts tie-break keeps them in separate intervals.
	sessions := []trace.Session{
		{UserID: 0, StartSec: 0, DurationSec: 10, Bitrate: trace.BitrateSD},
		{UserID: 1, StartSec: 10, DurationSec: 10, Bitrate: trace.BitrateSD},
	}
	got, _ := feedTracker(sessions)
	want := (&Swarm{Sessions: sessions}).Sweep()
	assertIntervalsEqual(t, got, want)
	for _, iv := range got {
		if len(iv.Active) != 1 {
			t.Fatalf("back-to-back sessions appear concurrent: %+v", iv)
		}
	}
}

func TestTrackerFutureOpens(t *testing.T) {
	// Seeding-style members open in the future relative to the arrival
	// watermark (their open is scheduled at an earlier Advance point).
	// The tracker must interleave them with other sessions correctly.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		var combined []trace.Session
		for i := 0; i < n; i++ {
			s := trace.Session{
				UserID:      uint32(i),
				StartSec:    int64(rng.Intn(150)),
				DurationSec: int32(1 + rng.Intn(60)),
				Bitrate:     trace.BitrateSD,
			}
			combined = append(combined, s)
		}
		sort.Slice(combined, func(i, j int) bool { return combined[i].StartSec < combined[j].StartSec })

		// Batch reference: real sessions interleaved with their seeders,
		// exactly like sim's augment step.
		const retention = 25
		var members []trace.Session
		for _, s := range combined {
			members = append(members, s)
			seeder := s
			seeder.StartSec = s.EndSec()
			seeder.DurationSec = retention
			members = append(members, seeder)
		}
		want := (&Swarm{Sessions: members}).Sweep()

		// Streaming: schedule a seeder alongside each real session.
		tr := NewTracker()
		var c collector
		idx := 0
		for _, s := range combined {
			tr.Advance(s.StartSec, &c)
			tr.Schedule(s.StartSec, s.EndSec(), idx)
			idx++
			seeder := s
			seeder.StartSec = s.EndSec()
			seeder.DurationSec = retention
			tr.Schedule(seeder.StartSec, seeder.EndSec(), idx)
			idx++
		}
		tr.Finish(&c)
		assertIntervalsEqual(t, c.intervals, want)
	}
}

// TestTrackerIndexReuse is the free-list contract: once Closed has
// released a member's index, a later member may reuse it, and emitted
// Active sets still follow Schedule order — not index order — exactly
// as the batch sweep orders members by arrival.
func TestTrackerIndexReuse(t *testing.T) {
	sessions := []trace.Session{
		{UserID: 0, StartSec: 0, DurationSec: 10, Bitrate: trace.BitrateSD},  // index 0, closes first
		{UserID: 1, StartSec: 0, DurationSec: 100, Bitrate: trace.BitrateSD}, // index 1, long-lived
		{UserID: 2, StartSec: 20, DurationSec: 30, Bitrate: trace.BitrateSD}, // reuses index 0
	}
	want := (&Swarm{Sessions: sessions}).Sweep()

	tr := NewTracker()
	var c collector
	tr.Advance(0, &c)
	tr.Schedule(0, 10, 0)
	tr.Schedule(0, 100, 1)
	tr.Advance(20, &c)
	if len(c.closes) != 1 || c.closes[0] != 0 {
		t.Fatalf("closes after advance to 20 = %v, want [0]", c.closes)
	}
	tr.Schedule(20, 50, 0) // recycled index
	tr.Finish(&c)

	// The batch sweep has the third session at index 2; translate the
	// reused index back before comparing.
	for _, iv := range c.intervals {
		for i, idx := range iv.Active {
			if iv.From >= 20 && idx == 0 {
				iv.Active[i] = 2
			}
		}
	}
	assertIntervalsEqual(t, c.intervals, want)
}

func TestTrackerIdle(t *testing.T) {
	tr := NewTracker()
	if !tr.Idle() {
		t.Fatal("new tracker should be idle")
	}
	tr.Schedule(0, 10, 0)
	if tr.Idle() {
		t.Fatal("tracker with pending events should not be idle")
	}
	var c collector
	tr.Finish(&c)
	if !tr.Idle() {
		t.Fatal("finished tracker should be idle")
	}
	if len(c.intervals) != 1 {
		t.Fatalf("emitted %d intervals, want 1", len(c.intervals))
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("active count = %d, want 0", tr.ActiveCount())
	}
}

package swarm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"consumelocal/internal/trace"
)

// feedTracker replays a session list through a Tracker the way the
// streaming engine does — advance to each start, then schedule the
// session — and collects the emitted intervals and close order.
func feedTracker(sessions []trace.Session) (intervals []Interval, closes []int) {
	tr := NewTracker()
	emit := func(iv Interval) { intervals = append(intervals, iv) }
	closed := func(idx int) { closes = append(closes, idx) }
	for i, s := range sessions {
		tr.Advance(s.StartSec, emit, closed)
		tr.Open(s.StartSec, i)
		tr.Close(s.EndSec(), i)
	}
	tr.Finish(emit, closed)
	return intervals, closes
}

func assertIntervalsEqual(t *testing.T, got, want []Interval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("interval counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("interval %d spans differ: [%d,%d) vs [%d,%d)",
				i, got[i].From, got[i].To, want[i].From, want[i].To)
		}
		if !reflect.DeepEqual(got[i].Active, want[i].Active) {
			t.Fatalf("interval %d active sets differ: %v vs %v", i, got[i].Active, want[i].Active)
		}
	}
}

func TestTrackerMatchesSweepRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		sessions := make([]trace.Session, n)
		for i := range sessions {
			sessions[i] = trace.Session{
				UserID:      uint32(i),
				StartSec:    int64(rng.Intn(200)),
				DurationSec: int32(1 + rng.Intn(100)),
				Bitrate:     trace.BitrateSD,
			}
		}
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].StartSec < sessions[j].StartSec })

		sw := &Swarm{Sessions: sessions}
		want := sw.Sweep()
		got, closes := feedTracker(sessions)
		assertIntervalsEqual(t, got, want)
		if len(closes) != n {
			t.Fatalf("trial %d: %d closes, want %d", trial, len(closes), n)
		}
	}
}

func TestTrackerBackToBackSessionsNotConcurrent(t *testing.T) {
	// Second session starts exactly when the first ends: Sweep's
	// ends-before-starts tie-break keeps them in separate intervals.
	sessions := []trace.Session{
		{UserID: 0, StartSec: 0, DurationSec: 10, Bitrate: trace.BitrateSD},
		{UserID: 1, StartSec: 10, DurationSec: 10, Bitrate: trace.BitrateSD},
	}
	got, _ := feedTracker(sessions)
	want := (&Swarm{Sessions: sessions}).Sweep()
	assertIntervalsEqual(t, got, want)
	for _, iv := range got {
		if len(iv.Active) != 1 {
			t.Fatalf("back-to-back sessions appear concurrent: %+v", iv)
		}
	}
}

func TestTrackerFutureOpens(t *testing.T) {
	// Seeding-style members open in the future relative to the arrival
	// watermark (their open is scheduled at an earlier Advance point).
	// The tracker must interleave them with other sessions correctly.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		var combined []trace.Session
		for i := 0; i < n; i++ {
			s := trace.Session{
				UserID:      uint32(i),
				StartSec:    int64(rng.Intn(150)),
				DurationSec: int32(1 + rng.Intn(60)),
				Bitrate:     trace.BitrateSD,
			}
			combined = append(combined, s)
		}
		sort.Slice(combined, func(i, j int) bool { return combined[i].StartSec < combined[j].StartSec })

		// Batch reference: real sessions interleaved with their seeders,
		// exactly like sim's augment step.
		const retention = 25
		var members []trace.Session
		for _, s := range combined {
			members = append(members, s)
			seeder := s
			seeder.StartSec = s.EndSec()
			seeder.DurationSec = retention
			members = append(members, seeder)
		}
		want := (&Swarm{Sessions: members}).Sweep()

		// Streaming: schedule a seeder alongside each real session.
		tr := NewTracker()
		var got []Interval
		emit := func(iv Interval) { got = append(got, iv) }
		idx := 0
		for _, s := range combined {
			tr.Advance(s.StartSec, emit, nil)
			tr.Open(s.StartSec, idx)
			tr.Close(s.EndSec(), idx)
			idx++
			seeder := s
			seeder.StartSec = s.EndSec()
			seeder.DurationSec = retention
			tr.Open(seeder.StartSec, idx)
			tr.Close(seeder.EndSec(), idx)
			idx++
		}
		tr.Finish(emit, nil)
		assertIntervalsEqual(t, got, want)
	}
}

func TestTrackerIdle(t *testing.T) {
	tr := NewTracker()
	if !tr.Idle() {
		t.Fatal("new tracker should be idle")
	}
	tr.Open(0, 0)
	tr.Close(10, 0)
	if tr.Idle() {
		t.Fatal("tracker with pending events should not be idle")
	}
	var n int
	tr.Finish(func(Interval) { n++ }, nil)
	if !tr.Idle() {
		t.Fatal("finished tracker should be idle")
	}
	if n != 1 {
		t.Fatalf("emitted %d intervals, want 1", n)
	}
	if tr.ActiveCount() != 0 {
		t.Fatalf("active count = %d, want 0", tr.ActiveCount())
	}
}

package swarm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"consumelocal/internal/trace"
)

func session(user, content uint32, isp uint8, start int64, dur int32, br trace.BitrateClass) trace.Session {
	return trace.Session{
		UserID:      user,
		ContentID:   content,
		ISP:         isp,
		StartSec:    start,
		DurationSec: dur,
		Bitrate:     br,
	}
}

func testTrace(sessions ...trace.Session) *trace.Trace {
	return &trace.Trace{
		Name:       "t",
		Epoch:      time.Unix(0, 0).UTC(),
		HorizonSec: 86400,
		NumUsers:   1000,
		NumContent: 100,
		NumISPs:    5,
		Sessions:   sessions,
	}
}

func TestKeyOf(t *testing.T) {
	s := session(1, 42, 3, 0, 60, trace.BitrateSD)

	tests := []struct {
		name string
		opts Options
		want Key
	}{
		{"full split", Options{RestrictISP: true, SplitBitrate: true}, Key{Content: 42, ISP: 3, Bitrate: 1500}},
		{"no isp", Options{RestrictISP: false, SplitBitrate: true}, Key{Content: 42, ISP: AnyISP, Bitrate: 1500}},
		{"no bitrate", Options{RestrictISP: true, SplitBitrate: false}, Key{Content: 42, ISP: 3, Bitrate: AnyBitrate}},
		{"content only", Options{}, Key{Content: 42, ISP: AnyISP, Bitrate: AnyBitrate}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := KeyOf(s, tt.opts); got != tt.want {
				t.Errorf("KeyOf = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opts := DefaultOptions()
	if !opts.RestrictISP || !opts.SplitBitrate {
		t.Errorf("paper defaults are ISP-friendly bitrate-split swarms, got %+v", opts)
	}
}

func TestGroupPartitions(t *testing.T) {
	tr := testTrace(
		session(1, 7, 0, 0, 60, trace.BitrateSD),
		session(2, 7, 0, 10, 60, trace.BitrateSD),
		session(3, 7, 1, 20, 60, trace.BitrateSD), // other ISP
		session(4, 7, 0, 30, 60, trace.BitrateHD), // other bitrate
		session(5, 9, 0, 40, 60, trace.BitrateSD), // other content
	)

	swarms := Group(tr, DefaultOptions())
	if len(swarms) != 4 {
		t.Fatalf("got %d swarms, want 4", len(swarms))
	}
	var total int
	for _, sw := range swarms {
		total += len(sw.Sessions)
		for _, s := range sw.Sessions {
			if KeyOf(s, DefaultOptions()) != sw.Key {
				t.Errorf("session %+v grouped under wrong key %+v", s, sw.Key)
			}
		}
	}
	if total != len(tr.Sessions) {
		t.Errorf("grouped %d sessions, want %d", total, len(tr.Sessions))
	}
}

func TestGroupWithoutRestrictionsMergesISPs(t *testing.T) {
	tr := testTrace(
		session(1, 7, 0, 0, 60, trace.BitrateSD),
		session(3, 7, 1, 20, 60, trace.BitrateSD),
	)
	swarms := Group(tr, Options{RestrictISP: false, SplitBitrate: true})
	if len(swarms) != 1 {
		t.Fatalf("got %d swarms, want 1 city-wide swarm", len(swarms))
	}
	if len(swarms[0].Sessions) != 2 {
		t.Errorf("swarm holds %d sessions, want 2", len(swarms[0].Sessions))
	}
}

func TestGroupDeterministicOrder(t *testing.T) {
	tr := testTrace(
		session(1, 9, 1, 0, 60, trace.BitrateSD),
		session(2, 7, 0, 0, 60, trace.BitrateHD),
		session(3, 7, 0, 0, 60, trace.BitrateSD),
		session(4, 7, 1, 0, 60, trace.BitrateSD),
	)
	first := Group(tr, DefaultOptions())
	for run := 0; run < 5; run++ {
		again := Group(tr, DefaultOptions())
		for i := range first {
			if first[i].Key != again[i].Key {
				t.Fatalf("group order changed between runs at %d", i)
			}
		}
	}
	// Sorted by content, then ISP, then bitrate.
	for i := 1; i < len(first); i++ {
		if !first[i-1].Key.Less(first[i].Key) {
			t.Errorf("keys out of order: %+v before %+v", first[i-1].Key, first[i].Key)
		}
	}
}

func TestCapacity(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 3600, trace.BitrateSD),
		session(2, 0, 0, 0, 1800, trace.BitrateSD),
	}}
	// 5400 user-seconds over a 10800 s horizon = capacity 0.5.
	if got := sw.Capacity(10800); got != 0.5 {
		t.Errorf("Capacity = %v, want 0.5", got)
	}
	if got := sw.Capacity(0); got != 0 {
		t.Errorf("Capacity(0) = %v, want 0", got)
	}
}

func TestBytes(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 100, trace.BitrateSD),
		session(2, 0, 0, 0, 100, trace.BitrateSD),
	}}
	want := 2 * (1.5e6 * 100 / 8)
	if got := sw.Bytes(); got != want {
		t.Errorf("Bytes = %v, want %v", got, want)
	}
}

func TestSweepSimpleOverlap(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 100, trace.BitrateSD),  // [0, 100)
		session(2, 0, 0, 50, 100, trace.BitrateSD), // [50, 150)
	}}
	intervals := sw.Sweep()
	want := []struct {
		from, to int64
		active   []int
	}{
		{0, 50, []int{0}},
		{50, 100, []int{0, 1}},
		{100, 150, []int{1}},
	}
	if len(intervals) != len(want) {
		t.Fatalf("got %d intervals, want %d: %+v", len(intervals), len(want), intervals)
	}
	for i, w := range want {
		iv := intervals[i]
		if iv.From != w.from || iv.To != w.to {
			t.Errorf("interval %d = [%d,%d), want [%d,%d)", i, iv.From, iv.To, w.from, w.to)
		}
		if len(iv.Active) != len(w.active) {
			t.Fatalf("interval %d active = %v, want %v", i, iv.Active, w.active)
		}
		for j := range w.active {
			if iv.Active[j] != w.active[j] {
				t.Errorf("interval %d active = %v, want %v", i, iv.Active, w.active)
			}
		}
	}
}

func TestSweepSkipsEmptyGaps(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 10, trace.BitrateSD),
		session(2, 0, 0, 100, 10, trace.BitrateSD),
	}}
	intervals := sw.Sweep()
	if len(intervals) != 2 {
		t.Fatalf("got %d intervals, want 2 (gap omitted)", len(intervals))
	}
	if intervals[0].To != 10 || intervals[1].From != 100 {
		t.Errorf("gap not skipped: %+v", intervals)
	}
}

func TestSweepBackToBackSessionsNotConcurrent(t *testing.T) {
	// One session ends exactly when the next starts: never concurrent.
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 100, trace.BitrateSD),
		session(2, 0, 0, 100, 100, trace.BitrateSD),
	}}
	for _, iv := range sw.Sweep() {
		if len(iv.Active) > 1 {
			t.Errorf("back-to-back sessions appear concurrent in %+v", iv)
		}
	}
}

func TestSweepIdenticalIntervals(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 10, 50, trace.BitrateSD),
		session(2, 0, 0, 10, 50, trace.BitrateSD),
		session(3, 0, 0, 10, 50, trace.BitrateSD),
	}}
	intervals := sw.Sweep()
	if len(intervals) != 1 {
		t.Fatalf("got %d intervals, want 1", len(intervals))
	}
	if len(intervals[0].Active) != 3 {
		t.Errorf("active = %v, want all three", intervals[0].Active)
	}
}

func TestSweepEmptySwarm(t *testing.T) {
	sw := &Swarm{}
	if got := sw.Sweep(); len(got) != 0 {
		t.Errorf("empty swarm swept to %d intervals", len(got))
	}
}

// Property: for random swarms, the sweep (a) tiles time without overlaps,
// (b) conserves user-seconds, and (c) reports active sets consistent with
// the session intervals.
func TestSweepProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		sessions := make([]trace.Session, n)
		var userSeconds int64
		for i := range sessions {
			start := int64(rng.Intn(1000))
			dur := int32(1 + rng.Intn(300))
			sessions[i] = session(uint32(i), 0, 0, start, dur, trace.BitrateSD)
			userSeconds += int64(dur)
		}
		sw := &Swarm{Sessions: sessions}
		intervals := sw.Sweep()

		var prevTo int64 = -1 << 62
		var sweptSeconds int64
		for _, iv := range intervals {
			if iv.From >= iv.To {
				return false // degenerate interval
			}
			if iv.From < prevTo {
				return false // overlap
			}
			prevTo = iv.To
			sweptSeconds += (iv.To - iv.From) * int64(len(iv.Active))
			for _, idx := range iv.Active {
				s := sessions[idx]
				if s.StartSec > iv.From || s.EndSec() < iv.To {
					return false // session not actually active here
				}
			}
		}
		return sweptSeconds == userSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPeakConcurrency(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 100, trace.BitrateSD),
		session(2, 0, 0, 50, 100, trace.BitrateSD),
		session(3, 0, 0, 60, 10, trace.BitrateSD),
	}}
	if got := sw.PeakConcurrency(); got != 3 {
		t.Errorf("PeakConcurrency = %d, want 3", got)
	}
	if got := (&Swarm{}).PeakConcurrency(); got != 0 {
		t.Errorf("empty PeakConcurrency = %d, want 0", got)
	}
}

func TestActiveSeconds(t *testing.T) {
	sw := &Swarm{Sessions: []trace.Session{
		session(1, 0, 0, 0, 100, trace.BitrateSD),
		session(2, 0, 0, 50, 100, trace.BitrateSD),
	}}
	busy, sharing := sw.ActiveSeconds()
	if busy != 150 {
		t.Errorf("busy = %v, want 150", busy)
	}
	if sharing != 50 {
		t.Errorf("sharing = %v, want 50", sharing)
	}
}

func TestGroupOnGeneratedTrace(t *testing.T) {
	cfg := trace.DefaultGeneratorConfig(0.001)
	cfg.Days = 5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swarms := Group(tr, DefaultOptions())
	if len(swarms) == 0 {
		t.Fatal("no swarms from generated trace")
	}
	var total int
	var totalBytes float64
	for _, sw := range swarms {
		total += len(sw.Sessions)
		totalBytes += sw.Bytes()
	}
	if total != len(tr.Sessions) {
		t.Errorf("swarms hold %d sessions, trace has %d", total, len(tr.Sessions))
	}
	if diff := totalBytes - tr.TotalBytes(); diff > 1 || diff < -1 {
		t.Errorf("swarm bytes %v != trace bytes %v", totalBytes, tr.TotalBytes())
	}
}

// Package swarm groups trace sessions into content swarms and sweeps their
// activity over time.
//
// A swarm is the set of sessions that can exchange content with each
// other. Following the paper (Section IV.B.1), swarm membership is
// restricted by three obstacle factors:
//
//   - content item: only viewers of the same item can share it;
//   - ISP friendliness: peers are only matched within one ISP, the
//     paper's lower-bound configuration (optional here, for ablation);
//   - bitrate class: a client cannot stream from a peer fetching a lower
//     quality representation (optional here, for ablation).
//
// The activity sweep turns a swarm's session list into a sequence of
// half-open time intervals during which the set of concurrently active
// sessions is constant. All downstream swarm quantities (demand, peer
// capacity, matching, energy) are piecewise constant over these intervals,
// so the simulator processes each interval in one step instead of ticking
// through Δτ windows — an exact optimisation for interval-aligned
// timestamps.
package swarm

import (
	"consumelocal/internal/trace"
)

// Key identifies one swarm. The zero value of the optional dimensions
// (ISP, Bitrate) means "not split on this dimension".
type Key struct {
	// Content is the content item the swarm shares.
	Content uint32 `json:"content"`
	// ISP is the ISP the swarm is restricted to, or AnyISP when swarms
	// span ISPs.
	ISP int16 `json:"isp"`
	// Bitrate is the bitrate class of the swarm, or AnyBitrate when swarms
	// mix bitrates.
	Bitrate int32 `json:"bitrate"`
}

// Sentinel values for unrestricted swarm dimensions.
const (
	// AnyISP marks a swarm that spans all ISPs.
	AnyISP int16 = -1
	// AnyBitrate marks a swarm that mixes bitrate classes.
	AnyBitrate int32 = -1
)

// Options control how sessions are grouped into swarms.
type Options struct {
	// RestrictISP keeps swarms within a single ISP (paper default).
	RestrictISP bool
	// SplitBitrate separates swarms by bitrate class (paper default).
	SplitBitrate bool
}

// DefaultOptions returns the paper's configuration: ISP-friendly swarms
// split by bitrate class.
func DefaultOptions() Options {
	return Options{RestrictISP: true, SplitBitrate: true}
}

// KeyOf computes the swarm key of a session under the given options.
func KeyOf(s trace.Session, opts Options) Key {
	k := Key{Content: s.ContentID, ISP: AnyISP, Bitrate: AnyBitrate}
	if opts.RestrictISP {
		k.ISP = int16(s.ISP)
	}
	if opts.SplitBitrate {
		k.Bitrate = int32(s.Bitrate)
	}
	return k
}

// Swarm is the session list of one swarm, ready for sweeping.
type Swarm struct {
	// Key identifies the swarm.
	Key Key
	// Sessions are the member sessions, in trace order.
	Sessions []trace.Session
}

// Group partitions the trace's sessions into swarms under the given
// options. The returned slice is sorted by key (content, ISP, bitrate) so
// that iteration order — and therefore every downstream aggregate — is
// deterministic. It is a convenience over a throwaway Grouper: callers
// that group repeatedly (the simulator does it once per run) should hold
// a Grouper and reuse its arena instead.
func Group(t *trace.Trace, opts Options) []*Swarm {
	return new(Grouper).Group(t, opts)
}

// Less orders keys lexicographically (content, ISP, bitrate) for
// deterministic iteration; exported so the streaming engine can merge
// sharded per-swarm results in the same order as Group.
func (k Key) Less(other Key) bool {
	if k.Content != other.Content {
		return k.Content < other.Content
	}
	if k.ISP != other.ISP {
		return k.ISP < other.ISP
	}
	return k.Bitrate < other.Bitrate
}

// Capacity returns the swarm's average number of concurrent users over the
// observation horizon: total session-seconds divided by the horizon. This
// is the empirical counterpart of the M/M/∞ capacity c = u·r the
// analytical model consumes.
func (sw *Swarm) Capacity(horizonSec int64) float64 {
	if horizonSec <= 0 {
		return 0
	}
	var userSeconds float64
	for _, s := range sw.Sessions {
		userSeconds += float64(s.DurationSec)
	}
	return userSeconds / float64(horizonSec)
}

// Bytes returns the total useful traffic of the swarm.
func (sw *Swarm) Bytes() float64 {
	var sum float64
	for _, s := range sw.Sessions {
		sum += s.Bytes()
	}
	return sum
}

// Interval is a half-open time span [From, To) during which a constant set
// of sessions is active.
type Interval struct {
	// From is the interval start in seconds since the trace epoch.
	From int64
	// To is the interval end (exclusive).
	To int64
	// Active indexes the sessions (into the swarm's session slice) active
	// throughout the interval.
	Active []int
}

// Seconds returns the interval length.
func (iv Interval) Seconds() float64 { return float64(iv.To - iv.From) }

// Sweep produces the swarm's activity intervals in time order. Intervals
// with no active sessions are omitted: they contribute neither demand nor
// peer traffic. The Active slices index into sw.Sessions.
//
// Deprecated: Sweep allocates a throwaway Sweeper per call. Callers that
// sweep many swarms (the simulator's shape) should hold a Sweeper and
// reuse its scratch buffers across the loop; Sweep remains for one-off
// callers and produces the identical interval sequence.
//
//consumelocal:borrowed return
func (sw *Swarm) Sweep() []Interval {
	return new(Sweeper).Sweep(sw)
}

// PeakConcurrency returns the maximum number of simultaneously active
// sessions in the swarm.
func (sw *Swarm) PeakConcurrency() int {
	peak := 0
	for _, iv := range sw.Sweep() {
		if len(iv.Active) > peak {
			peak = len(iv.Active)
		}
	}
	return peak
}

// ActiveSeconds returns the total time the swarm has at least one active
// session, and the time it has at least two (i.e. sharing is possible).
func (sw *Swarm) ActiveSeconds() (busy, sharing float64) {
	for _, iv := range sw.Sweep() {
		busy += iv.Seconds()
		if len(iv.Active) >= 2 {
			sharing += iv.Seconds()
		}
	}
	return busy, sharing
}

package swarm

import (
	"slices"
)

// Sweeper computes swarm activity intervals from caller-owned scratch
// buffers, so a loop over thousands of swarms — the batch simulator's
// shape — reuses one set of buffers instead of allocating per swarm and
// per interval. It produces exactly the intervals Sweep documents: the
// same boundaries, the same ascending-index active sets, in the same
// order, so the floating-point operation sequence of everything
// downstream is unchanged.
//
// Ownership: the slice returned by Sweep, each Interval's Active slice,
// and their shared backing arena are owned by the Sweeper and remain
// valid only until the next Sweep call on the same Sweeper. Callers that
// retain intervals past that point must copy them. The zero value is
// ready to use; a Sweeper must not be used from multiple goroutines
// concurrently (give each worker its own, as sim.RunParallel does).
type Sweeper struct {
	events    []sweepEvent
	intervals []Interval
	spans     []sweepSpan
	arena     []int // backing store for every Active slice of one sweep
	active    []int // current active set, ascending by index
}

// sweepEvent is one session boundary: a member opening or closing.
type sweepEvent struct {
	at    int64
	index int32
	open  bool
}

// sweepSpan records where one interval's active set lives in the arena;
// Active slices are fixed up only after the walk, because the arena may
// still be growing (and therefore moving) while intervals are found.
type sweepSpan struct {
	lo, hi int
}

// cmpSweepEvent orders events by time, closes before opens at the same
// instant — Sweep's tie-break, so back-to-back sessions never appear
// concurrent — and by member index within a tie for full determinism.
func cmpSweepEvent(a, b sweepEvent) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.open != b.open {
		if a.open {
			return 1
		}
		return -1
	}
	if a.index != b.index {
		if a.index < b.index {
			return -1
		}
		return 1
	}
	return 0
}

// Sweep produces the swarm's activity intervals in time order, reusing
// the Sweeper's buffers. Intervals with no active sessions are omitted.
// The result is bit-for-bit the sequence (*Swarm).Sweep returns, minus
// the per-swarm and per-interval allocations; see the type comment for
// the ownership rules.
//
//consumelocal:borrowed return
func (sp *Sweeper) Sweep(sw *Swarm) []Interval {
	events := sp.prepare(len(sw.Sessions))
	for i, s := range sw.Sessions {
		events = append(events,
			sweepEvent{at: s.StartSec, index: int32(i), open: true},
			sweepEvent{at: s.EndSec(), index: int32(i), open: false},
		)
	}
	sp.events = events
	return sp.run()
}

// prepare resets the scratch for a sweep over n sessions and returns the
// empty event buffer with enough capacity for all 2n boundaries.
func (sp *Sweeper) prepare(n int) []sweepEvent {
	if cap(sp.events) < 2*n {
		sp.events = make([]sweepEvent, 0, 2*n)
	}
	return sp.events[:0]
}

// run sorts the prepared events and walks them into intervals.
func (sp *Sweeper) run() []Interval {
	slices.SortFunc(sp.events, cmpSweepEvent)

	intervals := sp.intervals[:0]
	spans := sp.spans[:0]
	arena := sp.arena[:0]
	active := sp.active[:0]
	events := sp.events

	var prevAt int64
	for i := 0; i < len(events); {
		at := events[i].at
		if len(active) > 0 && at > prevAt {
			lo := len(arena)
			arena = append(arena, active...)
			intervals = append(intervals, Interval{From: prevAt, To: at})
			spans = append(spans, sweepSpan{lo: lo, hi: len(arena)})
		}
		// Apply every event at this instant before emitting the next
		// interval.
		for i < len(events) && events[i].at == at {
			if events[i].open {
				active = insertIndex(active, int(events[i].index))
			} else {
				active = removeIndex(active, int(events[i].index))
			}
			i++
		}
		prevAt = at
	}

	sp.intervals, sp.spans, sp.arena, sp.active = intervals, spans, arena, active
	// The arena has stopped moving; point every interval at its slice.
	for i := range intervals {
		span := spans[i]
		intervals[i].Active = arena[span.lo:span.hi:span.hi]
	}
	return intervals
}

// insertIndex adds idx to the ascending active set. Opens sorted by
// index arrive in order, so the common case is a plain append.
func insertIndex(active []int, idx int) []int {
	if n := len(active); n == 0 || active[n-1] < idx {
		return append(active, idx)
	}
	lo, hi := 0, len(active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if active[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if active[lo] == idx {
		// Already present: set semantics, as the original map insert.
		return active
	}
	active = append(active, 0)
	copy(active[lo+1:], active[lo:])
	active[lo] = idx
	return active
}

// removeIndex deletes idx from the ascending active set, preserving
// order. A missing idx is a no-op, mirroring the map-delete semantics of
// the original implementation (a zero-duration session's close sorts
// before its open).
func removeIndex(active []int, idx int) []int {
	lo, hi := 0, len(active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if active[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(active) || active[lo] != idx {
		return active
	}
	copy(active[lo:], active[lo+1:])
	return active[:len(active)-1]
}

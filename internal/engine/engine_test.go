package engine

import (
	"io"
	"strings"
	"testing"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// newPipeTrace serialises a trace as CSV through an io.Pipe: the writer
// goroutine produces rows while the consumer reads, so the full CSV is
// never buffered — the engine's out-of-core consumption path.
func newPipeTrace(t testing.TB, tr *trace.Trace) (*io.PipeReader, *io.PipeWriter) {
	t.Helper()
	pr, pw := io.Pipe()
	go func() {
		err := tr.WriteCSV(pw)
		pw.CloseWithError(err)
	}()
	return pr, pw
}

func TestStreamSnapshots(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(1.0)
	cfg.WindowSec = 6 * 3600
	cfg.Workers = 2

	run, err := Stream(TraceSource(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		snaps []Snapshot
		prev  sim.Tally
	)
	for snap := range run.Snapshots() {
		snaps = append(snaps, snap)
		if snap.Cumulative.TotalBits < prev.TotalBits {
			t.Fatalf("cumulative tally regressed at window %d", snap.Index)
		}
		prev = snap.Cumulative
	}
	res, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}

	if len(snaps) < 2 {
		t.Fatalf("expected multiple windowed snapshots, got %d", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatal("last snapshot should be marked final")
	}
	for i, snap := range snaps[:len(snaps)-1] {
		if snap.Final {
			t.Fatalf("snapshot %d marked final early", i)
		}
		if snap.ToSec-snap.FromSec != cfg.WindowSec {
			t.Fatalf("snapshot %d spans [%d,%d), want %d-second window",
				i, snap.FromSec, snap.ToSec, cfg.WindowSec)
		}
		if snap.Index != i {
			t.Fatalf("snapshot %d has index %d", i, snap.Index)
		}
	}
	if last.SessionsSeen != int64(len(tr.Sessions)) {
		t.Fatalf("final snapshot saw %d sessions, want %d", last.SessionsSeen, len(tr.Sessions))
	}
	if last.ActiveMembers != 0 {
		t.Fatalf("final snapshot reports %d active members, want 0", last.ActiveMembers)
	}
	if last.Swarms != len(res.Swarms) {
		t.Fatalf("final snapshot reports %d swarms, result has %d", last.Swarms, len(res.Swarms))
	}
	// Cumulative snapshot converges to the final result total.
	assertTallyClose(t, "final cumulative", last.Cumulative, res.Total, 1e-12)
	// Deltas sum to the cumulative.
	var sum sim.Tally
	for _, snap := range snaps {
		sum.Add(snap.Delta)
	}
	assertTallyClose(t, "delta sum", sum, last.Cumulative, 1e-12)
}

func TestStreamRejectsInvalidConfig(t *testing.T) {
	tr := testTrace(t)
	var cfg Config // no upload capacity at all
	if _, err := Stream(TraceSource(tr), cfg); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestStreamRejectsInvalidMeta(t *testing.T) {
	tr := &trace.Trace{HorizonSec: 0, NumUsers: 1, NumContent: 1, NumISPs: 1}
	if _, err := Stream(TraceSource(tr), DefaultConfig(1.0)); err == nil {
		t.Fatal("expected meta validation error")
	}
}

func TestStreamPropagatesSessionErrors(t *testing.T) {
	input := "#meta name=x epoch=2013-09-01T00:00:00Z horizon=86400 users=5 content=5 isps=2\n" +
		"user,content,isp,exchange,start_sec,duration_sec,bitrate_kbps\n" +
		"0,0,0,0,100,60,1500\n" +
		"1,0,0,0,50,60,1500\n" // out of order
	sc, err := trace.NewScanner(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	run, err := Stream(sc, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Result(); err == nil {
		t.Fatal("expected streamed validation error")
	}
}

func TestStreamEmptyTrace(t *testing.T) {
	tr := &trace.Trace{
		Name: "empty", HorizonSec: 86400,
		NumUsers: 1, NumContent: 1, NumISPs: 1,
	}
	run, err := Stream(TraceSource(tr), DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swarms) != 0 || res.Total.TotalBits != 0 {
		t.Fatalf("empty trace produced traffic: %+v", res.Total)
	}
}

// TestStreamBackpressure checks that a slow consumer stalls the pipeline
// rather than buffering unboundedly: with a one-window buffer, the
// feeder cannot race ahead of the reader by more than the channel
// capacity plus the in-flight worker queues.
func TestStreamBackpressure(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(1.0)
	cfg.WindowSec = 3600
	cfg.SnapshotBuffer = 1
	cfg.Workers = 2

	run, err := Stream(TraceSource(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Consume one snapshot, then let the pipeline fill; the run must
	// still complete once draining resumes.
	first, ok := <-run.Snapshots()
	if !ok {
		t.Fatal("no snapshots")
	}
	if first.Index != 0 {
		t.Fatalf("first snapshot index = %d", first.Index)
	}
	res, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.TotalBits <= 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestStreamSeedingAndQuantizeCombined(t *testing.T) {
	// The two trace-rewriting features interact (seeders start at the
	// quantized end); cross-check them together.
	tr := testTrace(t)
	simCfg := sim.DefaultConfig(1.0)
	simCfg.QuantizeTickSec = 10
	simCfg.SeedRetentionSec = 300

	want, err := sim.Run(tr, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Stream(TraceSource(tr), Config{Sim: simCfg, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, got, want, 1e-12)
}

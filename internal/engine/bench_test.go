package engine

import (
	"testing"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// feedTrace builds a start-ordered trace whose sessions never overlap
// within a swarm: settlement degenerates to single-member intervals, so
// the benchmark isolates the feed→shard→tracker hand-off — validation,
// keying, batching, channel traffic and event scheduling — rather than
// the matching arithmetic.
func feedTrace(n int) *trace.Trace {
	sessions := make([]trace.Session, n)
	for i := range sessions {
		sessions[i] = trace.Session{
			UserID:      uint32(i % 1000),
			ContentID:   uint32(i % 100000),
			ISP:         uint8(i % 5),
			Exchange:    uint16(i % 32),
			StartSec:    int64(i / 100),
			DurationSec: 30,
			Bitrate:     trace.BitrateSD,
		}
	}
	return &trace.Trace{
		Name:       "feed",
		HorizonSec: int64(n/100) + 3600,
		NumUsers:   1000,
		NumContent: 100000,
		NumISPs:    5,
		Sessions:   sessions,
	}
}

// BenchmarkShardBatchFeed measures the batched feed→worker hand-off:
// sessions/s through the sharded pipeline when per-interval settlement
// work is negligible.
func BenchmarkShardBatchFeed(b *testing.B) {
	tr := feedTrace(200000)
	simCfg := sim.DefaultConfig(1.0)
	simCfg.TrackUsers = false
	cfg := Config{Sim: simCfg, Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := Stream(TraceSource(tr), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Result(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Sessions)), "sessions/op")
}

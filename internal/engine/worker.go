package engine

import (
	"fmt"
	"time"

	"consumelocal/internal/matching"
	"consumelocal/internal/obs"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// member is one live swarm member: a real session or a post-playback
// seeding appendix. Member records exist only while the member is active
// or pending — their slots are recycled through a free list as soon as
// the tracker settles the member's end event, which is what keeps the
// engine out-of-core.
//
// The matching inputs that are constant for the member's lifetime —
// topology endpoint, upload rate, demand rate (zero for seeders) — are
// computed once at admission instead of once per activity interval, so
// interval settlement multiplies cached rates by the interval length and
// nothing else.
type member struct {
	s         trace.Session
	peer      matching.Peer
	upBps     float64
	demandBps float64
}

// swarmState is one swarm's incremental state on its owning worker. It
// implements swarm.Sink (interval emission, member release) and
// sim.SessionSource (member-index resolution for booking) directly, so
// the settlement hot path runs through method dispatch with no per-swarm
// closures.
type swarmState struct {
	w       *worker
	key     swarm.Key
	tracker swarm.Tracker
	// members holds live member sessions by tracker index; free recycles
	// released slots, keeping the slice bounded by the swarm's peak
	// concurrency rather than its total session count. Slot reuse does
	// not perturb settlement order: the tracker orders active sets by
	// schedule order, not by index value.
	members []member
	free    []int32
	// activePos is the state's index in the worker's non-idle list, or
	// -1 while the swarm is idle (no active members, no pending events).
	activePos int
	// sessions and durSum accumulate the original (pre-quantization,
	// non-seeding) membership for the batch-identical capacity figure.
	sessions int
	durSum   float64
	tally    sim.Tally
}

// Emit settles one completed activity interval (swarm.Sink).
func (st *swarmState) Emit(iv swarm.Interval) { st.w.settle(st, iv) }

// Closed releases a settled member's slot (swarm.Sink).
func (st *swarmState) Closed(index int) {
	st.free = append(st.free, int32(index))
	st.w.active--
}

// SessionAt resolves a tracker member index to its session
// (sim.SessionSource).
func (st *swarmState) SessionAt(index int) trace.Session { return st.members[index].s }

// alloc places a member into a recycled or fresh slot and returns its
// tracker index.
func (st *swarmState) alloc(m member) int {
	if n := len(st.free); n > 0 {
		idx := int(st.free[n-1])
		st.free = st.free[:n-1]
		st.members[idx] = m
		return idx
	}
	st.members = append(st.members, m)
	return len(st.members) - 1
}

// worker owns one shard of the swarm key space. It processes its input
// messages strictly in order, so per-swarm settlement is a deterministic
// replay of the batch simulator's sweep.
type worker struct {
	id      int
	cfg     sim.Config
	horizon int64
	// states indexes swarms by key; ordered preserves first-arrival
	// order for the final report. activeList holds only non-idle swarms
	// — the ones a window mark actually needs to settle — so long traces
	// with many dead swarms don't pay O(total swarms) per window.
	states     map[swarm.Key]*swarmState
	ordered    []*swarmState
	activeList []*swarmState

	delta  sim.Tally
	booker sim.Booker
	active int
	err    error
	// stats, when non-nil, accumulates settle time per window mark —
	// mark granularity keeps the clock off the per-interval hot path.
	stats *obs.ReplayMetrics

	// scratch buffers reused across intervals, as in the batch engine.
	peers   []matching.Peer
	demands []float64
	caps    []float64
	// alloc is the worker-owned matching result, recycled through
	// Policy.MatchInto each interval.
	alloc matching.Allocation
}

func newWorker(id int, cfg Config, meta trace.Meta) *worker {
	w := &worker{
		id:      id,
		cfg:     cfg.Sim,
		horizon: meta.HorizonSec,
		states:  make(map[swarm.Key]*swarmState),
		booker:  sim.Booker{Days: make([][]sim.Tally, meta.Days())},
		stats:   cfg.Stats,
	}
	for d := range w.booker.Days {
		w.booker.Days[d] = make([]sim.Tally, meta.NumISPs)
	}
	if cfg.Sim.TrackUsers {
		w.booker.Users = make(map[uint32]*sim.UserStats)
	}
	return w
}

func (w *worker) run(in <-chan wmsg, acks chan<- ack, reports chan<- report) {
	for msg := range in {
		if !msg.mark {
			for i := range msg.batch {
				w.session(&msg.batch[i])
			}
			putBatch(msg.batch)
			continue
		}
		if w.stats != nil {
			t0 := time.Now()
			w.mark(msg.until, msg.final)
			w.stats.SettleSeconds.Add(time.Since(t0).Seconds())
		} else {
			w.mark(msg.until, msg.final)
		}
		acks <- ack{worker: w.id, delta: w.delta, active: w.active, swarms: len(w.ordered), err: w.err}
		w.delta = sim.Tally{}
		if msg.final {
			reports <- w.report()
		}
	}
}

// session schedules one arriving session (and its optional seeding
// appendix) on the owning swarm, settling the swarm's activity up to the
// session's start first so earlier intervals close before the new member
// opens.
func (w *worker) session(it *item) {
	st := w.states[it.key]
	if st == nil {
		st = &swarmState{w: w, key: it.key, activePos: -1}
		w.states[it.key] = st
		w.ordered = append(w.ordered, st)
	}
	if st.activePos < 0 {
		st.activePos = len(w.activeList)
		w.activeList = append(w.activeList, st)
	}

	s := it.sess
	st.tracker.Advance(s.StartSec, st)

	m := member{
		s:         s,
		peer:      w.cfg.PeerEndpoint(s, st.key),
		upBps:     w.cfg.UploadBpsOf(s),
		demandBps: s.Bitrate.BitsPerSecond(),
	}
	idx := st.alloc(m)
	st.tracker.Schedule(s.StartSec, s.EndSec(), idx)
	w.active++
	st.sessions++
	st.durSum += float64(it.origDur)

	// Post-playback seeding appendix, mirroring the batch simulator's
	// augment step: the member's upload capacity stays available for
	// SeedRetentionSec after playback while it demands nothing.
	if retention := w.cfg.SeedRetentionSec; retention > 0 {
		seeder := m
		seeder.s.StartSec = s.EndSec()
		if seeder.s.StartSec+retention > w.horizon {
			retention = w.horizon - seeder.s.StartSec
		}
		if retention > 0 {
			seeder.s.DurationSec = int32(retention)
			seeder.demandBps = 0
			sidx := st.alloc(seeder)
			st.tracker.Schedule(seeder.s.StartSec, seeder.s.EndSec(), sidx)
			w.active++
		}
	}
}

// mark settles every non-idle swarm's activity up to a window boundary
// (or fully, on the final mark), in activation order for determinism.
// Swarms that drain to idle leave the active list until their next
// session arrives.
func (w *worker) mark(until int64, final bool) {
	live := w.activeList[:0]
	for _, st := range w.activeList {
		if final {
			st.tracker.Finish(st)
		} else {
			st.tracker.Advance(until, st)
		}
		if st.tracker.Idle() {
			st.activePos = -1
			continue
		}
		st.activePos = len(live)
		live = append(live, st)
	}
	// Clear the dropped tail so idle states aren't pinned by the backing
	// array.
	for i := len(live); i < len(w.activeList); i++ {
		w.activeList[i] = nil
	}
	w.activeList = live
}

// settle matches one completed activity interval and books the outcome —
// the streaming twin of the batch engine's runInterval/book, performing
// the identical sequence of floating-point operations so per-swarm
// tallies match sim.Run bit for bit.
//
//consumelocal:hotpath
//consumelocal:borrowed iv
func (w *worker) settle(st *swarmState, iv swarm.Interval) {
	if w.err != nil {
		return
	}
	n := len(iv.Active)
	dur := iv.Seconds()
	w.resize(n)

	var sumCaps float64
	for slot, idx := range iv.Active {
		m := &st.members[idx]
		w.peers[slot] = m.peer
		w.demands[slot] = m.demandBps * dur
		cap := m.upBps * dur
		w.caps[slot] = cap
		sumCaps += cap
	}
	budget := w.cfg.PeerBudget(sumCaps, n)

	if err := w.cfg.Policy.MatchInto(&w.alloc, w.peers[:n], w.demands[:n], w.caps[:n], budget); err != nil {
		//consumelocal:ignore hotalloc cold error exit: formatting happens once, on the failure that aborts the run
		w.err = fmt.Errorf("engine: match swarm %+v interval [%d,%d): %w", st.key, iv.From, iv.To, err)
		return
	}

	ivTally := w.booker.BookInterval(iv, &w.alloc, w.demands, st)
	st.tally.Add(ivTally)
	w.delta.Add(ivTally)
}

// report packages the worker's shard outcome, with per-swarm statistics
// in first-arrival order; the coordinator re-sorts the union by key.
func (w *worker) report() report {
	stats := make([]sim.SwarmStats, 0, len(w.ordered))
	for _, st := range w.ordered {
		capacity := 0.0
		if w.horizon > 0 {
			capacity = st.durSum / float64(w.horizon)
		}
		stats = append(stats, sim.SwarmStats{
			Key:      st.key,
			Capacity: capacity,
			Sessions: st.sessions,
			Tally:    st.tally,
		})
	}
	return report{worker: w.id, stats: stats, days: w.booker.Days, users: w.booker.Users, err: w.err}
}

// resize grows the scratch buffers to hold n entries.
func (w *worker) resize(n int) {
	if cap(w.peers) < n {
		w.peers = make([]matching.Peer, n)
		w.demands = make([]float64, n)
		w.caps = make([]float64, n)
	}
	w.peers = w.peers[:n]
	w.demands = w.demands[:n]
	w.caps = w.caps[:n]
}

package engine

import (
	"fmt"

	"consumelocal/internal/matching"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// member is one live swarm member: a real session or a post-playback
// seeding appendix. Member records exist only while the member is active
// or pending — they are released as soon as the tracker settles the
// member's end event, which is what keeps the engine out-of-core.
type member struct {
	s       trace.Session
	seeding bool
}

// swarmState is one swarm's incremental state on its owning worker.
type swarmState struct {
	key     swarm.Key
	tracker *swarm.Tracker
	// members holds live member sessions by tracker index.
	members map[int]member
	nextIdx int
	// sessions and durSum accumulate the original (pre-quantization,
	// non-seeding) membership for the batch-identical capacity figure.
	sessions int
	durSum   float64
	tally    sim.Tally
	// emit, closed and session are per-state callbacks, bound once to
	// avoid a closure allocation per event.
	emit    func(swarm.Interval)
	closed  func(int)
	session func(int) trace.Session
}

// worker owns one shard of the swarm key space. It processes its input
// messages strictly in order, so per-swarm settlement is a deterministic
// replay of the batch simulator's sweep.
type worker struct {
	id      int
	cfg     sim.Config
	horizon int64
	// states indexes swarms by key; order preserves first-arrival order
	// so that window marks settle swarms deterministically.
	states  map[swarm.Key]*swarmState
	ordered []*swarmState

	delta  sim.Tally
	booker sim.Booker
	active int
	err    error

	// scratch buffers reused across intervals, as in the batch engine.
	peers   []matching.Peer
	demands []float64
	caps    []float64
}

func newWorker(id int, cfg Config, meta trace.Meta) *worker {
	w := &worker{
		id:      id,
		cfg:     cfg.Sim,
		horizon: meta.HorizonSec,
		states:  make(map[swarm.Key]*swarmState),
		booker:  sim.Booker{Days: make([][]sim.Tally, meta.Days())},
	}
	for d := range w.booker.Days {
		w.booker.Days[d] = make([]sim.Tally, meta.NumISPs)
	}
	if cfg.Sim.TrackUsers {
		w.booker.Users = make(map[uint32]*sim.UserStats)
	}
	return w
}

func (w *worker) run(in <-chan wmsg, acks chan<- ack, reports chan<- report) {
	for msg := range in {
		if !msg.mark {
			w.session(msg)
			continue
		}
		w.mark(msg.until, msg.final)
		acks <- ack{worker: w.id, delta: w.delta, active: w.active, swarms: len(w.ordered), err: w.err}
		w.delta = sim.Tally{}
		if msg.final {
			reports <- w.report()
		}
	}
}

// session schedules one arriving session (and its optional seeding
// appendix) on the owning swarm, settling the swarm's activity up to the
// session's start first so earlier intervals close before the new member
// opens.
func (w *worker) session(msg wmsg) {
	st := w.states[msg.key]
	if st == nil {
		st = &swarmState{
			key:     msg.key,
			tracker: swarm.NewTracker(),
			members: make(map[int]member),
		}
		st.emit = func(iv swarm.Interval) { w.settle(st, iv) }
		st.closed = func(idx int) {
			delete(st.members, idx)
			w.active--
		}
		st.session = func(idx int) trace.Session { return st.members[idx].s }
		w.states[msg.key] = st
		w.ordered = append(w.ordered, st)
	}

	s := msg.sess
	st.tracker.Advance(s.StartSec, st.emit, st.closed)

	idx := st.nextIdx
	st.nextIdx++
	st.members[idx] = member{s: s}
	st.tracker.Open(s.StartSec, idx)
	st.tracker.Close(s.EndSec(), idx)
	w.active++
	st.sessions++
	st.durSum += float64(msg.origDur)

	// Post-playback seeding appendix, mirroring the batch simulator's
	// augment step: the member's upload capacity stays available for
	// SeedRetentionSec after playback while it demands nothing.
	if retention := w.cfg.SeedRetentionSec; retention > 0 {
		seeder := s
		seeder.StartSec = s.EndSec()
		if seeder.StartSec+retention > w.horizon {
			retention = w.horizon - seeder.StartSec
		}
		if retention > 0 {
			seeder.DurationSec = int32(retention)
			sidx := st.nextIdx
			st.nextIdx++
			st.members[sidx] = member{s: seeder, seeding: true}
			st.tracker.Open(seeder.StartSec, sidx)
			st.tracker.Close(seeder.EndSec(), sidx)
			w.active++
		}
	}
}

// mark settles every swarm's activity up to a window boundary (or fully,
// on the final mark), in first-arrival order for determinism.
func (w *worker) mark(until int64, final bool) {
	for _, st := range w.ordered {
		if st.tracker.Idle() {
			continue
		}
		if final {
			st.tracker.Finish(st.emit, st.closed)
		} else {
			st.tracker.Advance(until, st.emit, st.closed)
		}
	}
}

// settle matches one completed activity interval and books the outcome —
// the streaming twin of the batch engine's runInterval/book, performing
// the identical sequence of floating-point operations so per-swarm
// tallies match sim.Run bit for bit.
func (w *worker) settle(st *swarmState, iv swarm.Interval) {
	if w.err != nil {
		return
	}
	n := len(iv.Active)
	dur := iv.Seconds()
	w.resize(n)

	var sumCaps float64
	for slot, idx := range iv.Active {
		m := st.members[idx]
		w.peers[slot] = w.cfg.PeerEndpoint(m.s, st.key)
		if m.seeding {
			w.demands[slot] = 0
		} else {
			w.demands[slot] = m.s.Bitrate.BitsPerSecond() * dur
		}
		cap := w.cfg.UploadBpsOf(m.s) * dur
		w.caps[slot] = cap
		sumCaps += cap
	}
	budget := w.cfg.PeerBudget(sumCaps, n)

	alloc, err := w.cfg.Policy.Match(w.peers[:n], w.demands[:n], w.caps[:n], budget)
	if err != nil {
		w.err = fmt.Errorf("engine: match swarm %+v interval [%d,%d): %w", st.key, iv.From, iv.To, err)
		return
	}

	ivTally := w.booker.BookInterval(iv, alloc, w.demands, st.session)
	st.tally.Add(ivTally)
	w.delta.Add(ivTally)
}

// report packages the worker's shard outcome, with per-swarm statistics
// in first-arrival order; the coordinator re-sorts the union by key.
func (w *worker) report() report {
	stats := make([]sim.SwarmStats, 0, len(w.ordered))
	for _, st := range w.ordered {
		capacity := 0.0
		if w.horizon > 0 {
			capacity = st.durSum / float64(w.horizon)
		}
		stats = append(stats, sim.SwarmStats{
			Key:      st.key,
			Capacity: capacity,
			Sessions: st.sessions,
			Tally:    st.tally,
		})
	}
	return report{worker: w.id, stats: stats, days: w.booker.Days, users: w.booker.Users, err: w.err}
}

// resize grows the scratch buffers to hold n entries.
func (w *worker) resize(n int) {
	if cap(w.peers) < n {
		w.peers = make([]matching.Peer, n)
		w.demands = make([]float64, n)
		w.caps = make([]float64, n)
	}
	w.peers = w.peers[:n]
	w.demands = w.demands[:n]
	w.caps = w.caps[:n]
}

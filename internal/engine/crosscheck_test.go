package engine

import (
	"fmt"
	"math"
	"testing"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// testTrace generates the shared cross-check workload: small enough to
// keep the suite fast, large enough to exercise thousands of swarms,
// concurrent intervals and every ISP.
func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// crosscheckConfigs enumerates the simulation configurations the
// streamed replay must reproduce exactly.
func crosscheckConfigs() map[string]sim.Config {
	base := sim.DefaultConfig(1.0)

	quantized := base
	quantized.QuantizeTickSec = 10

	seeded := base
	seeded.SeedRetentionSec = 600

	partial := base
	partial.ParticipationRate = 0.3

	tiered := base
	tiered.UploadRatio = 0
	tiered.UploadTiers = sim.UKBroadbandTiers()

	return map[string]sim.Config{
		"default":       base,
		"quantized":     quantized,
		"seeding":       seeded,
		"participation": partial,
		"tiers":         tiered,
	}
}

// relDiff returns |a-b| / max(|a|,|b|, 1).
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}

func assertTallyExact(t *testing.T, label string, got, want sim.Tally) {
	t.Helper()
	if got != want {
		t.Fatalf("%s tally differs:\n got %+v\nwant %+v", label, got, want)
	}
}

func assertTallyClose(t *testing.T, label string, got, want sim.Tally, tol float64) {
	t.Helper()
	if d := relDiff(got.TotalBits, want.TotalBits); d > tol {
		t.Fatalf("%s TotalBits differ by %g: %g vs %g", label, d, got.TotalBits, want.TotalBits)
	}
	if d := relDiff(got.ServerBits, want.ServerBits); d > tol {
		t.Fatalf("%s ServerBits differ by %g: %g vs %g", label, d, got.ServerBits, want.ServerBits)
	}
	for l := range got.LayerBits {
		if d := relDiff(got.LayerBits[l], want.LayerBits[l]); d > tol {
			t.Fatalf("%s LayerBits[%d] differ by %g", label, l, d)
		}
	}
}

// assertResultsMatch compares a streamed result against the batch
// reference: per-swarm statistics and the grand total bit-for-bit,
// cross-swarm aggregates (days, users) within tol.
func assertResultsMatch(t *testing.T, got, want *sim.Result, tol float64) {
	t.Helper()
	if got.PolicyName != want.PolicyName {
		t.Fatalf("policy names differ: %q vs %q", got.PolicyName, want.PolicyName)
	}
	if len(got.Swarms) != len(want.Swarms) {
		t.Fatalf("swarm counts differ: %d vs %d", len(got.Swarms), len(want.Swarms))
	}
	for i := range got.Swarms {
		g, w := got.Swarms[i], want.Swarms[i]
		if g.Key != w.Key {
			t.Fatalf("swarm %d keys differ: %+v vs %+v", i, g.Key, w.Key)
		}
		if g.Sessions != w.Sessions {
			t.Fatalf("swarm %+v session counts differ: %d vs %d", g.Key, g.Sessions, w.Sessions)
		}
		if g.Capacity != w.Capacity {
			t.Fatalf("swarm %+v capacities differ: %g vs %g", g.Key, g.Capacity, w.Capacity)
		}
		assertTallyExact(t, fmt.Sprintf("swarm %+v", g.Key), g.Tally, w.Tally)
	}
	assertTallyExact(t, "total", got.Total, want.Total)

	if len(got.Days) != len(want.Days) {
		t.Fatalf("day counts differ: %d vs %d", len(got.Days), len(want.Days))
	}
	for d := range got.Days {
		for isp := range got.Days[d] {
			assertTallyClose(t, fmt.Sprintf("day %d isp %d", d, isp), got.Days[d][isp], want.Days[d][isp], tol)
		}
	}

	if (got.Users == nil) != (want.Users == nil) {
		t.Fatalf("user tracking differs: %v vs %v", got.Users != nil, want.Users != nil)
	}
	if want.Users != nil {
		if len(got.Users) != len(want.Users) {
			t.Fatalf("user counts differ: %d vs %d", len(got.Users), len(want.Users))
		}
		for id, wu := range want.Users {
			gu := got.Users[id]
			if gu == nil {
				t.Fatalf("user %d missing from streamed result", id)
			}
			if relDiff(gu.DownloadedBits, wu.DownloadedBits) > tol ||
				relDiff(gu.FromPeersBits, wu.FromPeersBits) > tol ||
				relDiff(gu.UploadedBits, wu.UploadedBits) > tol {
				t.Fatalf("user %d ledgers differ: %+v vs %+v", id, gu, wu)
			}
		}
	}
}

// TestStreamMatchesBatch is the engine's core acceptance test: streamed
// cumulative tallies must match sim.Run bit-for-bit per swarm and within
// 1e-12 relative on cross-swarm aggregates, across every configuration
// dimension the batch simulator supports.
func TestStreamMatchesBatch(t *testing.T) {
	tr := testTrace(t)
	for name, simCfg := range crosscheckConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := sim.Run(tr, simCfg)
			if err != nil {
				t.Fatal(err)
			}
			run, err := Stream(TraceSource(tr), Config{Sim: simCfg, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			got, err := run.Result()
			if err != nil {
				t.Fatal(err)
			}
			assertResultsMatch(t, got, want, 1e-12)
		})
	}
}

// TestStreamDeterministicAcrossWorkers checks that the sharded pipeline
// is invariant to the worker count: per-swarm statistics and the total
// are bit-for-bit identical, aggregates within float associativity —
// mirroring sim.RunParallel's guarantee.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	tr := testTrace(t)
	cfg := sim.DefaultConfig(1.0)

	var reference *sim.Result
	for _, workers := range []int{1, 2, 5, 8} {
		run, err := Stream(TraceSource(tr), Config{Sim: cfg, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Result()
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = res
			continue
		}
		assertResultsMatch(t, res, reference, 1e-12)
	}
}

// TestStreamFromScanner replays the CSV interchange format through
// trace.Scanner and checks the out-of-core path agrees exactly with the
// in-memory source.
func TestStreamFromScanner(t *testing.T) {
	tr := testTrace(t)
	want, err := sim.Run(tr, sim.DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := newPipeTrace(t, tr)
	defer pr.Close()
	_ = pw

	sc, err := trace.NewScanner(pr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Stream(sc, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, got, want, 1e-12)
}

package engine

import (
	"context"
	"io"

	"consumelocal/internal/trace"
)

// Source yields trace sessions in start order together with the
// trace-level metadata (horizon, population sizes) the engine needs
// before the first session arrives. *trace.Scanner satisfies Source
// directly, making any CSV stream — a file, an HTTP request body, a
// pipe — replayable without materialising the trace; TraceSource adapts
// an in-memory trace for cross-checking and tests.
type Source interface {
	// Meta returns the trace metadata.
	Meta() trace.Meta
	// Next returns the next session, or io.EOF at a clean end of stream.
	Next() (trace.Session, error)
}

// Event is one item of a live source's stream: either a session
// (Mark false) or a watermark-only progress mark (Mark true) promising
// that no future session will start before WatermarkSec. Watermark
// marks let the engine settle reporting windows while the stream is
// idle — the broadcast clock advances even when nobody tunes in.
type Event struct {
	// Mark distinguishes a watermark advance from a session.
	Mark bool
	// WatermarkSec is the new arrival watermark (valid when Mark).
	WatermarkSec int64
	// Session is the arriving session (valid when !Mark).
	Session trace.Session
}

// LiveSource is the optional extension of Source for unsealed,
// watermarked streams — live ingest, where sessions are pushed as the
// broadcast happens rather than read from a finished trace. NextEvent
// blocks until the next event arrives, the stream is sealed (io.EOF),
// or ctx is done (ctx.Err()) — the last is what lets a cancelled replay
// unwind even while the producer is silent, which plain Next cannot do.
// The engine prefers NextEvent over Next when a Source implements it.
//
// Stream contract: session starts are non-decreasing (the Scanner's
// ordering invariant), watermarks are non-decreasing, and no session
// may start before the last watermark delivered ahead of it.
type LiveSource interface {
	Source
	NextEvent(ctx context.Context) (Event, error)
}

// TraceSource adapts an in-memory trace into a Source.
func TraceSource(t *trace.Trace) Source {
	return &sliceSource{meta: t.Meta(), sessions: t.Sessions}
}

type sliceSource struct {
	meta     trace.Meta
	sessions []trace.Session
	pos      int
}

func (s *sliceSource) Meta() trace.Meta { return s.meta }

func (s *sliceSource) Next() (trace.Session, error) {
	if s.pos >= len(s.sessions) {
		return trace.Session{}, io.EOF
	}
	sess := s.sessions[s.pos]
	s.pos++
	return sess, nil
}

package engine

import (
	"io"

	"consumelocal/internal/trace"
)

// Source yields trace sessions in start order together with the
// trace-level metadata (horizon, population sizes) the engine needs
// before the first session arrives. *trace.Scanner satisfies Source
// directly, making any CSV stream — a file, an HTTP request body, a
// pipe — replayable without materialising the trace; TraceSource adapts
// an in-memory trace for cross-checking and tests.
type Source interface {
	// Meta returns the trace metadata.
	Meta() trace.Meta
	// Next returns the next session, or io.EOF at a clean end of stream.
	Next() (trace.Session, error)
}

// TraceSource adapts an in-memory trace into a Source.
func TraceSource(t *trace.Trace) Source {
	return &sliceSource{meta: t.Meta(), sessions: t.Sessions}
}

type sliceSource struct {
	meta     trace.Meta
	sessions []trace.Session
	pos      int
}

func (s *sliceSource) Meta() trace.Meta { return s.meta }

func (s *sliceSource) Next() (trace.Session, error) {
	if s.pos >= len(s.sessions) {
		return trace.Session{}, io.EOF
	}
	sess := s.sessions[s.pos]
	s.pos++
	return sess, nil
}

package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"consumelocal/internal/trace"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime housekeeping) or the deadline passes.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamContextCancelReleasesPipeline is the regression test for the
// drain hazard: before cancellation existed, abandoning a Run stalled the
// feed goroutine on the snapshot channel and its workers on their input
// channels forever. Cancelling the context must unwind every pipeline
// goroutine even though nobody is draining Snapshots.
func TestStreamContextCancelReleasesPipeline(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(1.0)
	cfg.WindowSec = 3600
	cfg.SnapshotBuffer = 1
	cfg.Workers = 4

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	run, err := StreamContext(ctx, TraceSource(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Receive one snapshot so the pipeline is demonstrably mid-flight,
	// then abandon the run: with a one-snapshot buffer the feed stalls on
	// the snapshot channel almost immediately.
	if _, ok := <-run.Snapshots(); !ok {
		t.Fatal("no snapshots before cancellation")
	}
	cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := run.Result(); !errors.Is(err, context.Canceled) {
			t.Errorf("Result after cancel = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Result did not return after cancellation")
	}
	waitForGoroutines(t, baseline)
}

// TestStreamContextPreCancelled: a replay started under an already
// cancelled context must fail promptly without producing a result.
func TestStreamContextPreCancelled(t *testing.T) {
	tr := testTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	baseline := runtime.NumGoroutine()
	run, err := StreamContext(ctx, TraceSource(tr), DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Result()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Result = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run produced a result")
	}
	waitForGoroutines(t, baseline)
}

// TestStreamContextCompletesUncancelled: a context that is never
// cancelled must not disturb a normal run.
func TestStreamContextCompletesUncancelled(t *testing.T) {
	tr := testTrace(t)
	want, err := Stream(TraceSource(tr), DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := want.Result()
	if err != nil {
		t.Fatal(err)
	}

	run, err := StreamContext(context.Background(), TraceSource(tr), DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, got, wantRes, 1e-12)
}

// disconnectSource models an HTTP request body closed by a
// disconnecting client: the context is cancelled and the very next read
// fails. The run must report the cancellation, not the secondary read
// error.
type disconnectSource struct {
	meta   trace.Meta
	cancel context.CancelFunc
}

func (d *disconnectSource) Meta() trace.Meta { return d.meta }

func (d *disconnectSource) Next() (trace.Session, error) {
	d.cancel()
	return trace.Session{}, errors.New("read on closed body")
}

// idleLiveSource is a live stream whose producer has gone silent: no
// events ever arrive and the stream is never sealed. Only the ctx wired
// through NextEvent can release a replay blocked on it.
type idleLiveSource struct {
	meta trace.Meta
}

func (s *idleLiveSource) Meta() trace.Meta { return s.meta }

func (s *idleLiveSource) Next() (trace.Session, error) {
	ev, err := s.NextEvent(context.Background())
	return ev.Session, err
}

func (s *idleLiveSource) NextEvent(ctx context.Context) (Event, error) {
	<-ctx.Done()
	return Event{}, ctx.Err()
}

// TestStreamContextCancelUnblocksIdleLiveSource: cancelling a replay
// whose live producer is silent must unwind the whole pipeline — the
// feed is blocked inside NextEvent, where a plain Source could never be
// interrupted.
func TestStreamContextCancelUnblocksIdleLiveSource(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	src := &idleLiveSource{meta: trace.Meta{
		Name:       "idle-live",
		HorizonSec: 7200,
		NumUsers:   10,
		NumContent: 2,
		NumISPs:    1,
	}}
	run, err := StreamContext(ctx, src, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := run.Result(); !errors.Is(err, context.Canceled) {
			t.Errorf("Result after cancel = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Result did not return: the idle live source was never unblocked")
	}
	waitForGoroutines(t, baseline)
}

func TestStreamContextPrefersCancellationOverSourceError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &disconnectSource{
		meta: trace.Meta{
			Name:       "disconnect",
			HorizonSec: 7200,
			NumUsers:   10,
			NumContent: 2,
			NumISPs:    1,
		},
		cancel: cancel,
	}
	run, err := StreamContext(ctx, src, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result = %v, want context.Canceled", err)
	}
}

package engine

import (
	"context"
	"io"
	"math"
	"strings"
	"testing"

	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

// scriptedLiveSource replays a fixed event script — sessions and
// watermark marks — through the LiveSource interface.
type scriptedLiveSource struct {
	meta   trace.Meta
	events []Event
	pos    int
}

func (s *scriptedLiveSource) Meta() trace.Meta { return s.meta }

func (s *scriptedLiveSource) Next() (trace.Session, error) {
	for {
		ev, err := s.NextEvent(context.Background())
		if err != nil {
			return trace.Session{}, err
		}
		if !ev.Mark {
			return ev.Session, nil
		}
	}
}

func (s *scriptedLiveSource) NextEvent(ctx context.Context) (Event, error) {
	if err := ctx.Err(); err != nil {
		return Event{}, err
	}
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}

func liveTestMeta() trace.Meta {
	return trace.Meta{
		Name:       "scripted",
		HorizonSec: 4 * 3600,
		NumUsers:   10,
		NumContent: 2,
		NumISPs:    1,
	}
}

func liveTestSession(user uint32, start int64, dur int32) trace.Session {
	return trace.Session{
		UserID:      user,
		ContentID:   0,
		ISP:         0,
		Exchange:    uint16(user % 345),
		StartSec:    start,
		DurationSec: dur,
		Bitrate:     trace.BitrateSD,
	}
}

// TestLiveSourceWatermarkSettlesIdleWindows: watermark marks must close
// reporting windows while no sessions arrive — the broadcast clock
// advancing during a quiet stretch — and the final result must still
// match the batch simulator over the equivalent materialised trace.
func TestLiveSourceWatermarkSettlesIdleWindows(t *testing.T) {
	meta := liveTestMeta()
	sessions := []trace.Session{
		liveTestSession(1, 100, 600),
		liveTestSession(2, 100, 600),
		liveTestSession(3, 7300, 600),
	}
	src := &scriptedLiveSource{
		meta: meta,
		events: []Event{
			{Session: sessions[0]},
			{Session: sessions[1]},
			{Mark: true, WatermarkSec: 3600},
			{Mark: true, WatermarkSec: 7200},
			{Session: sessions[2]},
		},
	}
	cfg := DefaultConfig(1.0)
	cfg.WindowSec = 3600
	cfg.Workers = 2

	run, err := StreamContext(context.Background(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for snap := range run.Snapshots() {
		snaps = append(snaps, snap)
	}
	got, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}

	// Windows 0 and 1 settle on the watermark marks (before the final
	// drain), window 1 with an empty delta — nobody was active.
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots, want the two watermark-settled windows plus the final one", len(snaps))
	}
	if snaps[0].ToSec != 3600 || snaps[0].Delta.TotalBits == 0 {
		t.Fatalf("window 0 = %+v, want settled traffic up to 3600", snaps[0])
	}
	if snaps[1].FromSec != 3600 || snaps[1].ToSec != 7200 || snaps[1].Delta.TotalBits != 0 {
		t.Fatalf("window 1 = %+v, want an empty idle window [3600,7200)", snaps[1])
	}
	if snaps[1].SessionsSeen != 2 {
		t.Fatalf("window 1 saw %d sessions, want 2", snaps[1].SessionsSeen)
	}
	if !snaps[len(snaps)-1].Final {
		t.Fatal("last snapshot should be final")
	}

	tr := &trace.Trace{
		Name:       meta.Name,
		HorizonSec: meta.HorizonSec,
		NumUsers:   meta.NumUsers,
		NumContent: meta.NumContent,
		NumISPs:    meta.NumISPs,
		Sessions:   sessions,
	}
	want, err := sim.Run(tr, cfg.Sim)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, got, want, 1e-12)
}

// TestLiveSourceWatermarkBeyondHorizon: a runaway watermark (up to
// MaxInt64) must clamp to the horizon instead of spinning out empty
// windows forever.
func TestLiveSourceWatermarkBeyondHorizon(t *testing.T) {
	meta := liveTestMeta()
	src := &scriptedLiveSource{
		meta: meta,
		events: []Event{
			{Session: liveTestSession(1, 100, 600)},
			{Mark: true, WatermarkSec: math.MaxInt64},
		},
	}
	cfg := DefaultConfig(1.0)
	cfg.WindowSec = 3600
	cfg.Workers = 1

	run, err := StreamContext(context.Background(), src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for snap := range run.Snapshots() {
		snaps = append(snaps, snap)
	}
	if _, err := run.Result(); err != nil {
		t.Fatal(err)
	}
	maxWindows := int(meta.HorizonSec/cfg.WindowSec) + 1
	if len(snaps) > maxWindows+1 {
		t.Fatalf("runaway watermark produced %d snapshots, want at most %d", len(snaps), maxWindows+1)
	}
	for _, snap := range snaps {
		if snap.FromSec > meta.HorizonSec {
			t.Fatalf("snapshot window [%d,%d) starts beyond the horizon", snap.FromSec, snap.ToSec)
		}
	}
}

// TestLiveSourceSessionBehindWatermarkRejected: a session starting
// before an already-delivered watermark breaks the promise the engine
// settled windows on, and must fail the replay like any out-of-order
// arrival.
func TestLiveSourceSessionBehindWatermarkRejected(t *testing.T) {
	src := &scriptedLiveSource{
		meta: liveTestMeta(),
		events: []Event{
			{Mark: true, WatermarkSec: 7200},
			{Session: liveTestSession(1, 3600, 600)},
		},
	}
	run, err := StreamContext(context.Background(), src, DefaultConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Result(); err == nil || !strings.Contains(err.Error(), "out of start order") {
		t.Fatalf("Result = %v, want out-of-start-order error", err)
	}
}

// Package engine is the streaming counterpart of package sim: an
// event-driven, out-of-core replay engine that consumes a session trace
// as an arrival-ordered stream and simulates the paper's hybrid CDN
// without ever materialising the full trace in memory.
//
// Where sim.Run groups the whole trace into swarms up front and sweeps
// each swarm's activity intervals in isolation, the engine turns every
// session into start/end events as it arrives, maintains incremental
// per-swarm activity state (swarm.Tracker), and settles each activity
// interval — matching peers with the same internal/matching policies and
// the same Eq. 2 budget — as soon as the arrival watermark guarantees the
// interval can no longer change. Per-swarm accounting is therefore the
// same sequence of floating-point operations as the batch simulator:
// cumulative per-swarm tallies and the key-ordered grand total are
// bit-for-bit identical to sim.Run, while cross-swarm aggregates (day
// grid, user ledgers) agree within floating-point associativity (~1e-12
// relative), mirroring sim.RunParallel's documented guarantee.
//
// The event stream is sharded across workers by swarm key — swarms are
// independent, so the partition is exact — and results merge in
// deterministic key order, so per-swarm statistics and the total are
// invariant to the worker count. Progress is reported as windowed
// Snapshot values over a bounded channel: when the consumer lags, the
// pipeline blocks all the way back to the input reader (backpressure),
// keeping memory bounded by the active-session population rather than
// the trace length.
package engine

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"consumelocal/internal/obs"
	"consumelocal/internal/sim"
	"consumelocal/internal/swarm"
	"consumelocal/internal/trace"
)

// Config parameterises a streaming replay.
type Config struct {
	// Sim is the simulation configuration, shared verbatim with the batch
	// simulator: policy, swarm formation, upload capacity model,
	// quantization, seeding, participation, user tracking.
	Sim sim.Config
	// WindowSec is the reporting window: a Snapshot is emitted each time
	// the arrival watermark crosses a multiple of it. Defaults to 3600
	// (hourly snapshots).
	WindowSec int64
	// Workers is the number of shard workers the event stream is
	// partitioned across by swarm key. Defaults to GOMAXPROCS, capped at
	// 64.
	Workers int
	// SnapshotBuffer bounds the snapshot channel. When the consumer lags
	// by more than this many windows the pipeline blocks — backpressure
	// propagates through the workers to the input reader. Defaults to 4.
	SnapshotBuffer int
	// Stats, when non-nil, receives per-stage instrumentation: workers
	// accumulate settle time per window mark. The counters are atomics,
	// so recording costs two clock reads per mark — nothing on the
	// per-session hot path.
	Stats *obs.ReplayMetrics
}

// DefaultConfig returns the paper's simulation configuration at the
// given q/β ratio with hourly reporting windows.
func DefaultConfig(uploadRatio float64) Config {
	return Config{Sim: sim.DefaultConfig(uploadRatio)}
}

// withDefaults fills zero-value fields.
func (c Config) withDefaults() Config {
	c.Sim = c.Sim.WithDefaults()
	if c.WindowSec <= 0 {
		c.WindowSec = 3600
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > 64 {
		c.Workers = 64
	}
	if c.SnapshotBuffer <= 0 {
		c.SnapshotBuffer = 4
	}
	return c
}

// Snapshot is one windowed progress report of a streaming replay.
//
// Delta attributes traffic at settlement time: an activity interval's
// bits are booked in the window during which the interval closed, so a
// long-lived interval settles in the window containing its end. The
// Cumulative tally converges to the batch simulator's total as the
// stream drains.
type Snapshot struct {
	// Index is the zero-based window index.
	Index int `json:"index"`
	// FromSec / ToSec bound the window in trace time.
	FromSec int64 `json:"from_sec"`
	ToSec   int64 `json:"to_sec"`
	// SessionsSeen counts sessions consumed from the source so far.
	SessionsSeen int64 `json:"sessions_seen"`
	// ActiveMembers counts currently active swarm members, including
	// post-playback seeding members when SeedRetentionSec is set.
	ActiveMembers int `json:"active_members"`
	// Swarms counts distinct swarms seen so far.
	Swarms int `json:"swarms"`
	// Delta is the traffic settled during this window.
	Delta sim.Tally `json:"delta"`
	// Cumulative is the traffic settled since the start of the stream.
	Cumulative sim.Tally `json:"cumulative"`
	// Final marks the closing snapshot, emitted after the source drains
	// and every remaining interval has settled.
	Final bool `json:"final,omitempty"`
}

// Run is a streaming replay in progress. Consumers must drain
// Snapshots() — or call Result(), which drains internally — or the
// bounded pipeline stalls by design.
type Run struct {
	meta      trace.Meta
	snapshots chan Snapshot
	done      chan struct{}
	result    *sim.Result
	err       error
}

// Meta returns the trace metadata of the stream being replayed.
func (r *Run) Meta() trace.Meta { return r.meta }

// Snapshots returns the windowed progress channel. It is closed after
// the final snapshot.
func (r *Run) Snapshots() <-chan Snapshot { return r.snapshots }

// Result blocks until the stream drains and returns the complete
// outcome, equivalent to sim.Run over the same trace and configuration.
// Remaining snapshots are drained internally, so Result may be called
// with or without a concurrent Snapshots consumer.
func (r *Run) Result() (*sim.Result, error) {
	for range r.snapshots {
	}
	<-r.done
	return r.result, r.err
}

// Stream starts replaying src under cfg. It validates the configuration
// and metadata synchronously, then runs the shard pipeline in the
// background; progress arrives on Run.Snapshots and the final outcome
// through Run.Result. The pipeline is never cancelled: consumers must
// drain it. Use StreamContext when the replay should be abortable.
func Stream(src Source, cfg Config) (*Run, error) {
	return StreamContext(context.Background(), src, cfg)
}

// StreamContext is Stream under a context: when ctx is cancelled the
// feed loop stops reading the source, stops emitting snapshots, closes
// the worker inputs and unwinds, so every pipeline goroutine exits even
// if the snapshot consumer has walked away. Run.Result then reports
// ctx.Err(). Cancellation is observed between sessions and at every
// channel hand-off; it cannot interrupt a plain Source blocked inside
// Next (a LiveSource blocks ctx-aware in NextEvent, so live replays
// unwind even while the producer is silent).
func StreamContext(ctx context.Context, src Source, cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	r := &Run{
		meta:      meta,
		snapshots: make(chan Snapshot, cfg.SnapshotBuffer),
		done:      make(chan struct{}),
	}
	go r.feed(ctx, src, cfg)
	return r, nil
}

// item is one sharded session in flight to a worker.
type item struct {
	sess    trace.Session
	key     swarm.Key
	origDur int32
}

// sessionBatchSize is how many sessions a worker batch carries. Batching
// the feed→worker hand-off cuts channel operations by roughly two orders
// of magnitude versus one send per session — channel synchronisation was
// the dominant pipeline overhead, not the sends' payload.
const sessionBatchSize = 256

// batchPool recycles batch slices between the feed and the workers, so
// the steady-state hand-off allocates nothing but the pool's pointer
// box (one small allocation per batch, ~1/256th of a per-session cost).
var batchPool = sync.Pool{
	New: func() any {
		b := make([]item, 0, sessionBatchSize)
		return &b
	},
}

func getBatch() []item {
	return (*batchPool.Get().(*[]item))[:0]
}

func putBatch(b []item) {
	b = b[:0]
	batchPool.Put(&b)
}

// wmsg is one message on a worker's input channel: either a batch of
// sessions assigned to the worker's shard, or a window mark instructing
// the worker to settle activity up to a boundary and report its delta.
type wmsg struct {
	mark  bool
	final bool
	until int64
	batch []item
}

// ack is a worker's reply to one window mark.
type ack struct {
	worker int
	delta  sim.Tally
	active int
	swarms int
	err    error
}

// report is a worker's final shard outcome.
type report struct {
	worker int
	stats  []sim.SwarmStats
	days   [][]sim.Tally
	users  map[uint32]*sim.UserStats
	err    error
}

// feed is the coordinator goroutine: it pulls sessions from the source,
// shards them across workers by swarm key, broadcasts window marks as
// the arrival watermark crosses boundaries, merges worker deltas into
// snapshots, and assembles the final result in deterministic key order.
//
// Liveness invariant: the acks and reports channels are buffered to the
// worker count and a worker sends at most one ack per mark it has
// received (and one report, on the final mark), so worker sends never
// block. Workers therefore always drain their inputs and exit when the
// feed closes them — the only goroutine that can stall is the feed
// itself, on a worker input or the snapshot channel, and both of those
// sends select on ctx so cancellation unwinds the whole pipeline.
func (r *Run) feed(ctx context.Context, src Source, cfg Config) {
	defer close(r.done)
	defer close(r.snapshots)

	inputs := make([]chan wmsg, cfg.Workers)
	acks := make(chan ack, cfg.Workers)
	reports := make(chan report, cfg.Workers)
	for i := range inputs {
		inputs[i] = make(chan wmsg, 4)
		w := newWorker(i, cfg, r.meta)
		go w.run(inputs[i], acks, reports)
	}

	var (
		sessionsSeen int64
		prevStart    int64 = -1
		windowIdx    int
		boundary     = cfg.WindowSec
		cum          sim.Tally
		ferr         error
		deltas       = make([]sim.Tally, cfg.Workers)
		// pend accumulates each shard's in-flight session batch; a batch
		// is handed off when full or ahead of a window mark.
		pend = make([][]item, cfg.Workers)
	)

	// sendBatch hands shard i's pending batch to its worker. It reports
	// false (and records the cancellation) once ctx is done.
	sendBatch := func(i int) bool {
		select {
		case inputs[i] <- wmsg{batch: pend[i]}:
			pend[i] = nil
			return true
		case <-ctx.Done():
			if ferr == nil {
				ferr = ctx.Err()
			}
			return false
		}
	}

	// flush broadcasts a mark, merges the worker acks in worker order
	// (deterministic for a fixed worker count) and emits a snapshot.
	// Pending batches are handed off first: every session arriving ahead
	// of the mark must reach its worker ahead of it. It reports false
	// once any worker has failed or ctx is done.
	flush := func(until int64, final bool) bool {
		msg := wmsg{mark: true, final: final, until: until}
		sent := 0
		for i := range inputs {
			if len(pend[i]) > 0 && !sendBatch(i) {
				break
			}
			select {
			case inputs[i] <- msg:
				sent++
			case <-ctx.Done():
				if ferr == nil {
					ferr = ctx.Err()
				}
			}
			if ferr != nil {
				break
			}
		}
		var active, swarms int
		for n := 0; n < sent; n++ {
			// Safe to receive unconditionally: every worker that got the
			// mark replies, and its send never blocks (buffered channel).
			//consumelocal:ignore ctxsend every marked worker acks exactly once on a buffered channel, so this receive cannot stall
			a := <-acks
			deltas[a.worker] = a.delta
			active += a.active
			swarms += a.swarms
			if a.err != nil && ferr == nil {
				ferr = a.err
			}
		}
		if ferr != nil {
			return false
		}
		var delta sim.Tally
		for _, d := range deltas {
			delta.Add(d)
		}
		cum.Add(delta)
		from := int64(windowIdx) * cfg.WindowSec
		to := until
		if final {
			to = r.meta.HorizonSec
			if to < from {
				to = from
			}
		}
		snap := Snapshot{
			Index:         windowIdx,
			FromSec:       from,
			ToSec:         to,
			SessionsSeen:  sessionsSeen,
			ActiveMembers: active,
			Swarms:        swarms,
			Delta:         delta,
			Cumulative:    cum,
			Final:         final,
		}
		select {
		case r.snapshots <- snap:
			return true
		case <-ctx.Done():
			// The consumer has walked away and cancelled: stop emitting.
			ferr = ctx.Err()
			return false
		}
	}

	// A LiveSource delivers watermark marks interleaved with sessions and
	// blocks ctx-aware, so a cancelled replay unwinds even while the
	// producer is silent.
	live, isLive := src.(LiveSource)

	for ferr == nil {
		if err := ctx.Err(); err != nil {
			ferr = err
			break
		}
		var s trace.Session
		var err error
		if isLive {
			var ev Event
			ev, err = live.NextEvent(ctx)
			if err == nil && ev.Mark {
				// The watermark promises no session will start before it:
				// settle every reporting window the promise closes, then
				// raise the ordering floor so a later session violating
				// the promise is rejected like any out-of-order arrival.
				wm := ev.WatermarkSec
				if wm > r.meta.HorizonSec {
					wm = r.meta.HorizonSec
				}
				for wm >= boundary {
					if !flush(boundary, false) {
						break
					}
					windowIdx++
					boundary += cfg.WindowSec
				}
				if ev.WatermarkSec > prevStart {
					prevStart = ev.WatermarkSec
				}
				continue
			}
			s = ev.Session
		} else {
			s, err = src.Next()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Cancellation often surfaces as a source read error first
			// (e.g. an HTTP body closed by the disconnecting client);
			// report the cancellation, not the secondary error.
			if cerr := ctx.Err(); cerr != nil {
				ferr = cerr
			} else {
				ferr = fmt.Errorf("engine: read source: %w", err)
			}
			break
		}
		if err := r.meta.ValidateSession(sessionsSeen, s); err != nil {
			ferr = fmt.Errorf("engine: %w", err)
			break
		}
		if s.StartSec < prevStart {
			ferr = fmt.Errorf("engine: session %d out of start order", sessionsSeen)
			break
		}
		prevStart = s.StartSec
		sessionsSeen++

		key := swarm.KeyOf(s, cfg.Sim.Swarm)
		origDur := s.DurationSec
		if tick := cfg.Sim.QuantizeTickSec; tick > 0 {
			// Snap boundaries outward to Δτ ticks, exactly as the batch
			// simulator's quantize step does.
			start := s.StartSec / tick * tick
			end := (s.EndSec() + tick - 1) / tick * tick
			s.StartSec = start
			s.DurationSec = int32(end - start)
		}

		for s.StartSec >= boundary {
			if !flush(boundary, false) {
				break
			}
			windowIdx++
			boundary += cfg.WindowSec
		}
		if ferr != nil {
			break
		}
		shard := shardOf(key, cfg.Workers)
		if pend[shard] == nil {
			pend[shard] = getBatch()
		}
		pend[shard] = append(pend[shard], item{sess: s, key: key, origDur: origDur})
		if len(pend[shard]) == sessionBatchSize && !sendBatch(shard) {
			break
		}
	}

	// Final mark: settle everything pending (including activity past the
	// last window boundary and beyond the horizon) and emit the closing
	// snapshot, unless the run already failed.
	if ferr == nil {
		flush(math.MaxInt64, true)
	}
	for i := range inputs {
		close(inputs[i])
	}
	if ferr != nil {
		// Failed or cancelled: workers drain their queues and exit on the
		// input close without reporting (their ack/report sends are
		// buffered, so none of them can stall). Discard the run.
		r.err = ferr
		return
	}

	shards := make([]report, cfg.Workers)
	for n := 0; n < cfg.Workers; n++ {
		//consumelocal:ignore ctxsend every worker sends its final report exactly once on a buffered channel after the final mark, so this receive cannot stall
		rep := <-reports
		shards[rep.worker] = rep
		if rep.err != nil {
			ferr = rep.err
		}
	}
	if ferr != nil {
		r.err = ferr
		return
	}
	r.result = mergeShards(shards, cfg, r.meta)
}

// mergeShards assembles the final result: per-swarm statistics sorted by
// key and totalled in key order — the exact order sim.Run accumulates
// in, making both bit-for-bit identical to the batch run regardless of
// worker count — and day/user aggregates merged in worker order.
func mergeShards(shards []report, cfg Config, meta trace.Meta) *sim.Result {
	res := &sim.Result{
		Days:       make([][]sim.Tally, meta.Days()),
		PolicyName: cfg.Sim.Policy.Name(),
	}
	for d := range res.Days {
		res.Days[d] = make([]sim.Tally, meta.NumISPs)
	}
	if cfg.Sim.TrackUsers {
		res.Users = make(map[uint32]*sim.UserStats)
	}
	var total int
	for _, sh := range shards {
		total += len(sh.stats)
	}
	res.Swarms = make([]sim.SwarmStats, 0, total)
	for _, sh := range shards {
		res.Swarms = append(res.Swarms, sh.stats...)
	}
	sort.Slice(res.Swarms, func(i, j int) bool { return res.Swarms[i].Key.Less(res.Swarms[j].Key) })
	for _, st := range res.Swarms {
		res.Total.Add(st.Tally)
	}
	for _, sh := range shards {
		for d := range sh.days {
			for isp := range sh.days[d] {
				res.Days[d][isp].Add(sh.days[d][isp])
			}
		}
		if res.Users == nil {
			continue
		}
		for id, u := range sh.users {
			dst := res.Users[id]
			if dst == nil {
				dst = &sim.UserStats{}
				res.Users[id] = dst
			}
			dst.DownloadedBits += u.DownloadedBits
			dst.FromPeersBits += u.FromPeersBits
			dst.UploadedBits += u.UploadedBits
		}
	}
	return res
}

// shardOf assigns a swarm key to a worker by FNV-1a hash: stable across
// runs, independent of arrival order.
func shardOf(k swarm.Key, workers int) int {
	h := uint32(2166136261)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 16777619
			v >>= 8
		}
	}
	mix(k.Content)
	mix(uint32(uint16(k.ISP)))
	mix(uint32(k.Bitrate))
	return int(h % uint32(workers))
}

package carbon

import (
	"math"
	"testing"

	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/trace"
)

func ledger() map[uint32]*sim.UserStats {
	return map[uint32]*sim.UserStats{
		// Heavy uploader: watches 1 GB, uploads 2 GB.
		1: {DownloadedBits: 8e9, FromPeersBits: 4e9, UploadedBits: 16e9},
		// Never uploads.
		2: {DownloadedBits: 8e9},
		// Balanced: uploads as much as it watches.
		3: {DownloadedBits: 8e9, FromPeersBits: 8e9, UploadedBits: 8e9},
	}
}

func TestBalancesSortedAndPriced(t *testing.T) {
	p := energy.Valancius()
	balances := Balances(ledger(), p)
	if len(balances) != 3 {
		t.Fatalf("got %d balances, want 3", len(balances))
	}
	for i := 1; i < len(balances); i++ {
		if balances[i].User <= balances[i-1].User {
			t.Error("balances not sorted by user")
		}
	}
	// User 2 never uploads: fully carbon negative.
	if balances[1].CCT != -1 {
		t.Errorf("non-uploader CCT = %v, want -1", balances[1].CCT)
	}
	// User 1 uploads twice its consumption: strongly positive under
	// Valancius (credit 253.32 vs cost 107 per uploaded bit).
	if balances[0].CCT <= 0 {
		t.Errorf("heavy uploader CCT = %v, want positive", balances[0].CCT)
	}
	// Hand-check user 3: consumption l·γm·16e9, credit PUE·γs·8e9.
	wantCCT := (1.2*211.1*8 - 107*16) / (107 * 16)
	if math.Abs(balances[2].CCT-wantCCT) > 1e-9 {
		t.Errorf("balanced user CCT = %v, want %v", balances[2].CCT, wantCCT)
	}
}

func TestCCTValues(t *testing.T) {
	values := CCTValues(Balances(ledger(), energy.Baliga()))
	if len(values) != 3 {
		t.Fatalf("got %d values", len(values))
	}
}

func TestDistribute(t *testing.T) {
	d := Distribute(ledger(), energy.Valancius())
	if d.Model != "valancius" {
		t.Errorf("model = %q", d.Model)
	}
	if d.Users != 3 {
		t.Errorf("users = %d, want 3", d.Users)
	}
	// Users 1 and 3 are positive (user 3: credit 2026 vs cost 1712 J per
	// the hand check above), user 2 is at -1.
	if math.Abs(d.CarbonPositive-2.0/3) > 1e-9 {
		t.Errorf("carbon positive = %v, want 2/3", d.CarbonPositive)
	}
	if d.CarbonNeutralOrBetter < d.CarbonPositive {
		t.Error("neutral-or-better must include positive")
	}
	if len(d.CDF) == 0 {
		t.Error("missing CDF")
	}
	if d.CDF[len(d.CDF)-1].Y != 1 {
		t.Error("CDF must end at 1")
	}
}

func TestDistributeEmpty(t *testing.T) {
	d := Distribute(nil, energy.Valancius())
	if d.Users != 0 || d.CarbonPositive != 0 || len(d.CDF) != 0 {
		t.Errorf("empty distribution = %+v", d)
	}
}

func TestTransfer(t *testing.T) {
	p := energy.Baliga()
	st := Transfer(ledger(), p)
	var wantCredit, wantFootprint float64
	for _, u := range ledger() {
		wantCredit += p.ServerCreditPerBit() * u.UploadedBits * 1e-9
		wantFootprint += p.UserPerBit() * (u.DownloadedBits + u.UploadedBits) * 1e-9
	}
	if math.Abs(st.CreditJoules-wantCredit) > 1e-9 {
		t.Errorf("credit = %v, want %v", st.CreditJoules, wantCredit)
	}
	if math.Abs(st.UserFootprintJoules-wantFootprint) > 1e-9 {
		t.Errorf("footprint = %v, want %v", st.UserFootprintJoules, wantFootprint)
	}
	wantNet := (wantCredit - wantFootprint) / wantFootprint
	if math.Abs(st.NetNormalized-wantNet) > 1e-9 {
		t.Errorf("net = %v, want %v", st.NetNormalized, wantNet)
	}
}

func TestTransferEmpty(t *testing.T) {
	st := Transfer(nil, energy.Valancius())
	if st.NetNormalized != -1 {
		t.Errorf("empty transfer net = %v, want -1", st.NetNormalized)
	}
}

// End-to-end: on a simulated trace, Baliga's more expensive servers must
// make more users carbon positive than Valancius (the paper's Fig. 6
// ordering: >70% vs ~41%).
func TestBaligaMakesMoreUsersCarbonPositive(t *testing.T) {
	cfg := trace.DefaultGeneratorConfig(0.002)
	cfg.Days = 7
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, sim.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	dv := Distribute(res.Users, energy.Valancius())
	db := Distribute(res.Users, energy.Baliga())
	if db.CarbonPositive <= dv.CarbonPositive {
		t.Errorf("baliga positive share %.3f should exceed valancius %.3f",
			db.CarbonPositive, dv.CarbonPositive)
	}
	if db.CarbonPositive == 0 {
		t.Error("expected some carbon positive users")
	}
}

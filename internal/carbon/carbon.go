// Package carbon implements the carbon credit transfer analysis of the
// paper's Section V: the CDN's energy savings from peer-assisted delivery
// are transferred to the uploading users as carbon credits, and each
// user's net carbon balance is evaluated.
//
// A user's own footprint is l·γm per bit for everything it downloads plus
// everything it uploads; its credit is PUE·γs per bit it uploads (the
// server energy its uploads displaced). The normalised net balance is the
// per-user CCT of Eq. 13: −1 for a user who never uploads, positive for a
// "carbon positive" user whose credits exceed its own streaming footprint.
package carbon

import (
	"sort"

	"consumelocal/internal/energy"
	"consumelocal/internal/sim"
	"consumelocal/internal/stats"
)

// UserBalance is one user's carbon accounting under one energy model.
type UserBalance struct {
	// User is the user ID.
	User uint32
	// Energy is the priced ledger.
	Energy sim.UserEnergy
	// CCT is the normalised net balance (Eq. 13 at user granularity).
	CCT float64
}

// Balances prices every user ledger of a simulation result under the
// given parameters, returning balances sorted by user ID.
func Balances(users map[uint32]*sim.UserStats, params energy.Params) []UserBalance {
	out := make([]UserBalance, 0, len(users))
	for id, stats := range users {
		ue := sim.PriceUser(*stats, params)
		out = append(out, UserBalance{User: id, Energy: ue, CCT: ue.NetNormalized()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// CCTValues extracts the per-user CCT values from balances.
func CCTValues(balances []UserBalance) []float64 {
	out := make([]float64, len(balances))
	for i, b := range balances {
		out[i] = b.CCT
	}
	return out
}

// Distribution summarises the per-user CCT distribution (the data behind
// Fig. 6).
type Distribution struct {
	// Model names the energy parameter set.
	Model string
	// Users is the number of users in the distribution.
	Users int
	// CarbonPositive is the fraction of users with CCT > 0.
	CarbonPositive float64
	// CarbonNeutralOrBetter is the fraction with CCT >= 0.
	CarbonNeutralOrBetter float64
	// Median is the median CCT.
	Median float64
	// CDF is the empirical CDF of per-user CCT.
	CDF []stats.Point
}

// Distribute computes the CCT distribution of a simulation result under
// the given parameters.
func Distribute(users map[uint32]*sim.UserStats, params energy.Params) Distribution {
	balances := Balances(users, params)
	values := CCTValues(balances)

	d := Distribution{
		Model: params.Name,
		Users: len(values),
		CDF:   stats.CDF(values),
	}
	if len(values) == 0 {
		return d
	}
	d.CarbonPositive = stats.FractionAbove(values, 0)
	d.CarbonNeutralOrBetter = stats.FractionAtLeast(values, 0)
	median, err := stats.Median(values)
	if err == nil {
		d.Median = median
	}
	return d
}

// SystemTransfer summarises the aggregate credit flow: total credits the
// CDN hands out versus the users' collective footprint.
type SystemTransfer struct {
	// Model names the energy parameter set.
	Model string
	// CreditJoules is the total CDN-side savings transferred.
	CreditJoules float64
	// UserFootprintJoules is the users' collective premises energy.
	UserFootprintJoules float64
	// NetNormalized is the collective CCT (credit − footprint)/footprint.
	NetNormalized float64
}

// Transfer aggregates the credit flow across all users.
func Transfer(users map[uint32]*sim.UserStats, params energy.Params) SystemTransfer {
	st := SystemTransfer{Model: params.Name}
	for _, u := range users {
		ue := sim.PriceUser(*u, params)
		st.CreditJoules += ue.CreditJoules
		st.UserFootprintJoules += ue.ConsumptionJoules
	}
	if st.UserFootprintJoules > 0 {
		st.NetNormalized = (st.CreditJoules - st.UserFootprintJoules) / st.UserFootprintJoules
	} else {
		st.NetNormalized = -1
	}
	return st
}

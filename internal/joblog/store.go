package joblog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store is the completed-result store: one JSON document per finished
// job, written atomically (temp file, fsync, rename) so a crash
// mid-write never leaves a half-result — the journal only records a
// job "finished done" after its result is durably in the store, which
// is what lets a restarted daemon re-serve it byte-for-byte.
type Store struct {
	dir string
}

// resultsDir is the store's subdirectory inside the data directory.
const resultsDir = "results"

// OpenStore opens (creating if needed) the result store under dir.
func OpenStore(dir string) (*Store, error) {
	d := filepath.Join(dir, resultsDir)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return nil, fmt.Errorf("joblog: result store: %w", err)
	}
	return &Store{dir: d}, nil
}

func (s *Store) path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("job-%d.json", id))
}

// Put durably stores job id's result document.
func (s *Store) Put(id int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("joblog: encode result %d: %w", id, err)
	}
	tmp, err := os.CreateTemp(s.dir, fmt.Sprintf("job-%d.tmp-*", id))
	if err != nil {
		return fmt.Errorf("joblog: store result %d: %w", id, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: store result %d: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: sync result %d: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("joblog: store result %d: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return fmt.Errorf("joblog: store result %d: %w", id, err)
	}
	syncDir(s.dir)
	return nil
}

// Get loads job id's result document into v. The boolean reports
// whether the store had one; absence is not an error.
func (s *Store) Get(id int, v any) (bool, error) {
	data, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("joblog: load result %d: %w", id, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("joblog: decode result %d: %w", id, err)
	}
	return true, nil
}

// Delete removes job id's result, if any.
func (s *Store) Delete(id int) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// IDs lists the stored job IDs in ascending order.
func (s *Store) IDs() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("joblog: list results: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutPrefix(name, "job-")
		if !ok {
			continue
		}
		rest, ok = strings.CutSuffix(rest, ".json")
		if !ok {
			continue
		}
		id, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

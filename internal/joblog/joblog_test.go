package joblog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"consumelocal/internal/trace"
)

func openT(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

// TestJournalRoundTrip appends a realistic job lifecycle and checks the
// replay reduces it to the expected states and totals.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir)
	if len(rec.Jobs) != 0 || rec.TornTail || rec.MaxID != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	started := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	meta := trace.Meta{Name: "evening", HorizonSec: 3600, NumUsers: 10, NumContent: 3, NumISPs: 2}
	records := []Record{
		{Type: TypeCreated, Job: 1, Name: "evening", Kind: "ingest", Mode: "streaming", Started: started, Meta: &meta},
		{Type: TypeBatch, Job: 1, Sessions: 100, WatermarkSec: 600},
		{Type: TypeBatch, Job: 1, Sessions: 50, WatermarkSec: 1200},
		{Type: TypeWatermark, Job: 1, WatermarkSec: 1800},
		{Type: TypeCreated, Job: 2, Name: "gen", Kind: "generator", Mode: "streaming", Started: started},
		{Type: TypeFinished, Job: 2, Status: "done", Snapshots: 24},
	}
	for _, r := range records {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.TornTail {
		t.Fatal("clean journal reported a torn tail")
	}
	if rec.MaxID != 2 || rec.Sessions != 150 || rec.Batches != 2 {
		t.Fatalf("recovered MaxID=%d Sessions=%d Batches=%d, want 2/150/2", rec.MaxID, rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
	}
	ing := rec.Jobs[0]
	if ing.ID != 1 || ing.Kind != "ingest" || ing.Sessions != 150 || ing.Watermark != 1800 || ing.Status != "" {
		t.Fatalf("ingest job state %+v", ing)
	}
	if !ing.Started.Equal(started) || ing.Meta != meta {
		t.Fatalf("ingest identity did not round-trip: %+v", ing)
	}
	done := rec.Jobs[1]
	if done.Status != "done" || done.Snapshots != 24 {
		t.Fatalf("finished job state %+v", done)
	}
}

// TestJournalTornTail corrupts the log's final record in several ways
// and checks replay keeps everything before it, reports the tear, and
// truncates so the next append produces a clean log again.
func TestJournalTornTail(t *testing.T) {
	for _, cut := range []struct {
		name string
		muck func(data []byte) []byte
	}{
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-3] }},
		{"truncated header", func(d []byte) []byte { return d[:len(d)-21] }},
		{"flipped payload bit", func(d []byte) []byte { d[len(d)-2] ^= 0x40; return d }},
		{"garbage appended", func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe, 0xef) }},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, dir)
			if err := j.Append(Record{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"}); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 10, WatermarkSec: 60}); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 20, WatermarkSec: 120}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, journalName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, cut.muck(data), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, rec := openT(t, dir)
			if !rec.TornTail {
				t.Fatal("corrupt tail not reported")
			}
			// The final batch is inside the damaged region for the cut
			// variants and beyond it for the append variant.
			if rec.Sessions != 10 && rec.Sessions != 30 {
				t.Fatalf("recovered %d sessions, want 10 (tail lost) or 30 (tail intact)", rec.Sessions)
			}
			if len(rec.Jobs) != 1 || rec.Jobs[0].ID != 1 {
				t.Fatalf("recovered jobs %+v", rec.Jobs)
			}
			// The truncation must leave a clean frame boundary: append a
			// record and replay again without a tear.
			if err := j2.Append(Record{Type: TypeFinished, Job: 1, Status: "failed", Error: "interrupted"}); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, rec := openT(t, dir)
			defer j3.Close()
			if rec.TornTail {
				t.Fatal("journal still torn after truncation + append")
			}
			if rec.Jobs[0].Status != "failed" {
				t.Fatalf("appended terminal record lost: %+v", rec.Jobs[0])
			}
		})
	}
}

// TestJournalRewrite compacts a journal down to a checkpoint plus
// terminal records and checks totals and states survive — including
// across a second compaction, which is where a non-carried checkpoint
// would lose history.
func TestJournalRewrite(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append(Record{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 40, WatermarkSec: 60}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeFinished, Job: 1, Status: "done", Snapshots: 3, Sessions: 40, WatermarkSec: 60}); err != nil {
		t.Fatal(err)
	}

	// First compaction: checkpoint carries the totals, job 1 keeps a
	// created+finished pair.
	err := j.Rewrite([]Record{
		{Type: TypeCheckpoint, Sessions: 40, Batches: 1},
		{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"},
		{Type: TypeFinished, Job: 1, Status: "done", Snapshots: 3, Sessions: 40, WatermarkSec: 60},
	})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The journal must stay appendable after a rewrite.
	if err := j.Append(Record{Type: TypeCreated, Job: 2, Kind: "generator", Mode: "batch"}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	if rec.Sessions != 40 || rec.Batches != 1 {
		t.Fatalf("totals after compaction: Sessions=%d Batches=%d, want 40/1", rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[0].Status != "done" || rec.Jobs[0].Sessions != 40 {
		t.Fatalf("states after compaction: %+v", rec.Jobs)
	}
	if rec.MaxID != 2 {
		t.Fatalf("MaxID after compaction = %d, want 2", rec.MaxID)
	}

	// Second compaction: the checkpoint must compose with the previous
	// one, not reset it.
	err = j2.Rewrite([]Record{{Type: TypeCheckpoint, Sessions: rec.Sessions, Batches: rec.Batches}})
	if err != nil {
		t.Fatalf("second Rewrite: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, rec := openT(t, dir)
	defer j3.Close()
	if rec.Sessions != 40 || rec.Batches != 1 {
		t.Fatalf("totals after second compaction: Sessions=%d Batches=%d, want 40/1", rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("jobs after drop-all compaction: %+v", rec.Jobs)
	}
}

// TestJournalEvicted checks an evicted job is forgotten by replay while
// the ID space is not reused.
func TestJournalEvicted(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append(Record{Type: TypeCreated, Job: 7, Kind: "trace", Mode: "streaming"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeFinished, Job: 7, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeEvicted, Job: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if len(rec.Jobs) != 0 {
		t.Fatalf("evicted job recovered: %+v", rec.Jobs)
	}
	if rec.MaxID != 7 {
		t.Fatalf("MaxID = %d, want 7 (evicted IDs are not reused)", rec.MaxID)
	}
}

// TestJournalAppendBatch checks the multi-record commit path: all
// frames land under one fsync and replay exactly as individual appends
// would.
func TestJournalAppendBatch(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	fsyncs := 0
	j.OnFsync = func(float64) { fsyncs++ }
	var types []string
	j.OnAppend = func(rt string) { types = append(types, rt) }
	err := j.AppendBatch([]Record{
		{Type: TypeBatch, Job: 1, Sessions: 10, CSV: "0,0,0,0,5,600,1500\n"},
		{Type: TypeBatch, Job: 1, Sessions: 20, CSV: "1,1,1,1,9,600,1500\n", WatermarkSec: 600},
	})
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if fsyncs != 1 {
		t.Fatalf("AppendBatch cost %d fsyncs, want 1", fsyncs)
	}
	if len(types) != 2 || types[0] != TypeBatch || types[1] != TypeBatch {
		t.Fatalf("observed types %v", types)
	}
	if j.Size() == 0 {
		t.Fatal("Size() = 0 after a committed batch")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.Sessions != 30 || rec.Batches != 2 {
		t.Fatalf("replayed Sessions=%d Batches=%d, want 30/2", rec.Sessions, rec.Batches)
	}
	st := rec.Jobs[0]
	if st.Watermark != 600 || len(st.Tail) != 2 || st.Tail[0].CSV == "" {
		t.Fatalf("tail did not round-trip: %+v", st)
	}
}

// TestJournalCompactPreservesTail drives the online-compaction plan: a
// running ingest job's created record (with its resume query) and full
// batch tail must survive the rewrite, terminal jobs must reduce to
// pairs, and the checkpoint subtraction must keep the replayed totals
// exact — compacting twice must be a fixed point, not a double-count.
func TestJournalCompactPreservesTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	appends := []Record{
		{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming", Query: "source=ingest&horizon=3600"},
		{Type: TypeBatch, Job: 1, Sessions: 10, CSV: "row-a", WatermarkSec: 600},
		{Type: TypeBatch, Job: 1, Sessions: 5, CSV: "row-b", WatermarkSec: 1200},
		{Type: TypeCreated, Job: 2, Kind: "generator", Mode: "streaming"},
		{Type: TypeFinished, Job: 2, Status: "done", Snapshots: 4},
	}
	for _, r := range appends {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := j.Size()
	for pass := 1; pass <= 2; pass++ {
		if _, err := j.Compact(CompactionPlan); err != nil {
			t.Fatalf("Compact pass %d: %v", pass, err)
		}
	}
	if j.Size() >= sizeBefore+sizeBefore {
		t.Fatalf("compaction grew the journal: %d -> %d", sizeBefore, j.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.Sessions != 15 || rec.Batches != 2 {
		t.Fatalf("totals after compaction: Sessions=%d Batches=%d, want 15/2 (checkpoint double-counted the tail?)", rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("jobs after compaction: %+v", rec.Jobs)
	}
	ing := rec.Jobs[0]
	if ing.Status != "" || ing.Sessions != 15 || ing.Watermark != 1200 {
		t.Fatalf("running job after compaction: %+v", ing)
	}
	if ing.Created == nil || ing.Created.Query != "source=ingest&horizon=3600" {
		t.Fatalf("resume query lost in compaction: %+v", ing.Created)
	}
	if len(ing.Tail) != 2 || ing.Tail[0].CSV != "row-a" || ing.Tail[1].CSV != "row-b" {
		t.Fatalf("batch tail lost in compaction: %+v", ing.Tail)
	}
	if rec.Jobs[1].Status != "done" || rec.Jobs[1].Snapshots != 4 {
		t.Fatalf("terminal job after compaction: %+v", rec.Jobs[1])
	}
}

// TestJournalFaults exercises the injection seam: failed writes and
// fsyncs surface as append errors (the daemon's 500-before-ack path),
// a mangled frame is caught by the CRC on the next replay as a torn
// tail, and clearing the faults restores normal service.
func TestJournalFaults(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	var kinds []string
	j.OnFault = func(kind string) { kinds = append(kinds, kind) }

	j.InjectFaults(&Faults{WriteErr: func([]byte) error { return os.ErrClosed }})
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 1}); err == nil {
		t.Fatal("append with injected write failure succeeded")
	}
	j.InjectFaults(&Faults{SyncErr: func() error { return os.ErrClosed }})
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 1}); err == nil {
		t.Fatal("append with injected fsync failure succeeded")
	}
	j.InjectFaults(nil)
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 2, WatermarkSec: 60}); err != nil {
		t.Fatalf("append after clearing faults: %v", err)
	}
	j.InjectFaults(&Faults{MangleFrame: func(frame []byte) []byte {
		mangled := append([]byte(nil), frame...)
		mangled[len(mangled)-1] ^= 0x20
		return mangled
	}})
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 100}); err != nil {
		t.Fatalf("mangled append should commit (the corruption is silent until replay): %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"write", "fsync", "mangle"}; len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("fault kinds = %v, want %v", kinds, want)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if !rec.TornTail {
		t.Fatal("mangled frame not detected as a torn tail")
	}
	// The failed-write record never landed; the fsync-failure record may
	// or may not be durable (here the write happened, so it is); the
	// mangled record must be gone.
	if rec.Sessions != 3 {
		t.Fatalf("recovered %d sessions, want 3 (clean append + written-but-unsynced)", rec.Sessions)
	}
}

// FuzzJournalReplay asserts the replay scanner's crash-safety contract
// over arbitrary corruption: for any input — random truncations, bit
// flips, garbage — replay must terminate without panicking, report a
// truncation point no further than the input, and reduce the retained
// prefix to exactly the same state a clean replay of that prefix
// yields (truncate-and-continue never silently mis-replays).
func FuzzJournalReplay(f *testing.F) {
	dir := f.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	seed := []Record{
		{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming", Query: "source=ingest&horizon=3600&users=10&content=3&isps=2"},
		{Type: TypeBatch, Job: 1, Sessions: 3, CSV: "0,0,0,0,5,600,1500\n1,1,1,1,9,600,1500\n2,2,0,2,14,600,1500\n", WatermarkSec: 600},
		{Type: TypeWatermark, Job: 1, WatermarkSec: 1200},
		{Type: TypeCheckpoint, Sessions: 40, Batches: 2},
		{Type: TypeCreated, Job: 2, Kind: "generator", Mode: "streaming"},
		{Type: TypeFinished, Job: 2, Status: "done", Snapshots: 7},
	}
	for _, r := range seed {
		if err := j.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, good := replay(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("truncation point %d outside [0, %d]", good, len(data))
		}
		if rec.Sessions < 0 || rec.Batches < 0 || rec.Records < 0 {
			t.Fatalf("negative totals from replay: %+v", rec)
		}
		// Re-replaying the accepted prefix must be clean and identical:
		// the truncate-and-continue contract.
		rec2, good2 := replay(data[:good])
		if good2 != good {
			t.Fatalf("prefix replay truncated again: %d then %d", good, good2)
		}
		if rec2.MaxID != rec.MaxID || rec2.Sessions != rec.Sessions ||
			rec2.Batches != rec.Batches || rec2.Records != rec.Records ||
			len(rec2.Jobs) != len(rec.Jobs) {
			t.Fatalf("prefix replay diverged: %+v vs %+v", rec, rec2)
		}
		for i := range rec.Jobs {
			a, b := rec.Jobs[i], rec2.Jobs[i]
			if a.ID != b.ID || a.Status != b.Status || a.Sessions != b.Sessions ||
				a.Watermark != b.Watermark || len(a.Tail) != len(b.Tail) {
				t.Fatalf("prefix replay job %d diverged: %+v vs %+v", i, a, b)
			}
		}
	})
}

// TestStoreRoundTrip exercises Put/Get/Delete/IDs on the result store.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	type doc struct {
		ID    int     `json:"id"`
		Value float64 `json:"value"`
	}
	if err := s.Put(3, doc{ID: 3, Value: 0.1 + 0.2}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(11, doc{ID: 11, Value: 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var got doc
	ok, err := s.Get(3, &got)
	if err != nil || !ok {
		t.Fatalf("Get(3) = %v, %v", ok, err)
	}
	if got.Value != 0.1+0.2 {
		t.Fatalf("float did not round-trip exactly: %v", got.Value)
	}
	if ok, err := s.Get(99, &got); err != nil || ok {
		t.Fatalf("Get(99) = %v, %v, want absent", ok, err)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatalf("IDs: %v", err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 11 {
		t.Fatalf("IDs = %v, want [3 11]", ids)
	}
	if err := s.Delete(3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(3); err != nil {
		t.Fatalf("Delete (absent): %v", err)
	}
	if ok, _ := s.Get(3, &got); ok {
		t.Fatal("deleted result still served")
	}
}

package joblog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"consumelocal/internal/trace"
)

func openT(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

// TestJournalRoundTrip appends a realistic job lifecycle and checks the
// replay reduces it to the expected states and totals.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir)
	if len(rec.Jobs) != 0 || rec.TornTail || rec.MaxID != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	started := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	meta := trace.Meta{Name: "evening", HorizonSec: 3600, NumUsers: 10, NumContent: 3, NumISPs: 2}
	records := []Record{
		{Type: TypeCreated, Job: 1, Name: "evening", Kind: "ingest", Mode: "streaming", Started: started, Meta: &meta},
		{Type: TypeBatch, Job: 1, Sessions: 100, WatermarkSec: 600},
		{Type: TypeBatch, Job: 1, Sessions: 50, WatermarkSec: 1200},
		{Type: TypeWatermark, Job: 1, WatermarkSec: 1800},
		{Type: TypeCreated, Job: 2, Name: "gen", Kind: "generator", Mode: "streaming", Started: started},
		{Type: TypeFinished, Job: 2, Status: "done", Snapshots: 24},
	}
	for _, r := range records {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec := openT(t, dir)
	defer j2.Close()
	if rec.TornTail {
		t.Fatal("clean journal reported a torn tail")
	}
	if rec.MaxID != 2 || rec.Sessions != 150 || rec.Batches != 2 {
		t.Fatalf("recovered MaxID=%d Sessions=%d Batches=%d, want 2/150/2", rec.MaxID, rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
	}
	ing := rec.Jobs[0]
	if ing.ID != 1 || ing.Kind != "ingest" || ing.Sessions != 150 || ing.Watermark != 1800 || ing.Status != "" {
		t.Fatalf("ingest job state %+v", ing)
	}
	if !ing.Started.Equal(started) || ing.Meta != meta {
		t.Fatalf("ingest identity did not round-trip: %+v", ing)
	}
	done := rec.Jobs[1]
	if done.Status != "done" || done.Snapshots != 24 {
		t.Fatalf("finished job state %+v", done)
	}
}

// TestJournalTornTail corrupts the log's final record in several ways
// and checks replay keeps everything before it, reports the tear, and
// truncates so the next append produces a clean log again.
func TestJournalTornTail(t *testing.T) {
	for _, cut := range []struct {
		name string
		muck func(data []byte) []byte
	}{
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-3] }},
		{"truncated header", func(d []byte) []byte { return d[:len(d)-21] }},
		{"flipped payload bit", func(d []byte) []byte { d[len(d)-2] ^= 0x40; return d }},
		{"garbage appended", func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe, 0xef) }},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, dir)
			if err := j.Append(Record{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"}); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 10, WatermarkSec: 60}); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 20, WatermarkSec: 120}); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, journalName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, cut.muck(data), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, rec := openT(t, dir)
			if !rec.TornTail {
				t.Fatal("corrupt tail not reported")
			}
			// The final batch is inside the damaged region for the cut
			// variants and beyond it for the append variant.
			if rec.Sessions != 10 && rec.Sessions != 30 {
				t.Fatalf("recovered %d sessions, want 10 (tail lost) or 30 (tail intact)", rec.Sessions)
			}
			if len(rec.Jobs) != 1 || rec.Jobs[0].ID != 1 {
				t.Fatalf("recovered jobs %+v", rec.Jobs)
			}
			// The truncation must leave a clean frame boundary: append a
			// record and replay again without a tear.
			if err := j2.Append(Record{Type: TypeFinished, Job: 1, Status: "failed", Error: "interrupted"}); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, rec := openT(t, dir)
			defer j3.Close()
			if rec.TornTail {
				t.Fatal("journal still torn after truncation + append")
			}
			if rec.Jobs[0].Status != "failed" {
				t.Fatalf("appended terminal record lost: %+v", rec.Jobs[0])
			}
		})
	}
}

// TestJournalRewrite compacts a journal down to a checkpoint plus
// terminal records and checks totals and states survive — including
// across a second compaction, which is where a non-carried checkpoint
// would lose history.
func TestJournalRewrite(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append(Record{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeBatch, Job: 1, Sessions: 40, WatermarkSec: 60}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeFinished, Job: 1, Status: "done", Snapshots: 3, Sessions: 40, WatermarkSec: 60}); err != nil {
		t.Fatal(err)
	}

	// First compaction: checkpoint carries the totals, job 1 keeps a
	// created+finished pair.
	err := j.Rewrite([]Record{
		{Type: TypeCheckpoint, Sessions: 40, Batches: 1},
		{Type: TypeCreated, Job: 1, Kind: "ingest", Mode: "streaming"},
		{Type: TypeFinished, Job: 1, Status: "done", Snapshots: 3, Sessions: 40, WatermarkSec: 60},
	})
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The journal must stay appendable after a rewrite.
	if err := j.Append(Record{Type: TypeCreated, Job: 2, Kind: "generator", Mode: "batch"}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir)
	if rec.Sessions != 40 || rec.Batches != 1 {
		t.Fatalf("totals after compaction: Sessions=%d Batches=%d, want 40/1", rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[0].Status != "done" || rec.Jobs[0].Sessions != 40 {
		t.Fatalf("states after compaction: %+v", rec.Jobs)
	}
	if rec.MaxID != 2 {
		t.Fatalf("MaxID after compaction = %d, want 2", rec.MaxID)
	}

	// Second compaction: the checkpoint must compose with the previous
	// one, not reset it.
	err = j2.Rewrite([]Record{{Type: TypeCheckpoint, Sessions: rec.Sessions, Batches: rec.Batches}})
	if err != nil {
		t.Fatalf("second Rewrite: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, rec := openT(t, dir)
	defer j3.Close()
	if rec.Sessions != 40 || rec.Batches != 1 {
		t.Fatalf("totals after second compaction: Sessions=%d Batches=%d, want 40/1", rec.Sessions, rec.Batches)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("jobs after drop-all compaction: %+v", rec.Jobs)
	}
}

// TestJournalEvicted checks an evicted job is forgotten by replay while
// the ID space is not reused.
func TestJournalEvicted(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir)
	if err := j.Append(Record{Type: TypeCreated, Job: 7, Kind: "trace", Mode: "streaming"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeFinished, Job: 7, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeEvicted, Job: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec := openT(t, dir)
	defer j2.Close()
	if len(rec.Jobs) != 0 {
		t.Fatalf("evicted job recovered: %+v", rec.Jobs)
	}
	if rec.MaxID != 7 {
		t.Fatalf("MaxID = %d, want 7 (evicted IDs are not reused)", rec.MaxID)
	}
}

// TestStoreRoundTrip exercises Put/Get/Delete/IDs on the result store.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	type doc struct {
		ID    int     `json:"id"`
		Value float64 `json:"value"`
	}
	if err := s.Put(3, doc{ID: 3, Value: 0.1 + 0.2}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(11, doc{ID: 11, Value: 1}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var got doc
	ok, err := s.Get(3, &got)
	if err != nil || !ok {
		t.Fatalf("Get(3) = %v, %v", ok, err)
	}
	if got.Value != 0.1+0.2 {
		t.Fatalf("float did not round-trip exactly: %v", got.Value)
	}
	if ok, err := s.Get(99, &got); err != nil || ok {
		t.Fatalf("Get(99) = %v, %v, want absent", ok, err)
	}
	ids, err := s.IDs()
	if err != nil {
		t.Fatalf("IDs: %v", err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 11 {
		t.Fatalf("IDs = %v, want [3 11]", ids)
	}
	if err := s.Delete(3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(3); err != nil {
		t.Fatalf("Delete (absent): %v", err)
	}
	if ok, _ := s.Get(3, &got); ok {
		t.Fatal("deleted result still served")
	}
}

// Package joblog is consumelocald's durability layer: an append-only,
// fsync-on-commit job journal plus a completed-result store, both
// rooted in one data directory (the daemon's -data-dir).
//
// The journal records every job state transition — created, ingest
// batch accepted, watermark advanced, finished, evicted — as a
// CRC-framed JSON record, fsynced before the daemon acknowledges the
// transition to a client. On restart, Open replays the log into
// per-job states: finished jobs are re-served from the result store,
// jobs that were running when the daemon died are deterministically
// reported as interrupted, and the monotonic ingest counters are
// restored so a client-versus-server session ledger survives the
// bounce. A torn final record — the expected artifact of dying
// mid-write — is detected by its framing and truncated away; everything
// before it replays.
//
// Checkpoint records carry aggregate totals across compactions: the
// daemon periodically rewrites the journal down to one checkpoint plus
// the terminal records of the retained jobs (Rewrite), so the file's
// size is bounded by the retention window, not by uptime.
package joblog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"consumelocal/internal/trace"
)

// Record types, one per journalled transition.
const (
	// TypeCreated records a job's admission: identity, kind, engine
	// mode and stream metadata — everything a restarted daemon needs to
	// rebuild the registry entry.
	TypeCreated = "created"
	// TypeBatch records an accepted ingest batch (and the watermark it
	// advanced to, when it carried one). Appended — and fsynced —
	// before the push is acknowledged, so "the daemon said 200" implies
	// "the sessions are in the journal".
	TypeBatch = "batch"
	// TypeWatermark records a watermark advance that carried no
	// sessions.
	TypeWatermark = "watermark"
	// TypeFinished records a job's terminal status (done, failed or
	// cancelled) with its final progress counters.
	TypeFinished = "finished"
	// TypeEvicted records that the daemon dropped a finished job from
	// its retention window; replay forgets the job entirely.
	TypeEvicted = "evicted"
	// TypeCheckpoint carries aggregate totals (sessions and batches
	// accepted, ever) across compactions, so restored counters stay
	// monotonic over any number of restarts.
	TypeCheckpoint = "checkpoint"
)

// Record is one journal entry. Fields beyond Type and Job are
// populated per type; JSON keeps the framing self-describing so old
// journals replay under newer binaries.
type Record struct {
	Type string `json:"type"`
	Job  int    `json:"job,omitempty"`

	// created (and compacted terminal records).
	Name    string      `json:"name,omitempty"`
	Kind    string      `json:"kind,omitempty"`
	Mode    string      `json:"mode,omitempty"`
	Started time.Time   `json:"started,omitzero"`
	Meta    *trace.Meta `json:"meta,omitempty"`

	// batch / checkpoint accounting.
	Sessions     int64 `json:"sessions,omitempty"`
	Batches      int64 `json:"batches,omitempty"`
	WatermarkSec int64 `json:"watermark_sec,omitempty"`

	// finished.
	Status    string `json:"status,omitempty"`
	Error     string `json:"error,omitempty"`
	Snapshots int    `json:"snapshots,omitempty"`
}

// Frame layout: 4-byte little-endian payload length, 4-byte CRC32
// (IEEE) of the payload, then the JSON payload. The CRC pins torn or
// bit-rotted tails; the length bounds the scan.
const frameHeader = 8

// maxRecordBytes bounds one record. Real records are a few hundred
// bytes; the cap keeps a corrupted length field from convincing the
// replay scanner to allocate gigabytes.
const maxRecordBytes = 1 << 20

// journalName is the log's filename inside the data directory.
const journalName = "journal.log"

// JobState is one job's reduction of the journal: everything known
// about it at the moment the daemon last committed a record.
type JobState struct {
	ID      int
	Name    string
	Kind    string
	Mode    string
	Started time.Time
	Meta    trace.Meta

	// Sessions and Watermark are the job's producer-side progress
	// (batch records summed, terminal record trusted when larger).
	Sessions  int64
	Watermark int64

	// Status is the terminal status, or "" for a job with no finished
	// record — one that was still running when the daemon died.
	Status    string
	Error     string
	Snapshots int
}

// Recovery is what replaying the journal yields.
type Recovery struct {
	// Jobs are the surviving per-job states in ascending ID order
	// (evicted jobs are forgotten).
	Jobs []*JobState
	// MaxID is the highest job ID any record ever named, evicted or
	// not — the restarted daemon resumes numbering above it.
	MaxID int
	// TornTail reports that the log ended in a torn or corrupt record,
	// which Open truncated away.
	TornTail bool
	// Sessions and Batches are the aggregate accepted totals, ever —
	// checkpoint carry-over plus replayed batch records. They restore
	// the daemon's monotonic ingest counters.
	Sessions int64
	Batches  int64
	// Records counts the entries replayed (excluding checkpoints).
	Records int
}

// Journal is the append-only log. Append is safe for concurrent use;
// the observer hooks are set once, before the first Append.
type Journal struct {
	// OnFsync, when set, observes each commit fsync's latency in
	// seconds — the daemon wires its journal-fsync histogram here.
	OnFsync func(seconds float64)
	// OnAppend, when set, observes each committed record's type.
	OnAppend func(recordType string)

	mu   sync.Mutex
	dir  string
	path string
	f    *os.File
	buf  []byte
}

// Open opens (creating if needed) the journal under dir and replays
// it. A torn tail is truncated — with an fsync — so the next append
// lands on a clean frame boundary; any other I/O failure is returned.
func Open(dir string) (*Journal, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("joblog: data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("joblog: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("joblog: read journal: %w", err)
	}

	rec, good := replay(data)
	if good < int64(len(data)) {
		rec.TornTail = true
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("joblog: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("joblog: sync truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("joblog: seek journal end: %w", err)
	}
	return &Journal{dir: dir, path: path, f: f}, rec, nil
}

// replay scans frames from data, reducing them into a Recovery. It
// returns the byte offset of the first frame that does not decode —
// the truncation point — which is len(data) for a clean log.
func replay(data []byte) (*Recovery, int64) {
	states := make(map[int]*JobState)
	rec := &Recovery{}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > maxRecordBytes || int(n) > len(data)-off-frameHeader {
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			// The frame is intact but unintelligible — treat it like a
			// torn tail rather than guessing at the records behind it.
			break
		}
		rec.apply(states, &r)
		off += frameHeader + int(n)
	}

	ids := make([]int, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rec.Jobs = append(rec.Jobs, states[id])
	}
	return rec, int64(off)
}

// apply folds one record into the replay state.
func (rec *Recovery) apply(states map[int]*JobState, r *Record) {
	if r.Job > rec.MaxID {
		rec.MaxID = r.Job
	}
	ensure := func() *JobState {
		st := states[r.Job]
		if st == nil {
			st = &JobState{ID: r.Job}
			states[r.Job] = st
		}
		return st
	}
	switch r.Type {
	case TypeCreated:
		st := ensure()
		st.Name, st.Kind, st.Mode, st.Started = r.Name, r.Kind, r.Mode, r.Started
		if r.Meta != nil {
			st.Meta = *r.Meta
		}
	case TypeBatch:
		st := ensure()
		st.Sessions += r.Sessions
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
		rec.Sessions += r.Sessions
		rec.Batches++
	case TypeWatermark:
		st := ensure()
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
	case TypeFinished:
		st := ensure()
		st.Status, st.Error, st.Snapshots = r.Status, r.Error, r.Snapshots
		if r.Sessions > st.Sessions {
			st.Sessions = r.Sessions
		}
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
		// Compacted terminal records carry the created fields too.
		if r.Name != "" && st.Name == "" {
			st.Name = r.Name
		}
	case TypeEvicted:
		delete(states, r.Job)
	case TypeCheckpoint:
		rec.Sessions += r.Sessions
		rec.Batches += r.Batches
	}
	if r.Type != TypeCheckpoint {
		rec.Records++
	}
}

// frame appends the framed encoding of r to buf.
func frame(buf []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return buf, fmt.Errorf("joblog: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return buf, fmt.Errorf("joblog: record of %d bytes exceeds the %d frame cap", len(payload), maxRecordBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

// Append commits one record: framed, written, fsynced. It returns only
// once the record is durable — callers acknowledge the transition to
// their client after Append, never before.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	buf, err := frame(j.buf[:0], r)
	j.buf = buf[:0]
	if err != nil {
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("joblog: append: %w", err)
	}
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("joblog: fsync: %w", err)
	}
	if j.OnFsync != nil {
		j.OnFsync(time.Since(t0).Seconds())
	}
	if j.OnAppend != nil {
		j.OnAppend(r.Type)
	}
	return nil
}

// Rewrite atomically replaces the journal's contents with recs — the
// compaction primitive. The new log is written beside the old one,
// fsynced, and renamed into place (with a directory fsync), so a crash
// at any point leaves either the old journal or the new one, never a
// blend.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp, err := os.CreateTemp(j.dir, journalName+".tmp-*")
	if err != nil {
		return fmt.Errorf("joblog: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	var buf []byte
	for _, r := range recs {
		if buf, err = frame(buf, r); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("joblog: rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("joblog: rewrite rename: %w", err)
	}
	syncDir(j.dir)

	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: reopen journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("joblog: seek journal end: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}

// Close syncs and closes the log. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some filesystems refuse directory fsyncs, and the
// rename itself already ordered the data writes.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

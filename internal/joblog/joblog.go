// Package joblog is consumelocald's durability layer: an append-only,
// fsync-on-commit job journal plus a completed-result store, both
// rooted in one data directory (the daemon's -data-dir).
//
// The journal records every job state transition — created, ingest
// batch accepted, watermark advanced, finished, evicted — as a
// CRC-framed JSON record, fsynced before the daemon acknowledges the
// transition to a client. On restart, Open replays the log into
// per-job states: finished jobs are re-served from the result store,
// jobs that were running when the daemon died are deterministically
// reported as interrupted, and the monotonic ingest counters are
// restored so a client-versus-server session ledger survives the
// bounce. A torn final record — the expected artifact of dying
// mid-write — is detected by its framing and truncated away; everything
// before it replays.
//
// Checkpoint records carry aggregate totals across compactions: the
// daemon periodically rewrites the journal down to one checkpoint plus
// the terminal records of the retained jobs (Rewrite), so the file's
// size is bounded by the retention window, not by uptime.
package joblog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"consumelocal/internal/trace"
)

// Record types, one per journalled transition.
const (
	// TypeCreated records a job's admission: identity, kind, engine
	// mode and stream metadata — everything a restarted daemon needs to
	// rebuild the registry entry.
	TypeCreated = "created"
	// TypeBatch records an accepted ingest batch (and the watermark it
	// advanced to, when it carried one). Appended — and fsynced —
	// before the push is acknowledged, so "the daemon said 200" implies
	// "the sessions are in the journal".
	TypeBatch = "batch"
	// TypeWatermark records a watermark advance that carried no
	// sessions.
	TypeWatermark = "watermark"
	// TypeFinished records a job's terminal status (done, failed or
	// cancelled) with its final progress counters.
	TypeFinished = "finished"
	// TypeEvicted records that the daemon dropped a finished job from
	// its retention window; replay forgets the job entirely.
	TypeEvicted = "evicted"
	// TypeCheckpoint carries aggregate totals (sessions and batches
	// accepted, ever) across compactions, so restored counters stay
	// monotonic over any number of restarts.
	TypeCheckpoint = "checkpoint"
)

// Record is one journal entry. Fields beyond Type and Job are
// populated per type; JSON keeps the framing self-describing so old
// journals replay under newer binaries.
type Record struct {
	Type string `json:"type"`
	Job  int    `json:"job,omitempty"`

	// created (and compacted terminal records). Query is the job's
	// original submission query string, journalled for ingest jobs so a
	// restarted daemon can rebuild the exact replay configuration and
	// resume the stream; a created record without one is not resumable.
	Name    string      `json:"name,omitempty"`
	Kind    string      `json:"kind,omitempty"`
	Mode    string      `json:"mode,omitempty"`
	Started time.Time   `json:"started,omitzero"`
	Meta    *trace.Meta `json:"meta,omitempty"`
	Query   string      `json:"query,omitempty"`

	// batch / checkpoint accounting. CSV carries the accepted sessions
	// themselves (bare interchange rows, chunked under the frame cap) —
	// the payload a restarted daemon re-feeds to resume the stream.
	Sessions     int64  `json:"sessions,omitempty"`
	Batches      int64  `json:"batches,omitempty"`
	WatermarkSec int64  `json:"watermark_sec,omitempty"`
	CSV          string `json:"csv,omitempty"`

	// finished.
	Status    string `json:"status,omitempty"`
	Error     string `json:"error,omitempty"`
	Snapshots int    `json:"snapshots,omitempty"`
}

// Frame layout: 4-byte little-endian payload length, 4-byte CRC32
// (IEEE) of the payload, then the JSON payload. The CRC pins torn or
// bit-rotted tails; the length bounds the scan.
const frameHeader = 8

// maxRecordBytes bounds one record. Real records are a few hundred
// bytes; the cap keeps a corrupted length field from convincing the
// replay scanner to allocate gigabytes.
const maxRecordBytes = 1 << 20

// journalName is the log's filename inside the data directory.
const journalName = "journal.log"

// JobState is one job's reduction of the journal: everything known
// about it at the moment the daemon last committed a record.
type JobState struct {
	ID      int
	Name    string
	Kind    string
	Mode    string
	Started time.Time
	Meta    trace.Meta

	// Sessions and Watermark are the job's producer-side progress
	// (batch records summed, terminal record trusted when larger).
	Sessions  int64
	Watermark int64

	// Status is the terminal status, or "" for a job with no finished
	// record — one that was still running when the daemon died.
	Status    string
	Error     string
	Snapshots int

	// Created is the job's created record as journalled (nil when the
	// job's history was compacted into a terminal record). For an
	// in-flight ingest job it carries the Query needed to resume.
	Created *Record
	// Tail holds the job's batch and watermark records, in journal
	// order, while the job has no terminal record — the payload replayed
	// to resume the stream. Cleared when the job finishes; compaction
	// preserves it for running jobs.
	Tail []Record
}

// Recovery is what replaying the journal yields.
type Recovery struct {
	// Jobs are the surviving per-job states in ascending ID order
	// (evicted jobs are forgotten).
	Jobs []*JobState
	// MaxID is the highest job ID any record ever named, evicted or
	// not — the restarted daemon resumes numbering above it.
	MaxID int
	// TornTail reports that the log ended in a torn or corrupt record,
	// which Open truncated away.
	TornTail bool
	// Sessions and Batches are the aggregate accepted totals, ever —
	// checkpoint carry-over plus replayed batch records. They restore
	// the daemon's monotonic ingest counters.
	Sessions int64
	Batches  int64
	// Records counts the entries replayed (excluding checkpoints).
	Records int
}

// Faults injects failures into the journal's write path, modelling the
// disk letting the daemon down: a full disk or I/O error on write, an
// fsync that fails after the bytes were handed to the kernel (written
// but not durable), or a frame corrupted on its way to the platter.
// Each hook is consulted per append while installed; a nil hook (or a
// hook returning the zero value) injects nothing.
type Faults struct {
	// WriteErr, when non-nil and returning an error for the framed
	// bytes about to be written, fails the append before any byte
	// reaches the file — the disk-full / EIO case.
	WriteErr func(frame []byte) error
	// SyncErr, when non-nil and returning an error, fails the commit
	// fsync after the write — the record may or may not be durable, and
	// the daemon must answer the client accordingly (500 before ack).
	SyncErr func() error
	// MangleFrame, when non-nil and returning a non-nil slice, replaces
	// the framed bytes actually written — the torn/corrupt-frame case,
	// observed as a CRC reject or torn tail on the next replay.
	MangleFrame func(frame []byte) []byte
}

// Journal is the append-only log. Append is safe for concurrent use;
// the observer hooks are set once, before the first Append.
type Journal struct {
	// OnFsync, when set, observes each commit fsync's latency in
	// seconds — the daemon wires its journal-fsync histogram here.
	OnFsync func(seconds float64)
	// OnAppend, when set, observes each committed record's type.
	OnAppend func(recordType string)
	// OnFault, when set, observes each injected fault by kind
	// ("write", "fsync", "mangle").
	OnFault func(kind string)

	mu     sync.Mutex
	dir    string
	path   string
	f      *os.File
	buf    []byte
	size   int64
	faults *Faults
}

// Open opens (creating if needed) the journal under dir and replays
// it. A torn tail is truncated — with an fsync — so the next append
// lands on a clean frame boundary; any other I/O failure is returned.
func Open(dir string) (*Journal, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("joblog: data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("joblog: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("joblog: read journal: %w", err)
	}

	rec, good := replay(data)
	if good < int64(len(data)) {
		rec.TornTail = true
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("joblog: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("joblog: sync truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("joblog: seek journal end: %w", err)
	}
	return &Journal{dir: dir, path: path, f: f, size: good}, rec, nil
}

// InjectFaults installs (or, with nil, removes) the fault-injection
// hooks. Testing seam only; takes effect from the next append.
func (j *Journal) InjectFaults(f *Faults) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.faults = f
}

// Size reports the journal file's current length in bytes — the online
// compaction trigger reads this after each append.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// replay scans frames from data, reducing them into a Recovery. It
// returns the byte offset of the first frame that does not decode —
// the truncation point — which is len(data) for a clean log.
func replay(data []byte) (*Recovery, int64) {
	states := make(map[int]*JobState)
	rec := &Recovery{}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > maxRecordBytes || int(n) > len(data)-off-frameHeader {
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			// The frame is intact but unintelligible — treat it like a
			// torn tail rather than guessing at the records behind it.
			break
		}
		rec.apply(states, &r)
		off += frameHeader + int(n)
	}

	ids := make([]int, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rec.Jobs = append(rec.Jobs, states[id])
	}
	return rec, int64(off)
}

// apply folds one record into the replay state.
func (rec *Recovery) apply(states map[int]*JobState, r *Record) {
	if r.Job > rec.MaxID {
		rec.MaxID = r.Job
	}
	ensure := func() *JobState {
		st := states[r.Job]
		if st == nil {
			st = &JobState{ID: r.Job}
			states[r.Job] = st
		}
		return st
	}
	switch r.Type {
	case TypeCreated:
		st := ensure()
		st.Name, st.Kind, st.Mode, st.Started = r.Name, r.Kind, r.Mode, r.Started
		if r.Meta != nil {
			st.Meta = *r.Meta
		}
		// replay allocates a fresh Record per frame, so retaining the
		// pointer is safe.
		st.Created = r
	case TypeBatch:
		st := ensure()
		st.Sessions += r.Sessions
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
		rec.Sessions += r.Sessions
		rec.Batches++
		if st.Status == "" {
			st.Tail = append(st.Tail, *r)
		}
	case TypeWatermark:
		st := ensure()
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
		if st.Status == "" {
			st.Tail = append(st.Tail, *r)
		}
	case TypeFinished:
		st := ensure()
		st.Status, st.Error, st.Snapshots = r.Status, r.Error, r.Snapshots
		st.Tail = nil
		if r.Sessions > st.Sessions {
			st.Sessions = r.Sessions
		}
		if r.WatermarkSec > st.Watermark {
			st.Watermark = r.WatermarkSec
		}
		// Compacted terminal records carry the created fields too.
		if r.Name != "" && st.Name == "" {
			st.Name = r.Name
		}
	case TypeEvicted:
		delete(states, r.Job)
	case TypeCheckpoint:
		rec.Sessions += r.Sessions
		rec.Batches += r.Batches
	}
	if r.Type != TypeCheckpoint {
		rec.Records++
	}
}

// frame appends the framed encoding of r to buf.
func frame(buf []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return buf, fmt.Errorf("joblog: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return buf, fmt.Errorf("joblog: record of %d bytes exceeds the %d frame cap", len(payload), maxRecordBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...), nil
}

// Append commits one record: framed, written, fsynced. It returns only
// once the record is durable — callers acknowledge the transition to
// their client after Append, never before.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(r)
}

// AppendBatch commits several records as one write and one fsync — the
// chunked-batch path, where a single ingest ack may span multiple
// frames but must cost a single commit.
func (j *Journal) AppendBatch(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(recs...)
}

func (j *Journal) appendLocked(recs ...Record) error {
	if j.f == nil {
		return fmt.Errorf("joblog: append: journal closed")
	}
	buf := j.buf[:0]
	var err error
	for _, r := range recs {
		if buf, err = frame(buf, r); err != nil {
			j.buf = buf[:0]
			return err
		}
	}
	j.buf = buf[:0]
	if f := j.faults; f != nil {
		if f.WriteErr != nil {
			if werr := f.WriteErr(buf); werr != nil {
				j.fault("write")
				return fmt.Errorf("joblog: append: %w", werr)
			}
		}
		if f.MangleFrame != nil {
			if m := f.MangleFrame(buf); m != nil {
				j.fault("mangle")
				buf = m
			}
		}
	}
	n, err := j.f.Write(buf)
	j.size += int64(n)
	if err != nil {
		return fmt.Errorf("joblog: append: %w", err)
	}
	if f := j.faults; f != nil && f.SyncErr != nil {
		if serr := f.SyncErr(); serr != nil {
			j.fault("fsync")
			return fmt.Errorf("joblog: fsync: %w", serr)
		}
	}
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("joblog: fsync: %w", err)
	}
	if j.OnFsync != nil {
		j.OnFsync(time.Since(t0).Seconds())
	}
	if j.OnAppend != nil {
		for _, r := range recs {
			j.OnAppend(r.Type)
		}
	}
	return nil
}

func (j *Journal) fault(kind string) {
	if j.OnFault != nil {
		j.OnFault(kind)
	}
}

// Rewrite atomically replaces the journal's contents with recs — the
// compaction primitive. The new log is written beside the old one,
// fsynced, and renamed into place (with a directory fsync), so a crash
// at any point leaves either the old journal or the new one, never a
// blend.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rewriteLocked(recs)
}

// Compact compacts the journal online: under the append lock it
// re-reads and replays the current log, asks build for the replacement
// records, and atomically rewrites the file. Appends block for the
// duration, which the size threshold that triggers compaction keeps
// bounded. It returns the bytes reclaimed (old size minus new).
func (j *Journal) Compact(build func(*Recovery) []Record) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("joblog: compact: journal closed")
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return 0, fmt.Errorf("joblog: compact read: %w", err)
	}
	rec, good := replay(data)
	_ = good // a torn tail cannot exist mid-serve; replay is defensive anyway
	before := j.size
	if err := j.rewriteLocked(build(rec)); err != nil {
		return 0, err
	}
	return before - j.size, nil
}

// CompactionPlan is the canonical build function for Compact (the
// daemon also uses it for the startup rewrite): one checkpoint carrying
// the aggregate totals, each terminal job reduced to a created/finished
// pair, and each still-running job's created record plus its full batch
// tail — so an in-flight ingest stream stays resumable across any
// number of compactions. The sessions and batches that remain as live
// tail records are subtracted from the checkpoint, keeping the next
// replay's totals exact instead of double-counted.
func CompactionPlan(rec *Recovery) []Record {
	ckpt := Record{Type: TypeCheckpoint, Sessions: rec.Sessions, Batches: rec.Batches}
	recs := make([]Record, 0, 1+2*len(rec.Jobs))
	recs = append(recs, ckpt)
	for _, st := range rec.Jobs {
		created := st.Created
		if created == nil {
			created = &Record{
				Type: TypeCreated, Job: st.ID,
				Name: st.Name, Kind: st.Kind, Mode: st.Mode, Started: st.Started,
			}
		}
		recs = append(recs, *created)
		if st.Status == "" {
			for _, t := range st.Tail {
				if t.Type == TypeBatch {
					recs[0].Sessions -= t.Sessions
					recs[0].Batches--
				}
				recs = append(recs, t)
			}
			continue
		}
		recs = append(recs, Record{
			Type: TypeFinished, Job: st.ID,
			Status: st.Status, Error: st.Error, Snapshots: st.Snapshots,
			Sessions: st.Sessions, WatermarkSec: st.Watermark, Name: st.Name,
		})
	}
	return recs
}

func (j *Journal) rewriteLocked(recs []Record) error {
	tmp, err := os.CreateTemp(j.dir, journalName+".tmp-*")
	if err != nil {
		return fmt.Errorf("joblog: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	var buf []byte
	for _, r := range recs {
		if buf, err = frame(buf, r); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("joblog: rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("joblog: rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("joblog: rewrite rename: %w", err)
	}
	syncDir(j.dir)

	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("joblog: reopen journal: %w", err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("joblog: seek journal end: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = end
	return nil
}

// Close syncs and closes the log. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
// Best-effort: some filesystems refuse directory fsyncs, and the
// rename itself already ordered the data writes.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
